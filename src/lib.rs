//! # `content-oblivious` — facade crate
//!
//! Re-exports the whole workspace so examples and integration tests can use
//! a single dependency. See the individual crates for full documentation:
//!
//! * [`net`] — asynchronous fully-defective network substrate;
//! * [`core`] — the paper's algorithms (content-oblivious leader election);
//! * [`classic`] — content-carrying baselines;
//! * [`compose`] — content-oblivious computation after election (Corollary 5).

#![forbid(unsafe_code)]

pub use co_classic as classic;
pub use co_compose as compose;
pub use co_core as core;
pub use co_net as net;
