//! Corollary 5 end-to-end: elect a leader content-obliviously, then use it
//! as the root of an arbitrary computation — all over channels that erase
//! every message.
//!
//! Three computations run after the election:
//!   1. every node learns the ring size;
//!   2. max/sum aggregation with distance-from-leader labelling;
//!   3. a leader-driven replicated counter (a tiny state machine).
//!
//! ```sh
//! cargo run --example composition
//! ```

use content_oblivious::compose::pipeline::{
    elect_then_aggregate, elect_then_replicate, elect_then_ring_size,
};
use content_oblivious::net::{RingSpec, SchedulerKind};

fn main() {
    let ids = vec![14u64, 3, 27, 9, 21, 6];
    let spec = RingSpec::oriented(ids.clone());
    println!("ring: {spec}\n");

    // --- 1. Ring size ------------------------------------------------------
    let out = elect_then_ring_size(&spec, SchedulerKind::Random, 42);
    assert!(out.quiescently_terminated);
    println!(
        "[ring-size] leader at position {:?} (ID {})",
        out.leader, 27
    );
    println!("[ring-size] every node's answer: {:?}", out.outputs);
    assert_eq!(out.outputs, vec![Some(6); 6]);
    println!(
        "[ring-size] total pulses {} (election alone: {})\n",
        out.total_messages, out.election_messages
    );

    // --- 2. Aggregation ----------------------------------------------------
    let inputs = vec![100u64, 250, 30, 480, 75, 120];
    let out = elect_then_aggregate(&spec, &inputs, SchedulerKind::Random, 7);
    assert!(out.quiescently_terminated);
    println!("[aggregate] inputs: {inputs:?}");
    for (i, o) in out.outputs.iter().enumerate() {
        let o = o.expect("decided");
        println!(
            "[aggregate] node {i}: max={} sum={} n={} distance-from-leader={}",
            o.max, o.sum, o.count, o.distance
        );
        assert_eq!((o.max, o.sum, o.count), (480, 1055, 6));
    }
    println!();

    // --- 3. Replicated counter --------------------------------------------
    let script = vec![500i64, -125, 42, -17];
    let out = elect_then_replicate(&spec, &script, SchedulerKind::Random, 9);
    assert!(out.quiescently_terminated);
    let expected: i64 = script.iter().sum();
    println!("[replicate] leader applies script {script:?}");
    println!("[replicate] all replicas converged to: {:?}", out.outputs);
    assert_eq!(out.outputs, vec![Some(expected); 6]);

    println!("\ncomposition checks passed: quiescent termination end-to-end,");
    println!("no phase-1 pulse ever consumed by a phase-2 node (paper §1.1).");
}
