//! Corollary 5's punchline: run Chang–Roberts — an algorithm that *reads
//! IDs out of messages* — on a network that erases every message, by
//! electing a root content-obliviously (Algorithm 2) and simulating CR's
//! deliveries through the round-broadcast layer.
//!
//! ```sh
//! cargo run --example universal_sim
//! ```

use content_oblivious::classic::chang_roberts::{ChangRobertsNode, CrMsg};
use content_oblivious::compose::universal::simulate_on_defective_ring;
use content_oblivious::core::Role;
use content_oblivious::net::{Port, RingSpec, SchedulerKind};

fn main() {
    let ids = vec![9u64, 3, 12, 5, 8];
    let spec = RingSpec::oriented(ids.clone());
    println!("ring: {spec}");
    println!("channels: fully defective (every message becomes a bare pulse)\n");

    let out = simulate_on_defective_ring(
        &spec,
        SchedulerKind::Random,
        2024,
        |i| ChangRobertsNode::new(spec.id(i), Port::One),
        |m| match *m {
            CrMsg::Candidate(id) => id << 1,
            CrMsg::Elected(id) => (id << 1) | 1,
        },
        |w| {
            if w & 1 == 0 {
                CrMsg::Candidate(w >> 1)
            } else {
                CrMsg::Elected(w >> 1)
            }
        },
    );

    println!(
        "phase 1  (Algorithm 2 election):   {} pulses",
        out.election_messages
    );
    println!(
        "phase 2  (simulated Chang-Roberts): {} pulses",
        out.total_messages - out.election_messages
    );
    println!(
        "outcome: quiescent termination = {}\n",
        out.quiescently_terminated
    );

    for (i, role) in out.outputs.iter().enumerate() {
        let role = role.expect("every simulated node decided");
        let marker = if role == Role::Leader {
            "  <-- CR's winner"
        } else {
            ""
        };
        println!("  node {i} (ID {:>2}): {role}{marker}", ids[i]);
    }

    assert!(out.quiescently_terminated);
    assert_eq!(out.outputs[2], Some(Role::Leader));
    println!("\nChang-Roberts, which compares IDs inside messages, just ran");
    println!("to completion over channels that destroyed every message body.");
}
