//! The adversary gauntlet: every algorithm against every scheduler.
//!
//! The paper's guarantees are `∀ schedule`; this example makes the
//! quantifier tangible by running Algorithms 1–3 under the whole adversary
//! family (FIFO, anti-FIFO, random, round-robin, direction starvation,
//! congestion) and printing the per-schedule outcomes — identical leaders
//! and identical exact message counts every time, per Theorems 1 and 2.
//!
//! ```sh
//! cargo run --example adversary_gauntlet
//! ```

use content_oblivious::core::{runner, IdScheme};
use content_oblivious::net::{RingSpec, SchedulerKind};

fn main() {
    let ids = vec![12u64, 30, 7, 19, 4, 25];
    let oriented = RingSpec::oriented(ids.clone());
    let scrambled = RingSpec::with_flips(ids, vec![true, false, false, true, true, false]);

    println!(
        "{:<16} | {:^21} | {:^21} | {:^21}",
        "", "Algorithm 1", "Algorithm 2", "Algorithm 3 (improved)"
    );
    println!(
        "{:<16} | {:>6} {:>8} {:>5} | {:>6} {:>8} {:>5} | {:>6} {:>8} {:>5}",
        "scheduler", "leader", "pulses", "ok", "leader", "pulses", "ok", "leader", "pulses", "ok"
    );
    println!("{}", "-".repeat(88));

    for kind in SchedulerKind::ALL {
        let a1 = runner::run_alg1(&oriented, kind, 1);
        let a2 = runner::run_alg2(&oriented, kind, 1);
        let a3 = runner::run_alg3(&scrambled, IdScheme::Improved, kind, 1);

        let ok1 =
            a1.validate(&oriented).is_ok() && a1.total_messages == a1.predicted_messages.unwrap();
        let ok2 = a2.quiescently_terminated()
            && a2.validate(&oriented).is_ok()
            && a2.total_messages == a2.predicted_messages.unwrap();
        let ok3 = a3.orientation_consistent
            && a3.report.validate(&scrambled).is_ok()
            && a3.report.total_messages == a3.report.predicted_messages.unwrap();

        println!(
            "{:<16} | {:>6} {:>8} {:>5} | {:>6} {:>8} {:>5} | {:>6} {:>8} {:>5}",
            kind.to_string(),
            a1.leader.map_or(-1, |l| l as i64),
            a1.total_messages,
            ok1,
            a2.leader.map_or(-1, |l| l as i64),
            a2.total_messages,
            ok2,
            a3.report.leader.map_or(-1, |l| l as i64),
            a3.report.total_messages,
            ok3,
        );
        assert!(ok1 && ok2 && ok3, "{kind} broke an invariant");
    }

    println!("{}", "-".repeat(88));
    println!("every adversary produced the same leader and the same exact pulse count.");
}
