//! Anonymous rings (Theorem 3): identical nodes with no IDs, each with its
//! own randomness, elect a leader and orient the ring with high probability.
//!
//! Runs Algorithm 4's geometric ID sampling followed by Algorithm 3 and
//! reports the empirical success rate and ID-magnitude statistics that
//! Lemma 18 predicts (`ID_max` unique whp, of size `n^{Θ(c)}..n^{O(c²)}`).
//!
//! ```sh
//! cargo run --example anonymous
//! ```

use content_oblivious::core::anonymous::{elect_anonymous, success_rate, SamplingConfig};
use content_oblivious::net::SchedulerKind;

fn main() {
    // The 13-bit cap keeps the heavy geometric tail interactive; it is a
    // documented harness guard, not part of Algorithm 4.
    let cfg = SamplingConfig::new(1.0).with_max_bits(13);

    // One detailed trial.
    println!("--- one trial on an anonymous ring of n = 10 ---");
    let r = elect_anonymous(10, &cfg, SchedulerKind::Random, 2024);
    println!("sampled IDs: {:?}", r.ids);
    println!(
        "ID_max = {} (unique: {}), messages = {}, success = {}",
        r.id_max, r.unique_max, r.messages, r.success
    );

    // Success rates across ring sizes: failure probability should shrink
    // polynomially in n (Theorem 3: success ≥ 1 − O(n^{-c})).
    println!("\n--- success rate over 100 trials per n (c = 1) ---");
    println!(
        "{:>6} {:>10} {:>12} {:>14} {:>14}",
        "n", "success", "unique max", "mean ID_max", "max messages"
    );
    for n in [4usize, 8, 16, 32, 64] {
        let stats = success_rate(n, &cfg, SchedulerKind::Random, 100, 1234);
        println!(
            "{:>6} {:>9.1}% {:>11.1}% {:>14.1} {:>14}",
            n,
            100.0 * stats.rate(),
            100.0 * stats.unique_max as f64 / stats.trials as f64,
            stats.mean_id_max,
            stats.max_messages
        );
    }

    // Larger c buys a better success probability at the cost of larger IDs
    // (and hence more pulses): the Theorem 3 trade-off.
    println!("\n--- varying c at n = 16 (100 trials each) ---");
    println!(
        "{:>6} {:>10} {:>14} {:>14}",
        "c", "success", "mean ID_max", "max messages"
    );
    for c in [0.5f64, 1.0, 2.0] {
        let cfg = SamplingConfig::new(c).with_max_bits(14);
        let stats = success_rate(16, &cfg, SchedulerKind::Random, 100, 99);
        println!(
            "{:>6.1} {:>9.1}% {:>14.1} {:>14}",
            c,
            100.0 * stats.rate(),
            stats.mean_id_max,
            stats.max_messages
        );
    }
}
