//! Async facade: the same elections, written as straight-line `async fn`
//! node programs over the virtual-time network model.
//!
//! ```sh
//! cargo run --example async_election
//! ```
//!
//! Three acts:
//!
//! 1. Algorithm 1 as an async future (`alg1_async_ring`) stabilizes to the
//!    maximum-ID leader and matches the state-machine twin's counts.
//! 2. Chang–Roberts as an async future terminates — futures returning is
//!    the termination event — under every adversarial scheduler.
//! 3. A seeded latency plan plus the earliest-arrival scheduler runs the
//!    election in virtual time, byte-identically on every rerun.

use content_oblivious::classic::chang_roberts_async_ring;
use content_oblivious::core::{alg1_async_ring, runner, Role};
use content_oblivious::net::{Budget, LatencyModel, LatencyPlan, Outcome, RingSpec, SchedulerKind};

fn main() {
    let ids = vec![23u64, 7, 42, 5, 18, 31, 2, 12];
    let spec = RingSpec::oriented(ids.clone());
    println!("ring: {spec}");

    // -- Act 1: Algorithm 1, async vs state machine ---------------------------
    let mut ring = alg1_async_ring(&spec, SchedulerKind::Random.build(0xC0FFEE));
    let report = ring.run(Budget::default());
    let twin = runner::run_alg1(&spec, SchedulerKind::Random, 0xC0FFEE);
    println!("\nAlgorithm 1 (async): outcome {}", report.outcome);
    for (i, role) in ring.outputs().iter().enumerate() {
        let marker = if *role == Some(Role::Leader) {
            "  <-- leader"
        } else {
            ""
        };
        println!("  node {i} (ID {:>2}): {:?}{marker}", ids[i], role);
    }
    assert_eq!(
        report.outcome,
        Outcome::Quiescent,
        "stabilizes, never terminates"
    );
    assert_eq!(
        report.total_sent, twin.total_messages,
        "async == state machine"
    );
    println!("pulses: {} (state-machine twin agrees)", report.total_sent);

    // -- Act 2: Chang–Roberts terminates under every adversary ----------------
    let mut elected = None;
    for kind in SchedulerKind::ALL {
        let mut cr = chang_roberts_async_ring(&spec, kind.build(7));
        let r = cr.run(Budget::default());
        assert_eq!(r.outcome, Outcome::QuiescentTerminated, "under {kind}");
        let leader = cr
            .outputs()
            .iter()
            .position(|o| *o == Some(Role::Leader))
            .expect("one leader");
        assert_eq!(
            *elected.get_or_insert(leader),
            leader,
            "same leader under {kind}"
        );
    }
    println!(
        "\nChang-Roberts (async): node {} (ID 42) elected under all {} schedulers",
        elected.expect("ran"),
        SchedulerKind::ALL.len()
    );

    // -- Act 3: virtual time --------------------------------------------------
    let plan = LatencyPlan::new(LatencyModel::Uniform { min: 1, max: 9 }, 42);
    let run_timed = || {
        let mut cr = chang_roberts_async_ring(&spec, SchedulerKind::Latency.build(1));
        cr.set_latency(plan.clone());
        let r = cr.run(Budget::default());
        (r.steps, r.total_sent, cr.now(), cr.net_fingerprint())
    };
    let (steps, sent, now, fp) = run_timed();
    assert_eq!(
        run_timed(),
        (steps, sent, now, fp),
        "seeded latency replays"
    );
    println!(
        "\nvirtual time: {sent} messages over {steps} deliveries \
         finished at t = {now} (deterministic, fingerprint {fp:#018x})"
    );

    println!("\nall checks passed");
}
