//! Quickstart: elect a leader on an oriented ring over fully defective
//! channels (Theorem 1), and verify the exact message complexity.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use content_oblivious::core::{runner, Role};
use content_oblivious::net::{RingSpec, SchedulerKind};

fn main() {
    // A ring of 8 nodes with arbitrary positive IDs (clockwise order).
    // The channels corrupt every message into a contentless pulse; the
    // algorithm elects the maximum-ID node anyway.
    let ids = vec![23u64, 7, 42, 5, 18, 31, 2, 12];
    let spec = RingSpec::oriented(ids.clone());
    println!("ring: {spec}");

    // Run Algorithm 2 (quiescently terminating leader election) under a
    // randomized adversarial scheduler.
    let report = runner::run_alg2(&spec, SchedulerKind::Random, 0xC0FFEE);

    println!("\noutcome:            {}", report.outcome);
    for (i, role) in report.roles.iter().enumerate() {
        let marker = if *role == Role::Leader {
            "  <-- elected"
        } else {
            ""
        };
        println!("  node {i} (ID {:>2}): {role}{marker}", ids[i]);
    }

    let n = spec.len() as u64;
    let id_max = spec.id_max();
    println!("\nmessage complexity: {} pulses", report.total_messages);
    println!(
        "Theorem 1 predicts: n(2·ID_max + 1) = {}·(2·{} + 1) = {}",
        n,
        id_max,
        n * (2 * id_max + 1)
    );
    assert!(report.quiescently_terminated());
    assert_eq!(report.total_messages, n * (2 * id_max + 1));
    assert_eq!(report.leader, Some(2), "ID 42 sits at position 2");
    report
        .validate(&spec)
        .expect("exactly one leader, at ID_max");
    println!("\nall checks passed: quiescent termination, unique leader, exact count");
}
