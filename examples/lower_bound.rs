//! The lower bound, hands on (paper §6): solitude patterns, Lemma 22's
//! uniqueness, Corollary 24's pigeonhole, and Theorem 20's witness ring.
//!
//! ```sh
//! cargo run --example lower_bound
//! ```

use content_oblivious::core::lower_bound::{
    lower_bound_messages, max_prefix_group, patterns_unique, solitude_pattern_alg2,
    theorem20_witness,
};
use content_oblivious::core::runner;
use content_oblivious::net::SchedulerKind;

fn main() {
    // --- Definition 21: what a node does when it is alone. ---------------
    println!("solitude patterns of Algorithm 2 (0 = CW pulse, 1 = CCW pulse):");
    for id in [1u64, 2, 4, 7] {
        let p = solitude_pattern_alg2(id).expect("terminates");
        println!("  ID {id}: {p}");
    }
    println!("the pattern of ID i is 0^i 1^(i+1): the node hears its own ID in unary.\n");

    // --- Lemma 22: distinct IDs, distinct patterns. -----------------------
    let k = 128u64;
    let patterns: Vec<_> = (1..=k)
        .map(|id| solitude_pattern_alg2(id).expect("terminates"))
        .collect();
    println!(
        "Lemma 22 check over IDs 1..={k}: unique = {}\n",
        patterns_unique(&patterns)
    );

    // --- Corollary 24: many patterns share a long prefix. -----------------
    for n in [2usize, 4, 8] {
        let (s, group) = max_prefix_group(&patterns, n);
        let ids: Vec<u64> = group.iter().map(|&i| i as u64 + 1).collect();
        let bound = (k / n as u64).ilog2();
        println!(
            "n={n}: IDs {ids:?} share a prefix of length {s} (pigeonhole guarantees ≥ {bound})"
        );
    }

    // --- Theorem 20: the witness ring forces n·s pulses. ------------------
    println!("\nTheorem 20 witness rings (IDs drawn from 1..=k):");
    println!(
        "{:>6} {:>4} {:>12} {:>14} {:>16}",
        "k", "n", "bound n⌊log⌋", "witness n·s", "Alg2 measured"
    );
    for (k, n) in [(64u64, 2usize), (64, 4), (128, 4), (128, 8)] {
        let (spec, s) = theorem20_witness(k, n);
        let report = runner::run_alg2(&spec, SchedulerKind::Solitude, 0);
        println!(
            "{:>6} {:>4} {:>12} {:>14} {:>16}",
            k,
            n,
            lower_bound_messages(k, n as u64),
            n * s,
            report.total_messages,
        );
        assert!(report.total_messages >= (n * s) as u64);
    }
    println!("\nthe measured cost dominates n·s, which dominates the pigeonhole bound —");
    println!("and Theorem 4 says *no* algorithm can escape the log(ID_max/n) factor.");
}
