//! Non-oriented rings (Theorem 2 / Figure 1): nodes cannot tell which port
//! leads clockwise, yet Algorithm 3 elects a leader *and* orients the ring.
//!
//! Renders the paper's Figure 1 contrast — an oriented ring vs. one with
//! scrambled ports — and shows the algorithm converging on both, with the
//! improved ID scheme hitting exactly `n(2·ID_max + 1)` pulses.
//!
//! ```sh
//! cargo run --example non_oriented
//! ```

use content_oblivious::core::{runner, IdScheme, Role};
use content_oblivious::net::{Port, RingSpec, SchedulerKind};

/// ASCII rendering of a ring's port layout (the paper's Figure 1).
fn render(spec: &RingSpec) {
    let n = spec.len();
    print!("  ");
    for i in 0..n {
        let (a, b) = if spec.flips()[i] {
            ("1", "0")
        } else {
            ("0", "1")
        };
        print!("--[{a}({}){b}]--", spec.id(i));
    }
    println!(
        "  (wraps around; left port / ID / right port; right leads clockwise iff it is Port_1)"
    );
}

fn run(label: &str, spec: &RingSpec, scheme: IdScheme) {
    println!("\n=== {label}: {spec} / scheme: {scheme} ===");
    render(spec);
    let out = runner::run_alg3(spec, scheme, SchedulerKind::Random, 7);
    assert!(out.report.reached_quiescence());
    for i in 0..spec.len() {
        let role = out.report.roles[i];
        let claimed = out.cw_ports[i].expect("stabilized");
        let truth = spec.cw_port(i);
        println!(
            "  node {i} (ID {:>2}): {role:<10}  claims CW = {claimed}  (wiring says {truth})",
            spec.id(i)
        );
    }
    println!(
        "  orientation consistent: {} | messages: {} (predicted {})",
        out.orientation_consistent,
        out.report.total_messages,
        out.report.predicted_messages.unwrap()
    );
    assert!(out.orientation_consistent);
    assert_eq!(
        out.report.total_messages,
        out.report.predicted_messages.unwrap()
    );
    let leaders = out
        .report
        .roles
        .iter()
        .filter(|r| **r == Role::Leader)
        .count();
    assert_eq!(leaders, 1);
}

fn main() {
    let ids = vec![9u64, 4, 11, 6, 3];

    // Figure 1 left: an oriented ring (every Port_1 leads clockwise).
    let oriented = RingSpec::oriented(ids.clone());
    run("oriented ring", &oriented, IdScheme::Improved);

    // Figure 1 right: a non-oriented ring — some nodes' ports are swapped.
    let scrambled = RingSpec::with_flips(ids.clone(), vec![true, false, true, true, false]);
    run("non-oriented ring", &scrambled, IdScheme::Improved);

    // Proposition 15's simpler scheme pays ~2x the pulses on the same ring.
    run("non-oriented ring", &scrambled, IdScheme::Doubled);

    // The orientation output really is usable: feed it back as an oriented
    // ring and run the terminating Algorithm 2 on top.
    let out = runner::run_alg3(&scrambled, IdScheme::Improved, SchedulerKind::Random, 7);
    let flips: Vec<bool> = (0..5)
        .map(|i| out.cw_ports[i].expect("stabilized") == Port::Zero)
        .collect();
    let reoriented = RingSpec::with_flips(ids, flips);
    let report = runner::run_alg2(&reoriented, SchedulerKind::Random, 8);
    assert!(report.quiescently_terminated());
    println!(
        "\nre-running Algorithm 2 on the self-oriented ring: {}",
        report.outcome
    );
    println!("leader again at position {:?}", report.leader);
}
