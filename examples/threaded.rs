//! The same algorithms on real OS threads: one thread per node, an mpsc
//! channel per link, delays from genuine scheduler nondeterminism plus
//! injected jitter — demonstrating the results are not simulator artifacts.
//!
//! ```sh
//! cargo run --example threaded
//! ```

use content_oblivious::core::{Alg1Node, Alg2Node, Role};
use content_oblivious::net::threaded::{run_threaded, ThreadedOptions, ThreadedOutcome};
use content_oblivious::net::{Pulse, RingSpec};

fn main() {
    let ids = vec![9u64, 17, 3, 12, 6];
    let spec = RingSpec::oriented(ids.clone());
    let n = spec.len() as u64;
    let id_max = spec.id_max();

    let opts = ThreadedOptions {
        max_jitter_us: 50, // perturb thread interleavings
        ..ThreadedOptions::default()
    };

    // --- Algorithm 2: terminating; threads stop on their own. -------------
    let nodes: Vec<Alg2Node> = (0..spec.len())
        .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
        .collect();
    let report = run_threaded::<Pulse, _>(&spec.wiring(), nodes, &opts);
    println!("[alg2/threads] outcome: {:?}", report.outcome);
    assert_eq!(report.outcome, ThreadedOutcome::AllTerminated);
    for (i, node) in report.nodes.iter().enumerate() {
        println!(
            "[alg2/threads] node {i} (ID {:>2}): {:?}",
            ids[i],
            node.role()
        );
    }
    assert_eq!(report.nodes[1].role(), Role::Leader);
    println!(
        "[alg2/threads] pulses sent: {} (Theorem 1: {})",
        report.total_sent,
        n * (2 * id_max + 1)
    );
    assert_eq!(report.total_sent, n * (2 * id_max + 1));

    // --- Algorithm 1: stabilizing; quiescence detected by the watchdog. ---
    let nodes: Vec<Alg1Node> = (0..spec.len())
        .map(|i| Alg1Node::new(spec.id(i), spec.cw_port(i)))
        .collect();
    let report = run_threaded::<Pulse, _>(&spec.wiring(), nodes, &opts);
    println!("\n[alg1/threads] outcome: {:?}", report.outcome);
    assert_eq!(report.outcome, ThreadedOutcome::Quiescent);
    assert_eq!(report.nodes[1].role(), Role::Leader);
    println!(
        "[alg1/threads] pulses sent: {} (Corollary 13: n·ID_max = {})",
        report.total_sent,
        n * id_max
    );
    assert_eq!(report.total_sent, n * id_max);

    println!("\nthreaded runtime agrees with the discrete-event simulator.");
}
