//! Beyond rings: the paper's open problem asks for content-oblivious
//! computation on arbitrary 2-edge-connected networks. This example runs
//! the content-oblivious flood-echo wave on several general graphs —
//! rooted broadcast with termination detection, using exactly one pulse
//! per directed edge — and shows the 2-edge-connectivity analysis that
//! marks the feasibility boundary.
//!
//! ```sh
//! cargo run --example general_graph
//! ```

use content_oblivious::core::general::{EchoNode, EchoState};
use content_oblivious::net::graph::MultiGraph;
use content_oblivious::net::multiport::{GraphOutcome, GraphSim, GraphWiring};
use content_oblivious::net::{Budget, Pulse, SchedulerKind};

fn wave(name: &str, graph: &MultiGraph, root: usize) {
    let m = graph.edge_count() as u64;
    let wiring = GraphWiring::from_graph(graph);
    let nodes = (0..graph.vertex_count())
        .map(|v| EchoNode::new(v == root))
        .collect();
    let mut sim: GraphSim<Pulse, EchoNode> =
        GraphSim::new(wiring, nodes, SchedulerKind::Random.build(7));
    let report = sim.run(Budget::steps(1_000_000));
    let done = (0..graph.vertex_count())
        .filter(|&v| sim.node(v).state() == EchoState::Done)
        .count();
    println!(
        "{name:<28} n={:<3} m={m:<3} 2-edge-connected={:<5} wave: {} / {} nodes done, {} pulses (2m = {}), {}",
        graph.vertex_count(),
        graph.is_two_edge_connected(),
        done,
        graph.vertex_count(),
        report.total_sent,
        2 * m,
        report.outcome,
    );
    assert_eq!(report.outcome, GraphOutcome::QuiescentTerminated);
    assert_eq!(report.total_sent, 2 * m);
}

fn main() {
    println!("content-oblivious flood-echo wave (rooted broadcast + termination)\n");

    wave("ring C_8", &MultiGraph::ring(8), 0);

    let mut theta = MultiGraph::new(7);
    for (u, v) in [
        (0, 1),
        (1, 2),
        (2, 6),
        (0, 3),
        (3, 6),
        (0, 4),
        (4, 5),
        (5, 6),
    ] {
        theta.add_edge(u, v);
    }
    wave("theta graph (3 paths)", &theta, 3);

    let mut k5 = MultiGraph::new(5);
    for u in 0..5 {
        for v in u + 1..5 {
            k5.add_edge(u, v);
        }
    }
    wave("complete graph K_5", &k5, 0);

    let mut barbell = MultiGraph::new(6);
    for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
        barbell.add_edge(u, v);
    }
    println!(
        "\nbarbell (two triangles + bridge): 2-edge-connected = {} — bridge at edge {:?}",
        barbell.is_two_edge_connected(),
        barbell.bridges(),
    );
    println!("the wave still floods it (waves don't need 2-edge-connectivity),");
    wave("barbell graph", &barbell, 0);

    println!("\n...but general computation does: per Censor-Hillel et al., nontrivial");
    println!("content-oblivious computation is possible iff the network has no bridge.");
    println!("Leader election here without a root remains the paper's open problem.");
}
