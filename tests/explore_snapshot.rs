//! Acceptance for the snapshot-based explorer: against the reference
//! tuple-keyed explorer it must visit the *same* state space in *less*
//! dedup memory, and under an equal byte budget it must reach strictly
//! more configurations.

use content_oblivious::core::{Alg2Node, Role};
use content_oblivious::net::explore::{explore, explore_reference, ExploreLimits, ExploreState};
use content_oblivious::net::{Protocol, RingSpec};

type Key = (u64, u64, u64, u64, u64, bool, bool);

fn reference_key(node: &Alg2Node) -> Key {
    (
        node.rho_cw(),
        node.sigma_cw(),
        node.rho_ccw(),
        node.sigma_ccw(),
        node.deferred_ccw(),
        node.role() == Role::Leader,
        node.is_terminated(),
    )
}

fn make_nodes(spec: &RingSpec) -> Vec<Alg2Node> {
    (0..spec.len())
        .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
        .collect()
}

fn no_check(_: &ExploreState<Alg2Node>) -> Result<(), String> {
    Ok(())
}

#[test]
fn snapshot_explorer_covers_the_same_space_in_fewer_bytes() {
    for ids in [vec![1u64, 2], vec![3, 1], vec![1, 2, 3], vec![2, 3, 1]] {
        let spec = RingSpec::oriented(ids.clone());
        let snap = explore(
            &spec.wiring(),
            || make_nodes(&spec),
            no_check,
            no_check,
            ExploreLimits::default(),
        );
        let reference = explore_reference(
            &spec.wiring(),
            || make_nodes(&spec),
            reference_key,
            no_check,
            no_check,
            ExploreLimits::default(),
        );
        assert!(snap.complete && reference.complete, "{ids:?}");
        assert_eq!(
            snap.configs, reference.configs,
            "{ids:?}: explorers disagree on the state space"
        );
        assert_eq!(
            snap.quiescent_configs, reference.quiescent_configs,
            "{ids:?}: quiescent counts disagree"
        );
        assert!(
            snap.visited_bytes < reference.visited_bytes,
            "{ids:?}: fingerprint index ({} B) not smaller than the reference ({} B)",
            snap.visited_bytes,
            reference.visited_bytes
        );
    }
}

#[test]
fn equal_byte_budget_gives_the_snapshot_explorer_more_reach() {
    // Size the budget to exactly fit the snapshot explorer's full index. The
    // reference explorer — paying for whole state tuples per config — must
    // run out of memory first and cover strictly fewer configurations.
    let spec = RingSpec::oriented(vec![1, 2, 3]);
    let full = explore(
        &spec.wiring(),
        || make_nodes(&spec),
        no_check,
        no_check,
        ExploreLimits::default(),
    );
    assert!(full.complete);

    let budget = ExploreLimits {
        max_state_bytes: full.visited_bytes,
        ..ExploreLimits::default()
    };
    let snap = explore(
        &spec.wiring(),
        || make_nodes(&spec),
        no_check,
        no_check,
        budget,
    );
    let reference = explore_reference(
        &spec.wiring(),
        || make_nodes(&spec),
        reference_key,
        no_check,
        no_check,
        budget,
    );
    assert!(
        snap.complete,
        "snapshot explorer should finish inside its own footprint"
    );
    assert!(
        !reference.complete,
        "reference explorer should exhaust the byte budget"
    );
    assert!(
        reference.configs < snap.configs,
        "reference reached {} configs, snapshot {}",
        reference.configs,
        snap.configs
    );
}

#[test]
fn theorem1_still_checked_through_the_snapshot_explorer() {
    // The rewritten explorer must still catch violations: verify Theorem 1's
    // exact count at every quiescent configuration, and confirm a falsified
    // predicate is reported.
    let spec = RingSpec::oriented(vec![2, 1, 3]);
    let predicted = spec.len() as u64 * (2 * spec.id_max() + 1);
    let report = explore(
        &spec.wiring(),
        || make_nodes(&spec),
        no_check,
        |state| {
            if state.sent == predicted {
                Ok(())
            } else {
                Err(format!("sent {} ≠ {predicted}", state.sent))
            }
        },
        ExploreLimits::default(),
    );
    assert!(report.complete);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(report.quiescent_configs >= 1);

    let falsified = explore(
        &spec.wiring(),
        || make_nodes(&spec),
        no_check,
        |_| Err("always wrong".into()),
        ExploreLimits::default(),
    );
    assert!(!falsified.violations.is_empty());
}
