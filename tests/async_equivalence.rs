//! The async facade is a *representation*, not a different model: a
//! protocol written as straight-line futures over [`co_net::runtime`]
//! produces byte-identical observables to its `on_message` state-machine
//! twin.
//!
//! Pinned for Algorithm 1 (stabilizing, futures never return) and
//! Chang–Roberts (terminating, returning *is* termination), across the
//! full scheduler × fault matrix and under record→replay. The comparison
//! uses [`Simulation::net_fingerprint`] / `AsyncRing::net_fingerprint` —
//! the node-state-free network fingerprint — because the two
//! representations store node state in incomparable shapes on purpose.

use content_oblivious::classic::chang_roberts::{ChangRobertsNode, CrMsg};
use content_oblivious::classic::chang_roberts_async_ring;
use content_oblivious::core::{alg1_async_ring, Alg1Node, Role};
use content_oblivious::net::runtime::AsyncRing;
use content_oblivious::net::{
    Budget, FaultPlan, Protocol, Pulse, RingSpec, RunReport, SchedulerKind, SimStats, Simulation,
};

const IDS: [u64; 5] = [4, 9, 1, 6, 3];

fn fault_plans() -> [FaultPlan; 3] {
    [
        FaultPlan::new(),
        FaultPlan::new().drop_seq(3),
        FaultPlan::new().duplicate_seq(2).drop_seq(6),
    ]
}

/// (report, stats, network fingerprint) of a state-machine run.
fn machine_run<P: Protocol<Pulse> + Clone>(
    spec: &RingSpec,
    nodes: Vec<P>,
    kind: SchedulerKind,
    faults: &FaultPlan,
) -> (RunReport, SimStats, u64, Vec<P>) {
    let mut sim: Simulation<Pulse, P> = Simulation::new(spec.wiring(), nodes, kind.build(11));
    sim.set_faults(faults.clone());
    let report = sim.run(Budget::steps(50_000));
    let stats = sim.stats().clone();
    let fp = sim.net_fingerprint();
    let nodes = (0..spec.len()).map(|i| sim.node(i).clone()).collect();
    (report, stats, fp, nodes)
}

fn async_run<M, Out>(
    mut ring: AsyncRing<M, Out>,
    faults: &FaultPlan,
) -> (RunReport, SimStats, u64, Vec<Option<Out>>)
where
    M: content_oblivious::net::Message,
    Out: Clone + std::fmt::Debug,
{
    ring.set_faults(faults.clone());
    let report = ring.run(Budget::steps(50_000));
    (
        report,
        ring.stats().clone(),
        ring.net_fingerprint(),
        ring.outputs(),
    )
}

#[test]
fn alg1_async_matches_the_state_machine_across_the_matrix() {
    let spec = RingSpec::oriented(IDS.to_vec());
    for kind in SchedulerKind::ALL {
        for faults in &fault_plans() {
            let ctx = format!("{kind}/faults={}", !faults.is_empty());
            let nodes: Vec<Alg1Node> = (0..spec.len())
                .map(|i| Alg1Node::new(spec.id(i), spec.cw_port(i)))
                .collect();
            let (m_report, m_stats, m_fp, m_nodes) = machine_run(&spec, nodes, kind, faults);
            let (a_report, a_stats, a_fp, a_outputs) =
                async_run(alg1_async_ring(&spec, kind.build(11)), faults);
            assert_eq!(m_report, a_report, "{ctx}");
            assert_eq!(m_stats, a_stats, "{ctx}");
            assert_eq!(m_fp, a_fp, "{ctx}");
            let m_outputs: Vec<Option<Role>> = m_nodes.iter().map(Protocol::output).collect();
            assert_eq!(m_outputs, a_outputs, "{ctx}");
        }
    }
}

#[test]
fn chang_roberts_async_matches_the_state_machine_across_the_matrix() {
    let spec = RingSpec::oriented(IDS.to_vec());
    for kind in SchedulerKind::ALL {
        // No fault grid: the state machine relays the `Elected` wave before
        // terminating, so under drops/dups both twins still agree, but the
        // interesting difference — termination via `return` — is scheduler
        // driven. Faults ride along once, on the FIFO row.
        let faults = if kind == SchedulerKind::Fifo {
            fault_plans()[2].clone()
        } else {
            FaultPlan::new()
        };
        let nodes: Vec<ChangRobertsNode> = (0..spec.len())
            .map(|i| ChangRobertsNode::new(spec.id(i), spec.cw_port(i)))
            .collect();
        let mut sim: Simulation<CrMsg, ChangRobertsNode> =
            Simulation::new(spec.wiring(), nodes, kind.build(11));
        sim.set_faults(faults.clone());
        let m_report = sim.run(Budget::steps(50_000));
        let (a_report, a_stats, a_fp, a_outputs) =
            async_run(chang_roberts_async_ring(&spec, kind.build(11)), &faults);
        assert_eq!(m_report, a_report, "{kind}");
        assert_eq!(sim.stats(), &a_stats, "{kind}");
        assert_eq!(sim.net_fingerprint(), a_fp, "{kind}");
        let m_outputs: Vec<Option<Role>> = (0..spec.len()).map(|i| sim.node(i).output()).collect();
        assert_eq!(m_outputs, a_outputs, "{kind}");
    }
}

#[test]
fn async_recording_replays_on_both_representations() {
    let spec = RingSpec::oriented(IDS.to_vec());

    // Record an adversarial async run...
    let mut recorder = alg1_async_ring(&spec, SchedulerKind::Random.build(23));
    let (recorded, schedule) = recorder.run_recorded(Budget::steps(50_000));

    // ...replay it on a fresh async ring...
    let mut async_replay = alg1_async_ring(&spec, SchedulerKind::Fifo.build(0));
    let async_report = async_replay.replay(&schedule, Budget::steps(50_000));
    assert_eq!(recorded, async_report);
    assert_eq!(recorder.net_fingerprint(), async_replay.net_fingerprint());
    assert_eq!(recorder.outputs(), async_replay.outputs());

    // ...and on the state-machine twin: one schedule, three identical runs.
    let nodes: Vec<Alg1Node> = (0..spec.len())
        .map(|i| Alg1Node::new(spec.id(i), spec.cw_port(i)))
        .collect();
    let mut machine: Simulation<Pulse, Alg1Node> =
        Simulation::new(spec.wiring(), nodes, SchedulerKind::Fifo.build(0));
    let machine_report = machine.replay(&schedule, Budget::steps(50_000));
    assert_eq!(recorded, machine_report);
    assert_eq!(recorder.net_fingerprint(), machine.net_fingerprint());
}

#[test]
fn a_terminated_async_node_ignores_late_deliveries() {
    // Chang–Roberts' CW-most non-leader terminates while its neighbour may
    // still hold the Elected wave; the engine must drop deliveries to
    // returned futures exactly like it does for terminated state machines.
    let spec = RingSpec::oriented(vec![2, 1]);
    let mut ring = chang_roberts_async_ring(&spec, SchedulerKind::Lifo.build(0));
    ring.run(Budget::default());
    assert!(ring.is_terminated(0) && ring.is_terminated(1));
    assert_eq!(
        ring.outputs(),
        vec![Some(Role::Leader), Some(Role::NonLeader)]
    );
}
