//! End-to-end Corollary 5 integration: election composed with computation,
//! across schedulers and ring shapes, including the §1.1 attribution
//! property (leader terminates phase 1 last; no cross-phase pulses).

use content_oblivious::compose::pipeline::{
    elect_then_aggregate, elect_then_replicate, elect_then_ring_size,
};
use content_oblivious::core::IdAssignment;
use content_oblivious::net::{RingSpec, SchedulerKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn ring_size_pipeline_matrix() {
    let mut rng = StdRng::seed_from_u64(31);
    for n in [1usize, 2, 3, 5, 9, 16] {
        let ids = IdAssignment::Shuffled.generate(n, &mut rng);
        let spec = RingSpec::oriented(ids);
        for kind in SchedulerKind::ALL {
            let out = elect_then_ring_size(&spec, kind, 77);
            assert!(out.quiescently_terminated, "n={n} {kind}");
            assert_eq!(out.leader, Some(spec.max_position()), "n={n} {kind}");
            assert_eq!(out.outputs, vec![Some(n as u64); n], "n={n} {kind}");
        }
    }
}

#[test]
fn aggregate_pipeline_matrix() {
    let mut rng = StdRng::seed_from_u64(32);
    for n in [1usize, 4, 8] {
        let ids = IdAssignment::SparseUniform { id_max: 60 }.generate(n, &mut rng);
        let spec = RingSpec::oriented(ids);
        let inputs: Vec<u64> = (0..n as u64).map(|i| 3 * i + 1).collect();
        let expected_sum: u64 = inputs.iter().sum();
        let expected_max: u64 = *inputs.iter().max().unwrap();
        for kind in [
            SchedulerKind::Fifo,
            SchedulerKind::Lifo,
            SchedulerKind::Random,
        ] {
            let out = elect_then_aggregate(&spec, &inputs, kind, 5);
            assert!(out.quiescently_terminated, "n={n} {kind}");
            let mut distances = Vec::new();
            for (i, o) in out.outputs.iter().enumerate() {
                let o = o.unwrap_or_else(|| panic!("n={n} {kind} node {i} undecided"));
                assert_eq!(o.sum, expected_sum, "n={n} {kind} node {i}");
                assert_eq!(o.max, expected_max, "n={n} {kind} node {i}");
                assert_eq!(o.count, n as u64, "n={n} {kind} node {i}");
                distances.push(o.distance);
            }
            // Distances are a permutation of 0..n (each node has a unique
            // CCW distance from the leader).
            distances.sort_unstable();
            let expected: Vec<u64> = (0..n as u64).collect();
            assert_eq!(distances, expected, "n={n} {kind}");
        }
    }
}

#[test]
fn replicated_counter_pipeline() {
    let spec = RingSpec::oriented(vec![10, 40, 20, 30]);
    let script = vec![1i64, -2, 300, -4_000, 50_000];
    let expected: i64 = script.iter().sum();
    for kind in SchedulerKind::ALL {
        let out = elect_then_replicate(&spec, &script, kind, 13);
        assert!(out.quiescently_terminated, "{kind}");
        assert_eq!(out.outputs, vec![Some(expected); 4], "{kind}");
    }
}

#[test]
fn election_phase_cost_is_invariant_within_pipeline() {
    // Whatever the application does afterwards, phase 1 costs exactly
    // Theorem 1's n(2·ID_max + 1): total = phase1 + phase2, with phase2
    // deterministic for the ring-size app.
    let spec = RingSpec::oriented(vec![5, 2, 9]);
    let baseline = elect_then_ring_size(&spec, SchedulerKind::Fifo, 0);
    for kind in SchedulerKind::ALL {
        for seed in 0..3u64 {
            let out = elect_then_ring_size(&spec, kind, seed);
            assert_eq!(
                out.total_messages, baseline.total_messages,
                "{kind} seed {seed}: total pulse count must be schedule-independent"
            );
            assert_eq!(out.election_messages, 3 * (2 * 9 + 1));
        }
    }
}
