//! Virtual-time guarantees of the event core.
//!
//! Three pins:
//!
//! * a degenerate zero-latency plan is invisible — every observable of a
//!   run (report, stats, fingerprint) is bit-identical to a simulation
//!   that never installed a plan, across the full scheduler × protocol ×
//!   fault × backend matrix;
//! * seeded non-zero latency is deterministic: reruns, record→replay
//!   round-trips, and snapshot/restore forks all agree byte-for-byte;
//! * the virtual clock itself (final `now`, timestamps) is part of the
//!   replayed state, not an afterthought.

use content_oblivious::core::{Alg1Node, Alg2Node, Alg3Node, IdScheme};
use content_oblivious::net::{
    Budget, FaultPlan, LatencyModel, LatencyPlan, Outcome, Protocol, Pulse, QueueBackend, RingSpec,
    RunReport, SchedulerKind, Simulation, Snapshot,
};

const IDS: [u64; 5] = [3, 7, 2, 5, 1];

fn fault_plans() -> [FaultPlan; 2] {
    [
        FaultPlan::new(),
        FaultPlan::new().drop_seq(3).duplicate_seq(7),
    ]
}

/// Runs `nodes` to completion and returns every observable worth pinning.
fn observe<P: Protocol<Pulse> + Snapshot>(
    spec: &RingSpec,
    nodes: Vec<P>,
    kind: SchedulerKind,
    backend: QueueBackend,
    faults: &FaultPlan,
    latency: Option<LatencyPlan>,
) -> (RunReport, u64, u64) {
    let mut sim: Simulation<Pulse, P> =
        Simulation::with_backend(spec.wiring(), nodes, kind.build(9), backend);
    sim.set_faults(faults.clone());
    if let Some(plan) = latency {
        sim.set_latency(plan);
    }
    let report = sim.run(Budget::steps(50_000));
    (report, sim.fingerprint(), sim.now())
}

#[test]
fn zero_latency_is_invisible_across_the_matrix() {
    let spec = RingSpec::oriented(IDS.to_vec());
    let alg1 = |spec: &RingSpec| {
        (0..spec.len())
            .map(|i| Alg1Node::new(spec.id(i), spec.cw_port(i)))
            .collect::<Vec<_>>()
    };
    let alg2 = |spec: &RingSpec| {
        (0..spec.len())
            .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
            .collect::<Vec<_>>()
    };
    let alg3 = |spec: &RingSpec| {
        (0..spec.len())
            .map(|i| Alg3Node::new(spec.id(i), IdScheme::Improved))
            .collect::<Vec<_>>()
    };
    for kind in SchedulerKind::ALL {
        for backend in [QueueBackend::Vec, QueueBackend::Counter] {
            for faults in &fault_plans() {
                let ctx = format!("{kind}/{backend:?}/faults={}", !faults.is_empty());
                macro_rules! pin {
                    ($make:expr) => {{
                        let plain = observe(&spec, $make(&spec), kind, backend, faults, None);
                        let zeroed = observe(
                            &spec,
                            $make(&spec),
                            kind,
                            backend,
                            faults,
                            Some(LatencyPlan::zero()),
                        );
                        assert_eq!(plain, zeroed, "{ctx}");
                        assert_eq!(plain.2, 0, "untimed clock never moves: {ctx}");
                    }};
                }
                pin!(alg1);
                pin!(alg2);
                pin!(alg3);
            }
        }
    }
}

#[test]
fn seeded_latency_reruns_are_byte_identical() {
    let spec = RingSpec::oriented(IDS.to_vec());
    let plan = LatencyPlan::new(LatencyModel::Uniform { min: 1, max: 9 }, 77);
    // The latency-aware scheduler rides with the eight classic adversaries.
    let kinds = SchedulerKind::ALL
        .into_iter()
        .chain([SchedulerKind::Latency]);
    for kind in kinds {
        let nodes = |spec: &RingSpec| {
            (0..spec.len())
                .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
                .collect::<Vec<_>>()
        };
        let a = observe(
            &spec,
            nodes(&spec),
            kind,
            QueueBackend::Vec,
            &FaultPlan::new(),
            Some(plan.clone()),
        );
        let b = observe(
            &spec,
            nodes(&spec),
            kind,
            QueueBackend::Vec,
            &FaultPlan::new(),
            Some(plan.clone()),
        );
        assert_eq!(a, b, "{kind}");
        assert_eq!(a.0.outcome, Outcome::QuiescentTerminated, "{kind}");
        assert!(a.2 > 0, "a timed run must advance the clock: {kind}");
    }
}

#[test]
fn latency_survives_record_replay() {
    let spec = RingSpec::oriented(IDS.to_vec());
    let plan = LatencyPlan::new(LatencyModel::Uniform { min: 2, max: 6 }, 5);
    let nodes = |spec: &RingSpec| {
        (0..spec.len())
            .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
            .collect::<Vec<_>>()
    };

    let mut recorder: Simulation<Pulse, Alg2Node> =
        Simulation::new(spec.wiring(), nodes(&spec), SchedulerKind::Random.build(13));
    recorder.set_latency(plan.clone());
    let (recorded_report, schedule) = recorder.run_recorded(Budget::default());

    // The replayed run must install the same plan: arrival timestamps are
    // simulation state, and the schedule was recorded against them.
    let mut replayer: Simulation<Pulse, Alg2Node> =
        Simulation::new(spec.wiring(), nodes(&spec), SchedulerKind::Fifo.build(0));
    replayer.set_latency(plan);
    let replayed_report = replayer.replay(&schedule, Budget::default());

    assert_eq!(recorded_report, replayed_report);
    assert_eq!(recorder.fingerprint(), replayer.fingerprint());
    assert_eq!(recorder.now(), replayer.now());
    assert_eq!(recorder.net_fingerprint(), replayer.net_fingerprint());
}

#[test]
fn snapshot_restore_forks_agree_under_latency() {
    let spec = RingSpec::oriented(IDS.to_vec());
    let plan = LatencyPlan::new(LatencyModel::Uniform { min: 1, max: 4 }, 21);
    let nodes: Vec<Alg2Node> = (0..spec.len())
        .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
        .collect();
    let mut sim: Simulation<Pulse, Alg2Node> =
        Simulation::new(spec.wiring(), nodes, SchedulerKind::Random.build(2));
    sim.set_latency(plan);

    // Pause mid-run: in-flight timestamps, per-channel RNG states and the
    // clock are all live in the snapshot.
    let paused = sim.run(Budget::steps(25));
    assert_eq!(paused.outcome, Outcome::BudgetExhausted);
    assert!(sim.now() > 0, "25 timed deliveries move the clock");
    let checkpoint = sim.snapshot();

    sim.run(Budget::default());
    let first = (sim.fingerprint(), sim.net_fingerprint(), sim.now());

    sim.restore(&checkpoint);
    sim.run(Budget::default());
    let second = (sim.fingerprint(), sim.net_fingerprint(), sim.now());

    assert_eq!(first, second, "a restored fork replays the same future");
}
