//! Experiment E11b: violate the channel model (drop / duplicate / inject
//! pulses) and observe the algorithms break — empirical evidence that the
//! paper's "pulses cannot be dropped or injected" assumption (§2) is
//! load-bearing.

use content_oblivious::core::invariants::CwMonitor;
use content_oblivious::core::{Alg1Node, Alg2Node, Role};
use content_oblivious::net::{
    Budget, ChannelId, FaultPlan, Outcome, Port, Pulse, RingSpec, SchedulerKind, Simulation,
};

fn alg2_sim(spec: &RingSpec, kind: SchedulerKind, seed: u64) -> Simulation<Pulse, Alg2Node> {
    let nodes = (0..spec.len())
        .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
        .collect();
    Simulation::new(spec.wiring(), nodes, kind.build(seed))
}

#[test]
fn dropped_pulse_prevents_termination() {
    // Drop one early pulse: the counting arguments of Lemmas 6-12 need
    // every pulse; the ring deadlocks short of electing (quiescent, but
    // nodes wait forever — or worse).
    let spec = RingSpec::oriented(vec![3, 5, 2]);
    let mut sim = alg2_sim(&spec, SchedulerKind::Fifo, 0);
    sim.set_faults(FaultPlan::new().drop_seq(4));
    let report = sim.run(Budget::default());
    assert_eq!(sim.fault_stats().dropped, 1);
    assert_ne!(
        report.outcome,
        Outcome::QuiescentTerminated,
        "a lost pulse must break quiescent termination"
    );
    // The healthy control on the same ring succeeds.
    let mut healthy = alg2_sim(&spec, SchedulerKind::Fifo, 0);
    let ok = healthy.run(Budget::default());
    assert_eq!(ok.outcome, Outcome::QuiescentTerminated);
}

#[test]
fn dropped_pulse_breaks_lemma9_equivalence() {
    // Algorithm 1 with one dropped pulse reaches quiescence while some node
    // still has ρ_cw < ID — exactly the configuration Lemma 9 proves
    // impossible in the fault-free model. The monitor sees the violation.
    let spec = RingSpec::oriented(vec![2, 4, 3]);
    let nodes: Vec<Alg1Node> = (0..3)
        .map(|i| Alg1Node::new(spec.id(i), spec.cw_port(i)))
        .collect();
    let mut sim: Simulation<Pulse, Alg1Node> =
        Simulation::new(spec.wiring(), nodes, SchedulerKind::Fifo.build(0));
    sim.set_faults(FaultPlan::new().drop_seq(2));
    let report = sim.run(Budget::default());
    assert_eq!(report.outcome, Outcome::Quiescent);
    let mut monitor = CwMonitor::new();
    let verdict = monitor.check(sim.nodes(), 0);
    assert!(
        verdict.is_err(),
        "monitor must flag the impossible quiescent configuration"
    );
}

#[test]
fn duplicated_pulse_overshoots_counters() {
    // A duplicated pulse inflates some ρ_cw beyond ID_max (Corollary 14
    // violation) or yields a wrong election.
    let spec = RingSpec::oriented(vec![2, 4, 3]);
    let nodes: Vec<Alg1Node> = (0..3)
        .map(|i| Alg1Node::new(spec.id(i), spec.cw_port(i)))
        .collect();
    let mut sim: Simulation<Pulse, Alg1Node> =
        Simulation::new(spec.wiring(), nodes, SchedulerKind::Fifo.build(0));
    sim.set_faults(FaultPlan::new().duplicate_seq(1));
    // The surplus pulse circulates forever once every node has absorbed —
    // cap the run; BudgetExhausted is itself evidence of the breakage.
    let report = sim.run(Budget::steps(100_000));
    assert_eq!(sim.fault_stats().duplicated, 1);
    assert!(report.outcome == Outcome::Quiescent || report.outcome == Outcome::BudgetExhausted);
    let id_max = 4;
    let overshoot = (0..3).any(|i| sim.node(i).rho_cw() > id_max);
    let wrong_leader = sim.node(1).role() != Role::Leader
        || sim.node(0).role() == Role::Leader
        || sim.node(2).role() == Role::Leader;
    assert!(
        overshoot || wrong_leader,
        "duplication must corrupt counters or the election"
    );
}

#[test]
fn injected_pulse_corrupts_the_election() {
    // Channel noise inventing a pulse out of thin air (forbidden by the
    // model) likewise corrupts the run.
    let spec = RingSpec::oriented(vec![2, 4, 3]);
    let nodes: Vec<Alg1Node> = (0..3)
        .map(|i| Alg1Node::new(spec.id(i), spec.cw_port(i)))
        .collect();
    let mut sim: Simulation<Pulse, Alg1Node> =
        Simulation::new(spec.wiring(), nodes, SchedulerKind::Fifo.build(0));
    sim.start();
    // Inject a spurious CW pulse on node 0's clockwise channel.
    sim.inject(ChannelId::new(0, Port::One), Pulse);
    // As with duplication, the spurious pulse never dies; cap the run.
    let report = sim.run(Budget::steps(100_000));
    assert_eq!(sim.fault_stats().injected, 1);
    assert!(report.outcome == Outcome::Quiescent || report.outcome == Outcome::BudgetExhausted);
    let overshoot = (0..3).any(|i| sim.node(i).rho_cw() > 4);
    let wrong = sim.node(1).role() != Role::Leader;
    assert!(overshoot || wrong, "injection must corrupt the run");
}

#[test]
fn faults_are_reproducible() {
    // The fault plan keys on deterministic sequence numbers: two identical
    // runs with the same plan and scheduler behave identically.
    let spec = RingSpec::oriented(vec![3, 5, 2]);
    let run = |seed| {
        let mut sim = alg2_sim(&spec, SchedulerKind::Lifo, seed);
        sim.set_faults(FaultPlan::new().drop_seq(3).duplicate_seq(7));
        let report = sim.run(Budget::steps(50_000));
        (
            report.outcome,
            report.total_sent,
            (0..3).map(|i| sim.node(i).role()).collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(9), run(9));
}
