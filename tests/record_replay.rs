//! Record/replay determinism: a recorded [`Schedule`] replayed on a fresh
//! simulation must reproduce the original run byte-for-byte — same
//! [`RunReport`], same [`SimStats`] — for every scheduler kind, a spread of
//! seeds, and each of the paper's three algorithms.

use content_oblivious::core::{Alg1Node, Alg2Node, Alg3Node, IdScheme};
use content_oblivious::net::{
    Budget, Protocol, Pulse, RingSpec, Schedule, SchedulerKind, Simulation,
};

/// Records a run under `kind`/`seed`, then replays the schedule on a fresh
/// simulation and checks that both runs are byte-identical.
fn assert_replay_identical<P, F>(spec: &RingSpec, make: F, kind: SchedulerKind, seed: u64)
where
    P: Protocol<Pulse>,
    F: Fn() -> Vec<P>,
{
    let mut recorded: Simulation<Pulse, P> =
        Simulation::new(spec.wiring(), make(), kind.build(seed));
    let (report, schedule) = recorded.run_recorded(Budget::default());

    // The replaying simulation's own scheduler is irrelevant: the schedule
    // dictates every delivery. Give it a *different* scheduler to prove it.
    let mut replayed: Simulation<Pulse, P> = Simulation::new(
        spec.wiring(),
        make(),
        SchedulerKind::Lifo.build(seed ^ 0xdead),
    );
    let replay_report = replayed.replay(&schedule, Budget::default());

    let tag = format!("{kind} seed {seed}");
    assert_eq!(report, replay_report, "{tag}: RunReport differs");
    assert_eq!(
        format!("{:?}", recorded.stats()),
        format!("{:?}", replayed.stats()),
        "{tag}: SimStats differ"
    );
    assert_eq!(
        format!("{report:?}"),
        format!("{replay_report:?}"),
        "{tag}: RunReport debug bytes differ"
    );

    // Round-trip the schedule through its textual form too: the CLI's
    // `record` output must feed `replay --schedule` without loss.
    let reparsed: Schedule = schedule.to_string().parse().expect("schedule parses");
    assert_eq!(schedule, reparsed, "{tag}: Display/FromStr round trip");
}

#[test]
fn alg1_replays_identically_under_every_scheduler() {
    let spec = RingSpec::oriented(vec![3, 1, 4, 2]);
    for kind in SchedulerKind::ALL {
        for seed in [0u64, 7, 42, 1000] {
            assert_replay_identical(
                &spec,
                || {
                    (0..spec.len())
                        .map(|i| Alg1Node::new(spec.id(i), spec.cw_port(i)))
                        .collect()
                },
                kind,
                seed,
            );
        }
    }
}

#[test]
fn alg2_replays_identically_under_every_scheduler() {
    let spec = RingSpec::oriented(vec![2, 5, 1, 3]);
    for kind in SchedulerKind::ALL {
        for seed in [0u64, 7, 42, 1000] {
            assert_replay_identical(
                &spec,
                || {
                    (0..spec.len())
                        .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
                        .collect()
                },
                kind,
                seed,
            );
        }
    }
}

#[test]
fn alg3_replays_identically_under_every_scheduler() {
    // A non-oriented ring: Algorithm 3 must also agree on orientation, and
    // the replay must reproduce that too.
    let spec = RingSpec::with_flips(vec![2, 4, 1], vec![true, false, true]);
    for kind in SchedulerKind::ALL {
        for seed in [0u64, 7, 42] {
            assert_replay_identical(
                &spec,
                || {
                    (0..spec.len())
                        .map(|i| Alg3Node::new(spec.id(i), IdScheme::Improved))
                        .collect()
                },
                kind,
                seed,
            );
        }
    }
}

#[test]
fn replay_reproduces_outputs_not_just_counters() {
    // Spot-check that replayed node states match, not only the aggregate
    // report: same roles at every position.
    let spec = RingSpec::oriented(vec![4, 9, 1, 6, 2]);
    for kind in [SchedulerKind::Random, SchedulerKind::LongestQueue] {
        let make = || {
            (0..spec.len())
                .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
                .collect::<Vec<_>>()
        };
        let mut recorded: Simulation<Pulse, Alg2Node> =
            Simulation::new(spec.wiring(), make(), kind.build(13));
        let (_, schedule) = recorded.run_recorded(Budget::default());
        let mut replayed: Simulation<Pulse, Alg2Node> =
            Simulation::new(spec.wiring(), make(), SchedulerKind::Fifo.build(0));
        replayed.replay(&schedule, Budget::default());
        for i in 0..spec.len() {
            assert_eq!(
                recorded.node(i).role(),
                replayed.node(i).role(),
                "{kind}: node {i} role"
            );
        }
    }
}
