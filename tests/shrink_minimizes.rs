//! The ddmin shrinker against the ablation: find a schedule that drives the
//! ungated Algorithm 2 variant into an invariant violation, then minimize it.
//! The shrunk schedule must be no longer than the original and must still
//! trip the monitor — a 1-minimal machine-checked counterexample for the
//! necessity of the CCW receive gate (Lemma 9).

use content_oblivious::core::ablation::UngatedAlg2Node;
use content_oblivious::core::invariants::Alg2MonitorObserver;
use content_oblivious::net::{
    shrink_schedule, Budget, Pulse, RingSpec, Schedule, SchedulerKind, Simulation,
};

fn ungated(spec: &RingSpec) -> Vec<UngatedAlg2Node> {
    (0..spec.len())
        .map(|i| UngatedAlg2Node::new(spec.id(i), spec.cw_port(i)))
        .collect()
}

/// Finds a recorded schedule under which the ablation violates the CW/CCW
/// invariants, scanning the adversary matrix.
fn find_violating_schedule(spec: &RingSpec) -> (Schedule, SchedulerKind, u64) {
    for kind in SchedulerKind::ALL {
        for seed in 0..32u64 {
            let mut sim: Simulation<Pulse, UngatedAlg2Node> =
                Simulation::new(spec.wiring(), ungated(spec), kind.build(seed));
            let mut monitor = Alg2MonitorObserver::new();
            sim.enable_schedule_recording();
            sim.run_observed(Budget::default(), &mut monitor);
            if monitor.violation().is_some() {
                return (
                    sim.recorded_schedule().expect("recording was enabled"),
                    kind,
                    seed,
                );
            }
        }
    }
    panic!("the ungated ablation never tripped the monitor — it should");
}

#[test]
fn shrinker_minimizes_an_ungated_counterexample() {
    let spec = RingSpec::oriented(vec![2, 3, 1]);
    let (original, kind, seed) = find_violating_schedule(&spec);

    let violates = |schedule: &Schedule| {
        let mut sim: Simulation<Pulse, UngatedAlg2Node> =
            Simulation::new(spec.wiring(), ungated(&spec), SchedulerKind::Fifo.build(0));
        let mut monitor = Alg2MonitorObserver::new();
        sim.replay_observed(schedule, Budget::default(), &mut monitor);
        monitor.violation().is_some()
    };

    assert!(
        violates(&original),
        "{kind}/{seed}: recorded schedule must reproduce the violation via replay"
    );

    let shrunk = shrink_schedule(&original, violates);
    assert!(
        shrunk.len() <= original.len(),
        "shrunk {} > original {}",
        shrunk.len(),
        original.len()
    );
    assert!(
        violates(&shrunk),
        "shrunk schedule no longer trips the monitor"
    );

    // 1-minimality: deleting any single pick loses the violation.
    for i in 0..shrunk.len() {
        let mut shorter = shrunk.picks().to_vec();
        shorter.remove(i);
        assert!(
            !violates(&Schedule::from_picks(shorter)),
            "not 1-minimal: pick {i} of {} is removable",
            shrunk.len()
        );
    }
}

#[test]
fn shrinking_preserves_textual_round_trip() {
    // The minimized counterexample must survive Display/FromStr so it can be
    // pasted into `co-ring replay --schedule ...`.
    let spec = RingSpec::oriented(vec![2, 3, 1]);
    let (original, _, _) = find_violating_schedule(&spec);
    let violates = |schedule: &Schedule| {
        let mut sim: Simulation<Pulse, UngatedAlg2Node> =
            Simulation::new(spec.wiring(), ungated(&spec), SchedulerKind::Fifo.build(0));
        let mut monitor = Alg2MonitorObserver::new();
        sim.replay_observed(schedule, Budget::default(), &mut monitor);
        monitor.violation().is_some()
    };
    let shrunk = shrink_schedule(&original, violates);
    let reparsed: Schedule = shrunk.to_string().parse().expect("round trip");
    assert_eq!(shrunk, reparsed);
    assert!(violates(&reparsed));
}
