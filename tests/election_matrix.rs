//! Cross-crate integration matrix: every election algorithm × every
//! scheduler × assorted ring shapes, with exact message-complexity checks
//! (Theorems 1 and 2, Proposition 15) and step-wise invariant monitoring
//! (Lemmas 6–12, 17).

use content_oblivious::core::{runner, IdAssignment, IdScheme, Role};
use content_oblivious::net::{Outcome, RingSpec, SchedulerKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn specs_under_test() -> Vec<RingSpec> {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    let mut specs = vec![
        RingSpec::oriented(vec![1]),
        RingSpec::oriented(vec![7]),
        RingSpec::oriented(vec![1, 2]),
        RingSpec::oriented(vec![2, 1]),
        RingSpec::oriented(vec![5, 17, 3]),
    ];
    for n in [4usize, 7, 12, 23] {
        for assignment in [
            IdAssignment::Contiguous,
            IdAssignment::Shuffled,
            IdAssignment::Descending,
            IdAssignment::SparseUniform {
                id_max: 4 * n as u64,
            },
            IdAssignment::SingleBig { id_max: 120 },
        ] {
            specs.push(RingSpec::oriented(assignment.generate(n, &mut rng)));
        }
    }
    specs
}

#[test]
fn alg1_exact_complexity_and_election_everywhere() {
    for spec in specs_under_test() {
        let n = spec.len() as u64;
        let id_max = spec.id_max();
        for kind in SchedulerKind::ALL {
            let report = runner::run_alg1(&spec, kind, 42);
            assert_eq!(report.outcome, Outcome::Quiescent, "{spec} {kind}");
            report
                .validate(&spec)
                .unwrap_or_else(|e| panic!("{spec} {kind}: {e}"));
            assert_eq!(report.total_messages, n * id_max, "{spec} {kind}");
        }
    }
}

#[test]
fn alg2_exact_complexity_and_quiescent_termination_everywhere() {
    for spec in specs_under_test() {
        let n = spec.len() as u64;
        let id_max = spec.id_max();
        for kind in SchedulerKind::ALL {
            let report = runner::run_alg2(&spec, kind, 43);
            assert_eq!(
                report.outcome,
                Outcome::QuiescentTerminated,
                "{spec} {kind}"
            );
            report
                .validate(&spec)
                .unwrap_or_else(|e| panic!("{spec} {kind}: {e}"));
            assert_eq!(report.total_messages, n * (2 * id_max + 1), "{spec} {kind}");
        }
    }
}

#[test]
fn alg2_invariants_hold_stepwise() {
    // The paper's Lemmas as runtime assertions, on a denser seed sweep.
    let mut rng = StdRng::seed_from_u64(7);
    for n in [1usize, 2, 5, 11] {
        for seed in 0..5u64 {
            let ids = IdAssignment::Shuffled.generate(n, &mut rng);
            let spec = RingSpec::oriented(ids);
            for kind in SchedulerKind::ALL {
                runner::run_alg2_monitored(&spec, kind, seed)
                    .unwrap_or_else(|v| panic!("{spec} {kind} seed {seed}: {v}"));
            }
        }
    }
}

#[test]
fn alg3_elects_and_orients_across_port_layouts() {
    let mut rng = StdRng::seed_from_u64(99);
    for n in [1usize, 2, 3, 6, 10] {
        for trial in 0..4u64 {
            let ids = IdAssignment::Shuffled.generate(n, &mut rng);
            let spec = RingSpec::random_flips(ids, &mut rng);
            for scheme in [IdScheme::Doubled, IdScheme::Improved] {
                for kind in SchedulerKind::ALL {
                    let out = runner::run_alg3(&spec, scheme, kind, trial);
                    assert_eq!(
                        out.report.outcome,
                        Outcome::Quiescent,
                        "{spec} {scheme} {kind}"
                    );
                    out.report
                        .validate(&spec)
                        .unwrap_or_else(|e| panic!("{spec} {scheme} {kind}: {e}"));
                    assert!(out.orientation_consistent, "{spec} {scheme} {kind}");
                    assert_eq!(
                        out.report.total_messages,
                        scheme.predicted_messages(spec.len() as u64, spec.id_max()),
                        "{spec} {scheme} {kind}"
                    );
                }
            }
        }
    }
}

#[test]
fn message_complexity_depends_on_id_max_not_n() {
    // The headline of Theorems 1 & 4: complexity is governed by ID_max.
    // Fix n = 4; grow ID_max; messages grow linearly in ID_max.
    let mut last = 0;
    for id_max in [10u64, 100, 1000, 10_000] {
        let spec = RingSpec::oriented(vec![1, 2, 3, id_max]);
        let report = runner::run_alg2(&spec, SchedulerKind::Fifo, 0);
        assert_eq!(report.total_messages, 4 * (2 * id_max + 1));
        assert!(report.total_messages > last);
        last = report.total_messages;
    }
}

#[test]
fn alg2_direction_split_matches_the_analysis() {
    // Theorem 1's accounting, per direction: exactly n·ID_max clockwise
    // pulses (the CW instance) and n·ID_max + n counterclockwise ones (the
    // CCW instance plus the termination round) — verified from a recorded
    // trace via the analysis tooling.
    use content_oblivious::core::Alg2Node;
    use content_oblivious::net::analysis::{direction_split, fifo_violation, summarize};
    use content_oblivious::net::{Budget, Pulse, Simulation};

    let spec = RingSpec::oriented(vec![3, 8, 5, 2]);
    let n = 4u64;
    let id_max = 8u64;
    for kind in [
        SchedulerKind::Fifo,
        SchedulerKind::Lifo,
        SchedulerKind::Random,
    ] {
        let nodes = (0..4)
            .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
            .collect();
        let mut sim: Simulation<Pulse, Alg2Node> =
            Simulation::new(spec.wiring(), nodes, kind.build(9));
        sim.enable_trace(None);
        let report = sim.run(Budget::default());
        assert_eq!(report.outcome, Outcome::QuiescentTerminated, "{kind}");
        let trace = sim.trace().expect("trace enabled");
        let (cw, ccw) = direction_split(trace);
        assert_eq!(cw, n * id_max, "{kind}");
        assert_eq!(ccw, n * id_max + n, "{kind}");
        assert_eq!(fifo_violation(trace), None, "{kind}");
        let summary = summarize(trace);
        assert_eq!(summary.ignored, 0, "{kind}: quiescent termination");
        // The leader (position 1) terminates last (paper §1.1).
        assert_eq!(summary.termination_order.last(), Some(&1), "{kind}");
    }
}

#[test]
fn duplicate_ids_lemma16_all_max_holders_win_alg1() {
    // Lemma 16: Algorithm 1 with non-unique IDs stabilizes with all ID_max
    // holders as leaders and everyone at exactly ID_max pulses.
    let spec = RingSpec::oriented(vec![6, 2, 6, 6, 1]);
    for kind in SchedulerKind::ALL {
        let report = runner::run_alg1(&spec, kind, 5);
        assert_eq!(report.outcome, Outcome::Quiescent, "{kind}");
        assert_eq!(report.total_messages, 5 * 6, "{kind}");
        let leaders: Vec<usize> = report
            .roles
            .iter()
            .enumerate()
            .filter(|(_, r)| **r == Role::Leader)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(leaders, vec![0, 2, 3], "{kind}");
    }
}

/// Timed large-n smoke: the n = 5000 Algorithm 2 election on the counter
/// queue backend, exact to Theorem 1. Ignored in the default test run (it
/// delivers ~50 M pulses — affordable since the scheduler's indexed pick
/// path made large elections delivery-bound); CI runs it in release as the
/// `large-n-smoke` job with a hard timeout.
#[test]
#[ignore = "large; run explicitly (CI large-n-smoke job)"]
fn large_ring_smoke_n5000_counter_backend() {
    use content_oblivious::net::{Budget, QueueBackend};
    let n = 5000usize;
    let spec = RingSpec::oriented((1..=n as u64).collect());
    let out = runner::run_alg2_scaled(
        &spec,
        SchedulerKind::Fifo,
        0,
        QueueBackend::Counter,
        Budget::steps(120_000_000),
    );
    assert!(out.report.quiescently_terminated());
    assert_eq!(
        out.report.total_messages,
        n as u64 * (2 * n as u64 + 1),
        "Theorem 1 at n = 5000"
    );
    assert_eq!(out.report.leader, Some(n - 1));
    assert!(
        out.peak_queue_bytes > 0 && out.peak_queue_bytes < 1 << 20,
        "counter store stays under a megabyte, got {}",
        out.peak_queue_bytes
    );
}

/// Timed large-n smoke at n = 100,000 under run-batched macro-stepping.
///
/// A full election at this scale needs n(2·ID_max + 1) ≈ 2×10¹⁰ pulses
/// under ANY delivery mode (batching fuses transitions, never pulses), so
/// the run is budget-capped and the assertion is the macro-stepping
/// equivalence contract instead of Theorem 1: batch-on must reproduce the
/// per-pulse trajectory byte for byte — same step count, same outcome, same
/// state fingerprint. CI runs this in release as the `large-n-smoke` job.
#[test]
#[ignore = "large; run explicitly (CI large-n-smoke job)"]
fn large_ring_smoke_n100000_batched() {
    use content_oblivious::core::Alg2Node;
    use content_oblivious::net::{Budget, Pulse, QueueBackend, Simulation};

    const CAP: u64 = 50_000_000;
    let n = 100_000usize;
    let spec = RingSpec::oriented((1..=n as u64).collect());
    let mut cells = Vec::new();
    for batch in [false, true] {
        let nodes = (0..n)
            .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
            .collect();
        let mut sim: Simulation<Pulse, Alg2Node> = Simulation::with_backend(
            spec.wiring(),
            nodes,
            SchedulerKind::Fifo.build(0),
            QueueBackend::Counter,
        );
        sim.set_batch(batch);
        let run = sim.run(Budget::steps(CAP));
        assert_eq!(run.outcome, Outcome::BudgetExhausted);
        assert_eq!(run.steps, CAP);
        cells.push((run, sim.fingerprint()));
    }
    assert_eq!(
        cells[0], cells[1],
        "batched n = 100,000 election must match per-pulse byte for byte"
    );
}
