//! Batch equivalence: run-batched macro-stepping must be observationally
//! identical to per-pulse delivery.
//!
//! With [`Simulation::set_batch`] on, one engine transition may deliver an
//! entire pulse run whenever no observer, fault horizon, latency timer, or
//! budget boundary could distinguish the interleaving. This suite proves
//! the equivalence contract over the full grid of all 8 scheduler
//! adversaries × both queue backends × fault plans × latency plans for
//! {Alg1, Alg2, Alg3}: byte-identical [`RunReport`], [`SimStats`],
//! configuration fingerprints, and recorded schedules; stepwise fingerprint
//! agreement at every batch boundary; and record→replay across modes in
//! both directions. Trajectory-dependent *peaks* (`max_in_flight`,
//! `peak_queue_bytes`) are deliberately outside the contract — a fused run
//! moves through fewer intermediate configurations.

use content_oblivious::core::{Alg1Node, Alg2Node, Alg3Node, IdScheme};
use content_oblivious::net::{
    Budget, FaultPlan, LatencyModel, LatencyPlan, Outcome, Protocol, Pulse, QueueBackend, RingSpec,
    RunReport, SchedulerKind, SimStats, Simulation, Snapshot,
};

/// Everything a run exposes under the equivalence contract.
#[derive(Debug, PartialEq)]
struct Observed {
    report: RunReport,
    stats: SimStats,
    fingerprint: u64,
    terminated: Vec<bool>,
}

struct Config<'a> {
    kind: SchedulerKind,
    seed: u64,
    backend: QueueBackend,
    plan: &'a FaultPlan,
    latency: Option<LatencyPlan>,
    budget: Budget,
}

fn build<P, F>(spec: &RingSpec, make: &F, cfg: &Config<'_>, batch: bool) -> Simulation<Pulse, P>
where
    P: Protocol<Pulse> + Snapshot,
    F: Fn() -> Vec<P>,
{
    let mut sim: Simulation<Pulse, P> =
        Simulation::with_backend(spec.wiring(), make(), cfg.kind.build(cfg.seed), cfg.backend);
    sim.set_faults(cfg.plan.clone());
    if let Some(plan) = cfg.latency.clone() {
        sim.set_latency(plan);
    }
    sim.set_batch(batch);
    sim
}

fn observe<P, F>(spec: &RingSpec, make: &F, cfg: &Config<'_>, batch: bool) -> Observed
where
    P: Protocol<Pulse> + Snapshot,
    F: Fn() -> Vec<P>,
{
    let mut sim = build(spec, make, cfg, batch);
    let report = sim.run(cfg.budget);
    Observed {
        stats: sim.stats().clone(),
        fingerprint: sim.fingerprint(),
        terminated: (0..spec.len()).map(|v| sim.is_terminated(v)).collect(),
        report,
    }
}

fn assert_equivalent<P, F>(spec: &RingSpec, make: F, label: &str)
where
    P: Protocol<Pulse> + Snapshot,
    F: Fn() -> Vec<P>,
{
    let plans = [
        ("clean", FaultPlan::new()),
        ("drop4", FaultPlan::new().drop_seq(4)),
        ("dup1", FaultPlan::new().duplicate_seq(1)),
    ];
    let latencies = [
        ("untimed", None),
        ("fixed2", Some(LatencyPlan::new(LatencyModel::Fixed(2), 11))),
    ];
    for kind in SchedulerKind::ALL {
        for backend in QueueBackend::ALL {
            for (plan_label, plan) in &plans {
                for (lat_label, latency) in &latencies {
                    let cfg = Config {
                        kind,
                        seed: 7,
                        backend,
                        plan,
                        latency: latency.clone(),
                        budget: Budget::steps(200_000),
                    };
                    let off = observe(spec, &make, &cfg, false);
                    let on = observe(spec, &make, &cfg, true);
                    assert_eq!(
                        off, on,
                        "{label} under {kind} backend {backend} plan {plan_label} {lat_label}"
                    );
                }
            }
        }
    }
}

/// The full grid: 8 schedulers × 2 backends × 3 fault plans × 2 latency
/// plans for each algorithm, batch-on equal to batch-off everywhere.
#[test]
fn all_schedulers_backends_faults_and_latency_agree_across_batch_modes() {
    let spec = RingSpec::oriented(vec![3, 6, 1, 5, 2]);
    assert_equivalent(
        &spec,
        || {
            (0..spec.len())
                .map(|i| Alg1Node::new(spec.id(i), spec.cw_port(i)))
                .collect::<Vec<_>>()
        },
        "alg1",
    );
    assert_equivalent(
        &spec,
        || {
            (0..spec.len())
                .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
                .collect::<Vec<_>>()
        },
        "alg2",
    );
    let flipped = RingSpec::with_flips(vec![3, 6, 1, 5, 2], vec![true, false, true, false, false]);
    assert_equivalent(
        &flipped,
        || {
            (0..flipped.len())
                .map(|i| Alg3Node::new(flipped.id(i), IdScheme::Improved))
                .collect::<Vec<_>>()
        },
        "alg3",
    );
}

/// Batching actually fuses on the FIFO-family schedulers — the grid above
/// would pass vacuously if every quota came back 1. Elections only carry
/// runs of length 1 (every event sends a single pulse), so a run is seeded
/// with a bulk injection; Alg1's closed form then *propagates* it, relaying
/// the whole run as one fused transition per hop.
#[test]
fn batching_fuses_transitions_on_fifo_family() {
    let spec = RingSpec::oriented(vec![40, 90, 10, 70, 20]);
    for kind in [SchedulerKind::Fifo, SchedulerKind::Solitude] {
        let make = || {
            (0..spec.len())
                .map(|i| Alg1Node::new(spec.id(i), spec.cw_port(i)))
                .collect::<Vec<Alg1Node>>()
        };
        let mut sim: Simulation<Pulse, Alg1Node> =
            Simulation::with_backend(spec.wiring(), make(), kind.build(0), QueueBackend::Counter);
        sim.set_batch(true);
        sim.enable_metrics();
        sim.start();
        let channel = sim.ready_channels()[0];
        sim.inject_run(channel, Pulse, 5_000);
        let report = sim.run(Budget::steps(200_000));
        assert_eq!(report.outcome, Outcome::BudgetExhausted, "{kind}");
        let metrics = sim.metrics().expect("metrics enabled");
        assert!(
            metrics.transitions * 2 < metrics.pulses_delivered,
            "{kind}: {} transitions for {} pulses — nothing fused",
            metrics.transitions,
            metrics.pulses_delivered
        );
    }
}

/// Stepwise agreement: drive a batched simulation transition by transition
/// and advance a per-pulse twin by each batch's pulse count; the two
/// configurations must hash identically at *every* batch boundary.
#[test]
fn fingerprints_agree_at_every_batch_boundary() {
    let spec = RingSpec::oriented(vec![5, 9, 2, 7]);
    let make = || {
        (0..spec.len())
            .map(|i| Alg1Node::new(spec.id(i), spec.cw_port(i)))
            .collect::<Vec<Alg1Node>>()
    };
    for kind in SchedulerKind::ALL {
        let mut batched: Simulation<Pulse, Alg1Node> =
            Simulation::with_backend(spec.wiring(), make(), kind.build(3), QueueBackend::Counter);
        let mut twin: Simulation<Pulse, Alg1Node> =
            Simulation::with_backend(spec.wiring(), make(), kind.build(3), QueueBackend::Counter);
        batched.start();
        twin.start();
        assert_eq!(batched.fingerprint(), twin.fingerprint(), "under {kind}");
        while let Some((_, count)) = batched.step_batch(u64::MAX) {
            for i in 0..count {
                assert!(
                    twin.step().is_some(),
                    "under {kind}: twin quiescent {i} pulses into a {count}-pulse batch"
                );
            }
            assert_eq!(
                batched.fingerprint(),
                twin.fingerprint(),
                "under {kind} at a batch boundary"
            );
        }
        assert!(twin.step().is_none(), "under {kind}: twin has pulses left");
    }
}

/// The budget is pinned to pulses: cutting a run anywhere — including in
/// the middle of what batching would fuse — lands both modes on the same
/// configuration.
#[test]
fn budget_boundaries_are_pulse_exact() {
    let spec = RingSpec::oriented(vec![4, 9, 2]);
    let make = || {
        (0..spec.len())
            .map(|i| Alg1Node::new(spec.id(i), spec.cw_port(i)))
            .collect::<Vec<Alg1Node>>()
    };
    let plan = FaultPlan::new();
    for max_steps in [1u64, 2, 3, 5, 8, 13, 21, 1000] {
        let cfg = Config {
            kind: SchedulerKind::Fifo,
            seed: 0,
            backend: QueueBackend::Counter,
            plan: &plan,
            latency: None,
            budget: Budget::steps(max_steps),
        };
        let off = observe(&spec, &make, &cfg, false);
        let on = observe(&spec, &make, &cfg, true);
        assert_eq!(off, on, "budget {max_steps}");
        assert_eq!(on.stats.steps.min(max_steps), on.stats.steps);
    }
}

/// Record→replay crosses batch modes in both directions: the recorded
/// schedules are byte-identical, and a schedule recorded in either mode
/// replays to the same execution in either mode.
#[test]
fn record_replay_crosses_batch_modes() {
    let spec = RingSpec::oriented(vec![6, 2, 9, 4]);
    let make = || {
        (0..spec.len())
            .map(|i| Alg1Node::new(spec.id(i), spec.cw_port(i)))
            .collect::<Vec<Alg1Node>>()
    };
    let plan = FaultPlan::new();
    for kind in [
        SchedulerKind::Fifo,
        SchedulerKind::Random,
        SchedulerKind::Solitude,
    ] {
        let cfg = Config {
            kind,
            seed: 21,
            backend: QueueBackend::Counter,
            plan: &plan,
            latency: None,
            budget: Budget::default(),
        };
        // Record in both modes: identical schedules and reports.
        let mut rec_off = build(&spec, &make, &cfg, false);
        let (report_off, schedule_off) = rec_off.run_recorded(cfg.budget);
        let mut rec_on = build(&spec, &make, &cfg, true);
        let (report_on, schedule_on) = rec_on.run_recorded(cfg.budget);
        assert_eq!(report_off, report_on, "{kind}: recorded reports differ");
        assert_eq!(
            schedule_off.picks(),
            schedule_on.picks(),
            "{kind}: batch recording must log one pick per pulse"
        );
        assert_eq!(rec_off.fingerprint(), rec_on.fingerprint(), "{kind}");

        // Replay each schedule in the opposite mode (and the same mode, as
        // a control): every combination reproduces the original execution.
        for (sched_label, schedule) in [("off", &schedule_off), ("on", &schedule_on)] {
            for replay_batch in [false, true] {
                let mut replayer = build(&spec, &make, &cfg, replay_batch);
                let replay_report = replayer.replay(schedule, cfg.budget);
                assert_eq!(
                    replay_report, report_off,
                    "{kind}: schedule {sched_label} replayed batch={replay_batch}"
                );
                assert_eq!(
                    replayer.fingerprint(),
                    rec_off.fingerprint(),
                    "{kind}: schedule {sched_label} replayed batch={replay_batch}"
                );
                assert_eq!(replayer.stats(), rec_off.stats(), "{kind}");
            }
        }
    }
}

/// A spurious 10⁶-pulse burst injected into one channel is absorbed
/// identically in both modes — and the batched run crosses it in far
/// fewer transitions.
#[test]
fn injected_bursts_are_mode_equivalent() {
    let spec = RingSpec::oriented(vec![2, 5]);
    let make = || {
        (0..spec.len())
            .map(|i| Alg1Node::new(spec.id(i), spec.cw_port(i)))
            .collect::<Vec<Alg1Node>>()
    };
    let burst: u64 = 1_000_000;
    let mut results = Vec::new();
    for batch in [false, true] {
        let mut sim: Simulation<Pulse, Alg1Node> = Simulation::with_backend(
            spec.wiring(),
            make(),
            SchedulerKind::Fifo.build(0),
            QueueBackend::Counter,
        );
        sim.set_batch(batch);
        sim.enable_metrics();
        sim.start();
        let channel = sim.ready_channels()[0];
        sim.inject_run(channel, Pulse, burst);
        let report = sim.run(Budget::steps(10 * burst));
        let metrics = sim.metrics().expect("metrics enabled");
        results.push((
            report,
            sim.fingerprint(),
            sim.stats().clone(),
            metrics.transitions,
        ));
    }
    let (off, on) = (&results[0], &results[1]);
    assert_eq!(off.0, on.0, "reports");
    assert_eq!(off.1, on.1, "fingerprints");
    assert_eq!(off.2, on.2, "stats");
    assert!(
        on.3 * 100 < off.3,
        "batched burst used {} transitions vs {} per-pulse — expected >100× fusion",
        on.3,
        off.3
    );
}
