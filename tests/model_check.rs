//! Exhaustive model checking of the paper's algorithms on small instances:
//! unlike the sampled adversaries, these tests enumerate **every** possible
//! asynchronous schedule and verify the theorems in each reachable
//! configuration.

use content_oblivious::core::{Alg1Node, Alg2Node, Alg3Node, IdScheme, Role};
use content_oblivious::net::explore::{explore, ExploreLimits};
use content_oblivious::net::RingSpec;

fn check_alg2_all_schedules(ids: Vec<u64>) {
    let spec = RingSpec::oriented(ids.clone());
    let n = spec.len() as u64;
    let id_max = spec.id_max();
    let leader_pos = spec.max_position();
    let report = explore(
        &spec.wiring(),
        || {
            (0..spec.len())
                .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
                .collect()
        },
        |state| {
            // Safety in every reachable configuration: Lemma 6 for the CW
            // instance and Corollary 14.
            for (i, node) in state.nodes.iter().enumerate() {
                let (id, rho, sigma) = (node.id(), node.rho_cw(), node.sigma_cw());
                let expected = if rho < id { rho + 1 } else { rho };
                if sigma != expected {
                    return Err(format!("Lemma 6 at node {i}: ρ={rho} σ={sigma} ID={id}"));
                }
                if rho > state.nodes.iter().map(Alg2Node::id).max().unwrap() {
                    return Err(format!("Corollary 14 at node {i}"));
                }
            }
            Ok(())
        },
        |state| {
            // Every quiescent configuration must be the unique correct one:
            // all terminated, right leader, exact Theorem 1 count.
            if !state.terminated.iter().all(|&t| t) {
                return Err("quiescent but not all terminated".into());
            }
            for (i, node) in state.nodes.iter().enumerate() {
                let want = if i == leader_pos {
                    Role::Leader
                } else {
                    Role::NonLeader
                };
                if node.role() != want {
                    return Err(format!("node {i} ended as {:?}", node.role()));
                }
            }
            if state.sent != n * (2 * id_max + 1) {
                return Err(format!("sent {} ≠ {}", state.sent, n * (2 * id_max + 1)));
            }
            Ok(())
        },
        ExploreLimits::default(),
    );
    assert!(report.complete, "{ids:?}: exploration incomplete");
    assert!(
        report.violations.is_empty(),
        "{ids:?}: {:?}",
        report.violations
    );
    assert!(report.quiescent_configs >= 1, "{ids:?}");
}

#[test]
fn alg2_exhaustive_tiny_rings() {
    // Every schedule of every listed instance satisfies Theorem 1.
    check_alg2_all_schedules(vec![1]);
    check_alg2_all_schedules(vec![3]);
    check_alg2_all_schedules(vec![1, 2]);
    check_alg2_all_schedules(vec![2, 1]);
    check_alg2_all_schedules(vec![1, 3]);
    check_alg2_all_schedules(vec![3, 1]);
    check_alg2_all_schedules(vec![2, 3]);
}

#[test]
fn alg2_exhaustive_three_ring() {
    check_alg2_all_schedules(vec![1, 2, 3]);
    check_alg2_all_schedules(vec![3, 1, 2]);
    check_alg2_all_schedules(vec![2, 3, 1]);
}

#[test]
fn alg1_exhaustive_stabilization() {
    // Algorithm 1 on all schedules: quiescence implies everyone at ID_max
    // with exactly the max-ID node(s) holding Leader (incl. duplicates —
    // Lemma 16).
    for ids in [vec![1u64, 2], vec![2, 4, 3], vec![3, 3, 1]] {
        let spec = RingSpec::oriented(ids.clone());
        let id_max = spec.id_max();
        let report = explore(
            &spec.wiring(),
            || {
                (0..spec.len())
                    .map(|i| Alg1Node::new(spec.id(i), spec.cw_port(i)))
                    .collect()
            },
            |_| Ok(()),
            |state| {
                for (i, node) in state.nodes.iter().enumerate() {
                    if node.rho_cw() != id_max || node.sigma_cw() != id_max {
                        return Err(format!("node {i} counters not at ID_max"));
                    }
                    let want = if node.id() == id_max {
                        Role::Leader
                    } else {
                        Role::NonLeader
                    };
                    if node.role() != want {
                        return Err(format!("node {i}: {:?}", node.role()));
                    }
                }
                Ok(())
            },
            ExploreLimits::default(),
        );
        assert!(report.complete, "{ids:?}");
        assert!(
            report.violations.is_empty(),
            "{ids:?}: {:?}",
            report.violations
        );
    }
}

#[test]
fn alg3_exhaustive_orientation() {
    // Algorithm 3 (improved) on a flipped 2-ring: all schedules stabilize
    // to one leader and a consistent orientation, with the Theorem 2 count.
    for flips in [vec![false, false], vec![true, false], vec![true, true]] {
        let spec = RingSpec::with_flips(vec![1, 2], flips.clone());
        let n = 2u64;
        let id_max = 2u64;
        let report = explore(
            &spec.wiring(),
            || {
                (0..2)
                    .map(|i| Alg3Node::new(spec.id(i), IdScheme::Improved))
                    .collect()
            },
            |_| Ok(()),
            |state| {
                let outs: Vec<_> = state
                    .nodes
                    .iter()
                    .map(|nd| nd.output().ok_or("undecided at quiescence"))
                    .collect::<Result<_, _>>()?;
                let leaders = outs.iter().filter(|o| o.role == Role::Leader).count();
                if leaders != 1 || outs[1].role != Role::Leader {
                    return Err(format!("leaders: {leaders}"));
                }
                let all_cw = (0..2).all(|i| outs[i].cw_port == spec.cw_port(i));
                let all_ccw = (0..2).all(|i| outs[i].cw_port == spec.ccw_port(i));
                if !(all_cw || all_ccw) {
                    return Err("inconsistent orientation".into());
                }
                if state.sent != n * (2 * id_max + 1) {
                    return Err(format!("sent {}", state.sent));
                }
                Ok(())
            },
            ExploreLimits::default(),
        );
        assert!(report.complete, "{flips:?}");
        assert!(
            report.violations.is_empty(),
            "{flips:?}: {:?}",
            report.violations
        );
    }
}
