//! Empirical Section 6: solitude patterns, Lemma 22/23, Corollary 24, and
//! the Theorem 4/20 lower bound against our algorithms' measured costs.

use content_oblivious::core::lower_bound::{
    lower_bound_messages, max_prefix_group, patterns_unique, solitude_pattern_alg1,
    solitude_pattern_alg2, solitude_pattern_alg3, SolitudePattern,
};
use content_oblivious::core::{runner, IdScheme};
use content_oblivious::net::{RingSpec, SchedulerKind};

fn alg2_patterns(k: u64) -> Vec<SolitudePattern> {
    (1..=k)
        .map(|id| solitude_pattern_alg2(id).expect("terminates"))
        .collect()
}

#[test]
fn lemma22_patterns_unique_across_algorithms() {
    let a2 = alg2_patterns(256);
    assert!(patterns_unique(&a2));
    let a1: Vec<_> = (1..=256)
        .map(|id| solitude_pattern_alg1(id).expect("quiesces"))
        .collect();
    assert!(patterns_unique(&a1));
    let a3: Vec<_> = (1..=128)
        .map(|id| solitude_pattern_alg3(id, IdScheme::Improved).expect("quiesces"))
        .collect();
    assert!(patterns_unique(&a3));
}

#[test]
fn corollary24_pigeonhole_bound_holds() {
    // For any k patterns and any n ≤ k, some n patterns share a prefix of
    // length ≥ ⌊log2(k/n)⌋.
    let patterns = alg2_patterns(64);
    for n in [1usize, 2, 4, 8, 16, 32, 64] {
        let (s, group) = max_prefix_group(&patterns, n);
        let bound = (64u64 / n as u64).ilog2() as usize;
        assert!(
            s >= bound,
            "n={n}: shared prefix {s} below pigeonhole bound {bound}"
        );
        assert_eq!(group.len(), n);
    }
}

#[test]
fn theorem4_lower_bound_below_measured_cost() {
    // Measured messages of Algorithm 2 vs the universal lower bound, over a
    // sweep of (n, ID_max): the bound must always hold, and the ratio
    // reveals the gap the paper leaves open.
    for n in [1u64, 2, 4, 8, 16] {
        for exp in [6u32, 10, 14] {
            let id_max = 1u64 << exp;
            if id_max < n {
                continue;
            }
            // Ring: IDs 1..n-1 plus one id_max (worst-case single big ID).
            let mut ids: Vec<u64> = (1..n).collect();
            ids.push(id_max);
            let spec = RingSpec::oriented(ids);
            let report = runner::run_alg2(&spec, SchedulerKind::Fifo, 0);
            let lower = lower_bound_messages(id_max, n);
            assert!(
                report.total_messages >= lower,
                "n={n} id_max={id_max}: measured {} < bound {lower}",
                report.total_messages
            );
            // Theorem 1's exact count.
            assert_eq!(report.total_messages, n * (2 * id_max + 1));
        }
    }
}

#[test]
fn lower_bound_unbounded_in_id_universe() {
    // Theorem 20's closing remark: even for n = 1, the bound grows without
    // limit as the ID universe grows.
    let mut last = 0;
    for exp in [4u32, 8, 16, 32, 63] {
        let bound = lower_bound_messages(1u64 << exp, 1);
        assert!(bound > last);
        last = bound;
    }
    assert_eq!(last, 63);
}

#[test]
fn alg2_pattern_structure_encodes_id_in_unary() {
    // The pattern 0^i 1^(i+1) is why our algorithm pays Θ(ID_max): the
    // pattern length is 2·ID + 1, far above the log₂(ID) information bound
    // — consistent with (and not contradicting) Theorem 4.
    for id in [1u64, 3, 17, 200] {
        let p = solitude_pattern_alg2(id).unwrap();
        assert_eq!(p.len() as u64, 2 * id + 1);
    }
}
