//! Registry contract: the dispatch seam every driver layer (CLI, fleet,
//! bench tables) resolves protocols through (DESIGN.md §12).
//!
//! Three families of guarantees:
//!
//! 1. **Name round trips** — every entry's canonical name parses back to the
//!    same entry through `ProtocolChoice`, and the registry's lookup is total
//!    over its own `names()`.
//! 2. **Typed capability gating** — asking for a capability an entry lacks
//!    yields `RegistryError::Unsupported` naming the protocols that *do*
//!    support it; unknown names yield `RegistryError::Unknown` listing the
//!    whole catalogue.
//! 3. **Determinism through the seam** — record → replay is byte-identical
//!    (`RunReport`, fingerprint, leaders) for every entry under every
//!    scheduler, mirroring `tests/record_replay.rs` but driven exclusively
//!    through `ProtocolSpec`, including the Chang–Roberts onboarding and a
//!    shrink run over a classic baseline.

use co_bench::protocols;
use content_oblivious::core::registry::{Capability, DriveOpts, RegistryError};
use content_oblivious::net::{RingSpec, Schedule, SchedulerKind};

#[test]
fn every_entry_round_trips_through_name_lookup() {
    let reg = protocols();
    for entry in reg.entries() {
        let found = reg.get(entry.name()).expect("lookup is total over names");
        assert_eq!(found.name(), entry.name());
        assert_eq!(found.layer(), entry.layer());
        for cap in Capability::ALL {
            assert_eq!(
                found.supports(cap),
                entry.supports(cap),
                "{} / {cap}",
                entry.name()
            );
        }
    }
    assert_eq!(reg.names().len(), reg.entries().len());
}

#[test]
fn unknown_names_list_the_catalogue() {
    let err = protocols()
        .get("paxos")
        .expect_err("paxos is not on a ring");
    let RegistryError::Unknown { name, known } = &err else {
        panic!("expected Unknown, got {err:?}")
    };
    assert_eq!(name, "paxos");
    assert_eq!(known, &protocols().names());
    let rendered = err.to_string();
    assert!(rendered.contains("unknown protocol 'paxos'"), "{rendered}");
    assert!(rendered.contains("chang-roberts"), "{rendered}");
}

#[test]
fn capability_gates_return_typed_errors() {
    // Fleet rings are Pulse-only: a content-carrying baseline must be
    // refused with the list of protocols that can run there.
    let err = protocols()
        .fleet("chang-roberts")
        .expect_err("classic protocols cannot join the fleet");
    let RegistryError::Unsupported {
        name,
        capability,
        supported,
    } = &err
    else {
        panic!("expected Unsupported, got {err:?}")
    };
    assert_eq!(*name, "chang-roberts");
    assert_eq!(*capability, Capability::Fleet);
    assert_eq!(supported, &protocols().supporting(Capability::Fleet));
    assert!(err.to_string().contains("does not support fleet"));

    // Same for explore (schedule enumeration is Pulse-only) and for shrink
    // on a protocol with no monitor (alg1 stabilizes, never terminates).
    assert!(protocols().explore("franklin").is_err());
    assert!(protocols().shrink("alg1").is_err());
    assert!(matches!(
        protocols().require("nope", Capability::Shrink),
        Err(RegistryError::Unknown { .. })
    ));
}

#[test]
fn every_entry_replays_byte_identically_through_the_spec() {
    let spec = RingSpec::oriented(vec![3, 1, 4, 2]);
    for entry in protocols().entries() {
        for kind in SchedulerKind::ALL {
            for seed in [0u64, 7, 42] {
                let opts = DriveOpts::new(kind, seed);
                let rec = entry.record(&spec, &opts);
                let rep = entry.replay(&spec, &opts, &rec.picks);
                let tag = format!("{} under {kind} seed {seed}", entry.name());
                assert_eq!(rec.report, rep.report, "{tag}: RunReport differs");
                assert_eq!(rec.fingerprint, rep.fingerprint, "{tag}: fingerprint");
                assert_eq!(rec.leaders, rep.leaders, "{tag}: leaders");

                // Round-trip the schedule through its textual form too: the
                // CLI's `record` output must feed `replay --schedule`.
                let reparsed: Schedule = rec.picks.to_string().parse().expect("schedule parses");
                assert_eq!(rec.picks, reparsed, "{tag}: Display/FromStr round trip");
            }
        }
    }
}

#[test]
fn chang_roberts_records_replays_and_shrinks_through_the_registry() {
    // The onboarding proof at the integration level: the classic protocol
    // joins the full determinism toolkit via its registry entry alone.
    let spec = RingSpec::oriented(vec![4, 9, 2, 7, 5]);
    let entry = protocols().get("chang-roberts").expect("registered");

    for kind in SchedulerKind::ALL {
        let opts = DriveOpts::new(kind, 23);
        let rec = entry.record(&spec, &opts);
        let rep = entry.replay(&spec, &opts, &rec.picks);
        assert_eq!(rec.report, rep.report, "{kind}");
        assert_eq!(rec.fingerprint, rep.fingerprint, "{kind}");
        // Position 1 holds the maximum ID; Chang–Roberts elects it.
        assert_eq!(rec.leaders, vec![1], "{kind}");
    }

    // The shrink toolkit engages (via the unique-leader monitor) and finds
    // nothing to shrink on a correct baseline.
    let driver = entry.shrink_driver().expect("chang-roberts is monitored");
    for kind in SchedulerKind::ALL {
        for seed in 0..4 {
            assert!(
                driver.hunt(&spec, kind, seed).is_none(),
                "correct baseline must not violate unique leadership ({kind}, seed {seed})"
            );
        }
    }
}
