//! The general-graph substrate under randomized topologies: the
//! content-oblivious flood-echo wave terminates quiescently with exactly
//! `2m` pulses on arbitrary connected multigraphs.
//!
//! Topologies are drawn from a seeded [`StdRng`] grid (the build is fully
//! offline), so every failure reproduces from the printed case number.

use content_oblivious::core::general::{EchoNode, EchoState};
use content_oblivious::net::graph::MultiGraph;
use content_oblivious::net::multiport::{GraphOutcome, GraphSim, GraphWiring};
use content_oblivious::net::{Budget, Pulse, SchedulerKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random connected multigraph: a random spanning tree plus extra edges
/// (parallel edges and self-loops welcome).
fn connected_graph(rng: &mut StdRng) -> MultiGraph {
    let n = rng.gen_range(2usize..=12);
    let extras = rng.gen_range(0usize..=8);
    let mut g = MultiGraph::new(n);
    // Random tree: attach each vertex to an earlier one.
    for v in 1..n {
        g.add_edge(rng.gen_range(0..v), v);
    }
    for _ in 0..extras {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        g.add_edge(u, v);
    }
    g
}

/// The wave covers every node and uses exactly one pulse per directed
/// edge, under every adversary.
#[test]
fn echo_wave_universal() {
    for case in 0u64..16 {
        for kind in SchedulerKind::ALL {
            let mut rng = StdRng::seed_from_u64(0x6EAF + case);
            let graph = connected_graph(&mut rng);
            let n = graph.vertex_count();
            let root = rng.gen_range(0..n);
            let seed = rng.gen_range(0u64..500);
            let wiring = GraphWiring::from_graph(&graph);
            let nodes = (0..n).map(|v| EchoNode::new(v == root)).collect();
            let mut sim: GraphSim<Pulse, EchoNode> = GraphSim::new(wiring, nodes, kind.build(seed));
            let report = sim.run(Budget::steps(1_000_000));
            assert_eq!(
                report.outcome,
                GraphOutcome::QuiescentTerminated,
                "case {case} under {kind}"
            );
            assert_eq!(
                report.total_sent,
                2 * graph.edge_count() as u64,
                "case {case} under {kind}"
            );
            for v in 0..n {
                assert_eq!(sim.node(v).state(), EchoState::Done, "case {case} node {v}");
            }
        }
    }
}

/// Bridge detection agrees with a brute-force definition: an edge is a
/// bridge iff removing it disconnects its endpoints.
#[test]
fn bridges_match_bruteforce() {
    for case in 0u64..128 {
        let mut rng = StdRng::seed_from_u64(0xB41D + case);
        let graph = connected_graph(&mut rng);
        let bridges: std::collections::BTreeSet<usize> = graph.bridges().into_iter().collect();
        for e in 0..graph.edge_count() {
            let (u, v) = graph.edge(e);
            // Rebuild without edge e and check connectivity of u and v.
            let mut cut = MultiGraph::new(graph.vertex_count());
            for other in (0..graph.edge_count()).filter(|&o| o != e) {
                let (a, b) = graph.edge(other);
                cut.add_edge(a, b);
            }
            let connected = {
                // BFS from u.
                let mut adj = vec![Vec::new(); cut.vertex_count()];
                for i in 0..cut.edge_count() {
                    let (a, b) = cut.edge(i);
                    adj[a].push(b);
                    adj[b].push(a);
                }
                let mut seen = vec![false; cut.vertex_count()];
                let mut stack = vec![u];
                seen[u] = true;
                while let Some(x) = stack.pop() {
                    for &y in &adj[x] {
                        if !seen[y] {
                            seen[y] = true;
                            stack.push(y);
                        }
                    }
                }
                seen[v]
            };
            assert_eq!(
                bridges.contains(&e),
                !connected,
                "case {case} edge {e} ({u}, {v})"
            );
        }
    }
}
