//! The general-graph substrate under randomized topologies: the
//! content-oblivious flood-echo wave terminates quiescently with exactly
//! `2m` pulses on arbitrary connected multigraphs.

use content_oblivious::core::general::{EchoNode, EchoState};
use content_oblivious::net::graph::MultiGraph;
use content_oblivious::net::multiport::{GraphOutcome, GraphSim, GraphWiring};
use content_oblivious::net::{Pulse, SchedulerKind};
use proptest::prelude::*;

/// A random connected multigraph: a random spanning tree plus extra edges.
fn connected_graph() -> impl Strategy<Value = MultiGraph> {
    (2usize..=12, any::<u64>(), 0usize..=8).prop_map(|(n, seed, extras)| {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = MultiGraph::new(n);
        // Random tree: attach each vertex to an earlier one.
        for v in 1..n {
            g.add_edge(rng.gen_range(0..v), v);
        }
        for _ in 0..extras {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            g.add_edge(u, v); // parallel edges and self-loops welcome
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The wave covers every node and uses exactly one pulse per directed
    /// edge, under every adversary.
    #[test]
    fn echo_wave_universal(
        graph in connected_graph(),
        root_pick in any::<prop::sample::Index>(),
        kind in prop::sample::select(SchedulerKind::ALL.to_vec()),
        seed in 0u64..500,
    ) {
        let n = graph.vertex_count();
        let root = root_pick.index(n);
        let wiring = GraphWiring::from_graph(&graph);
        let nodes = (0..n).map(|v| EchoNode::new(v == root)).collect();
        let mut sim: GraphSim<Pulse, EchoNode> = GraphSim::new(wiring, nodes, kind.build(seed));
        let report = sim.run(1_000_000);
        prop_assert_eq!(report.outcome, GraphOutcome::QuiescentTerminated);
        prop_assert_eq!(report.total_sent, 2 * graph.edge_count() as u64);
        for v in 0..n {
            prop_assert_eq!(sim.node(v).state(), EchoState::Done, "node {}", v);
        }
    }

    /// Bridge detection agrees with a brute-force definition: an edge is a
    /// bridge iff removing it disconnects its endpoints.
    #[test]
    fn bridges_match_bruteforce(graph in connected_graph()) {
        let bridges: std::collections::BTreeSet<usize> =
            graph.bridges().into_iter().collect();
        for e in 0..graph.edge_count() {
            let (u, v) = graph.edge(e);
            // Rebuild without edge e and check connectivity of u and v.
            let mut cut = MultiGraph::new(graph.vertex_count());
            for other in (0..graph.edge_count()).filter(|&o| o != e) {
                let (a, b) = graph.edge(other);
                cut.add_edge(a, b);
            }
            let connected = {
                // BFS from u.
                let mut adj = vec![Vec::new(); cut.vertex_count()];
                for i in 0..cut.edge_count() {
                    let (a, b) = cut.edge(i);
                    adj[a].push(b);
                    adj[b].push(a);
                }
                let mut seen = vec![false; cut.vertex_count()];
                let mut stack = vec![u];
                seen[u] = true;
                while let Some(x) = stack.pop() {
                    for &y in &adj[x] {
                        if !seen[y] {
                            seen[y] = true;
                            stack.push(y);
                        }
                    }
                }
                seen[v]
            };
            prop_assert_eq!(
                bridges.contains(&e),
                !connected,
                "edge {} ({}, {})", e, u, v
            );
        }
    }
}
