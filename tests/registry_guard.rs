//! Seam guard: protocol dispatch happens in the registry, nowhere else.
//!
//! Before the registry, every driver layer matched on its own protocol enum
//! (`ProtocolChoice::Alg1 => …` in the CLI, `FleetProtocol::Alg1 => …` in
//! the bench crate), so onboarding a protocol meant editing a pyramid of
//! match arms per layer. This test pins the refactor: no source file in
//! `crates/cli` or `crates/bench` may name a per-protocol variant again —
//! they resolve `ProtocolSpec` entries through the registry instead.

use std::fs;
use std::path::{Path, PathBuf};

/// Substrings whose reappearance means a dispatch site has leaked back out
/// of the registry seam.
const FORBIDDEN: &[&str] = &[
    "ProtocolChoice::Alg",
    "ProtocolChoice::Ungated",
    "FleetProtocol::",
];

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).expect("crate source dir exists") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn driver_layers_contain_no_per_protocol_match_arms() {
    // tests/ lives at the workspace root, one level above crates/.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut sources = Vec::new();
    for layer in ["crates/cli/src", "crates/bench/src"] {
        rust_sources(&root.join(layer), &mut sources);
    }
    assert!(
        sources.len() >= 2,
        "guard must actually see the driver layers, found {sources:?}"
    );

    let mut leaks = Vec::new();
    for path in &sources {
        let text = fs::read_to_string(path).expect("source is UTF-8");
        for (lineno, line) in text.lines().enumerate() {
            for needle in FORBIDDEN {
                if line.contains(needle) {
                    leaks.push(format!("{}:{}: {needle}", path.display(), lineno + 1));
                }
            }
        }
    }
    assert!(
        leaks.is_empty(),
        "per-protocol dispatch leaked out of the registry:\n{}",
        leaks.join("\n")
    );
}
