//! Extended cross-crate coverage: content-carrying protocols on the
//! threaded runtime, compositions under randomized configurations,
//! phase-switching adversaries, and a deeper (ignored-by-default) model
//! check.

use content_oblivious::classic::chang_roberts::{ChangRobertsNode, CrMsg};
use content_oblivious::compose::pipeline::elect_then_replicate;
use content_oblivious::core::{runner, Role};
use content_oblivious::net::sched::{
    LifoScheduler, PhaseSwitchScheduler, RecordingScheduler, ReplayScheduler,
    StarveDirectionScheduler,
};
use content_oblivious::net::threaded::{run_threaded, ThreadedOptions, ThreadedOutcome};
use content_oblivious::net::{
    Budget, Direction, Protocol, Pulse, RingSpec, SchedulerKind, Simulation,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

#[test]
fn chang_roberts_runs_on_real_threads() {
    // The threaded runtime is generic over message types, not just pulses.
    let spec = RingSpec::oriented(vec![4, 11, 2, 8]);
    let nodes: Vec<ChangRobertsNode> = (0..4)
        .map(|i| ChangRobertsNode::new(spec.id(i), spec.cw_port(i)))
        .collect();
    let report = run_threaded::<CrMsg, _>(
        &spec.wiring(),
        nodes,
        &ThreadedOptions {
            max_jitter_us: 30,
            ..ThreadedOptions::default()
        },
    );
    assert_eq!(report.outcome, ThreadedOutcome::AllTerminated);
    let roles: Vec<Option<Role>> = report.nodes.iter().map(Protocol::output).collect();
    assert_eq!(roles[1], Some(Role::Leader));
    for i in [0usize, 2, 3] {
        assert_eq!(roles[i], Some(Role::NonLeader), "node {i}");
    }
}

#[test]
fn phase_switch_adversary_preserves_theorem1() {
    // Torture schedule: FIFO while the CW instance races, then starve CW
    // entirely; Theorem 1 must be unaffected.
    let spec = RingSpec::oriented(vec![5, 12, 3, 9]);
    for switch_at in [0u64, 5, 25, 100] {
        let scheduler = Box::new(PhaseSwitchScheduler::new(
            Box::new(LifoScheduler::new()),
            Box::new(StarveDirectionScheduler::new(Direction::Cw)),
            switch_at,
        ));
        let report = runner::run_alg2_scheduler(&spec, scheduler);
        assert!(report.quiescently_terminated(), "switch at {switch_at}");
        assert_eq!(report.leader, Some(1), "switch at {switch_at}");
        assert_eq!(
            report.total_messages,
            4 * (2 * 12 + 1),
            "switch at {switch_at}"
        );
    }
}

#[test]
fn recorded_schedule_replays_identically() {
    // Record a random adversary's schedule, then replay it: both runs must
    // produce identical step counts and node states.
    let spec = RingSpec::oriented(vec![3, 7, 5]);
    let make_nodes = || {
        (0..3)
            .map(|i| content_oblivious::core::Alg2Node::new(spec.id(i), spec.cw_port(i)))
            .collect::<Vec<_>>()
    };
    let (recording, log) = RecordingScheduler::new(SchedulerKind::Random.build(99));
    let mut original: Simulation<Pulse, _> =
        Simulation::new(spec.wiring(), make_nodes(), Box::new(recording));
    let first = original.run(Budget::default());

    let replay = ReplayScheduler::new(log.borrow().clone());
    let mut replayed: Simulation<Pulse, _> =
        Simulation::new(spec.wiring(), make_nodes(), Box::new(replay));
    let second = replayed.run(Budget::default());

    assert_eq!(first, second);
    for i in 0..3 {
        assert_eq!(original.node(i).role(), replayed.node(i).role(), "node {i}");
        assert_eq!(
            original.node(i).rho_ccw(),
            replayed.node(i).rho_ccw(),
            "node {i}"
        );
    }
}

/// Replicated-counter pipelines converge for arbitrary scripts, ring
/// shapes, and adversaries.
#[test]
fn replication_converges_universally() {
    for case in 0u64..24 {
        let mut rng = StdRng::seed_from_u64(0x5EED + case);
        let k = rng.gen_range(2usize..=8);
        let mut set = BTreeSet::new();
        while set.len() < k {
            set.insert(rng.gen_range(1u64..=60));
        }
        let ids: Vec<u64> = set.into_iter().collect();
        let script: Vec<i64> = (0..rng.gen_range(0usize..=6))
            .map(|_| rng.gen_range(0u64..=200) as i64 - 100)
            .collect();
        let kind = SchedulerKind::ALL[case as usize % SchedulerKind::ALL.len()];
        let seed = rng.gen_range(0u64..500);
        let spec = RingSpec::oriented(ids);
        let out = elect_then_replicate(&spec, &script, kind, seed);
        assert!(out.quiescently_terminated, "case {case} under {kind}");
        let expected: i64 = script.iter().sum();
        assert_eq!(out.outputs, vec![Some(expected); spec.len()], "case {case}");
        assert_eq!(out.leader, Some(spec.max_position()), "case {case}");
    }
}

/// Deeper model check: configuration deduplication keeps even 4- and
/// 5-node instances tractable.
#[test]
fn alg2_exhaustive_larger_rings() {
    use content_oblivious::core::Alg2Node;
    use content_oblivious::net::explore::{explore, ExploreLimits};
    for ids in [vec![1u64, 2, 3, 4], vec![4, 2, 1, 3], vec![2, 4, 1, 5, 3]] {
        let spec = RingSpec::oriented(ids.clone());
        let leader = spec.max_position();
        let predicted = spec.len() as u64 * (2 * spec.id_max() + 1);
        let report = explore(
            &spec.wiring(),
            || {
                (0..spec.len())
                    .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
                    .collect()
            },
            |_| Ok(()),
            |state| {
                let ok = state.terminated.iter().all(|&t| t)
                    && state
                        .nodes
                        .iter()
                        .enumerate()
                        .all(|(i, n)| (n.role() == Role::Leader) == (i == leader))
                    && state.sent == predicted;
                if ok {
                    Ok(())
                } else {
                    Err("bad quiescent configuration".into())
                }
            },
            ExploreLimits {
                max_configs: 50_000_000,
                max_depth: 1_000_000,
                max_state_bytes: usize::MAX,
            },
        );
        assert!(report.complete, "{ids:?}");
        assert!(
            report.violations.is_empty(),
            "{ids:?}: {:?}",
            report.violations
        );
        assert!(report.configs > 100, "{ids:?}: suspiciously small space");
    }
}
