//! Acceptance for the parallel frontier-sharded explorer.
//!
//! Three properties gate the engine:
//!
//! 1. with the exact backend it is a drop-in replacement for the sequential
//!    explorer — identical configuration counts, quiescent counts, byte
//!    accounting and violation verdicts, at every worker count;
//! 2. the bloom backend never *invents* a violation and — across a seeded
//!    sweep of random faulted instances — never misses one the exact backend
//!    finds (false positives can only prune already-visited states);
//! 3. the n=4 Algorithm 1 sweep of the PR acceptance criterion completes.

use content_oblivious::core::ablation::UngatedAlg2Node;
use content_oblivious::core::{Alg1Node, Alg2Node, Alg3Node, IdScheme, Role};
use content_oblivious::net::explore::{
    explore, explore_parallel, ExploreConfig, ExploreLimits, ExploreState,
};
use content_oblivious::net::{DedupKind, FaultPlan, RingSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn alg2_nodes(spec: &RingSpec) -> Vec<Alg2Node> {
    (0..spec.len())
        .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
        .collect()
}

fn no_check<P>(_: &ExploreState<P>) -> Result<(), String> {
    Ok(())
}

#[test]
fn parallel_exact_is_a_drop_in_for_the_sequential_explorer() {
    // One protocol per snapshot-capable family, including the deliberately
    // broken ablation (its state space is infinite, so both engines must
    // agree they truncated).
    let spec = RingSpec::oriented(vec![3u64, 1, 2]);

    let seq_alg1 = explore(
        &spec.wiring(),
        || {
            (0..spec.len())
                .map(|i| Alg1Node::new(spec.id(i), spec.cw_port(i)))
                .collect::<Vec<_>>()
        },
        no_check,
        no_check,
        ExploreLimits::default(),
    );
    let seq_alg2 = explore(
        &spec.wiring(),
        || alg2_nodes(&spec),
        no_check,
        no_check,
        ExploreLimits::default(),
    );
    let seq_alg3 = explore(
        &spec.wiring(),
        || {
            (0..spec.len())
                .map(|i| Alg3Node::new(spec.id(i), IdScheme::Improved))
                .collect::<Vec<_>>()
        },
        no_check,
        no_check,
        ExploreLimits::default(),
    );

    for jobs in [1usize, 2, 4, 8] {
        let config = ExploreConfig {
            jobs,
            ..ExploreConfig::default()
        };
        let par = explore_parallel(
            &spec.wiring(),
            || {
                (0..spec.len())
                    .map(|i| Alg1Node::new(spec.id(i), spec.cw_port(i)))
                    .collect::<Vec<_>>()
            },
            no_check,
            no_check,
            &config,
        );
        assert_eq!(par.configs, seq_alg1.configs, "alg1 configs at jobs={jobs}");
        assert_eq!(par.quiescent_configs, seq_alg1.quiescent_configs);
        assert_eq!(par.visited_bytes, seq_alg1.visited_bytes);
        assert!(par.complete && par.violations.is_empty());

        let par = explore_parallel(
            &spec.wiring(),
            || alg2_nodes(&spec),
            no_check,
            no_check,
            &config,
        );
        assert_eq!(par.configs, seq_alg2.configs, "alg2 configs at jobs={jobs}");
        assert_eq!(par.quiescent_configs, seq_alg2.quiescent_configs);
        assert!(par.complete && par.violations.is_empty());

        let par = explore_parallel(
            &spec.wiring(),
            || {
                (0..spec.len())
                    .map(|i| Alg3Node::new(spec.id(i), IdScheme::Improved))
                    .collect::<Vec<_>>()
            },
            no_check,
            no_check,
            &config,
        );
        assert_eq!(par.configs, seq_alg3.configs, "alg3 configs at jobs={jobs}");
        assert!(par.complete && par.violations.is_empty());
    }
}

#[test]
fn parallel_agrees_with_sequential_on_the_ablation() {
    // The deliberately broken ablation (E11) livelocks under adversarial
    // schedules, but its *deduplicated* state space on this tiny ring is
    // still finite — the engines must agree on it exactly.
    let spec = RingSpec::oriented(vec![2u64, 3, 1]);
    let make = || {
        (0..spec.len())
            .map(|i| UngatedAlg2Node::new(spec.id(i), spec.cw_port(i)))
            .collect::<Vec<_>>()
    };
    let seq = explore(
        &spec.wiring(),
        make,
        no_check,
        no_check,
        ExploreLimits::default(),
    );
    assert!(seq.complete);
    let par = explore_parallel(
        &spec.wiring(),
        make,
        no_check,
        no_check,
        &ExploreConfig {
            jobs: 4,
            ..ExploreConfig::default()
        },
    );
    assert!(par.complete);
    assert_eq!(par.configs, seq.configs);
    assert_eq!(par.quiescent_configs, seq.quiescent_configs);
}

#[test]
fn both_engines_truncate_a_genuinely_infinite_space() {
    // A duplicated pulse never quiesces under Algorithm 2 (the gate defers
    // it forever), so the state space is infinite: neither engine may claim
    // completeness under a configuration cap.
    let spec = RingSpec::oriented(vec![3u64, 5, 2]);
    let limits = ExploreLimits {
        max_configs: 3_000,
        ..ExploreLimits::default()
    };
    let plan = FaultPlan::new().duplicate_seq(1);
    let seq = explore_parallel(
        &spec.wiring(),
        || alg2_nodes(&spec),
        no_check,
        no_check,
        &ExploreConfig {
            jobs: 1,
            limits,
            faults: plan.clone(),
            ..ExploreConfig::default()
        },
    );
    assert!(!seq.complete);
    let par = explore_parallel(
        &spec.wiring(),
        || alg2_nodes(&spec),
        no_check,
        no_check,
        &ExploreConfig {
            jobs: 4,
            limits,
            faults: plan,
            ..ExploreConfig::default()
        },
    );
    assert!(!par.complete);
}

/// The quiescence predicate of the fault sweep: flag any quiescent
/// configuration that still looks like a healthy election, so a "violation"
/// means a schedule survived the fault.
fn healthy_election_flag(
    spec: &RingSpec,
) -> impl Fn(&ExploreState<Alg2Node>) -> Result<(), String> + Sync + '_ {
    let leader = spec.max_position();
    let predicted = spec.len() as u64 * (2 * spec.id_max() + 1);
    move |state| {
        let healthy = state.terminated.iter().all(|&x| x)
            && state
                .nodes
                .iter()
                .enumerate()
                .all(|(i, n)| (n.role() == Role::Leader) == (i == leader))
            && state.sent == predicted;
        if healthy {
            Err("healthy election under fault".into())
        } else {
            Ok(())
        }
    }
}

#[test]
fn bloom_never_misses_a_violation_the_exact_backend_finds() {
    // 50 seeded random faulted n=3 instances. Dropped pulses keep the state
    // space finite; the healthy-election predicate turns "a schedule survives
    // the fault" into a violation. The bloom backend may prune via false
    // positives but, at the default 1e-4 budget on spaces of a few hundred
    // states, it must reach the same verdict as the exact backend — and it
    // must never report a violation the exact backend does not (bloom
    // explores a subset of the exact space).
    let mut rng = StdRng::seed_from_u64(0x5EED_B100);
    for trial in 0..50 {
        let ids: Vec<u64> = (0..3).map(|_| rng.gen_range(1..=7)).collect();
        let spec = RingSpec::oriented(ids.clone());
        let drop_at = rng.gen_range(1..=8);
        let plan = FaultPlan::new().drop_seq(drop_at);
        let run = |dedup: DedupKind| {
            explore_parallel(
                &spec.wiring(),
                || alg2_nodes(&spec),
                no_check,
                healthy_election_flag(&spec),
                &ExploreConfig {
                    jobs: 4,
                    dedup,
                    faults: plan.clone(),
                    ..ExploreConfig::default()
                },
            )
        };
        let exact = run(DedupKind::Exact);
        let bloom = run(DedupKind::Bloom);
        assert!(exact.complete, "trial {trial} ids {ids:?} drop {drop_at}");
        assert!(bloom.complete, "trial {trial} ids {ids:?} drop {drop_at}");
        assert_eq!(
            exact.violations.is_empty(),
            bloom.violations.is_empty(),
            "trial {trial}: ids {ids:?} drop {drop_at} — exact found {:?}, bloom found {:?}",
            exact.violations,
            bloom.violations
        );
        assert!(
            bloom.configs <= exact.configs,
            "trial {trial}: bloom visited more states than exact"
        );
    }
}

#[test]
fn acceptance_n4_alg1_sweep_with_bloom_and_8_workers() {
    let spec = RingSpec::oriented(vec![2u64, 4, 1, 3]);
    let make = || {
        (0..spec.len())
            .map(|i| Alg1Node::new(spec.id(i), spec.cw_port(i)))
            .collect::<Vec<_>>()
    };
    let seq = explore(
        &spec.wiring(),
        make,
        no_check,
        no_check,
        ExploreLimits::default(),
    );
    assert!(seq.complete && seq.violations.is_empty());
    let par = explore_parallel(
        &spec.wiring(),
        make,
        no_check,
        no_check,
        &ExploreConfig {
            jobs: 8,
            dedup: DedupKind::Bloom,
            ..ExploreConfig::default()
        },
    );
    assert!(par.complete && par.violations.is_empty());
    // Parallel/sequential equivalence: bloom can only under-count, and at
    // this scale the 1e-4 false-positive budget means it does not.
    assert_eq!(par.configs, seq.configs);
    assert_eq!(par.quiescent_configs, seq.quiescent_configs);
}
