//! The threaded runtime and the discrete-event simulator must agree: same
//! leader, same exact message counts — the algorithms' guarantees are
//! schedule-independent, and OS threads are just one more adversary.

use content_oblivious::core::{runner, Alg1Node, Alg2Node, Role};
use content_oblivious::net::threaded::{run_threaded, ThreadedOptions, ThreadedOutcome};
use content_oblivious::net::{Pulse, RingSpec, SchedulerKind};

fn opts() -> ThreadedOptions {
    ThreadedOptions {
        max_jitter_us: 20,
        ..ThreadedOptions::default()
    }
}

#[test]
fn alg2_threaded_matches_simulator() {
    let spec = RingSpec::oriented(vec![8, 3, 14, 5, 11, 2]);
    let sim_report = runner::run_alg2(&spec, SchedulerKind::Random, 9);

    let nodes: Vec<Alg2Node> = (0..spec.len())
        .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
        .collect();
    let threaded = run_threaded::<Pulse, _>(&spec.wiring(), nodes, &opts());

    assert_eq!(threaded.outcome, ThreadedOutcome::AllTerminated);
    assert_eq!(threaded.total_sent, sim_report.total_messages);
    let threaded_roles: Vec<Role> = threaded.nodes.iter().map(Alg2Node::role).collect();
    assert_eq!(threaded_roles, sim_report.roles);
}

#[test]
fn alg1_threaded_quiesces_at_id_max() {
    let spec = RingSpec::oriented(vec![6, 13, 4]);
    let nodes: Vec<Alg1Node> = (0..spec.len())
        .map(|i| Alg1Node::new(spec.id(i), spec.cw_port(i)))
        .collect();
    let threaded = run_threaded::<Pulse, _>(&spec.wiring(), nodes, &opts());
    assert_eq!(threaded.outcome, ThreadedOutcome::Quiescent);
    assert_eq!(threaded.total_sent, 3 * 13);
    for (i, node) in threaded.nodes.iter().enumerate() {
        assert_eq!(node.rho_cw(), 13, "node {i}");
        let expected = if i == 1 {
            Role::Leader
        } else {
            Role::NonLeader
        };
        assert_eq!(node.role(), expected, "node {i}");
    }
}

#[test]
fn alg2_threaded_repeated_runs_are_deterministic_in_count() {
    // Thread interleavings differ per run; the pulse count may not.
    let spec = RingSpec::oriented(vec![4, 10, 7]);
    let expected = 3 * (2 * 10 + 1);
    for run in 0..5 {
        let nodes: Vec<Alg2Node> = (0..spec.len())
            .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
            .collect();
        let threaded = run_threaded::<Pulse, _>(&spec.wiring(), nodes, &opts());
        assert_eq!(
            threaded.outcome,
            ThreadedOutcome::AllTerminated,
            "run {run}"
        );
        assert_eq!(threaded.total_sent, expected, "run {run}");
        assert_eq!(threaded.nodes[1].role(), Role::Leader, "run {run}");
    }
}

#[test]
fn threaded_single_node_ring() {
    let spec = RingSpec::oriented(vec![6]);
    let nodes = vec![Alg2Node::new(6, spec.cw_port(0))];
    let threaded = run_threaded::<Pulse, _>(&spec.wiring(), nodes, &opts());
    assert_eq!(threaded.outcome, ThreadedOutcome::AllTerminated);
    assert_eq!(threaded.total_sent, 2 * 6 + 1);
    assert_eq!(threaded.nodes[0].role(), Role::Leader);
}
