//! Experiment E0: content-carrying algorithms break under the fully
//! defective channel, while the paper's algorithms never read content in
//! the first place (enforced by the `Pulse` type). This is the motivation
//! for content-oblivious computation.

use content_oblivious::classic::chang_roberts::{ChangRobertsNode, CrMsg};
use content_oblivious::classic::defective::Defective;
use content_oblivious::classic::runner as classic_runner;
use content_oblivious::core::{runner, Role};
use content_oblivious::net::{Budget, Outcome, Protocol, RingSpec, SchedulerKind, Simulation};

#[test]
fn chang_roberts_fails_on_defective_channels_at_all_sizes() {
    for n in [2usize, 4, 8, 16, 32, 64] {
        let spec = RingSpec::oriented((1..=n as u64).collect());
        let nodes = (0..n)
            .map(|i| Defective::new(ChangRobertsNode::new(spec.id(i), spec.cw_port(i))))
            .collect();
        let mut sim: Simulation<CrMsg, Defective<ChangRobertsNode>> =
            Simulation::new(spec.wiring(), nodes, SchedulerKind::Random.build(n as u64));
        let report = sim.run(Budget::default());
        let leaders = (0..n)
            .filter(|&i| sim.node(i).output() == Some(Role::Leader))
            .count();
        assert_eq!(leaders, 0, "n={n}: corruption must prevent election");
        assert_ne!(
            report.outcome,
            Outcome::QuiescentTerminated,
            "n={n}: nobody should terminate believing the election succeeded"
        );
    }
}

#[test]
fn same_rings_succeed_with_reliable_channels_and_with_pulses() {
    // Control group: identical rings elect correctly both with reliable
    // content (Chang-Roberts) and with pure pulses (Algorithm 2).
    for n in [2usize, 8, 32] {
        let spec = RingSpec::oriented((1..=n as u64).collect());
        let cr = classic_runner::run_chang_roberts(&spec, SchedulerKind::Random, 3);
        assert_eq!(cr.leader, Some(n - 1), "CR n={n}");
        let alg2 = runner::run_alg2(&spec, SchedulerKind::Random, 3);
        assert_eq!(alg2.leader, Some(n - 1), "Alg2 n={n}");
        assert!(alg2.quiescently_terminated());
    }
}

#[test]
fn content_oblivious_cost_is_the_price_of_robustness() {
    // On the same ring, Algorithm 2 pays Θ(n·ID_max) where Chang-Roberts
    // pays O(n²) — the measurable price of surviving full corruption
    // (Theorem 4 shows some ID_max dependence is unavoidable).
    let n = 32u64;
    let spec = RingSpec::oriented((1..=n).collect());
    let cr = classic_runner::run_chang_roberts(&spec, SchedulerKind::Fifo, 0);
    let alg2 = runner::run_alg2(&spec, SchedulerKind::Fifo, 0);
    assert_eq!(alg2.total_messages, n * (2 * n + 1));
    assert!(alg2.total_messages > cr.total_messages);
}
