//! Indexed-pick equivalence: the incrementally maintained scheduler
//! indexes must be pick-for-pick identical to the retained O(ready) scan
//! implementations.
//!
//! Three layers of evidence:
//!
//! 1. A property harness that replays random ready-set mutation sequences
//!    (enqueue / head-advance / drain, modelled exactly like the engine's
//!    dense ready array) against two copies of the same scheduler — one
//!    driven through the incremental hooks + `indexed_pick`, one shown the
//!    ready slice per scan `pick` — and demands channel-for-channel
//!    agreement, surviving mid-sequence `rebuild_index` calls.
//! 2. The full simulation grid — 8 scheduler adversaries × {Alg1, Alg2,
//!    Alg3} × fault plans × both queue backends — run with indexed picks
//!    on vs off, demanding byte-identical `RunReport`/`SimStats`/
//!    fingerprints.
//! 3. Cross-mode record/replay and mid-run snapshot/restore: a schedule
//!    recorded with indexes on replays bit-exact with them off (and vice
//!    versa), and a snapshot taken mid-run under one mode continues
//!    identically under the other.

use content_oblivious::core::{Alg1Node, Alg2Node, Alg3Node, IdScheme};
use content_oblivious::net::sched::{
    BoundedDelayScheduler, FifoScheduler, LifoScheduler, LongestQueueScheduler,
    PhaseSwitchScheduler, RecordingScheduler, RoundRobinScheduler, SolitudeScheduler,
    StarveDirectionScheduler, StarveNodeScheduler,
};
use content_oblivious::net::{
    Budget, ChannelId, ChannelView, Direction, FaultPlan, Protocol, Pulse, QueueBackend, RingSpec,
    RunReport, Scheduler, SchedulerKind, Simulation, Snapshot,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

// ---------------------------------------------------------------------------
// Layer 1: the ready-set mutation property harness.
// ---------------------------------------------------------------------------

/// A faithful model of the engine's ready bookkeeping: a dense
/// `Vec<ChannelView>` mutated in place, swap-removed on drain, backed by
/// per-channel FIFO queues of globally unique send seqs.
struct ReadyModel {
    ready: Vec<ChannelView>,
    queues: Vec<VecDeque<u64>>,
    next_seq: u64,
}

impl ReadyModel {
    fn new(channels: usize) -> ReadyModel {
        ReadyModel {
            ready: Vec::new(),
            queues: (0..channels).map(|_| VecDeque::new()).collect(),
            next_seq: 0,
        }
    }

    /// Direction tag of a channel, as a ring topology would assign it.
    fn direction(channel: usize) -> Option<Direction> {
        Some(if channel % 2 == 0 {
            Direction::Cw
        } else {
            Direction::Ccw
        })
    }

    fn pos_of(&self, channel: usize) -> Option<usize> {
        self.ready.iter().position(|v| v.id.index() == channel)
    }

    /// Enqueues the next seq onto `channel`, firing the matching hook on
    /// `indexed` exactly as the engine does.
    fn enqueue(&mut self, channel: usize, indexed: &mut dyn Scheduler) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queues[channel].push_back(seq);
        match self.pos_of(channel) {
            Some(at) => {
                self.ready[at].queue_len += 1;
                indexed.on_head_change(self.ready[at]);
            }
            None => {
                let view = ChannelView {
                    id: ChannelId::from_index(channel),
                    queue_len: 1,
                    head_seq: seq,
                    direction: Self::direction(channel),
                    arrival: 0,
                };
                self.ready.push(view);
                indexed.on_ready(view);
            }
        }
    }

    /// Delivers the head of `channel`, firing the matching hook.
    fn deliver(&mut self, channel: usize, indexed: &mut dyn Scheduler) {
        let at = self.pos_of(channel).expect("delivering a ready channel");
        self.queues[channel].pop_front();
        match self.queues[channel].front() {
            Some(&next_head) => {
                self.ready[at].head_seq = next_head;
                self.ready[at].queue_len -= 1;
                indexed.on_head_change(self.ready[at]);
            }
            None => {
                self.ready.swap_remove(at);
                indexed.on_unready(ChannelId::from_index(channel));
            }
        }
    }
}

/// Runs `iters` random mutations against two same-configured schedulers:
/// `indexed` sees only the incremental hooks (plus the occasional rebuild),
/// `scan` sees only ready slices. Every pick must name the same channel.
fn assert_picks_agree(
    label: &str,
    mut indexed: Box<dyn Scheduler>,
    mut scan: Box<dyn Scheduler>,
    channels: usize,
    seed: u64,
    iters: usize,
) {
    let mut model = ReadyModel::new(channels);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut picks = 0usize;
    for step in 0..iters {
        // A rebuild mid-sequence must be a no-op for subsequent picks.
        if step % 97 == 96 {
            indexed.rebuild_index(&model.ready);
        }
        if model.ready.is_empty() || rng.gen_range(0u32..100) < 55 {
            let channel = rng.gen_range(0..channels);
            model.enqueue(channel, indexed.as_mut());
        } else {
            let scan_at = scan.pick(&model.ready);
            let scan_id = model.ready[scan_at].id;
            // The engine's step: consult the index, fall back to scan.
            let indexed_id = match indexed.indexed_pick() {
                Some(id) => id,
                None => {
                    let at = indexed.pick(&model.ready);
                    model.ready[at].id
                }
            };
            assert_eq!(
                indexed_id, scan_id,
                "{label}: pick #{picks} diverged at step {step}"
            );
            model.deliver(scan_id.index(), indexed.as_mut());
            picks += 1;
        }
    }
    assert!(picks > iters / 4, "{label}: the harness exercised picks");
}

/// Every built-in `SchedulerKind`, across several seeds and channel counts.
#[test]
fn random_mutation_sequences_agree_for_every_kind() {
    for kind in SchedulerKind::ALL {
        for seed in [0u64, 1, 42] {
            for channels in [3usize, 10, 33] {
                assert_picks_agree(
                    &format!("{kind} seed {seed} channels {channels}"),
                    kind.build(seed),
                    kind.build(seed),
                    channels,
                    seed ^ (channels as u64) << 8,
                    2_000,
                );
            }
        }
    }
}

/// The composite and special-purpose adversaries outside `SchedulerKind`:
/// starve-node, phase-switch, recording wrappers, bounded-delay.
#[test]
fn special_schedulers_agree_too() {
    let victims = |n: usize| (0..n).filter(|c| c % 3 == 0).map(ChannelId::from_index);
    assert_picks_agree(
        "starve-node",
        Box::new(StarveNodeScheduler::new(0, victims(12).collect())),
        Box::new(StarveNodeScheduler::new(0, victims(12).collect())),
        12,
        5,
        2_000,
    );
    assert_picks_agree(
        "starve-direction",
        Box::new(StarveDirectionScheduler::new(Direction::Ccw)),
        Box::new(StarveDirectionScheduler::new(Direction::Ccw)),
        9,
        6,
        2_000,
    );
    assert_picks_agree(
        "phase-switch fifo->lifo",
        Box::new(PhaseSwitchScheduler::new(
            Box::new(FifoScheduler::new()),
            Box::new(LifoScheduler::new()),
            50,
        )),
        Box::new(PhaseSwitchScheduler::new(
            Box::new(FifoScheduler::new()),
            Box::new(LifoScheduler::new()),
            50,
        )),
        8,
        7,
        2_000,
    );
    // Bounded-delay keeps no index (its picks are RNG-coupled); the harness
    // still proves the lazy deadline bookkeeping changes nothing observable.
    assert_picks_agree(
        "bounded-delay",
        Box::new(BoundedDelayScheduler::new(6, 11)),
        Box::new(BoundedDelayScheduler::new(6, 11)),
        8,
        8,
        2_000,
    );
    // Recording wrappers log identical pick sequences through either path.
    let (indexed_rec, indexed_log) = RecordingScheduler::new(Box::new(SolitudeScheduler::new()));
    let (scan_rec, scan_log) = RecordingScheduler::new(Box::new(SolitudeScheduler::new()));
    assert_picks_agree(
        "recording(solitude)",
        Box::new(indexed_rec),
        Box::new(scan_rec),
        10,
        9,
        2_000,
    );
    assert_eq!(
        indexed_log.borrow().as_slice(),
        scan_log.borrow().as_slice(),
        "recorded logs match pick for pick"
    );
    assert!(!indexed_log.borrow().is_empty());
    // Round-robin cursors wrap identically under both paths.
    assert_picks_agree(
        "round-robin",
        Box::new(RoundRobinScheduler::new()),
        Box::new(RoundRobinScheduler::new()),
        13,
        10,
        2_000,
    );
    // Longest-queue keys on (queue_len, Reverse(head_seq)).
    assert_picks_agree(
        "longest-queue",
        Box::new(LongestQueueScheduler::new()),
        Box::new(LongestQueueScheduler::new()),
        7,
        12,
        2_000,
    );
}

// ---------------------------------------------------------------------------
// Layer 2: the full simulation grid, indexed picks on vs off.
// ---------------------------------------------------------------------------

/// Everything a run exposes.
#[derive(Debug, PartialEq)]
struct Observed {
    report: RunReport,
    total_sent: u64,
    total_delivered: u64,
    fingerprint: u64,
    terminated: Vec<bool>,
}

fn observe<P, F>(
    spec: &RingSpec,
    make: F,
    kind: SchedulerKind,
    seed: u64,
    plan: &FaultPlan,
    backend: QueueBackend,
    indexed: bool,
) -> Observed
where
    P: Protocol<Pulse> + Snapshot,
    F: Fn() -> Vec<P>,
{
    let mut sim: Simulation<Pulse, P> =
        Simulation::with_backend(spec.wiring(), make(), kind.build(seed), backend);
    sim.set_indexed_picks(indexed);
    sim.set_faults(plan.clone());
    let report = sim.run(Budget::steps(200_000));
    let stats = sim.stats();
    Observed {
        total_sent: stats.total_sent,
        total_delivered: stats.total_delivered,
        fingerprint: sim.fingerprint(),
        terminated: (0..spec.len()).map(|v| sim.is_terminated(v)).collect(),
        report,
    }
}

fn assert_modes_equivalent<P, F>(spec: &RingSpec, make: F, label: &str)
where
    P: Protocol<Pulse> + Snapshot,
    F: Fn() -> Vec<P>,
{
    let plans = [
        ("clean", FaultPlan::new()),
        ("drop4", FaultPlan::new().drop_seq(4)),
        ("dup1", FaultPlan::new().duplicate_seq(1)),
    ];
    for kind in SchedulerKind::ALL {
        for seed in [0u64, 7] {
            for (plan_label, plan) in &plans {
                for backend in QueueBackend::ALL {
                    let on = observe(spec, &make, kind, seed, plan, backend, true);
                    let off = observe(spec, &make, kind, seed, plan, backend, false);
                    assert_eq!(
                        on, off,
                        "{label} under {kind} seed {seed} plan {plan_label} backend {backend}"
                    );
                }
            }
        }
    }
}

/// The full grid: 8 schedulers × 3 algorithms × 3 fault plans × 2 backends
/// × 2 seeds, every observable equal with indexes on vs off.
#[test]
fn full_grid_agrees_with_indexes_on_and_off() {
    let spec = RingSpec::oriented(vec![3, 6, 1, 5, 2]);
    assert_modes_equivalent(
        &spec,
        || {
            (0..spec.len())
                .map(|i| Alg1Node::new(spec.id(i), spec.cw_port(i)))
                .collect::<Vec<_>>()
        },
        "alg1",
    );
    assert_modes_equivalent(
        &spec,
        || {
            (0..spec.len())
                .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
                .collect::<Vec<_>>()
        },
        "alg2",
    );
    let flipped = RingSpec::with_flips(vec![3, 6, 1, 5, 2], vec![true, false, true, false, false]);
    assert_modes_equivalent(
        &flipped,
        || {
            (0..flipped.len())
                .map(|i| Alg3Node::new(flipped.id(i), IdScheme::Improved))
                .collect::<Vec<_>>()
        },
        "alg3",
    );
}

// ---------------------------------------------------------------------------
// Layer 3: cross-mode record/replay and snapshot/restore.
// ---------------------------------------------------------------------------

fn alg2_sim(kind: SchedulerKind, seed: u64, indexed: bool) -> Simulation<Pulse, Alg2Node> {
    let spec = RingSpec::oriented(vec![4, 2, 7, 1]);
    let nodes = (0..spec.len())
        .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
        .collect();
    let mut sim = Simulation::new(spec.wiring(), nodes, kind.build(seed));
    sim.set_indexed_picks(indexed);
    sim
}

/// A schedule recorded under one pick mode replays bit-exact under the
/// other, in both directions.
#[test]
fn schedules_cross_replay_between_modes() {
    for kind in SchedulerKind::ALL {
        for (record_indexed, replay_indexed) in [(true, false), (false, true)] {
            let mut recorder = alg2_sim(kind, 3, record_indexed);
            let (report, schedule) = recorder.run_recorded(Budget::default());
            let mut replayer = alg2_sim(kind, 3, replay_indexed);
            let replayed = replayer.replay(&schedule, Budget::default());
            assert_eq!(
                report, replayed,
                "{kind} recorded indexed={record_indexed} replayed indexed={replay_indexed}"
            );
            assert_eq!(recorder.fingerprint(), replayer.fingerprint(), "{kind}");
        }
    }
}

/// A snapshot taken mid-run with indexes on restores into an engine with
/// them off (and vice versa) and walks the identical configuration chain.
#[test]
fn snapshots_cross_restore_between_modes() {
    for kind in SchedulerKind::ALL {
        for (first_indexed, second_indexed) in [(true, false), (false, true)] {
            let mut a = alg2_sim(kind, 5, first_indexed);
            a.start();
            for _ in 0..40 {
                if a.step().is_none() {
                    break;
                }
            }
            let snap = a.snapshot();
            let mut b = alg2_sim(kind, 5, second_indexed);
            b.restore(&snap);
            assert_eq!(a.fingerprint(), b.fingerprint(), "{kind}: restore point");
            loop {
                let sa = a.step();
                let sb = b.step();
                assert_eq!(sa.is_some(), sb.is_some(), "{kind}");
                assert_eq!(a.fingerprint(), b.fingerprint(), "{kind}");
                if sa.is_none() {
                    break;
                }
            }
            assert_eq!(a.stats(), b.stats(), "{kind}");
        }
    }
}
