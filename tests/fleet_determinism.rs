//! Fleet-mode determinism contracts.
//!
//! Three properties anchor `co_net::fleet` (DESIGN.md §11):
//!
//! 1. **Jobs invariance** — the aggregate `FleetReport` is byte-identical
//!    at `--jobs` 1, 4 and 8, and across repeated runs: shard boundaries
//!    come from the config, per-ring seeds from `ring_seed`, and the merge
//!    is performed in shard order regardless of which thread ran what.
//! 2. **Engine equivalence** — a one-ring fleet is not a reimplementation
//!    wearing the engine's clothes: for the paper's actual protocols it
//!    must produce the same `RunReport`, the same `SimStats` and the same
//!    configuration fingerprint as a `Simulation` built from the identical
//!    `RingPlan`, with and without an injected fault.
//! 3. **Scale** (ignored by default, run by the CI `fleet-smoke` job in
//!    release) — 10⁵ mixed-size rings and the headline 10⁶-ring fleet
//!    complete in-process with every clean ring electing exactly one
//!    leader.
//!
//! The fleet-capable protocols come from the workspace registry
//! (`co_bench::protocols().supporting(Capability::Fleet)`), so onboarding a
//! new fleet protocol automatically enrols it in the determinism and
//! engine-equivalence contracts below.

use co_bench::{protocols, run_fleet_round};
use content_oblivious::core::registry::{Capability, FleetDriver};
use content_oblivious::core::{Alg1Node, Alg2Node};
use content_oblivious::net::fleet::{FleetConfig, FleetRingDetail, RingSizes};
use content_oblivious::net::{ChannelId, Protocol, Pulse, RingSpec, SchedulerKind, Simulation};

fn mixed_cfg(rings: u64, seed: u64, fault_rate: f64) -> FleetConfig {
    let mut cfg = FleetConfig::new(rings);
    cfg.sizes = RingSizes::Uniform { min: 3, max: 9 };
    cfg.seed = seed;
    cfg.fault_rate = fault_rate;
    cfg
}

/// Every fleet-capable registry entry, as `(name, driver)` pairs.
fn fleet_entries() -> Vec<(&'static str, FleetDriver)> {
    protocols()
        .supporting(Capability::Fleet)
        .into_iter()
        .map(|name| (name, protocols().fleet(name).expect("capability-filtered")))
        .collect()
}

#[test]
fn aggregate_report_is_jobs_invariant_and_reproducible() {
    let mut cfg = mixed_cfg(2000, 7, 0.02);
    // Small shards so every jobs value actually exercises the fan-out.
    cfg.shard_rings = 128;
    for (protocol, driver) in fleet_entries() {
        let reference = run_fleet_round(&cfg, driver, 0, 1);
        assert_eq!(reference.rings, 2000, "{protocol}");
        for jobs in [1usize, 4, 8] {
            assert_eq!(
                run_fleet_round(&cfg, driver, 0, jobs),
                reference,
                "{protocol} at jobs = {jobs}"
            );
        }
        // Across runs, not just across thread counts.
        assert_eq!(
            run_fleet_round(&cfg, driver, 0, 4),
            reference,
            "{protocol} re-run"
        );
    }
}

/// Replays `detail`'s ring plan through the real event core and checks the
/// fleet produced the identical execution.
fn assert_matches_simulation<P, F>(detail: &FleetRingDetail, make: F, label: &str)
where
    P: Protocol<Pulse> + content_oblivious::net::Snapshot,
    F: Fn(&RingSpec, usize) -> P,
{
    let spec = RingSpec::oriented(detail.plan.ids.clone());
    let nodes: Vec<P> = (0..spec.len()).map(|i| make(&spec, i)).collect();
    let mut sim: Simulation<Pulse, P> =
        Simulation::new(spec.wiring(), nodes, SchedulerKind::Fifo.build(0));
    // The fleet starts every node, then injects the planned fault (if any)
    // — mirror that order so send sequence numbers line up.
    sim.start();
    if let Some(channel) = detail.plan.inject {
        sim.inject(ChannelId::from_index(channel), Pulse);
    }
    let report = sim.run(detail.budget);
    assert_eq!(detail.report, report, "{label}: RunReport");
    assert_eq!(&detail.stats, sim.stats(), "{label}: SimStats");
    assert_eq!(
        detail.fingerprint,
        sim.fingerprint(),
        "{label}: fingerprint"
    );
}

#[test]
fn one_ring_fleet_matches_the_event_core_for_the_papers_algorithms() {
    for (protocol, driver) in fleet_entries() {
        for n in [1usize, 2, 3, 5, 8] {
            // fault_rate 1.0 guarantees the plan carries an injection; 0.0
            // guarantees it does not — both paths must match the engine.
            for fault_rate in [0.0, 1.0] {
                for seed in 0..3u64 {
                    let mut cfg = FleetConfig::new(1);
                    cfg.sizes = RingSizes::Fixed(n);
                    cfg.seed = seed;
                    cfg.fault_rate = fault_rate;
                    let detail = driver.run_ring_detailed(&cfg, 0, 0);
                    assert_eq!(detail.plan.n, n);
                    assert_eq!(detail.plan.inject.is_some(), fault_rate == 1.0);
                    let label = format!("{protocol}, n = {n}, fault = {fault_rate}, seed = {seed}");
                    // The registry erases node types, so the engine twin is
                    // re-derived per name; a new fleet entry must extend this
                    // match or the test fails loudly.
                    match protocol {
                        "alg1" => assert_matches_simulation(
                            &detail,
                            |spec: &RingSpec, i| Alg1Node::new(spec.id(i), spec.cw_port(i)),
                            &label,
                        ),
                        "alg2" => assert_matches_simulation(
                            &detail,
                            |spec: &RingSpec, i| Alg2Node::new(spec.id(i), spec.cw_port(i)),
                            &label,
                        ),
                        other => panic!("no engine twin wired up for fleet protocol {other}"),
                    }
                }
            }
        }
    }
}

/// Budget-capped 10⁵-ring smoke: mixed sizes, a 0.1% fault rate, both
/// protocols, and a jobs-invariance check at full scale. CI runs this in
/// release as the `fleet-smoke` job with a hard timeout.
#[test]
#[ignore = "large; run explicitly (CI fleet-smoke job)"]
fn fleet_smoke_1e5_mixed_sizes() {
    let cfg = mixed_cfg(100_000, 8, 0.001);
    for (protocol, driver) in fleet_entries() {
        let report = run_fleet_round(&cfg, driver, 0, 0);
        println!("== {protocol} ==\n{}", report.render());
        assert_eq!(report.rings, 100_000, "{protocol}");
        // Only faulted rings may miss their election.
        assert!(
            report.elections + report.faults_injected >= 100_000,
            "{protocol}: {} elections, {} faults",
            report.elections,
            report.faults_injected
        );
        assert!(
            report.budget_exhausted <= report.faults_injected,
            "{protocol}: clean rings must never exhaust their budget"
        );
        // Counter-backend queues: a handful of 16-byte runs per ring.
        assert!(
            report.peak_ring_queue_bytes < 4096,
            "{protocol}: peak {} bytes/ring",
            report.peak_ring_queue_bytes
        );
        assert_eq!(
            run_fleet_round(&cfg, driver, 0, 1),
            report,
            "{protocol}: jobs-invariant at 1e5 rings"
        );
    }
}

/// The headline: one million concurrent rings in one process (Algorithm 1,
/// counter-backed queues), every ring electing exactly one leader at the
/// paper's exact pulse count. CI runs this in release as `fleet-smoke`.
#[test]
#[ignore = "large; run explicitly (CI fleet-smoke job)"]
fn fleet_smoke_1e6_alg1() {
    let mut cfg = FleetConfig::new(1_000_000);
    cfg.sizes = RingSizes::Fixed(4);
    let alg1 = protocols().fleet("alg1").expect("alg1 is fleet-capable");
    let report = run_fleet_round(&cfg, alg1, 0, 0);
    println!("{}", report.render());
    assert_eq!(report.rings, 1_000_000);
    assert_eq!(report.nodes, 4_000_000);
    assert_eq!(report.elections, 1_000_000);
    assert_eq!(report.budget_exhausted, 0);
    // Corollary 13: n·ID_max = 4·4 pulses per ring, IDs a permutation of 1..=4.
    assert_eq!(report.total_sent, 16_000_000);
    // At most 4 concurrent 16-byte runs per ring ever live.
    assert_eq!(report.peak_ring_queue_bytes, 64);
}
