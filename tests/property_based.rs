//! Property-based tests (proptest): the paper's theorems quantified over
//! random ring sizes, ID assignments, port layouts, schedulers, and seeds.

use content_oblivious::core::{
    anonymous::{sample_ids, SamplingConfig},
    lower_bound, runner, IdScheme, Role,
};
use content_oblivious::net::{Outcome, RingSpec, SchedulerKind};
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Strategy: a set of 1..=12 distinct positive IDs (≤ 200 to keep runs fast).
fn distinct_ids() -> impl Strategy<Value = Vec<u64>> {
    pvec(1u64..=200, 1..=12).prop_filter_map("ids must be distinct", |ids| {
        let set: BTreeSet<u64> = ids.iter().copied().collect();
        (set.len() == ids.len()).then_some(ids)
    })
}

fn any_scheduler() -> impl Strategy<Value = SchedulerKind> {
    prop::sample::select(SchedulerKind::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1, universally: Algorithm 2 quiescently terminates, elects
    /// the maximum, and sends exactly n(2·ID_max + 1) pulses.
    #[test]
    fn theorem1_universal(ids in distinct_ids(), kind in any_scheduler(), seed in 0u64..1000) {
        let spec = RingSpec::oriented(ids);
        let n = spec.len() as u64;
        let id_max = spec.id_max();
        let report = runner::run_alg2(&spec, kind, seed);
        prop_assert_eq!(report.outcome, Outcome::QuiescentTerminated);
        prop_assert!(report.validate(&spec).is_ok());
        prop_assert_eq!(report.total_messages, n * (2 * id_max + 1));
    }

    /// Lemmas 6-12 and 17 hold after every delivery of Algorithm 2.
    #[test]
    fn alg2_invariants_universal(ids in distinct_ids(), kind in any_scheduler(), seed in 0u64..1000) {
        let spec = RingSpec::oriented(ids);
        let result = runner::run_alg2_monitored(&spec, kind, seed);
        prop_assert!(result.is_ok(), "violation: {:?}", result.err());
    }

    /// Theorem 2, universally: Algorithm 3 (improved) elects + orients any
    /// port layout with exactly n(2·ID_max + 1) pulses.
    #[test]
    fn theorem2_universal(
        ids in distinct_ids(),
        flip_bits in pvec(any::<bool>(), 12),
        kind in any_scheduler(),
        seed in 0u64..1000,
    ) {
        let flips = flip_bits[..ids.len()].to_vec();
        let spec = RingSpec::with_flips(ids, flips);
        let n = spec.len() as u64;
        let id_max = spec.id_max();
        let out = runner::run_alg3(&spec, IdScheme::Improved, kind, seed);
        prop_assert_eq!(out.report.outcome, Outcome::Quiescent);
        prop_assert!(out.report.validate(&spec).is_ok());
        prop_assert!(out.orientation_consistent);
        prop_assert_eq!(out.report.total_messages, n * (2 * id_max + 1));
    }

    /// Proposition 15, universally: the doubled scheme costs n(4·ID_max − 1).
    #[test]
    fn proposition15_universal(ids in distinct_ids(), seed in 0u64..1000) {
        let spec = RingSpec::oriented(ids);
        let n = spec.len() as u64;
        let id_max = spec.id_max();
        let out = runner::run_alg3(&spec, IdScheme::Doubled, SchedulerKind::Random, seed);
        prop_assert!(out.report.validate(&spec).is_ok());
        prop_assert_eq!(out.report.total_messages, n * (4 * id_max - 1));
    }

    /// Lemma 22, empirically: solitude patterns of distinct IDs differ.
    #[test]
    fn lemma22_universal(ids in pvec(1u64..=300, 2..=8)) {
        let set: BTreeSet<u64> = ids.iter().copied().collect();
        let patterns: Vec<_> = set
            .iter()
            .map(|&id| lower_bound::solitude_pattern_alg2(id).expect("terminates"))
            .collect();
        prop_assert!(lower_bound::patterns_unique(&patterns));
    }

    /// Theorem 4 vs Theorem 1: the measured complexity of Algorithm 2 always
    /// dominates the lower bound n⌊log(ID_max/n)⌋.
    #[test]
    fn upper_dominates_lower_bound(ids in distinct_ids(), seed in 0u64..100) {
        let spec = RingSpec::oriented(ids);
        let n = spec.len() as u64;
        let id_max = spec.id_max();
        prop_assume!(id_max >= n);
        let report = runner::run_alg2(&spec, SchedulerKind::Random, seed);
        let lower = lower_bound::lower_bound_messages(id_max, n);
        prop_assert!(report.total_messages >= lower);
    }

    /// Algorithm 4's sampling is always positive, reproducible, and bounded
    /// by the cap.
    #[test]
    fn algorithm4_sampling_sound(n in 1usize..=64, seed in 0u64..10_000) {
        let cfg = SamplingConfig::new(1.0).with_max_bits(16);
        let a = sample_ids(n, &cfg, seed);
        let b = sample_ids(n, &cfg, seed);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.iter().all(|&id| id >= 1 && id <= (1 << 16)));
    }

    /// Exactly one leader in every Algorithm 1 run with distinct IDs, and it
    /// is the maximum (also under duplicated low IDs, Lemma 16 keeps the
    /// unique maximum winning).
    #[test]
    fn alg1_unique_max_wins_with_duplicates(
        mut ids in pvec(1u64..=50, 1..=10),
        kind in any_scheduler(),
        seed in 0u64..1000,
    ) {
        // Force a unique maximum by adding a fresh largest ID.
        ids.push(51 + seed % 20);
        let spec = RingSpec::oriented(ids);
        let report = runner::run_alg1(&spec, kind, seed);
        prop_assert_eq!(report.outcome, Outcome::Quiescent);
        let leaders: Vec<usize> = report
            .roles
            .iter()
            .enumerate()
            .filter(|(_, r)| **r == Role::Leader)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(leaders, vec![spec.len() - 1]);
        prop_assert_eq!(report.total_messages, spec.len() as u64 * spec.id_max());
    }
}
