//! Randomized tests: the paper's theorems quantified over random ring
//! sizes, ID assignments, port layouts, schedulers, and seeds.
//!
//! Inputs are drawn from a seeded [`StdRng`] grid rather than a property
//! framework (the build is fully offline), so every failure reproduces from
//! the printed case number.

use content_oblivious::core::{
    anonymous::{sample_ids, SamplingConfig},
    lower_bound, runner, IdScheme, Role,
};
use content_oblivious::net::{Outcome, RingSpec, SchedulerKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// A set of 1..=12 distinct positive IDs (≤ 200 to keep runs fast), in
/// shuffled position order.
fn distinct_ids(rng: &mut StdRng) -> Vec<u64> {
    let k = rng.gen_range(1usize..=12);
    let mut set = BTreeSet::new();
    while set.len() < k {
        set.insert(rng.gen_range(1u64..=200));
    }
    let mut ids: Vec<u64> = set.into_iter().collect();
    for i in (1..ids.len()).rev() {
        let j = rng.gen_range(0..=i);
        ids.swap(i, j);
    }
    ids
}

fn scheduler_for(case: u64) -> SchedulerKind {
    SchedulerKind::ALL[case as usize % SchedulerKind::ALL.len()]
}

/// Theorem 1, universally: Algorithm 2 quiescently terminates, elects
/// the maximum, and sends exactly n(2·ID_max + 1) pulses.
#[test]
fn theorem1_universal() {
    for case in 0u64..64 {
        let mut rng = StdRng::seed_from_u64(0x7E01 + case);
        let spec = RingSpec::oriented(distinct_ids(&mut rng));
        let kind = scheduler_for(case);
        let seed = rng.gen_range(0u64..1000);
        let n = spec.len() as u64;
        let id_max = spec.id_max();
        let report = runner::run_alg2(&spec, kind, seed);
        assert_eq!(report.outcome, Outcome::QuiescentTerminated, "case {case}");
        assert!(report.validate(&spec).is_ok(), "case {case}");
        assert_eq!(report.total_messages, n * (2 * id_max + 1), "case {case}");
    }
}

/// Lemmas 6-12 and 17 hold after every delivery of Algorithm 2.
#[test]
fn alg2_invariants_universal() {
    for case in 0u64..64 {
        let mut rng = StdRng::seed_from_u64(0x7E02 + case);
        let spec = RingSpec::oriented(distinct_ids(&mut rng));
        let kind = scheduler_for(case);
        let seed = rng.gen_range(0u64..1000);
        let result = runner::run_alg2_monitored(&spec, kind, seed);
        assert!(result.is_ok(), "case {case}: violation: {:?}", result.err());
    }
}

/// Theorem 2, universally: Algorithm 3 (improved) elects + orients any
/// port layout with exactly n(2·ID_max + 1) pulses.
#[test]
fn theorem2_universal() {
    for case in 0u64..64 {
        let mut rng = StdRng::seed_from_u64(0x7E03 + case);
        let ids = distinct_ids(&mut rng);
        let flips: Vec<bool> = (0..ids.len()).map(|_| rng.gen::<bool>()).collect();
        let kind = scheduler_for(case);
        let seed = rng.gen_range(0u64..1000);
        let spec = RingSpec::with_flips(ids, flips);
        let n = spec.len() as u64;
        let id_max = spec.id_max();
        let out = runner::run_alg3(&spec, IdScheme::Improved, kind, seed);
        assert_eq!(out.report.outcome, Outcome::Quiescent, "case {case}");
        assert!(out.report.validate(&spec).is_ok(), "case {case}");
        assert!(out.orientation_consistent, "case {case}");
        assert_eq!(
            out.report.total_messages,
            n * (2 * id_max + 1),
            "case {case}"
        );
    }
}

/// Proposition 15, universally: the doubled scheme costs n(4·ID_max − 1).
#[test]
fn proposition15_universal() {
    for case in 0u64..64 {
        let mut rng = StdRng::seed_from_u64(0x7E04 + case);
        let spec = RingSpec::oriented(distinct_ids(&mut rng));
        let seed = rng.gen_range(0u64..1000);
        let n = spec.len() as u64;
        let id_max = spec.id_max();
        let out = runner::run_alg3(&spec, IdScheme::Doubled, SchedulerKind::Random, seed);
        assert!(out.report.validate(&spec).is_ok(), "case {case}");
        assert_eq!(
            out.report.total_messages,
            n * (4 * id_max - 1),
            "case {case}"
        );
    }
}

/// Lemma 22, empirically: solitude patterns of distinct IDs differ.
#[test]
fn lemma22_universal() {
    for case in 0u64..64 {
        let mut rng = StdRng::seed_from_u64(0x7E05 + case);
        let k = rng.gen_range(2usize..=8);
        let mut set = BTreeSet::new();
        while set.len() < k {
            set.insert(rng.gen_range(1u64..=300));
        }
        let patterns: Vec<_> = set
            .iter()
            .map(|&id| lower_bound::solitude_pattern_alg2(id).expect("terminates"))
            .collect();
        assert!(lower_bound::patterns_unique(&patterns), "case {case}");
    }
}

/// Theorem 4 vs Theorem 1: the measured complexity of Algorithm 2 always
/// dominates the lower bound n⌊log(ID_max/n)⌋.
#[test]
fn upper_dominates_lower_bound() {
    for case in 0u64..64 {
        let mut rng = StdRng::seed_from_u64(0x7E06 + case);
        let spec = RingSpec::oriented(distinct_ids(&mut rng));
        let seed = rng.gen_range(0u64..100);
        let n = spec.len() as u64;
        let id_max = spec.id_max();
        if id_max < n {
            continue;
        }
        let report = runner::run_alg2(&spec, SchedulerKind::Random, seed);
        let lower = lower_bound::lower_bound_messages(id_max, n);
        assert!(report.total_messages >= lower, "case {case}");
    }
}

/// Algorithm 4's sampling is always positive, reproducible, and bounded
/// by the cap.
#[test]
fn algorithm4_sampling_sound() {
    for case in 0u64..64 {
        let mut rng = StdRng::seed_from_u64(0x7E07 + case);
        let n = rng.gen_range(1usize..=64);
        let seed = rng.gen_range(0u64..10_000);
        let cfg = SamplingConfig::new(1.0).with_max_bits(16);
        let a = sample_ids(n, &cfg, seed);
        let b = sample_ids(n, &cfg, seed);
        assert_eq!(&a, &b, "case {case}");
        assert!(
            a.iter().all(|&id| (1..=(1u64 << 16)).contains(&id)),
            "case {case}"
        );
    }
}

/// Exactly one leader in every Algorithm 1 run with distinct IDs, and it
/// is the maximum (also under duplicated low IDs, Lemma 16 keeps the
/// unique maximum winning).
#[test]
fn alg1_unique_max_wins_with_duplicates() {
    for case in 0u64..64 {
        let mut rng = StdRng::seed_from_u64(0x7E08 + case);
        let k = rng.gen_range(1usize..=10);
        let mut ids: Vec<u64> = (0..k).map(|_| rng.gen_range(1u64..=50)).collect();
        let kind = scheduler_for(case);
        let seed = rng.gen_range(0u64..1000);
        // Force a unique maximum by adding a fresh largest ID.
        ids.push(51 + seed % 20);
        let spec = RingSpec::oriented(ids);
        let report = runner::run_alg1(&spec, kind, seed);
        assert_eq!(report.outcome, Outcome::Quiescent, "case {case}");
        let leaders: Vec<usize> = report
            .roles
            .iter()
            .enumerate()
            .filter(|(_, r)| **r == Role::Leader)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(leaders, vec![spec.len() - 1], "case {case}");
        assert_eq!(
            report.total_messages,
            spec.len() as u64 * spec.id_max(),
            "case {case}"
        );
    }
}
