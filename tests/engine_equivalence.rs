//! Engine equivalence: the ring [`Simulation`] and the general-graph
//! [`GraphSim`] are facades over the same [`EventCore`], so the *same*
//! algorithm run on the *same* topology through either substrate must
//! produce the same outcome and the same message count — under every
//! scheduler adversary and a spread of seeds.
//!
//! The probe is the flood-echo wave (schedule-invariant: exactly one pulse
//! per directed edge), run on a cycle once as a two-port ring and once as a
//! [`MultiGraph`] ring.

use content_oblivious::core::general::{EchoNode, EchoState};
use content_oblivious::net::graph::MultiGraph;
use content_oblivious::net::multiport::{GraphSim, GraphWiring};
use content_oblivious::net::{
    Budget, Context, Outcome, Port, Protocol, Pulse, RingSpec, SchedulerKind, Simulation,
};

/// The flood-echo wave of `co_core::general::EchoNode`, restated for the
/// two-port ring [`Protocol`]. Same algorithm, different substrate API.
#[derive(Clone, Debug)]
struct RingEcho {
    is_root: bool,
    state: EchoState,
    parent: Option<Port>,
    received: [bool; 2],
    terminated: bool,
}

impl RingEcho {
    fn new(is_root: bool) -> RingEcho {
        RingEcho {
            is_root,
            state: EchoState::Idle,
            parent: None,
            received: [false; 2],
            terminated: false,
        }
    }

    fn pending_ports(&self) -> usize {
        [Port::Zero, Port::One]
            .into_iter()
            .filter(|&p| !self.received[p.index()] && Some(p) != self.parent)
            .count()
    }

    fn maybe_finish(&mut self, ctx: &mut Context<'_, Pulse>) {
        if self.state == EchoState::Waiting && self.pending_ports() == 0 {
            self.state = EchoState::Done;
            if let Some(parent) = self.parent {
                ctx.send(parent, Pulse);
            }
            self.terminated = true;
        }
    }
}

impl Protocol<Pulse> for RingEcho {
    type Output = EchoState;

    fn on_start(&mut self, ctx: &mut Context<'_, Pulse>) {
        if self.is_root {
            self.state = EchoState::Waiting;
            ctx.send(Port::Zero, Pulse);
            ctx.send(Port::One, Pulse);
        }
    }

    fn on_message(&mut self, port: Port, _msg: Pulse, ctx: &mut Context<'_, Pulse>) {
        self.received[port.index()] = true;
        if self.state == EchoState::Idle {
            self.state = EchoState::Waiting;
            self.parent = Some(port);
            ctx.send(port.opposite(), Pulse);
        }
        self.maybe_finish(ctx);
    }

    fn is_terminated(&self) -> bool {
        self.terminated
    }

    fn output(&self) -> Option<EchoState> {
        Some(self.state)
    }
}

fn run_ring(
    n: usize,
    root: usize,
    kind: SchedulerKind,
    seed: u64,
    budget: Budget,
) -> (Outcome, u64, u64) {
    let spec = RingSpec::oriented((1..=n as u64).collect());
    let nodes = (0..n).map(|i| RingEcho::new(i == root)).collect();
    let mut sim: Simulation<Pulse, RingEcho> =
        Simulation::new(spec.wiring(), nodes, kind.build(seed));
    sim.enable_metrics();
    let report = sim.run(budget);
    let metrics = sim.metrics().expect("metrics enabled");
    assert_eq!(metrics.sends, report.total_sent, "metrics track sends");
    if report.outcome == Outcome::QuiescentTerminated {
        for i in 0..n {
            assert_eq!(sim.node(i).state, EchoState::Done);
        }
    }
    (report.outcome, report.total_sent, report.steps)
}

fn run_graph(
    n: usize,
    root: usize,
    kind: SchedulerKind,
    seed: u64,
    budget: Budget,
) -> (Outcome, u64, u64) {
    let wiring = GraphWiring::from_graph(&MultiGraph::ring(n));
    let nodes = (0..n).map(|v| EchoNode::new(v == root)).collect();
    let mut sim: GraphSim<Pulse, EchoNode> = GraphSim::new(wiring, nodes, kind.build(seed));
    sim.enable_metrics();
    let report = sim.run(budget);
    let metrics = sim.metrics().expect("metrics enabled");
    assert_eq!(metrics.sends, report.total_sent, "metrics track sends");
    if report.outcome == Outcome::QuiescentTerminated {
        for v in 0..n {
            assert_eq!(sim.node(v).state(), EchoState::Done);
        }
    }
    (report.outcome, report.total_sent, report.steps)
}

/// Same cycle, both substrates, all 8 adversaries, a spread of seeds:
/// identical outcome, identical `total_sent`, identical step counts.
#[test]
fn ring_and_graph_engines_agree() {
    for n in [1usize, 2, 3, 4, 8, 13] {
        let root = n / 3;
        let m = MultiGraph::ring(n).edge_count() as u64;
        for kind in SchedulerKind::ALL {
            for seed in [0u64, 1, 7, 42, 0xC0FFEE] {
                let budget = Budget::steps(1_000_000);
                let ring = run_ring(n, root, kind, seed, budget);
                let graph = run_graph(n, root, kind, seed, budget);
                assert_eq!(ring, graph, "n={n} under {kind} seed {seed}");
                assert_eq!(ring.0, Outcome::QuiescentTerminated, "n={n} under {kind}");
                assert_eq!(ring.1, 2 * m, "2m pulses, n={n} under {kind}");
            }
        }
    }
}

/// Budget exhaustion classifies identically through both facades.
#[test]
fn budget_exhaustion_agrees() {
    for kind in SchedulerKind::ALL {
        let tiny = Budget::steps(3);
        let (ring_outcome, _, ring_steps) = run_ring(8, 0, kind, 5, tiny);
        let (graph_outcome, _, graph_steps) = run_graph(8, 0, kind, 5, tiny);
        assert_eq!(ring_outcome, Outcome::BudgetExhausted, "under {kind}");
        assert_eq!(graph_outcome, Outcome::BudgetExhausted, "under {kind}");
        assert_eq!(ring_steps, 3, "under {kind}");
        assert_eq!(graph_steps, 3, "under {kind}");
    }
}
