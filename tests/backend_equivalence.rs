//! Queue-backend equivalence: the run-length counter store must be
//! observationally identical to the generic `VecDeque` store.
//!
//! The two [`QueueBackend`]s differ only in how queued pulses are
//! represented; every externally visible quantity — [`RunReport`],
//! [`co_net::SimStats`], configuration fingerprints, node roles — must be
//! byte-identical on the same run. This suite proves it over the full grid
//! of all 8 scheduler adversaries × {Alg1, Alg2, Alg3} × fault plans
//! (clean / dropped pulse / duplicated pulse), and checks that the
//! exhaustive explorer enumerates the same state space under either store.
//! Only `peak_queue_bytes` may differ: it measures the storage itself.

use content_oblivious::core::{Alg1Node, Alg2Node, Alg3Node, IdScheme};
use content_oblivious::net::{
    Budget, FaultPlan, Protocol, Pulse, QueueBackend, RingSpec, RunReport, SchedulerKind,
    Simulation, Snapshot,
};

/// Everything a run exposes, minus the backend-dependent memory accounting.
#[derive(Debug, PartialEq)]
struct Observed {
    report: RunReport,
    total_sent: u64,
    total_delivered: u64,
    fingerprint: u64,
    terminated: Vec<bool>,
}

fn observe<P, F>(
    spec: &RingSpec,
    make: F,
    kind: SchedulerKind,
    seed: u64,
    plan: &FaultPlan,
    backend: QueueBackend,
) -> (Observed, usize)
where
    P: Protocol<Pulse> + Snapshot,
    F: Fn() -> Vec<P>,
{
    let mut sim: Simulation<Pulse, P> =
        Simulation::with_backend(spec.wiring(), make(), kind.build(seed), backend);
    sim.set_faults(plan.clone());
    // Faulted runs may deadlock or circulate forever; the bounded budget
    // classifies them identically on both backends.
    let report = sim.run(Budget::steps(200_000));
    let stats = sim.stats();
    let observed = Observed {
        total_sent: stats.total_sent,
        total_delivered: stats.total_delivered,
        fingerprint: sim.fingerprint(),
        terminated: (0..spec.len()).map(|v| sim.is_terminated(v)).collect(),
        report,
    };
    (observed, sim.peak_queue_bytes())
}

fn assert_equivalent<P, F>(spec: &RingSpec, make: F, label: &str)
where
    P: Protocol<Pulse> + Snapshot,
    F: Fn() -> Vec<P>,
{
    let plans = [
        ("clean", FaultPlan::new()),
        ("drop4", FaultPlan::new().drop_seq(4)),
        ("dup1", FaultPlan::new().duplicate_seq(1)),
    ];
    for kind in SchedulerKind::ALL {
        for seed in [0u64, 7] {
            for (plan_label, plan) in &plans {
                let (vec_run, vec_peak) = observe(spec, &make, kind, seed, plan, QueueBackend::Vec);
                let (ctr_run, ctr_peak) =
                    observe(spec, &make, kind, seed, plan, QueueBackend::Counter);
                assert_eq!(
                    vec_run, ctr_run,
                    "{label} under {kind} seed {seed} plan {plan_label}"
                );
                assert!(vec_peak > 0 && ctr_peak > 0, "{label}: queues were used");
            }
        }
    }
}

/// The full grid: 8 schedulers × 3 algorithms × 3 fault plans × 2 seeds,
/// every observable equal between the two stores.
#[test]
fn all_schedulers_algorithms_and_faults_agree_across_backends() {
    let spec = RingSpec::oriented(vec![3, 6, 1, 5, 2]);
    assert_equivalent(
        &spec,
        || {
            (0..spec.len())
                .map(|i| Alg1Node::new(spec.id(i), spec.cw_port(i)))
                .collect::<Vec<_>>()
        },
        "alg1",
    );
    assert_equivalent(
        &spec,
        || {
            (0..spec.len())
                .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
                .collect::<Vec<_>>()
        },
        "alg2",
    );
    let flipped = RingSpec::with_flips(vec![3, 6, 1, 5, 2], vec![true, false, true, false, false]);
    assert_equivalent(
        &flipped,
        || {
            (0..flipped.len())
                .map(|i| Alg3Node::new(flipped.id(i), IdScheme::Improved))
                .collect::<Vec<_>>()
        },
        "alg3",
    );
}

/// Snapshot fingerprints are backend-independent at every prefix of a run,
/// not just at the end: the two stores walk through identical
/// configuration hashes step by step.
#[test]
fn fingerprints_agree_at_every_step() {
    let spec = RingSpec::oriented(vec![2, 4, 1]);
    let make = || {
        (0..spec.len())
            .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
            .collect::<Vec<_>>()
    };
    for kind in SchedulerKind::ALL {
        let mut vec_sim: Simulation<Pulse, Alg2Node> =
            Simulation::with_backend(spec.wiring(), make(), kind.build(9), QueueBackend::Vec);
        let mut ctr_sim: Simulation<Pulse, Alg2Node> =
            Simulation::with_backend(spec.wiring(), make(), kind.build(9), QueueBackend::Counter);
        vec_sim.start();
        ctr_sim.start();
        assert_eq!(vec_sim.fingerprint(), ctr_sim.fingerprint(), "under {kind}");
        loop {
            let a = vec_sim.step();
            let b = ctr_sim.step();
            assert_eq!(a.is_some(), b.is_some(), "under {kind}");
            assert_eq!(vec_sim.fingerprint(), ctr_sim.fingerprint(), "under {kind}");
            if a.is_none() {
                break;
            }
        }
    }
}

/// The exhaustive explorer visits the identical state space whichever
/// store backs its worker simulations.
#[test]
fn explorer_state_space_is_backend_independent() {
    use content_oblivious::net::explore::{explore_parallel, ExploreConfig};

    let spec = RingSpec::oriented(vec![1, 2, 4]);
    let make = || {
        (0..spec.len())
            .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
            .collect::<Vec<_>>()
    };
    let mut reports = Vec::new();
    for backend in QueueBackend::ALL {
        let report = explore_parallel(
            &spec.wiring(),
            make,
            |_| Ok(()),
            |_| Ok(()),
            &ExploreConfig {
                jobs: 1,
                backend,
                ..ExploreConfig::default()
            },
        );
        assert!(report.complete, "{backend}");
        assert!(report.violations.is_empty(), "{backend}");
        reports.push(report);
    }
    assert_eq!(reports[0].configs, reports[1].configs);
    assert_eq!(reports[0].quiescent_configs, reports[1].quiescent_configs);
    assert_eq!(reports[0].visited_bytes, reports[1].visited_bytes);
}
