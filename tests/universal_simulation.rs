//! Corollary 5 at full strength: classical content-carrying algorithms —
//! which provably cannot run on defective channels directly (see
//! `defective_sanity.rs`) — executed *through* the universal simulation
//! after a content-oblivious election.

use content_oblivious::classic::chang_roberts::{ChangRobertsNode, CrMsg};
use content_oblivious::classic::peterson::{PetersonMsg, PetersonNode};
use content_oblivious::compose::universal::simulate_on_defective_ring;
use content_oblivious::core::Role;
use content_oblivious::net::{Port, RingSpec, SchedulerKind};

fn cr_encode(m: &CrMsg) -> u64 {
    match *m {
        CrMsg::Candidate(id) => id << 1,
        CrMsg::Elected(id) => (id << 1) | 1,
    }
}

fn cr_decode(w: u64) -> CrMsg {
    if w & 1 == 0 {
        CrMsg::Candidate(w >> 1)
    } else {
        CrMsg::Elected(w >> 1)
    }
}

#[test]
fn chang_roberts_runs_over_pulses() {
    let spec = RingSpec::oriented(vec![4, 2, 7, 3]);
    for kind in [
        SchedulerKind::Fifo,
        SchedulerKind::Lifo,
        SchedulerKind::Random,
    ] {
        let out = simulate_on_defective_ring(
            &spec,
            kind,
            11,
            |i| ChangRobertsNode::new(spec.id(i), Port::One),
            cr_encode,
            cr_decode,
        );
        assert!(out.quiescently_terminated, "{kind}");
        // The *simulated* CR elects ID 7 at position 2 — decided entirely
        // over contentless pulses.
        let roles: Vec<Option<Role>> = out.outputs.clone();
        assert_eq!(roles[2], Some(Role::Leader), "{kind}");
        for i in [0usize, 1, 3] {
            assert_eq!(roles[i], Some(Role::NonLeader), "{kind} node {i}");
        }
        // The physical election (phase 1) also chose position 2; the two
        // layers agree because both elect the maximal ID.
        assert_eq!(out.leader, Some(2), "{kind}");
    }
}

#[test]
fn peterson_runs_over_pulses() {
    let spec = RingSpec::oriented(vec![3, 6, 2, 5]);
    let out = simulate_on_defective_ring(
        &spec,
        SchedulerKind::Random,
        5,
        |i| PetersonNode::new(spec.id(i), Port::One),
        |m| match *m {
            PetersonMsg::Token(t) => t << 1,
            PetersonMsg::Elected(id) => (id << 1) | 1,
        },
        |w| {
            if w & 1 == 0 {
                PetersonMsg::Token(w >> 1)
            } else {
                PetersonMsg::Elected(w >> 1)
            }
        },
    );
    assert!(out.quiescently_terminated);
    let leaders = out
        .outputs
        .iter()
        .filter(|o| **o == Some(Role::Leader))
        .count();
    assert_eq!(leaders, 1, "Peterson elects exactly one leader");
    assert!(out.outputs.iter().all(Option::is_some));
}

#[test]
fn simulation_cost_accounting() {
    // The pipeline reports both the Theorem 1 election cost and the total;
    // the simulation overhead is the difference and is positive.
    let spec = RingSpec::oriented(vec![2, 4, 3]);
    let out = simulate_on_defective_ring(
        &spec,
        SchedulerKind::Fifo,
        0,
        |i| ChangRobertsNode::new(spec.id(i), Port::One),
        cr_encode,
        cr_decode,
    );
    assert!(out.quiescently_terminated);
    assert_eq!(out.election_messages, 3 * (2 * 4 + 1));
    assert!(out.total_messages > out.election_messages);
}

#[test]
#[should_panic(expected = "oriented rings")]
fn universal_simulation_requires_oriented_ring() {
    let spec = RingSpec::with_flips(vec![1, 2], vec![true, false]);
    let _ = simulate_on_defective_ring(
        &spec,
        SchedulerKind::Fifo,
        0,
        |i| ChangRobertsNode::new(spec.id(i), Port::One),
        cr_encode,
        cr_decode,
    );
}
