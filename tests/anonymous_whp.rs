//! Theorem 3 / Lemma 18 / Proposition 19, empirically: anonymous rings
//! elect with high probability; sampled maxima are unique whp and of
//! polynomial magnitude; resampling leaves all IDs distinct whp.

use content_oblivious::core::anonymous::{elect_anonymous, success_rate, SamplingConfig};
use content_oblivious::core::{runner, IdScheme};
use content_oblivious::net::{RingSpec, SchedulerKind};
use std::collections::BTreeSet;

#[test]
fn success_rate_is_high_and_failures_track_tied_maxima() {
    let cfg = SamplingConfig::new(1.0).with_max_bits(12);
    let stats = success_rate(12, &cfg, SchedulerKind::Random, 100, 42);
    // Theorem 3: success whp. With c = 1 and n = 12 the tie probability is
    // small; demand a comfortable margin rather than a tight constant.
    assert!(stats.rate() > 0.85, "success rate {} too low", stats.rate());
    // Lemma 18: the success events are exactly the unique-max events.
    assert_eq!(stats.successes, stats.unique_max);
}

#[test]
fn unique_max_implies_successful_election_always() {
    let cfg = SamplingConfig::new(1.0).with_max_bits(12);
    for seed in 0..60u64 {
        let r = elect_anonymous(9, &cfg, SchedulerKind::Random, seed);
        assert!(r.quiescent, "seed {seed}");
        if r.unique_max {
            assert!(r.success, "seed {seed}: unique max must elect");
        }
    }
}

#[test]
fn id_magnitude_grows_with_n_as_lemma18_predicts() {
    // The max of n geometric samples grows like log n; the resulting ID
    // magnitude like poly(n). Compare means across n. (The 11-bit cap keeps
    // the heavy tail simulatable in debug builds without affecting the
    // comparison: both configurations share the cap.)
    let cfg = SamplingConfig::new(1.0).with_max_bits(11);
    let small = success_rate(4, &cfg, SchedulerKind::Fifo, 60, 7).mean_id_max;
    let large = success_rate(64, &cfg, SchedulerKind::Fifo, 60, 7).mean_id_max;
    assert!(
        large > 2.0 * small,
        "mean ID_max should grow with n: {small} vs {large}"
    );
}

#[test]
fn message_complexity_stays_polynomial(/* Theorem 3: n^{O(1)} */) {
    let cfg = SamplingConfig::new(0.5).with_max_bits(12);
    for n in [4usize, 16, 64] {
        let stats = success_rate(n, &cfg, SchedulerKind::Random, 20, 11);
        // Messages per trial = n(2·ID_max + 1); with ID_max = n^{O(c²)} this
        // is polynomial. Enforce a generous concrete ceiling.
        let ceiling = (n as u64) * (1 << 14);
        assert!(
            stats.max_messages < ceiling,
            "n={n}: {} pulses exceeds polynomial ceiling {ceiling}",
            stats.max_messages
        );
    }
}

#[test]
fn proposition19_resampling_yields_distinct_ids_whp() {
    // Ring with many duplicate IDs below a large unique max; after the run,
    // resampled IDs should (usually) be pairwise distinct. We check a batch
    // of trials and require a strong majority to end fully distinct, and
    // every trial to keep a unique maximum and correct election.
    let mut distinct_trials = 0;
    let trials = 30;
    for seed in 0..trials {
        let ids = vec![3u64, 3, 3, 3, 500];
        let spec = RingSpec::oriented(ids);
        let (report, final_ids) =
            runner::run_alg3_resampling(&spec, IdScheme::Improved, SchedulerKind::Random, seed);
        assert!(report.report.reached_quiescence(), "seed {seed}");
        assert_eq!(report.report.leader, Some(4), "seed {seed}");
        assert_eq!(final_ids[4], 500, "seed {seed}: max keeps its ID");
        let set: BTreeSet<u64> = final_ids.iter().copied().collect();
        if set.len() == final_ids.len() {
            distinct_trials += 1;
        }
    }
    assert!(
        distinct_trials >= (trials * 8) / 10,
        "only {distinct_trials}/{trials} trials ended with distinct IDs"
    );
}
