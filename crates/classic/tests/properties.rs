//! Property-based tests of the classical baselines: unique (and for the
//! extrema-finding algorithms, maximal) leaders over random rings, seeds,
//! and adversaries; complexity envelopes.

use co_classic::runner::Baseline;
use co_core::Role;
use co_net::{RingSpec, SchedulerKind};
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn distinct_ids() -> impl Strategy<Value = Vec<u64>> {
    pvec(1u64..=500, 1..=16).prop_filter_map("distinct", |ids| {
        let set: BTreeSet<u64> = ids.iter().copied().collect();
        (set.len() == ids.len()).then_some(ids)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every baseline elects exactly one leader under every adversary, and
    /// the extrema-finding ones elect the maximum.
    #[test]
    fn baselines_elect_uniquely(
        ids in distinct_ids(),
        kind in prop::sample::select(SchedulerKind::ALL.to_vec()),
        seed in 0u64..500,
        baseline in prop::sample::select(Baseline::ALL.to_vec()),
    ) {
        let spec = RingSpec::oriented(ids);
        let report = baseline.run(&spec, kind, seed);
        let leaders = report.roles.iter().filter(|r| **r == Role::Leader).count();
        prop_assert_eq!(leaders, 1, "{} under {}", baseline, kind);
        if baseline.elects_max() {
            prop_assert_eq!(report.leader, Some(spec.max_position()));
        }
    }

    /// Chang-Roberts' exact cost on monotone rings matches the closed
    /// forms: descending = n(n+1)/2 + n, ascending = 2n + (n-1).
    #[test]
    fn chang_roberts_monotone_cost(n in 1u64..=64) {
        let desc = RingSpec::oriented((1..=n).rev().collect());
        let report = Baseline::ChangRoberts.run(&desc, SchedulerKind::Fifo, 0);
        prop_assert_eq!(report.total_messages, n * (n + 1) / 2 + n);

        let asc = RingSpec::oriented((1..=n).collect());
        let report = Baseline::ChangRoberts.run(&asc, SchedulerKind::Fifo, 0);
        prop_assert_eq!(report.total_messages, 2 * n + (n - 1));
    }

    /// The O(n log n) algorithms never exceed their textbook envelopes.
    #[test]
    fn log_algorithms_stay_within_envelopes(
        ids in distinct_ids(),
        seed in 0u64..200,
    ) {
        let n = ids.len() as u64;
        let log_n = (n as f64).log2().max(1.0);
        let spec = RingSpec::oriented(ids);
        let hs = Baseline::HirschbergSinclair
            .run(&spec, SchedulerKind::Random, seed)
            .total_messages;
        prop_assert!(hs as f64 <= 8.0 * n as f64 * (1.0 + log_n) + n as f64 + 4.0);
        let peterson = Baseline::Peterson
            .run(&spec, SchedulerKind::Random, seed)
            .total_messages;
        prop_assert!(peterson as f64 <= 2.2 * n as f64 * log_n + 3.0 * n as f64 + 4.0);
        let franklin = Baseline::Franklin
            .run(&spec, SchedulerKind::Random, seed)
            .total_messages;
        prop_assert!(franklin as f64 <= 2.0 * n as f64 * (log_n + 1.0) + 2.0 * n as f64 + 4.0);
    }
}
