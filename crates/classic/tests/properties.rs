//! Randomized tests of the classical baselines: unique (and for the
//! extrema-finding algorithms, maximal) leaders over random rings, seeds,
//! and adversaries; complexity envelopes.
//!
//! Inputs come from a seeded [`StdRng`] grid, keeping the suite offline and
//! reproducible from the printed case number.

use co_classic::runner::Baseline;
use co_core::Role;
use co_net::{RingSpec, SchedulerKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

fn distinct_ids(rng: &mut StdRng) -> Vec<u64> {
    let k = rng.gen_range(1usize..=16);
    let mut set = BTreeSet::new();
    while set.len() < k {
        set.insert(rng.gen_range(1u64..=500));
    }
    let mut ids: Vec<u64> = set.into_iter().collect();
    // Shuffle positions so the maximum is not always last.
    for i in (1..ids.len()).rev() {
        let j = rng.gen_range(0..=i);
        ids.swap(i, j);
    }
    ids
}

/// Every baseline elects exactly one leader under every adversary, and
/// the extrema-finding ones elect the maximum.
#[test]
fn baselines_elect_uniquely() {
    for case in 0u64..12 {
        for kind in SchedulerKind::ALL {
            for baseline in Baseline::ALL {
                let mut rng = StdRng::seed_from_u64(0xC1A5 + case);
                let ids = distinct_ids(&mut rng);
                let seed = rng.gen_range(0u64..500);
                let spec = RingSpec::oriented(ids);
                let report = baseline.run(&spec, kind, seed);
                let leaders = report.roles.iter().filter(|r| **r == Role::Leader).count();
                assert_eq!(leaders, 1, "case {case}: {baseline} under {kind}");
                if baseline.elects_max() {
                    assert_eq!(report.leader, Some(spec.max_position()));
                }
            }
        }
    }
}

/// Chang-Roberts' exact cost on monotone rings matches the closed
/// forms: descending = n(n+1)/2 + n, ascending = 2n + (n-1).
#[test]
fn chang_roberts_monotone_cost() {
    for n in 1u64..=64 {
        let desc = RingSpec::oriented((1..=n).rev().collect());
        let report = Baseline::ChangRoberts.run(&desc, SchedulerKind::Fifo, 0);
        assert_eq!(report.total_messages, n * (n + 1) / 2 + n);

        let asc = RingSpec::oriented((1..=n).collect());
        let report = Baseline::ChangRoberts.run(&asc, SchedulerKind::Fifo, 0);
        assert_eq!(report.total_messages, 2 * n + (n - 1));
    }
}

/// The O(n log n) algorithms never exceed their textbook envelopes.
#[test]
fn log_algorithms_stay_within_envelopes() {
    for case in 0u64..96 {
        let mut rng = StdRng::seed_from_u64(0x10C0 + case);
        let ids = distinct_ids(&mut rng);
        let seed = rng.gen_range(0u64..200);
        let n = ids.len() as u64;
        let log_n = (n as f64).log2().max(1.0);
        let spec = RingSpec::oriented(ids);
        let hs = Baseline::HirschbergSinclair
            .run(&spec, SchedulerKind::Random, seed)
            .total_messages;
        assert!(hs as f64 <= 8.0 * n as f64 * (1.0 + log_n) + n as f64 + 4.0);
        let peterson = Baseline::Peterson
            .run(&spec, SchedulerKind::Random, seed)
            .total_messages;
        assert!(peterson as f64 <= 2.2 * n as f64 * log_n + 3.0 * n as f64 + 4.0);
        let franklin = Baseline::Franklin
            .run(&spec, SchedulerKind::Random, seed)
            .total_messages;
        assert!(franklin as f64 <= 2.0 * n as f64 * (log_n + 1.0) + 2.0 * n as f64 + 4.0);
    }
}
