//! Peterson (1982): unidirectional `O(n log n)` leader election.
//!
//! Nodes are *active* or *relays*. In each phase every active node sends its
//! temporary ID clockwise and then relays the first ID it receives; after
//! seeing the temporary IDs of its two nearest active counterclockwise
//! predecessors (`t1`, then `t2`), it stays active for the next phase iff
//! `t1 > max(tid, t2)`, adopting `tid = t1`. Each phase at least halves the
//! number of active nodes. When a temporary ID survives a full circle and
//! returns to the node currently holding it, that node is the unique
//! remaining active and declares itself leader.

use co_core::Role;
use co_net::{Context, Fingerprint, Port, Protocol, Snapshot};

/// Messages of Peterson's algorithm.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PetersonMsg {
    /// A temporary ID travelling clockwise.
    Token(u64),
    /// Termination notification.
    Elected(u64),
}

/// A node running Peterson's algorithm on an oriented ring.
#[derive(Clone, Debug)]
pub struct PetersonNode {
    id: u64,
    cw_port: Port,
    tid: u64,
    active: bool,
    /// The first token of the current phase, if already received.
    first_token: Option<u64>,
    role: Option<Role>,
    terminated: bool,
}

impl PetersonNode {
    /// Creates a node with the given (positive) ID and clockwise port.
    ///
    /// # Panics
    ///
    /// Panics if `id == 0`.
    #[must_use]
    pub fn new(id: u64, cw_port: Port) -> PetersonNode {
        assert!(id > 0, "IDs must be positive integers");
        PetersonNode {
            id,
            cw_port,
            tid: id,
            active: true,
            first_token: None,
            role: None,
            terminated: false,
        }
    }

    /// Whether the node is still an active contender.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.active
    }
}

impl Protocol<PetersonMsg> for PetersonNode {
    type Output = Role;

    fn on_start(&mut self, ctx: &mut Context<'_, PetersonMsg>) {
        ctx.send(self.cw_port, PetersonMsg::Token(self.tid));
    }

    fn on_message(&mut self, _port: Port, msg: PetersonMsg, ctx: &mut Context<'_, PetersonMsg>) {
        match msg {
            PetersonMsg::Token(t) => {
                if !self.active {
                    ctx.send(self.cw_port, PetersonMsg::Token(t));
                    return;
                }
                if self.first_token.is_none() {
                    // First token of the phase: t1.
                    if t == self.tid {
                        // Our temporary ID survived a full circle: sole
                        // active node left.
                        self.role = Some(Role::Leader);
                        ctx.send(self.cw_port, PetersonMsg::Elected(self.id));
                        return;
                    }
                    self.first_token = Some(t);
                    ctx.send(self.cw_port, PetersonMsg::Token(t));
                } else {
                    // Second token of the phase: t2.
                    let t1 = self.first_token.take().expect("just checked");
                    let t2 = t;
                    if t1 > self.tid && t1 > t2 {
                        // Stay active, champion the predecessor's ID.
                        self.tid = t1;
                        ctx.send(self.cw_port, PetersonMsg::Token(self.tid));
                    } else {
                        self.active = false;
                    }
                }
            }
            PetersonMsg::Elected(j) => {
                if j == self.id {
                    self.terminated = true;
                } else {
                    self.role = Some(Role::NonLeader);
                    ctx.send(self.cw_port, PetersonMsg::Elected(j));
                    self.terminated = true;
                }
            }
        }
    }

    fn is_terminated(&self) -> bool {
        self.terminated
    }

    fn output(&self) -> Option<Role> {
        self.role
    }
}

impl Snapshot for PetersonNode {
    type State = PetersonNode;

    fn extract(&self) -> PetersonNode {
        self.clone()
    }

    fn restore(&mut self, state: &PetersonNode) {
        *self = state.clone();
    }

    fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_u64(self.id);
        fp.write_usize(self.cw_port.index());
        fp.write_u64(self.tid);
        fp.write_bool(self.active);
        fp.write_u64(self.first_token.map_or(0, |t| t + 1));
        fp.write_u8(match self.role {
            None => 0,
            Some(Role::Leader) => 1,
            Some(Role::NonLeader) => 2,
        });
        fp.write_bool(self.terminated);
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_net::{Budget, Outcome, RingSpec, SchedulerKind, Simulation};

    fn run(
        spec: &RingSpec,
        kind: SchedulerKind,
        seed: u64,
    ) -> Simulation<PetersonMsg, PetersonNode> {
        let nodes = (0..spec.len())
            .map(|i| PetersonNode::new(spec.id(i), spec.cw_port(i)))
            .collect();
        let mut sim = Simulation::new(spec.wiring(), nodes, kind.build(seed));
        let report = sim.run(Budget::default());
        assert!(
            matches!(
                report.outcome,
                Outcome::QuiescentTerminated | Outcome::TerminatedNonQuiescent
            ),
            "{kind}: {}",
            report.outcome
        );
        sim
    }

    #[test]
    fn elects_unique_leader_under_all_schedulers() {
        // NOTE: Peterson elects the node that ends up holding the maximal
        // temporary ID — not necessarily the max-ID node itself; we assert
        // exactly one leader and agreement.
        let spec = RingSpec::oriented(vec![4, 9, 1, 6, 2, 8, 3]);
        for kind in SchedulerKind::ALL {
            let sim = run(&spec, kind, 5);
            let leaders: Vec<usize> = (0..7)
                .filter(|&i| sim.node(i).output() == Some(Role::Leader))
                .collect();
            assert_eq!(leaders.len(), 1, "{kind}: leaders {leaders:?}");
            for i in 0..7 {
                assert!(sim.node(i).output().is_some(), "{kind} node {i} undecided");
            }
        }
    }

    #[test]
    fn single_node() {
        let spec = RingSpec::oriented(vec![5]);
        let sim = run(&spec, SchedulerKind::Fifo, 0);
        assert_eq!(sim.node(0).output(), Some(Role::Leader));
    }

    #[test]
    fn two_nodes() {
        let spec = RingSpec::oriented(vec![3, 8]);
        let sim = run(&spec, SchedulerKind::Lifo, 2);
        let leaders = (0..2)
            .filter(|&i| sim.node(i).output() == Some(Role::Leader))
            .count();
        assert_eq!(leaders, 1);
    }

    #[test]
    fn message_complexity_beats_quadratic() {
        let n = 64u64;
        let spec = RingSpec::oriented((1..=n).rev().collect());
        let sim = run(&spec, SchedulerKind::Fifo, 0);
        let sent = sim.stats().total_sent;
        // Peterson's bound: 2n log n + O(n) tokens + n elected.
        let bound = (2.2 * n as f64 * 64f64.log2() + 3.0 * n as f64) as u64;
        assert!(sent <= bound, "{sent} > {bound}");
    }
}
