//! Hirschberg–Sinclair (1980): bidirectional probing, `O(n log n)` messages.
//!
//! A candidate in phase `k` probes `2^k` hops in both directions. Probes are
//! swallowed by any node with a larger ID; probes that survive their full
//! range are answered with a reply. A candidate that collects replies from
//! both directions enters the next phase; a probe that travels all the way
//! back to its originator proves the originator is the global maximum.

use co_core::Role;
use co_net::{Context, Fingerprint, Port, Protocol, Snapshot};

/// Messages of the Hirschberg–Sinclair algorithm.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum HsMsg {
    /// A probe travelling outward from a candidate.
    Probe {
        /// Originating candidate's ID.
        id: u64,
        /// Phase number (range is `2^phase`).
        phase: u32,
        /// Remaining hops.
        ttl: u64,
    },
    /// A reply travelling back toward the candidate.
    Reply {
        /// The candidate being answered.
        id: u64,
        /// Phase number.
        phase: u32,
    },
    /// Termination notification.
    Elected(u64),
}

/// A node running Hirschberg–Sinclair on an oriented ring.
#[derive(Clone, Debug)]
pub struct HirschbergSinclairNode {
    id: u64,
    phase: u32,
    awaiting_replies: u8,
    active: bool,
    role: Option<Role>,
    terminated: bool,
}

impl HirschbergSinclairNode {
    /// Creates a node with the given (positive) ID.
    ///
    /// The ring must be oriented, but HS does not otherwise care which port
    /// is clockwise — probes are symmetric.
    ///
    /// # Panics
    ///
    /// Panics if `id == 0`.
    #[must_use]
    pub fn new(id: u64) -> HirschbergSinclairNode {
        assert!(id > 0, "IDs must be positive integers");
        HirschbergSinclairNode {
            id,
            phase: 0,
            awaiting_replies: 2,
            active: true,
            role: None,
            terminated: false,
        }
    }

    /// The node's current phase.
    #[must_use]
    pub fn phase(&self) -> u32 {
        self.phase
    }

    fn become_leader(&mut self, ctx: &mut Context<'_, HsMsg>) {
        self.role = Some(Role::Leader);
        ctx.send(Port::One, HsMsg::Elected(self.id));
    }
}

impl Protocol<HsMsg> for HirschbergSinclairNode {
    type Output = Role;

    fn on_start(&mut self, ctx: &mut Context<'_, HsMsg>) {
        for port in Port::ALL {
            ctx.send(
                port,
                HsMsg::Probe {
                    id: self.id,
                    phase: 0,
                    ttl: 1,
                },
            );
        }
    }

    fn on_message(&mut self, port: Port, msg: HsMsg, ctx: &mut Context<'_, HsMsg>) {
        match msg {
            HsMsg::Probe { id, phase, ttl } => {
                if id == self.id {
                    // Our probe circumnavigated the ring: we are the
                    // maximum. Both directions' probes may return; announce
                    // only once.
                    if self.role.is_none() {
                        self.become_leader(ctx);
                    }
                } else if id > self.id {
                    self.active = false;
                    if ttl > 1 {
                        ctx.send(
                            port.opposite(),
                            HsMsg::Probe {
                                id,
                                phase,
                                ttl: ttl - 1,
                            },
                        );
                    } else {
                        // End of range: answer back toward the candidate.
                        ctx.send(port, HsMsg::Reply { id, phase });
                    }
                }
                // id < self.id: swallow — the candidate loses here.
            }
            HsMsg::Reply { id, phase } => {
                if id != self.id {
                    ctx.send(port.opposite(), HsMsg::Reply { id, phase });
                } else if self.active && phase == self.phase {
                    self.awaiting_replies -= 1;
                    if self.awaiting_replies == 0 {
                        self.phase += 1;
                        self.awaiting_replies = 2;
                        for out in Port::ALL {
                            ctx.send(
                                out,
                                HsMsg::Probe {
                                    id: self.id,
                                    phase: self.phase,
                                    ttl: 1 << self.phase,
                                },
                            );
                        }
                    }
                }
            }
            HsMsg::Elected(j) => {
                if j == self.id {
                    self.terminated = true;
                } else {
                    self.role = Some(Role::NonLeader);
                    ctx.send(port.opposite(), HsMsg::Elected(j));
                    self.terminated = true;
                }
            }
        }
    }

    fn is_terminated(&self) -> bool {
        self.terminated
    }

    fn output(&self) -> Option<Role> {
        self.role
    }
}

impl Snapshot for HirschbergSinclairNode {
    type State = HirschbergSinclairNode;

    fn extract(&self) -> HirschbergSinclairNode {
        self.clone()
    }

    fn restore(&mut self, state: &HirschbergSinclairNode) {
        *self = state.clone();
    }

    fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_u64(self.id);
        fp.write_u64(u64::from(self.phase));
        fp.write_u8(self.awaiting_replies);
        fp.write_bool(self.active);
        fp.write_u8(match self.role {
            None => 0,
            Some(Role::Leader) => 1,
            Some(Role::NonLeader) => 2,
        });
        fp.write_bool(self.terminated);
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_net::{Budget, Outcome, RingSpec, SchedulerKind, Simulation};

    fn run(
        spec: &RingSpec,
        kind: SchedulerKind,
        seed: u64,
    ) -> (Simulation<HsMsg, HirschbergSinclairNode>, Outcome) {
        let nodes = (0..spec.len())
            .map(|i| HirschbergSinclairNode::new(spec.id(i)))
            .collect();
        let mut sim = Simulation::new(spec.wiring(), nodes, kind.build(seed));
        let report = sim.run(Budget::default());
        (sim, report.outcome)
    }

    #[test]
    fn elects_max_under_all_schedulers() {
        let spec = RingSpec::oriented(vec![4, 9, 1, 6, 2, 8]);
        for kind in SchedulerKind::ALL {
            let (sim, outcome) = run(&spec, kind, 5);
            assert!(
                matches!(
                    outcome,
                    Outcome::QuiescentTerminated | Outcome::TerminatedNonQuiescent
                ),
                "{kind}: {outcome}"
            );
            assert_eq!(sim.node(1).output(), Some(Role::Leader), "{kind}");
            for i in [0usize, 2, 3, 4, 5] {
                assert_eq!(
                    sim.node(i).output(),
                    Some(Role::NonLeader),
                    "{kind} node {i}"
                );
            }
        }
    }

    #[test]
    fn single_node() {
        let spec = RingSpec::oriented(vec![5]);
        let (sim, outcome) = run(&spec, SchedulerKind::Fifo, 0);
        assert_eq!(sim.node(0).output(), Some(Role::Leader));
        assert!(matches!(
            outcome,
            Outcome::QuiescentTerminated | Outcome::TerminatedNonQuiescent
        ));
    }

    #[test]
    fn two_nodes() {
        let spec = RingSpec::oriented(vec![3, 8]);
        let (sim, _) = run(&spec, SchedulerKind::Random, 1);
        assert_eq!(sim.node(0).output(), Some(Role::NonLeader));
        assert_eq!(sim.node(1).output(), Some(Role::Leader));
    }

    #[test]
    fn message_complexity_is_n_log_n_shaped() {
        // Worst case bound: 8n(1 + log n) + n. Check we are well under it
        // and well under Chang-Roberts' quadratic worst case for descending
        // rings (CR's pathological input).
        let n = 64u64;
        let spec = RingSpec::oriented((1..=n).rev().collect());
        let (sim, _) = run(&spec, SchedulerKind::Fifo, 0);
        let sent = sim.stats().total_sent;
        let log_n = 64f64.log2();
        let hs_bound = (8.0 * n as f64 * (1.0 + log_n) + n as f64) as u64;
        assert!(sent <= hs_bound, "{sent} > {hs_bound}");
        let cr_worst = n * (n + 1) / 2 + n;
        assert!(sent < cr_worst, "{sent} should beat CR's {cr_worst}");
    }
}
