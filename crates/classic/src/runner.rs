//! Runners producing [`ElectionReport`]s for the classical baselines,
//! shaped identically to `co_core::runner` so the bench harness can compare
//! message complexities directly (experiment E8).

use crate::chang_roberts::{ChangRobertsNode, CrMsg};
use crate::franklin::{FranklinMsg, FranklinNode};
use crate::hirschberg_sinclair::{HirschbergSinclairNode, HsMsg};
use crate::peterson::{PetersonMsg, PetersonNode};
use co_core::election::{unique_leader, ElectionReport, Role};
use co_net::{Budget, Message, Protocol, RingSpec, SchedulerKind, Simulation};
use std::fmt;

/// The classical baselines, enumerable for sweeps.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Baseline {
    /// Chang–Roberts, unidirectional `O(n²)`.
    ChangRoberts,
    /// Hirschberg–Sinclair, bidirectional `O(n log n)`.
    HirschbergSinclair,
    /// Peterson, unidirectional `O(n log n)`.
    Peterson,
    /// Franklin, bidirectional `O(n log n)`.
    Franklin,
}

impl Baseline {
    /// All baselines in a fixed order.
    pub const ALL: [Baseline; 4] = [
        Baseline::ChangRoberts,
        Baseline::HirschbergSinclair,
        Baseline::Peterson,
        Baseline::Franklin,
    ];

    /// Runs this baseline on the given ring.
    #[must_use]
    pub fn run(self, spec: &RingSpec, scheduler: SchedulerKind, seed: u64) -> ElectionReport {
        match self {
            Baseline::ChangRoberts => run_chang_roberts(spec, scheduler, seed),
            Baseline::HirschbergSinclair => run_hirschberg_sinclair(spec, scheduler, seed),
            Baseline::Peterson => run_peterson(spec, scheduler, seed),
            Baseline::Franklin => run_franklin(spec, scheduler, seed),
        }
    }

    /// Whether this baseline is guaranteed to elect the maximum-ID node
    /// (Peterson elects a unique leader, but not necessarily the maximum).
    #[must_use]
    pub fn elects_max(self) -> bool {
        !matches!(self, Baseline::Peterson)
    }
}

impl fmt::Display for Baseline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Baseline::ChangRoberts => "chang-roberts",
            Baseline::HirschbergSinclair => "hirschberg-sinclair",
            Baseline::Peterson => "peterson",
            Baseline::Franklin => "franklin",
        };
        f.write_str(name)
    }
}

fn run_generic<M, P>(
    spec: &RingSpec,
    nodes: Vec<P>,
    scheduler: SchedulerKind,
    seed: u64,
) -> ElectionReport
where
    M: Message,
    P: Protocol<M, Output = Role>,
{
    let mut sim: Simulation<M, P> = Simulation::new(spec.wiring(), nodes, scheduler.build(seed));
    let run = sim.run(Budget::default());
    let roles: Vec<Role> = sim
        .nodes()
        .iter()
        .map(|n| n.output().unwrap_or(Role::NonLeader))
        .collect();
    ElectionReport {
        outcome: run.outcome,
        total_messages: run.total_sent,
        steps: run.steps,
        leader: unique_leader(&roles),
        roles,
        predicted_messages: None,
    }
}

/// Runs Chang–Roberts on an oriented ring.
#[must_use]
pub fn run_chang_roberts(spec: &RingSpec, scheduler: SchedulerKind, seed: u64) -> ElectionReport {
    let nodes: Vec<ChangRobertsNode> = (0..spec.len())
        .map(|i| ChangRobertsNode::new(spec.id(i), spec.cw_port(i)))
        .collect();
    run_generic::<CrMsg, _>(spec, nodes, scheduler, seed)
}

/// Runs Hirschberg–Sinclair on an oriented ring.
#[must_use]
pub fn run_hirschberg_sinclair(
    spec: &RingSpec,
    scheduler: SchedulerKind,
    seed: u64,
) -> ElectionReport {
    let nodes: Vec<HirschbergSinclairNode> = (0..spec.len())
        .map(|i| HirschbergSinclairNode::new(spec.id(i)))
        .collect();
    run_generic::<HsMsg, _>(spec, nodes, scheduler, seed)
}

/// Runs Peterson on an oriented ring.
#[must_use]
pub fn run_peterson(spec: &RingSpec, scheduler: SchedulerKind, seed: u64) -> ElectionReport {
    let nodes: Vec<PetersonNode> = (0..spec.len())
        .map(|i| PetersonNode::new(spec.id(i), spec.cw_port(i)))
        .collect();
    run_generic::<PetersonMsg, _>(spec, nodes, scheduler, seed)
}

/// Runs Franklin on an oriented ring.
#[must_use]
pub fn run_franklin(spec: &RingSpec, scheduler: SchedulerKind, seed: u64) -> ElectionReport {
    let nodes: Vec<FranklinNode> = (0..spec.len())
        .map(|i| FranklinNode::new(spec.id(i), spec.cw_port(i)))
        .collect();
    run_generic::<FranklinMsg, _>(spec, nodes, scheduler, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_baselines_elect_one_leader() {
        let spec = RingSpec::oriented(vec![12, 5, 9, 3, 17, 8]);
        for baseline in Baseline::ALL {
            for kind in SchedulerKind::ALL {
                let report = baseline.run(&spec, kind, 21);
                let leader = report
                    .leader
                    .unwrap_or_else(|| panic!("{baseline} under {kind}: no unique leader"));
                if baseline.elects_max() {
                    assert_eq!(leader, 4, "{baseline} under {kind}");
                }
            }
        }
    }

    #[test]
    fn complexity_ordering_on_descending_ring() {
        // On CR's worst case, the O(n log n) algorithms send fewer messages.
        let n = 64u64;
        let spec = RingSpec::oriented((1..=n).rev().collect());
        let cr = run_chang_roberts(&spec, SchedulerKind::Fifo, 0).total_messages;
        for baseline in [
            Baseline::HirschbergSinclair,
            Baseline::Peterson,
            Baseline::Franklin,
        ] {
            let m = baseline.run(&spec, SchedulerKind::Fifo, 0).total_messages;
            assert!(m < cr, "{baseline}: {m} >= CR's {cr}");
        }
    }

    #[test]
    fn degenerate_rings() {
        for n in [1usize, 2] {
            let spec = RingSpec::oriented((1..=n as u64).collect());
            for baseline in Baseline::ALL {
                let report = baseline.run(&spec, SchedulerKind::Random, 13);
                assert!(report.leader.is_some(), "{baseline} n={n}");
            }
        }
    }
}
