//! Fully defective channels applied to classical algorithms (experiment E0).
//!
//! The paper's model erases the content of every message in transit. This
//! module wraps any content-carrying protocol in a channel that performs
//! exactly that corruption: the receiver always sees the same canonical
//! "noise" value regardless of what was sent. Classical algorithms, whose
//! correctness rests on comparing IDs inside messages, break immediately —
//! the sanity check motivating content-oblivious design.

use co_net::{Context, Message, Port, Protocol};

/// A message type with a canonical fully-corrupted value.
///
/// The corrupted value models what a receiver in a fully defective network
/// observes: the message exists but carries no recoverable information, so
/// *every* delivery looks identical.
pub trait Corruptible: Message {
    /// The canonical noise value every delivery is replaced with.
    fn corrupted() -> Self;
}

impl Corruptible for crate::chang_roberts::CrMsg {
    fn corrupted() -> Self {
        // All messages are indistinguishable; a receiver cannot even tell
        // `Candidate` from `Elected`. We model the erasure as the lowest
        // candidate value (content zeroed).
        crate::chang_roberts::CrMsg::Candidate(0)
    }
}

impl Corruptible for crate::peterson::PetersonMsg {
    fn corrupted() -> Self {
        crate::peterson::PetersonMsg::Token(0)
    }
}

impl Corruptible for crate::franklin::FranklinMsg {
    fn corrupted() -> Self {
        crate::franklin::FranklinMsg::Bid(0)
    }
}

impl Corruptible for crate::hirschberg_sinclair::HsMsg {
    fn corrupted() -> Self {
        crate::hirschberg_sinclair::HsMsg::Probe {
            id: 0,
            phase: 0,
            ttl: 1,
        }
    }
}

/// Wraps a protocol so that every delivered message is corrupted to
/// [`Corruptible::corrupted`] before the inner protocol sees it.
///
/// Sending is unchanged — corruption happens in the channel, and erasing on
/// delivery is observationally identical to erasing in transit.
#[derive(Clone, Debug)]
pub struct Defective<P> {
    inner: P,
}

impl<P> Defective<P> {
    /// Wraps `inner` behind fully defective channels.
    #[must_use]
    pub fn new(inner: P) -> Defective<P> {
        Defective { inner }
    }

    /// The wrapped protocol.
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<M, P> Protocol<M> for Defective<P>
where
    M: Corruptible,
    P: Protocol<M>,
{
    type Output = P::Output;

    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        self.inner.on_start(ctx);
    }

    fn on_message(&mut self, port: Port, _msg: M, ctx: &mut Context<'_, M>) {
        self.inner.on_message(port, M::corrupted(), ctx);
    }

    fn is_terminated(&self) -> bool {
        self.inner.is_terminated()
    }

    fn output(&self) -> Option<P::Output> {
        self.inner.output()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chang_roberts::{ChangRobertsNode, CrMsg};
    use co_core::Role;
    use co_net::{Budget, RingSpec, SchedulerKind, Simulation};

    #[test]
    fn chang_roberts_breaks_under_full_defectiveness() {
        // E0: with content erased, every candidate looks like Candidate(0),
        // which every node swallows — nobody is ever elected.
        let spec = RingSpec::oriented(vec![3, 7, 2, 5]);
        let nodes = (0..spec.len())
            .map(|i| Defective::new(ChangRobertsNode::new(spec.id(i), spec.cw_port(i))))
            .collect();
        let mut sim: Simulation<CrMsg, Defective<ChangRobertsNode>> =
            Simulation::new(spec.wiring(), nodes, SchedulerKind::Fifo.build(0));
        let report = sim.run(Budget::default());
        // The network dies out with zero leaders.
        let leaders = (0..4)
            .filter(|&i| sim.node(i).output() == Some(Role::Leader))
            .count();
        assert_eq!(leaders, 0, "no node should win under corruption");
        assert!(
            report.total_sent <= 4,
            "all candidates swallowed at first hop"
        );
    }

    #[test]
    fn healthy_channel_comparison() {
        // The same ring *without* corruption elects correctly — the failure
        // above is the channel's fault, not the algorithm's.
        let spec = RingSpec::oriented(vec![3, 7, 2, 5]);
        let report = crate::runner::run_chang_roberts(&spec, SchedulerKind::Fifo, 0);
        assert_eq!(report.leader, Some(1));
    }
}
