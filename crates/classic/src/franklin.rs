//! Franklin (1982): bidirectional `O(n log n)` leader election.
//!
//! Every active node sends its ID in both directions. After receiving the
//! IDs of its nearest active neighbours on both sides it stays active iff
//! its own ID beats both; at least half of the active nodes are eliminated
//! per phase. A node receiving its *own* ID is the sole survivor and
//! declares itself leader. Relays forward everything.

use co_core::Role;
use co_net::{Context, Fingerprint, Port, Protocol, Snapshot};
use std::collections::VecDeque;

/// Messages of Franklin's algorithm.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FranklinMsg {
    /// An active node's ID travelling toward its active neighbours.
    Bid(u64),
    /// Termination notification.
    Elected(u64),
}

/// A node running Franklin's algorithm on an oriented ring.
#[derive(Clone, Debug)]
pub struct FranklinNode {
    id: u64,
    cw_port: Port,
    active: bool,
    /// Bids received from each port, not yet consumed (phase alignment is
    /// guaranteed by per-channel FIFO: the k-th bid from a side belongs to
    /// phase k).
    pending: [VecDeque<u64>; 2],
    role: Option<Role>,
    terminated: bool,
}

impl FranklinNode {
    /// Creates a node with the given (positive) ID and clockwise port.
    ///
    /// # Panics
    ///
    /// Panics if `id == 0`.
    #[must_use]
    pub fn new(id: u64, cw_port: Port) -> FranklinNode {
        assert!(id > 0, "IDs must be positive integers");
        FranklinNode {
            id,
            cw_port,
            active: true,
            pending: [VecDeque::new(), VecDeque::new()],
            role: None,
            terminated: false,
        }
    }

    /// Whether the node is still an active contender.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.active
    }

    fn send_bids(&self, ctx: &mut Context<'_, FranklinMsg>) {
        for port in Port::ALL {
            ctx.send(port, FranklinMsg::Bid(self.id));
        }
    }

    /// On demotion to relay, any bids buffered while active belong to peers
    /// farther away and must continue travelling.
    fn flush_pending(&mut self, ctx: &mut Context<'_, FranklinMsg>) {
        for port in Port::ALL {
            while let Some(bid) = self.pending[port.index()].pop_front() {
                ctx.send(port.opposite(), FranklinMsg::Bid(bid));
            }
        }
    }
}

impl Protocol<FranklinMsg> for FranklinNode {
    type Output = Role;

    fn on_start(&mut self, ctx: &mut Context<'_, FranklinMsg>) {
        self.send_bids(ctx);
    }

    fn on_message(&mut self, port: Port, msg: FranklinMsg, ctx: &mut Context<'_, FranklinMsg>) {
        match msg {
            FranklinMsg::Bid(bid) => {
                if !self.active {
                    ctx.send(port.opposite(), FranklinMsg::Bid(bid));
                    return;
                }
                if bid == self.id {
                    // Our bid travelled the whole ring: sole active node.
                    if self.role.is_none() {
                        self.role = Some(Role::Leader);
                        ctx.send(self.cw_port, FranklinMsg::Elected(self.id));
                    }
                    return;
                }
                self.pending[port.index()].push_back(bid);
                if !self.pending[0].is_empty() && !self.pending[1].is_empty() {
                    let a = self.pending[0].pop_front().expect("non-empty");
                    let b = self.pending[1].pop_front().expect("non-empty");
                    if self.id > a.max(b) {
                        // Survived the phase: bid again.
                        self.send_bids(ctx);
                    } else {
                        self.active = false;
                        self.flush_pending(ctx);
                    }
                }
            }
            FranklinMsg::Elected(j) => {
                if j == self.id {
                    self.terminated = true;
                } else {
                    self.role = Some(Role::NonLeader);
                    ctx.send(port.opposite(), FranklinMsg::Elected(j));
                    self.terminated = true;
                }
            }
        }
    }

    fn is_terminated(&self) -> bool {
        self.terminated
    }

    fn output(&self) -> Option<Role> {
        self.role
    }
}

impl Snapshot for FranklinNode {
    type State = FranklinNode;

    fn extract(&self) -> FranklinNode {
        self.clone()
    }

    fn restore(&mut self, state: &FranklinNode) {
        *self = state.clone();
    }

    fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_u64(self.id);
        fp.write_usize(self.cw_port.index());
        fp.write_bool(self.active);
        for side in &self.pending {
            fp.write_usize(side.len());
            for &bid in side {
                fp.write_u64(bid);
            }
        }
        fp.write_u8(match self.role {
            None => 0,
            Some(Role::Leader) => 1,
            Some(Role::NonLeader) => 2,
        });
        fp.write_bool(self.terminated);
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_net::{Budget, Outcome, RingSpec, SchedulerKind, Simulation};

    fn run(
        spec: &RingSpec,
        kind: SchedulerKind,
        seed: u64,
    ) -> Simulation<FranklinMsg, FranklinNode> {
        let nodes = (0..spec.len())
            .map(|i| FranklinNode::new(spec.id(i), spec.cw_port(i)))
            .collect();
        let mut sim = Simulation::new(spec.wiring(), nodes, kind.build(seed));
        let report = sim.run(Budget::default());
        assert!(
            matches!(
                report.outcome,
                Outcome::QuiescentTerminated | Outcome::TerminatedNonQuiescent
            ),
            "{kind}: {}",
            report.outcome
        );
        sim
    }

    #[test]
    fn elects_max_under_all_schedulers() {
        let spec = RingSpec::oriented(vec![4, 9, 1, 6, 2, 8, 3, 5]);
        for kind in SchedulerKind::ALL {
            let sim = run(&spec, kind, 7);
            assert_eq!(sim.node(1).output(), Some(Role::Leader), "{kind}");
            for i in (0..8).filter(|&i| i != 1) {
                assert_eq!(
                    sim.node(i).output(),
                    Some(Role::NonLeader),
                    "{kind} node {i}"
                );
            }
        }
    }

    #[test]
    fn single_node() {
        let spec = RingSpec::oriented(vec![5]);
        let sim = run(&spec, SchedulerKind::Fifo, 0);
        assert_eq!(sim.node(0).output(), Some(Role::Leader));
    }

    #[test]
    fn two_nodes() {
        let spec = RingSpec::oriented(vec![3, 8]);
        let sim = run(&spec, SchedulerKind::Random, 4);
        assert_eq!(sim.node(0).output(), Some(Role::NonLeader));
        assert_eq!(sim.node(1).output(), Some(Role::Leader));
    }

    #[test]
    fn message_complexity_beats_quadratic() {
        let n = 64u64;
        let spec = RingSpec::oriented((1..=n).rev().collect());
        let sim = run(&spec, SchedulerKind::Fifo, 0);
        let sent = sim.stats().total_sent;
        // 2n bids per phase, ≤ log n + 1 phases, + n elected.
        let bound = (2.0 * n as f64 * (64f64.log2() + 1.0) + 2.0 * n as f64) as u64;
        assert!(sent <= bound, "{sent} > {bound}");
    }
}
