//! Chang–Roberts as straight-line `async fn` node logic.
//!
//! The async twin of [`ChangRobertsNode`](crate::ChangRobertsNode), written
//! over [`co_net::runtime`]. Unlike Algorithm 1 (stabilizing), Chang–Roberts
//! *terminates*: the future returns the node's final [`Role`], which is the
//! async facade's termination event — the node thereafter ignores all
//! deliveries, exactly like
//! [`Protocol::is_terminated`](co_net::Protocol::is_terminated).
//!
//! Both representations compile onto identical engine events and produce
//! byte-identical [`RunReport`](co_net::RunReport)s and
//! [`SimStats`](co_net::SimStats) under every scheduler and under
//! record/replay — `tests/async_equivalence.rs` pins this.

use crate::chang_roberts::CrMsg;
use co_core::Role;
use co_net::runtime::{AsyncRing, NodeFuture, NodeHandle};
use co_net::{Port, RingSpec, Scheduler};

/// The Chang–Roberts node program as a boxed future.
///
/// # Panics
///
/// Panics if `id == 0`.
#[must_use]
pub fn chang_roberts_future(
    id: u64,
    cw_port: Port,
    h: NodeHandle<CrMsg, Role>,
) -> NodeFuture<Role> {
    assert!(id > 0, "IDs must be positive integers");
    Box::pin(async move {
        h.send(cw_port, CrMsg::Candidate(id));
        loop {
            let (_, msg) = h.recv().await;
            match msg {
                CrMsg::Candidate(j) if j > id => {
                    h.send(cw_port, CrMsg::Candidate(j));
                }
                CrMsg::Candidate(j) if j == id => {
                    // Our ID survived the whole ring: we are the maximum.
                    h.publish(Role::Leader);
                    h.send(cw_port, CrMsg::Elected(id));
                }
                CrMsg::Candidate(_) => {} // swallow smaller IDs
                CrMsg::Elected(j) if j == id => {
                    // Our own notification returned: everyone knows.
                    return Role::Leader;
                }
                CrMsg::Elected(j) => {
                    h.send(cw_port, CrMsg::Elected(j));
                    return Role::NonLeader;
                }
            }
        }
    })
}

/// Builds an [`AsyncRing`] running Chang–Roberts on `spec`.
#[must_use]
pub fn chang_roberts_async_ring(
    spec: &RingSpec,
    scheduler: Box<dyn Scheduler>,
) -> AsyncRing<CrMsg, Role> {
    let ids: Vec<u64> = (0..spec.len()).map(|i| spec.id(i)).collect();
    let cw_ports: Vec<Port> = (0..spec.len()).map(|i| spec.cw_port(i)).collect();
    AsyncRing::new(spec.wiring(), scheduler, move |i, h| {
        chang_roberts_future(ids[i], cw_ports[i], h)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_net::{Budget, Outcome, SchedulerKind};

    #[test]
    fn async_chang_roberts_elects_and_terminates() {
        let spec = RingSpec::oriented(vec![4, 9, 1, 6]);
        for kind in SchedulerKind::ALL {
            let mut ring = chang_roberts_async_ring(&spec, kind.build(3));
            let report = ring.run(Budget::default());
            assert_eq!(report.outcome, Outcome::QuiescentTerminated, "{kind}");
            let outputs = ring.outputs();
            assert_eq!(outputs[1], Some(Role::Leader), "{kind}");
            for i in [0usize, 2, 3] {
                assert_eq!(outputs[i], Some(Role::NonLeader), "{kind}");
            }
        }
    }

    #[test]
    fn message_counts_match_the_classic_analysis() {
        // IDs descending clockwise: candidate of the k-th node travels k
        // hops, total n(n+1)/2 candidate messages + n elected.
        let n = 16u64;
        let spec = RingSpec::oriented((1..=n).rev().collect());
        let mut ring = chang_roberts_async_ring(&spec, SchedulerKind::Fifo.build(0));
        let report = ring.run(Budget::default());
        assert_eq!(report.total_sent, n * (n + 1) / 2 + n);
    }
}
