//! Registry entries for the content-carrying baselines.
//!
//! This module is the proof of the registry seam: onboarding each classic
//! protocol into the determinism toolkit — record → replay byte-identical,
//! ddmin shrinking via the protocol-agnostic [`UniqueLeaderMonitor`],
//! snapshot fingerprints — takes exactly one [`RingProtocol`] impl and one
//! [`ProtocolSpec::of`] builder chain here, with zero edits to the command
//! layer.
//!
//! Capability surface: the baselines read message *content*, so none are
//! batchable (run-batching is certified only for `Pulse` protocols), none
//! are explore-safe (the explorer enumerates `Pulse` schedules) and none
//! are fleet-capable (fleet rings are `Pulse`-only). All four join the
//! shrink toolkit through the unique-leader monitor, and Chang–Roberts has
//! an async twin ([`crate::chang_roberts_async`]).

use crate::chang_roberts::{ChangRobertsNode, CrMsg};
use crate::franklin::{FranklinMsg, FranklinNode};
use crate::hirschberg_sinclair::{HirschbergSinclairNode, HsMsg};
use crate::peterson::{PetersonMsg, PetersonNode};
use co_core::registry::{
    role_leaders, MonitoredProtocol, ProtocolSpec, RingProtocol, UniqueLeaderMonitor,
};
use co_net::RingSpec;

/// Chang–Roberts definition (unidirectional, `O(n²)` messages).
struct ChangRobertsDef;

impl RingProtocol for ChangRobertsDef {
    type Msg = CrMsg;
    type Node = ChangRobertsNode;

    fn nodes(spec: &RingSpec) -> Vec<ChangRobertsNode> {
        (0..spec.len())
            .map(|i| ChangRobertsNode::new(spec.id(i), spec.cw_port(i)))
            .collect()
    }

    fn leader_positions(nodes: &[ChangRobertsNode]) -> Vec<usize> {
        role_leaders(nodes)
    }
}

/// Hirschberg–Sinclair definition (bidirectional, `O(n log n)` messages).
struct HirschbergSinclairDef;

impl RingProtocol for HirschbergSinclairDef {
    type Msg = HsMsg;
    type Node = HirschbergSinclairNode;

    fn nodes(spec: &RingSpec) -> Vec<HirschbergSinclairNode> {
        (0..spec.len())
            .map(|i| HirschbergSinclairNode::new(spec.id(i)))
            .collect()
    }

    fn leader_positions(nodes: &[HirschbergSinclairNode]) -> Vec<usize> {
        role_leaders(nodes)
    }
}

/// Peterson definition (unidirectional, `O(n log n)` messages).
struct PetersonDef;

impl RingProtocol for PetersonDef {
    type Msg = PetersonMsg;
    type Node = PetersonNode;

    fn nodes(spec: &RingSpec) -> Vec<PetersonNode> {
        (0..spec.len())
            .map(|i| PetersonNode::new(spec.id(i), spec.cw_port(i)))
            .collect()
    }

    fn leader_positions(nodes: &[PetersonNode]) -> Vec<usize> {
        role_leaders(nodes)
    }
}

/// Franklin definition (bidirectional, `O(n log n)` messages).
struct FranklinDef;

impl RingProtocol for FranklinDef {
    type Msg = FranklinMsg;
    type Node = FranklinNode;

    fn nodes(spec: &RingSpec) -> Vec<FranklinNode> {
        (0..spec.len())
            .map(|i| FranklinNode::new(spec.id(i), spec.cw_port(i)))
            .collect()
    }

    fn leader_positions(nodes: &[FranklinNode]) -> Vec<usize> {
        role_leaders(nodes)
    }
}

macro_rules! monitored {
    ($def:ty) => {
        impl MonitoredProtocol for $def {
            type Monitor = UniqueLeaderMonitor;

            fn monitor() -> UniqueLeaderMonitor {
                UniqueLeaderMonitor::new()
            }

            fn violated(monitor: &UniqueLeaderMonitor) -> bool {
                monitor.violation().is_some()
            }
        }
    };
}

monitored!(ChangRobertsDef);
monitored!(HirschbergSinclairDef);
monitored!(PetersonDef);
monitored!(FranklinDef);

/// The classic baselines as registry entries, in [`crate::runner::Baseline`]
/// order.
#[must_use]
pub fn classic_entries() -> Vec<ProtocolSpec> {
    vec![
        ProtocolSpec::of::<ChangRobertsDef>(
            "chang-roberts",
            "classic",
            "Chang-Roberts baseline: unidirectional, O(n^2) messages",
        )
        .with_async_twin()
        .with_monitor::<ChangRobertsDef>(),
        ProtocolSpec::of::<HirschbergSinclairDef>(
            "hirschberg-sinclair",
            "classic",
            "Hirschberg-Sinclair baseline: bidirectional, O(n log n)",
        )
        .with_monitor::<HirschbergSinclairDef>(),
        ProtocolSpec::of::<PetersonDef>(
            "peterson",
            "classic",
            "Peterson baseline: unidirectional, O(n log n)",
        )
        .with_monitor::<PetersonDef>(),
        ProtocolSpec::of::<FranklinDef>(
            "franklin",
            "classic",
            "Franklin baseline: bidirectional, O(n log n)",
        )
        .with_monitor::<FranklinDef>(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_core::registry::{Capability, DriveOpts, Registry};
    use co_net::{SchedulerKind, Simulation};

    fn classic_registry() -> Registry {
        Registry::new(classic_entries())
    }

    #[test]
    fn entries_match_the_baseline_catalogue() {
        let reg = classic_registry();
        assert_eq!(
            reg.names(),
            vec![
                "chang-roberts",
                "hirschberg-sinclair",
                "peterson",
                "franklin"
            ]
        );
        for entry in reg.entries() {
            assert_eq!(entry.layer(), "classic", "{}", entry.name());
            assert!(entry.supports(Capability::Shrink), "{}", entry.name());
            assert!(!entry.supports(Capability::Batch), "{}", entry.name());
            assert!(!entry.supports(Capability::Explore), "{}", entry.name());
            assert!(!entry.supports(Capability::Fleet), "{}", entry.name());
        }
    }

    #[test]
    fn record_replay_round_trips_and_elects_the_max() {
        let spec = RingSpec::oriented(vec![4, 9, 2, 7]);
        for entry in classic_registry().entries() {
            for kind in SchedulerKind::ALL {
                let opts = DriveOpts::new(kind, 11);
                let rec = entry.record(&spec, &opts);
                let rep = entry.replay(&spec, &opts, &rec.picks);
                assert_eq!(rec.report, rep.report, "{} under {kind}", entry.name());
                assert_eq!(
                    rec.fingerprint,
                    rep.fingerprint,
                    "{} under {kind}",
                    entry.name()
                );
                // Every baseline elects exactly one leader; all but
                // Peterson elect the maximum ID (position 1 here).
                assert_eq!(rec.leaders.len(), 1, "{} under {kind}", entry.name());
                if entry.name() != "peterson" {
                    assert_eq!(rec.leaders, vec![1], "{} under {kind}", entry.name());
                }
            }
        }
    }

    #[test]
    fn correct_baselines_never_trip_the_unique_leader_monitor() {
        let spec = RingSpec::oriented(vec![3, 1, 4, 2]);
        for entry in classic_registry().entries() {
            let driver = entry.shrink_driver().expect("all baselines monitored");
            for kind in SchedulerKind::ALL {
                for seed in 0..4 {
                    assert!(
                        driver.hunt(&spec, kind, seed).is_none(),
                        "{} under {kind} seed {seed}",
                        entry.name()
                    );
                }
            }
        }
    }

    #[test]
    fn unique_leader_monitor_trips_on_a_double_election() {
        // Two "rings of one": both solo nodes elect themselves on start,
        // which on a shared simulation is exactly the double-leadership
        // pattern the monitor must latch. Built from two Chang-Roberts
        // nodes that are each their own neighbour pair.
        use crate::chang_roberts::ChangRobertsNode;
        use co_net::{Budget, RingSpec};

        let spec = RingSpec::oriented(vec![5, 5]);
        let nodes: Vec<ChangRobertsNode> = (0..2)
            // Same ID on both nodes: each forwards the other's candidacy
            // as its own and both declare themselves elected.
            .map(|i| ChangRobertsNode::new(5, spec.cw_port(i)))
            .collect();
        let mut sim = Simulation::new(spec.wiring(), nodes, SchedulerKind::Fifo.build(0));
        let mut monitor = UniqueLeaderMonitor::new();
        sim.run_observed(Budget::default(), &mut monitor);
        assert!(
            monitor.violation().is_some(),
            "duplicate IDs must double-elect under Chang-Roberts"
        );
    }
}
