//! Chang–Roberts (1979): unidirectional extrema-finding, `O(n²)` worst case.
//!
//! Every node sends its ID clockwise. A node forwards candidate IDs larger
//! than its own and swallows smaller ones; a node receiving its *own* ID
//! knows every other node yielded and becomes the leader, then circulates an
//! `Elected` notification on which all nodes terminate.

use co_core::Role;
use co_net::{Context, Fingerprint, Port, Protocol, Snapshot};

/// Messages of the Chang–Roberts algorithm.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CrMsg {
    /// A candidate ID still in the running.
    Candidate(u64),
    /// The election result, circulated once for termination.
    Elected(u64),
}

/// A node running Chang–Roberts on an oriented ring.
#[derive(Clone, Debug)]
pub struct ChangRobertsNode {
    id: u64,
    cw_port: Port,
    role: Option<Role>,
    leader_id: Option<u64>,
    terminated: bool,
}

impl ChangRobertsNode {
    /// Creates a node with the given (positive) ID and clockwise port.
    ///
    /// # Panics
    ///
    /// Panics if `id == 0`.
    #[must_use]
    pub fn new(id: u64, cw_port: Port) -> ChangRobertsNode {
        assert!(id > 0, "IDs must be positive integers");
        ChangRobertsNode {
            id,
            cw_port,
            role: None,
            leader_id: None,
            terminated: false,
        }
    }

    /// The ID of the elected leader, once known.
    #[must_use]
    pub fn leader_id(&self) -> Option<u64> {
        self.leader_id
    }
}

impl Protocol<CrMsg> for ChangRobertsNode {
    type Output = Role;

    fn on_start(&mut self, ctx: &mut Context<'_, CrMsg>) {
        ctx.send(self.cw_port, CrMsg::Candidate(self.id));
    }

    fn on_message(&mut self, _port: Port, msg: CrMsg, ctx: &mut Context<'_, CrMsg>) {
        match msg {
            CrMsg::Candidate(j) if j > self.id => {
                ctx.send(self.cw_port, CrMsg::Candidate(j));
            }
            CrMsg::Candidate(j) if j == self.id => {
                // Our ID survived the whole ring: we are the maximum.
                self.role = Some(Role::Leader);
                self.leader_id = Some(self.id);
                ctx.send(self.cw_port, CrMsg::Elected(self.id));
            }
            CrMsg::Candidate(_) => {} // swallow smaller IDs
            CrMsg::Elected(j) if j == self.id => {
                // Our own notification returned: everyone knows.
                self.terminated = true;
            }
            CrMsg::Elected(j) => {
                self.role = Some(Role::NonLeader);
                self.leader_id = Some(j);
                ctx.send(self.cw_port, CrMsg::Elected(j));
                self.terminated = true;
            }
        }
    }

    fn is_terminated(&self) -> bool {
        self.terminated
    }

    fn output(&self) -> Option<Role> {
        self.role
    }
}

impl Snapshot for ChangRobertsNode {
    type State = ChangRobertsNode;

    fn extract(&self) -> ChangRobertsNode {
        self.clone()
    }

    fn restore(&mut self, state: &ChangRobertsNode) {
        *self = state.clone();
    }

    fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_u64(self.id);
        fp.write_usize(self.cw_port.index());
        fp.write_u8(match self.role {
            None => 0,
            Some(Role::Leader) => 1,
            Some(Role::NonLeader) => 2,
        });
        fp.write_u64(self.leader_id.map_or(0, |id| id + 1));
        fp.write_bool(self.terminated);
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_net::{Budget, Outcome, RingSpec, SchedulerKind, Simulation};

    fn run(spec: &RingSpec, kind: SchedulerKind, seed: u64) -> Simulation<CrMsg, ChangRobertsNode> {
        let nodes = (0..spec.len())
            .map(|i| ChangRobertsNode::new(spec.id(i), spec.cw_port(i)))
            .collect();
        let mut sim = Simulation::new(spec.wiring(), nodes, kind.build(seed));
        let report = sim.run(Budget::default());
        assert_eq!(report.outcome, Outcome::QuiescentTerminated, "{kind}");
        sim
    }

    #[test]
    fn elects_max_everywhere() {
        let spec = RingSpec::oriented(vec![4, 9, 1, 6]);
        for kind in SchedulerKind::ALL {
            let sim = run(&spec, kind, 3);
            assert_eq!(sim.node(1).output(), Some(Role::Leader), "{kind}");
            for i in [0usize, 2, 3] {
                assert_eq!(sim.node(i).output(), Some(Role::NonLeader), "{kind}");
                assert_eq!(sim.node(i).leader_id(), Some(9));
            }
        }
    }

    #[test]
    fn single_node() {
        let spec = RingSpec::oriented(vec![5]);
        let sim = run(&spec, SchedulerKind::Fifo, 0);
        assert_eq!(sim.node(0).output(), Some(Role::Leader));
        // Candidate circles once (1 msg) + Elected circles once (1 msg).
        assert_eq!(sim.stats().total_sent, 2);
    }

    #[test]
    fn worst_case_is_quadratic() {
        // IDs descending clockwise: candidate of the k-th node travels k
        // hops, total n(n+1)/2 candidate messages + n elected.
        let n = 16u64;
        let spec = RingSpec::oriented((1..=n).rev().collect());
        let sim = run(&spec, SchedulerKind::Fifo, 0);
        assert_eq!(sim.stats().total_sent, n * (n + 1) / 2 + n);
    }

    #[test]
    fn best_case_is_linear() {
        // IDs ascending clockwise: every candidate dies after one hop except
        // the maximum: n + (n - 1)... candidate hops = (n-1)*1 + n, + n elected.
        let n = 16u64;
        let spec = RingSpec::oriented((1..=n).collect());
        let sim = run(&spec, SchedulerKind::Fifo, 0);
        assert_eq!(sim.stats().total_sent, (n - 1) + n + n);
    }
}
