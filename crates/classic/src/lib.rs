//! # `co-classic` — classical content-carrying leader-election baselines
//!
//! The related-work comparison of the paper (§1.2): ring leader election
//! with *reliable, content-carrying* messages. These are the algorithms the
//! content-oblivious setting must do without:
//!
//! | Algorithm | Direction | Worst-case messages |
//! |-----------|-----------|---------------------|
//! | [`chang_roberts`] (1979) | unidirectional | `O(n²)` |
//! | [`hirschberg_sinclair`] (1980) | bidirectional | `O(n log n)` |
//! | [`peterson`] (1982) | unidirectional | `O(n log n)` |
//! | [`franklin`] (1982) | bidirectional | `O(n log n)` |
//!
//! All four run on the same [`co_net`] substrate as the paper's algorithms,
//! just instantiated with payload-carrying message types instead of
//! [`co_net::Pulse`]. The [`defective`] module then demonstrates the flip
//! side: wrap any of them in the fully defective channel (content erased on
//! delivery) and the election breaks — which is exactly why the paper's
//! content-oblivious algorithms are needed.
//!
//! ```rust
//! use co_classic::runner;
//! use co_net::{RingSpec, SchedulerKind};
//!
//! let spec = RingSpec::oriented(vec![3, 7, 2, 5]);
//! let cr = runner::run_chang_roberts(&spec, SchedulerKind::Random, 1);
//! assert_eq!(cr.leader, Some(1));
//! let hs = runner::run_hirschberg_sinclair(&spec, SchedulerKind::Random, 1);
//! assert_eq!(hs.leader, Some(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chang_roberts;
pub mod chang_roberts_async;
pub mod defective;
pub mod franklin;
pub mod hirschberg_sinclair;
pub mod peterson;
pub mod registry;
pub mod runner;

pub use chang_roberts::ChangRobertsNode;
pub use chang_roberts_async::{chang_roberts_async_ring, chang_roberts_future};
pub use franklin::FranklinNode;
pub use hirschberg_sinclair::HirschbergSinclairNode;
pub use peterson::PetersonNode;
