//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this crate provides the
//! exact API surface the workspace uses under the same paths (`rand::Rng`,
//! `rand::SeedableRng`, `rand::rngs::StdRng`, `rand::seq::SliceRandom`),
//! backed by a deterministic xoshiro256++ generator seeded via splitmix64.
//!
//! Determinism is the contract: every simulation seed in the repo's tests and
//! experiment tables is tied to this generator's output stream. Changing the
//! algorithm below changes every recorded table, so treat the stream as part
//! of the public interface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniformly random words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with splitmix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from a generator (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges samplable uniformly (argument type of [`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Draws one value in the range; panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(usize, u64, u32);

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`; panics if it is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Returns the raw xoshiro256++ state, for snapshot/restore.
        ///
        /// Together with [`StdRng::from_state`] this lets simulations capture
        /// a generator mid-stream and later resume it at exactly the same
        /// point, which is what makes scheduler state replayable.
        #[must_use]
        pub fn to_state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`StdRng::to_state`].
        ///
        /// The resulting generator produces the identical output stream the
        /// captured one would have produced from that point on.
        #[must_use]
        pub fn from_state(s: [u64; 4]) -> StdRng {
            StdRng { s }
        }

        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                Self::splitmix64(&mut state),
                Self::splitmix64(&mut state),
                Self::splitmix64(&mut state),
                Self::splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (`rand::seq`).
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(1..=9);
            assert!((1..=9).contains(&y));
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 50 elements should move something");
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(11);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.to_state());
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn dyn_compatible_with_unsized_bounds() {
        fn takes_unsized<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0..10)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let x = takes_unsized(&mut rng);
        assert!(x < 10);
    }
}
