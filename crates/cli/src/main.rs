//! `co-ring` — run the paper's algorithms from the shell.

use co_cli::{run, Cli};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match Cli::parse(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("try: co-ring help");
            return ExitCode::FAILURE;
        }
    };
    let json = cli.opts.json;
    let output = run(&cli);
    if json && !output.json.is_null() {
        println!("{}", output.json.to_string_pretty());
    } else {
        print!("{}", output.text);
    }
    ExitCode::from(u8::try_from(output.code).unwrap_or(1))
}
