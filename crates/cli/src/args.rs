//! Argument parsing for `co-ring` (dependency-free by design: the offline
//! crate set justified in DESIGN.md has no CLI parser, and the grammar is
//! small).

use co_core::registry::{Capability, ProtocolSpec};
use co_core::IdScheme;
use co_net::{LatencyModel, LatencyPlan, Schedule, SchedulerKind};
use std::fmt;

/// Options shared by every subcommand.
#[derive(Clone, Debug)]
pub struct CommonOpts {
    /// Node IDs in clockwise order (`--ids 5,2,9`), or `--n N` for 1..=N.
    pub ids: Vec<u64>,
    /// Delivery adversary.
    pub scheduler: SchedulerKind,
    /// RNG seed for scheduler / sampling.
    pub seed: u64,
    /// Per-channel latency model (`zero` keeps the untimed fast path).
    pub latency: LatencyModel,
    /// Seed of the per-channel latency streams.
    pub latency_seed: u64,
    /// Emit machine-readable JSON instead of text.
    pub json: bool,
    /// Run-batched macro-stepping (`--batch on|off`). `None` means the flag
    /// was not given: most commands then run per-pulse, while `replay`
    /// follows the mode embedded in the recording.
    pub batch: Option<bool>,
}

impl CommonOpts {
    /// The latency plan these options describe (every channel gets
    /// [`CommonOpts::latency`], seeded by [`CommonOpts::latency_seed`]).
    #[must_use]
    pub fn latency_plan(&self) -> LatencyPlan {
        LatencyPlan::new(self.latency, self.latency_seed)
    }
}

impl Default for CommonOpts {
    fn default() -> CommonOpts {
        CommonOpts {
            ids: (1..=8).collect(),
            scheduler: SchedulerKind::Random,
            seed: 0,
            latency: LatencyModel::Zero,
            latency_seed: 0,
            json: false,
            batch: None,
        }
    }
}

/// A parsed `co-ring` invocation.
#[derive(Clone, Debug)]
pub struct Cli {
    /// The subcommand.
    pub command: Command,
    /// Shared options.
    pub opts: CommonOpts,
}

/// `co-ring` subcommands.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Run Algorithm 2 (quiescently terminating election).
    Elect,
    /// Run Algorithm 1 (stabilizing election).
    Stabilize,
    /// Run Algorithm 3 on a randomly port-scrambled ring.
    Orient {
        /// Virtual-ID scheme.
        scheme: IdScheme,
    },
    /// Run an anonymous-ring election (Algorithm 4 + Algorithm 3).
    Anonymous {
        /// Ring size.
        n: usize,
        /// The paper's `c` parameter.
        c: f64,
        /// Number of trials.
        trials: u64,
    },
    /// Elect, then compute the ring size at every node (Corollary 5).
    Compose,
    /// Print solitude patterns (Definition 21) for a range of IDs.
    Solitude {
        /// Largest ID to extract.
        max_id: u64,
    },
    /// Run a classical baseline for comparison.
    Baseline {
        /// Which baseline.
        which: co_classic::runner::Baseline,
    },
    /// Run the content-oblivious flood-echo wave on a general graph.
    Echo {
        /// Graph description (e.g. `ring:8`, `complete:5`, `path:4`).
        graph: GraphSpec,
        /// Root node of the wave.
        root: usize,
    },
    /// Regenerate the paper's experiment tables (the co-bench catalogue).
    Tables {
        /// Experiments to run (empty = all of E0–E22).
        exps: Vec<co_bench::Experiment>,
        /// Worker threads per experiment grid (0 = one per core).
        jobs: usize,
    },
    /// Run a fleet of independent concurrent ring elections (E21 harness).
    Fleet {
        /// Rings per round.
        rings: u64,
        /// Ring-size distribution (`4`, `uniform:3..9`, `mix:3,5,8`).
        sizes: co_net::fleet::RingSizes,
        /// Which election protocol every ring runs (must be
        /// fleet-capable; checked at parse time against the registry).
        protocol: ProtocolChoice,
        /// Probability a ring gets one spurious clockwise pulse.
        fault_rate: f64,
        /// Rounds to run (ignored when `duration_ms` is set).
        rounds: u64,
        /// Soft wall-clock stop: run whole rounds until this elapses.
        duration_ms: Option<u64>,
        /// Worker threads (0 = one per core).
        jobs: usize,
    },
    /// Run a protocol while recording a replayable delivery schedule.
    Record {
        /// Which protocol to drive.
        protocol: ProtocolChoice,
    },
    /// Deterministically replay a recorded schedule.
    Replay {
        /// Which protocol to drive.
        protocol: ProtocolChoice,
        /// The schedule to replay (from `record`, e.g. `0,3,2` or
        /// `batch:0,3,2`), carrying the delivery mode it was recorded under.
        schedule: RecordedSchedule,
    },
    /// Find a monitor-violating schedule and ddmin-minimize it.
    Shrink {
        /// Which protocol to drive (needs CCW-instance counters:
        /// `alg2` or `ungated`).
        protocol: ProtocolChoice,
    },
    /// Exhaustively explore every delivery order with fingerprint dedup.
    Explore {
        /// Which protocol to drive.
        protocol: ProtocolChoice,
        /// Configuration cap before giving up.
        max_configs: usize,
        /// Worker threads (0 = one per core, 1 = single-threaded).
        jobs: usize,
        /// Fingerprint dedup backend.
        dedup: co_net::DedupKind,
        /// Write resumable checkpoints to this path.
        checkpoint: Option<std::path::PathBuf>,
        /// Admitted configurations between checkpoint writes.
        checkpoint_every: usize,
        /// Resume from a checkpoint previously written by `--checkpoint`.
        resume: Option<std::path::PathBuf>,
        /// Frontier spill-to-disk high-water mark (0 = off).
        spill: usize,
        /// Directory for scratch files (mmap tables, spill files).
        scratch_dir: Option<std::path::PathBuf>,
    },
    /// Print the protocol registry as a name × capabilities table.
    Protocols,
    /// Print usage.
    Help,
}

/// A delivery schedule together with the delivery mode it was recorded
/// under.
///
/// `record --batch on` emits `batch:`-prefixed schedules because a pick in a
/// batched recording can stand for a whole fused pulse run — replaying those
/// picks per-pulse (or vice versa) would drive a different trajectory.
/// Schedules recorded per-pulse print bare (an optional `pulse:` prefix is
/// also accepted), so recordings from before the mode existed keep parsing
/// as per-pulse.
#[derive(Clone, Debug, PartialEq)]
pub struct RecordedSchedule {
    /// Whether the recording ran under run-batched macro-stepping.
    pub batch: bool,
    /// The recorded channel picks.
    pub picks: Schedule,
}

impl fmt::Display for RecordedSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.batch {
            write!(f, "batch:{}", self.picks)
        } else {
            write!(f, "{}", self.picks)
        }
    }
}

impl std::str::FromStr for RecordedSchedule {
    type Err = co_net::snapshot::ParseScheduleError;

    fn from_str(s: &str) -> Result<RecordedSchedule, Self::Err> {
        let s = s.trim();
        let (batch, picks) = if let Some(rest) = s.strip_prefix("batch:") {
            (true, rest)
        } else if let Some(rest) = s.strip_prefix("pulse:") {
            (false, rest)
        } else {
            (false, s)
        };
        Ok(RecordedSchedule {
            batch,
            picks: picks.parse()?,
        })
    }
}

/// Which registered protocol the `record`/`replay`/`shrink`/`explore`/
/// `fleet` commands drive: a thin handle into the workspace protocol
/// registry ([`co_bench::protocols`]).
///
/// Parsing resolves the name against the registry, so the set of valid
/// spellings — and the list printed on a parse error — extends itself when
/// a protocol is registered, with no CLI edit.
#[derive(Copy, Clone)]
pub struct ProtocolChoice {
    spec: &'static ProtocolSpec,
}

impl ProtocolChoice {
    /// Resolves a name that is statically known to be registered (internal
    /// defaults).
    ///
    /// # Panics
    ///
    /// Panics if `name` is not in the registry — a programming error, not
    /// an input error (user input goes through [`Cli::parse`]).
    #[must_use]
    pub fn named(name: &str) -> ProtocolChoice {
        ProtocolChoice {
            spec: co_bench::protocols()
                .get(name)
                .expect("default protocol is registered"),
        }
    }

    /// The registry entry behind this choice.
    #[must_use]
    pub fn spec(&self) -> &'static ProtocolSpec {
        self.spec
    }

    /// The canonical protocol name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.spec.name()
    }

    fn parse(s: &str) -> Result<ProtocolChoice, ParseError> {
        co_bench::protocols()
            .get(s)
            .map(|spec| ProtocolChoice { spec })
            .map_err(|e| err(e.to_string()))
    }
}

impl PartialEq for ProtocolChoice {
    fn eq(&self, other: &ProtocolChoice) -> bool {
        self.name() == other.name()
    }
}

impl Eq for ProtocolChoice {}

impl fmt::Debug for ProtocolChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProtocolChoice({})", self.name())
    }
}

impl fmt::Display for ProtocolChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A parsed `--graph` description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphSpec {
    /// The cycle `C_n`.
    Ring(usize),
    /// The complete graph `K_n`.
    Complete(usize),
    /// The path `P_n` (has bridges — the wave still floods it).
    Path(usize),
}

impl GraphSpec {
    /// Builds the multigraph.
    #[must_use]
    pub fn build(&self) -> co_net::graph::MultiGraph {
        use co_net::graph::MultiGraph;
        match *self {
            GraphSpec::Ring(n) => MultiGraph::ring(n),
            GraphSpec::Complete(n) => {
                let mut g = MultiGraph::new(n);
                for u in 0..n {
                    for v in u + 1..n {
                        g.add_edge(u, v);
                    }
                }
                g
            }
            GraphSpec::Path(n) => MultiGraph::path(n),
        }
    }

    fn parse(s: &str) -> Result<GraphSpec, ParseError> {
        let (kind, n) = s
            .split_once(':')
            .ok_or_else(|| err(format!("bad graph '{s}'; expected kind:N")))?;
        let n: usize = n
            .parse()
            .map_err(|_| err(format!("bad graph size in '{s}'")))?;
        if n == 0 {
            return Err(err("graph needs at least one node"));
        }
        match kind {
            "ring" => Ok(GraphSpec::Ring(n)),
            "complete" | "k" => Ok(GraphSpec::Complete(n)),
            "path" => Ok(GraphSpec::Path(n)),
            other => Err(err(format!("unknown graph kind '{other}'"))),
        }
    }
}

/// A CLI parsing failure (message for the user).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err(msg: impl Into<String>) -> ParseError {
    ParseError(msg.into())
}

fn parse_scheduler(s: &str) -> Result<SchedulerKind, ParseError> {
    // `Latency` is deliberately outside `SchedulerKind::ALL` (it models the
    // network, not an adversary), so it is matched by name here.
    if s == SchedulerKind::Latency.to_string() {
        return Ok(SchedulerKind::Latency);
    }
    SchedulerKind::ALL
        .into_iter()
        .find(|k| k.to_string() == s)
        .ok_or_else(|| {
            let mut names: Vec<String> =
                SchedulerKind::ALL.iter().map(ToString::to_string).collect();
            names.push(SchedulerKind::Latency.to_string());
            err(format!(
                "unknown scheduler '{s}'; one of: {}",
                names.join(", ")
            ))
        })
}

impl Cli {
    /// Parses an argument vector (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the offending argument.
    pub fn parse<I, S>(args: I) -> Result<Cli, ParseError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let args: Vec<String> = args.into_iter().map(|s| s.as_ref().to_owned()).collect();
        let mut it = args.iter().peekable();
        let Some(cmd) = it.next() else {
            return Ok(Cli {
                command: Command::Help,
                opts: CommonOpts::default(),
            });
        };

        let mut opts = CommonOpts::default();
        let mut scheme = IdScheme::Improved;
        let mut n: Option<usize> = None;
        let mut c = 1.0f64;
        let mut trials = 100u64;
        let mut max_id = 16u64;
        let mut which = co_classic::runner::Baseline::ChangRoberts;
        let mut graph = GraphSpec::Ring(8);
        let mut root = 0usize;
        let mut exps: Vec<co_bench::Experiment> = Vec::new();
        let mut jobs: Option<usize> = None;
        let mut rings = 10_000u64;
        let mut sizes = co_net::fleet::RingSizes::Uniform { min: 3, max: 9 };
        let mut fault_rate = 0.0f64;
        let mut rounds = 1u64;
        let mut duration_ms: Option<u64> = None;
        let mut protocol: Option<ProtocolChoice> = None;
        let mut schedule: Option<RecordedSchedule> = None;
        let mut max_configs = 2_000_000usize;
        let mut dedup = co_net::DedupKind::Exact;
        let mut checkpoint: Option<std::path::PathBuf> = None;
        let mut checkpoint_every = 100_000usize;
        let mut resume: Option<std::path::PathBuf> = None;
        let mut spill = 0usize;
        let mut scratch_dir: Option<std::path::PathBuf> = None;

        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> Result<&String, ParseError> {
                it.next()
                    .ok_or_else(|| err(format!("{name} requires a value")))
            };
            match flag.as_str() {
                "--ids" => {
                    opts.ids = value("--ids")?
                        .split(',')
                        .map(|p| {
                            p.trim()
                                .parse::<u64>()
                                .map_err(|_| err(format!("bad ID '{p}'")))
                        })
                        .collect::<Result<_, _>>()?;
                    if opts.ids.is_empty() || opts.ids.contains(&0) {
                        return Err(err("--ids needs positive integers"));
                    }
                }
                "--n" => {
                    let parsed: usize = value("--n")?
                        .parse()
                        .map_err(|_| err("--n must be a positive integer"))?;
                    if parsed == 0 {
                        return Err(err("--n must be positive"));
                    }
                    opts.ids = (1..=parsed as u64).collect();
                    n = Some(parsed);
                }
                "--scheduler" => opts.scheduler = parse_scheduler(value("--scheduler")?)?,
                "--seed" => {
                    opts.seed = value("--seed")?
                        .parse()
                        .map_err(|_| err("--seed must be an integer"))?;
                }
                "--latency" => {
                    opts.latency = value("--latency")?
                        .parse()
                        .map_err(|e| err(format!("bad --latency: {e}")))?;
                }
                "--latency-seed" => {
                    opts.latency_seed = value("--latency-seed")?
                        .parse()
                        .map_err(|_| err("--latency-seed must be an integer"))?;
                }
                "--json" => opts.json = true,
                "--batch" => {
                    opts.batch = match value("--batch")?.as_str() {
                        "on" => Some(true),
                        "off" => Some(false),
                        other => {
                            return Err(err(format!(
                                "--batch must be 'on' or 'off', got '{other}'"
                            )))
                        }
                    };
                }
                "--scheme" => {
                    scheme = match value("--scheme")?.as_str() {
                        "doubled" => IdScheme::Doubled,
                        "improved" => IdScheme::Improved,
                        other => return Err(err(format!("unknown scheme '{other}'"))),
                    };
                }
                "--c" => {
                    c = value("--c")?
                        .parse()
                        .map_err(|_| err("--c must be a float"))?;
                    if c <= 0.0 {
                        return Err(err("--c must be positive"));
                    }
                }
                "--trials" => {
                    trials = value("--trials")?
                        .parse()
                        .map_err(|_| err("--trials must be an integer"))?;
                }
                "--max-id" => {
                    max_id = value("--max-id")?
                        .parse()
                        .map_err(|_| err("--max-id must be an integer"))?;
                }
                "--exp" => {
                    let name = value("--exp")?;
                    exps.push(co_bench::Experiment::parse(name).ok_or_else(|| {
                        err(format!("unknown experiment '{name}'; expected e0..e22"))
                    })?);
                }
                "--jobs" => {
                    jobs = Some(
                        value("--jobs")?
                            .parse()
                            .map_err(|_| err("--jobs must be a number (0 = one per core)"))?,
                    );
                }
                "--rings" => {
                    rings = value("--rings")?
                        .parse()
                        .map_err(|_| err("--rings must be a positive integer"))?;
                    if rings == 0 {
                        return Err(err("--rings must be positive"));
                    }
                }
                "--ring-sizes" => {
                    sizes = value("--ring-sizes")?
                        .parse()
                        .map_err(|e| err(format!("bad --ring-sizes: {e}")))?;
                }
                "--fault-rate" => {
                    fault_rate = value("--fault-rate")?
                        .parse()
                        .map_err(|_| err("--fault-rate must be a float"))?;
                    if !(0.0..=1.0).contains(&fault_rate) {
                        return Err(err("--fault-rate must be in 0.0..=1.0"));
                    }
                }
                "--rounds" => {
                    rounds = value("--rounds")?
                        .parse()
                        .map_err(|_| err("--rounds must be a positive integer"))?;
                    if rounds == 0 {
                        return Err(err("--rounds must be positive"));
                    }
                }
                "--duration" => {
                    let secs: f64 = value("--duration")?
                        .parse()
                        .map_err(|_| err("--duration must be seconds (e.g. 10 or 2.5)"))?;
                    if !(secs > 0.0 && secs.is_finite()) {
                        return Err(err("--duration must be positive"));
                    }
                    duration_ms = Some((secs * 1000.0).ceil() as u64);
                }
                "--protocol" => protocol = Some(ProtocolChoice::parse(value("--protocol")?)?),
                "--schedule" => {
                    schedule = Some(
                        value("--schedule")?
                            .parse()
                            .map_err(|e| err(format!("bad --schedule: {e}")))?,
                    );
                }
                "--max-configs" => {
                    max_configs = value("--max-configs")?
                        .parse()
                        .map_err(|_| err("--max-configs must be an integer"))?;
                }
                "--dedup" => {
                    // The error lists the valid kinds from the backend
                    // itself (registry style), so a new backend extends the
                    // message with no CLI edit.
                    dedup = value("--dedup")?.parse().map_err(|e| err(format!("{e}")))?;
                }
                "--checkpoint" => checkpoint = Some(value("--checkpoint")?.into()),
                "--checkpoint-every" => {
                    checkpoint_every = value("--checkpoint-every")?
                        .parse()
                        .map_err(|_| err("--checkpoint-every must be an integer"))?;
                    if checkpoint_every == 0 {
                        return Err(err("--checkpoint-every must be positive"));
                    }
                }
                "--resume" => resume = Some(value("--resume")?.into()),
                "--spill" => {
                    spill = value("--spill")?
                        .parse()
                        .map_err(|_| err("--spill must be an integer (0 = off)"))?;
                }
                "--scratch-dir" => scratch_dir = Some(value("--scratch-dir")?.into()),
                "--graph" => graph = GraphSpec::parse(value("--graph")?)?,
                "--root" => {
                    root = value("--root")?
                        .parse()
                        .map_err(|_| err("--root must be a node index"))?;
                }
                "--algo" => {
                    use co_classic::runner::Baseline;
                    which = match value("--algo")?.as_str() {
                        "chang-roberts" | "cr" => Baseline::ChangRoberts,
                        "hirschberg-sinclair" | "hs" => Baseline::HirschbergSinclair,
                        "peterson" => Baseline::Peterson,
                        "franklin" => Baseline::Franklin,
                        other => return Err(err(format!("unknown baseline '{other}'"))),
                    };
                }
                other => return Err(err(format!("unknown flag '{other}'"))),
            }
        }

        let command = match cmd.as_str() {
            "elect" => Command::Elect,
            "stabilize" => Command::Stabilize,
            "orient" => Command::Orient { scheme },
            "anonymous" => Command::Anonymous {
                n: n.unwrap_or(8),
                c,
                trials,
            },
            "compose" => Command::Compose,
            "solitude" => Command::Solitude { max_id },
            "baseline" => Command::Baseline { which },
            "echo" => Command::Echo { graph, root },
            "tables" => Command::Tables {
                exps,
                jobs: jobs.unwrap_or(1),
            },
            "fleet" => {
                // `fleet` reuses `--protocol`; the capability gate rejects
                // non-fleet-capable choices at parse time, listing the
                // protocols that qualify (from the registry, so the list
                // can never drift).
                let protocol = protocol.unwrap_or_else(|| ProtocolChoice::named("alg1"));
                co_bench::protocols()
                    .require(protocol.name(), Capability::Fleet)
                    .map_err(|e| err(format!("fleet: {e}")))?;
                Command::Fleet {
                    rings,
                    sizes,
                    protocol,
                    fault_rate,
                    rounds,
                    duration_ms,
                    // Fleet is a throughput harness: default to one worker
                    // per core (the aggregate report is jobs-invariant).
                    jobs: jobs.unwrap_or(0),
                }
            }
            "record" => Command::Record {
                protocol: protocol.unwrap_or_else(|| ProtocolChoice::named("alg2")),
            },
            "replay" => Command::Replay {
                protocol: protocol.unwrap_or_else(|| ProtocolChoice::named("alg2")),
                schedule: schedule.ok_or_else(|| err("replay requires --schedule"))?,
            },
            "shrink" => Command::Shrink {
                // The broken ablation is the interesting shrink target.
                protocol: protocol.unwrap_or_else(|| ProtocolChoice::named("ungated")),
            },
            "explore" => Command::Explore {
                protocol: protocol.unwrap_or_else(|| ProtocolChoice::named("alg2")),
                max_configs,
                jobs: jobs.unwrap_or(1),
                dedup,
                checkpoint,
                checkpoint_every,
                resume,
                spill,
                scratch_dir,
            },
            "protocols" => Command::Protocols,
            "help" | "--help" | "-h" => Command::Help,
            other => return Err(err(format!("unknown command '{other}'; try 'help'"))),
        };
        Ok(Cli { command, opts })
    }
}

/// The usage text printed by `co-ring help`. The `--protocol` list is
/// rendered from the registry, so it extends itself on registration.
#[must_use]
pub fn usage() -> String {
    let protocols = co_bench::protocols().names().join("|");
    format!(
        "co-ring — content-oblivious leader election on rings (DISC 2024)

USAGE: co-ring <COMMAND> [OPTIONS]

COMMANDS:
  elect       Algorithm 2: quiescently terminating election (Theorem 1)
  stabilize   Algorithm 1: quiescently stabilizing election
  orient      Algorithm 3: elect + orient a port-scrambled ring (Theorem 2)
  anonymous   Algorithm 4 + 3: anonymous ring, random IDs (Theorem 3)
  compose     Corollary 5: elect, then all nodes learn the ring size
  solitude    Definition 21: print solitude patterns per ID
  baseline    Run a classical content-carrying baseline
  echo        Flood-echo wave on a general graph (§7 groundwork)
  tables      Regenerate the paper's experiment tables (E0..E22)
  fleet       Run a fleet of independent concurrent ring elections
  record      Run once, printing a replayable delivery schedule
  replay      Deterministically re-execute a recorded schedule
  shrink      Find a monitor-violating schedule, then ddmin-minimize it
  explore     Enumerate every schedule (fingerprint-deduplicated)
  protocols   Print the protocol registry (names × capabilities)
  help        This text

OPTIONS:
  --ids a,b,c         node IDs clockwise            (default 1..=8)
  --n N               shorthand for --ids 1,...,N
  --scheduler NAME    fifo|solitude|lifo|random|round-robin|
                      starve-cw|starve-ccw|longest-queue|latency
                                                     (default random)
  --seed S            adversary / sampling seed      (default 0)
  --latency MODEL     per-channel delay: zero | fixed:K | uniform:MIN..MAX
                                                     (default zero)
  --latency-seed S    seed of the latency streams    (default 0)
  --json              machine-readable output
  --scheme S          orient: doubled|improved       (default improved)
  --c X  --trials T   anonymous: parameter and trial count
  --max-id K          solitude: largest ID
  --algo A            baseline: cr|hs|peterson|franklin
  --graph G --root R  echo: ring:N | complete:N | path:N, wave root
  --exp eN            tables: select an experiment (repeatable; default all)
  --jobs N            tables/explore/fleet: worker threads (0 = one per core;
                      default 1, fleet defaults to 0)
  --rings N           fleet: rings per round               (default 10000)
  --ring-sizes S      fleet: N | uniform:MIN..MAX | mix:a,b,c
                                                     (default uniform:3..9)
  --fault-rate F      fleet: P(one spurious CW pulse per ring) (default 0)
  --rounds R          fleet: rounds to run                 (default 1)
  --duration SECS     fleet: run whole rounds until SECS elapse
                      (overrides --rounds)
  --batch MODE        on|off: run-batched macro-stepping for
                      elect/stabilize/record/replay/tables  (default off;
                      replay defaults to the mode embedded in the recording)
  --protocol P        record/replay/shrink/explore/fleet:
                      {protocols}
  --schedule S        replay: schedule from 'record' — channel picks,
                      'batch:'-prefixed when recorded under --batch on
  --max-configs N     explore: configuration cap (default 2000000)
  --dedup B           explore: fingerprint backend, exact|bloom|mmap[:BUDGET]
                      (default exact; mmap keeps the table in files —
                      BUDGET accepts k/M/G suffixes, e.g. mmap:512M)
  --checkpoint PATH   explore: write a resumable checkpoint to PATH
                      periodically and at the end of the run
  --checkpoint-every N  explore: configurations between checkpoints
                      (default 100000)
  --resume PATH       explore: continue from a checkpoint written by
                      --checkpoint (same protocol/ids/batch/dedup required)
  --spill N           explore: spill frontier items beyond N per worker to
                      disk (default 0 = off)
  --scratch-dir DIR   explore: directory for mmap tables and spill files
                      (default system temp dir)
"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_elect_with_ids() {
        let cli = Cli::parse([
            "elect",
            "--ids",
            "5,2,9",
            "--scheduler",
            "lifo",
            "--seed",
            "7",
        ])
        .expect("parses");
        assert_eq!(cli.command, Command::Elect);
        assert_eq!(cli.opts.ids, vec![5, 2, 9]);
        assert_eq!(cli.opts.scheduler, SchedulerKind::Lifo);
        assert_eq!(cli.opts.seed, 7);
    }

    #[test]
    fn parses_n_shorthand() {
        let cli = Cli::parse(["stabilize", "--n", "5"]).expect("parses");
        assert_eq!(cli.opts.ids, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn parses_orient_scheme() {
        let cli = Cli::parse(["orient", "--scheme", "doubled"]).expect("parses");
        assert_eq!(
            cli.command,
            Command::Orient {
                scheme: IdScheme::Doubled
            }
        );
    }

    #[test]
    fn parses_anonymous() {
        let cli =
            Cli::parse(["anonymous", "--n", "16", "--c", "2.0", "--trials", "50"]).expect("parses");
        match cli.command {
            Command::Anonymous { n, c, trials } => {
                assert_eq!((n, trials), (16, 50));
                assert!((c - 2.0).abs() < 1e-9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_tables() {
        let cli =
            Cli::parse(["tables", "--exp", "e1", "--exp", "E10", "--jobs", "4"]).expect("parses");
        assert_eq!(
            cli.command,
            Command::Tables {
                exps: vec![co_bench::Experiment::E1, co_bench::Experiment::E10],
                jobs: 4,
            }
        );
        assert!(Cli::parse(["tables", "--exp", "e99"]).is_err());
        assert!(Cli::parse(["tables", "--jobs", "many"]).is_err());
    }

    #[test]
    fn parses_record_replay_shrink_explore() {
        let cli = Cli::parse(["record", "--protocol", "alg1", "--n", "3"]).expect("parses");
        assert_eq!(
            cli.command,
            Command::Record {
                protocol: ProtocolChoice::named("alg1")
            }
        );

        let cli = Cli::parse(["replay", "--schedule", "0,3,2"]).expect("parses");
        match cli.command {
            Command::Replay { protocol, schedule } => {
                assert_eq!(protocol, ProtocolChoice::named("alg2"));
                assert_eq!(schedule.to_string(), "0,3,2");
            }
            other => panic!("unexpected {other:?}"),
        }

        let cli = Cli::parse(["shrink"]).expect("parses");
        assert_eq!(
            cli.command,
            Command::Shrink {
                protocol: ProtocolChoice::named("ungated")
            }
        );

        let cli = Cli::parse(["explore", "--protocol", "ungated", "--max-configs", "500"])
            .expect("parses");
        assert_eq!(
            cli.command,
            Command::Explore {
                protocol: ProtocolChoice::named("ungated"),
                max_configs: 500,
                jobs: 1,
                dedup: co_net::DedupKind::Exact,
                checkpoint: None,
                checkpoint_every: 100_000,
                resume: None,
                spill: 0,
                scratch_dir: None,
            }
        );

        let cli = Cli::parse(["explore", "--jobs", "8", "--dedup", "bloom"]).expect("parses");
        assert_eq!(
            cli.command,
            Command::Explore {
                protocol: ProtocolChoice::named("alg2"),
                max_configs: 2_000_000,
                jobs: 8,
                dedup: co_net::DedupKind::Bloom,
                checkpoint: None,
                checkpoint_every: 100_000,
                resume: None,
                spill: 0,
                scratch_dir: None,
            }
        );
        assert!(Cli::parse(["explore", "--dedup", "cuckoo"]).is_err());
    }

    #[test]
    fn parses_explore_out_of_core_flags() {
        let cli = Cli::parse([
            "explore",
            "--dedup",
            "mmap:64M",
            "--checkpoint",
            "/tmp/run.ck",
            "--checkpoint-every",
            "5000",
            "--spill",
            "100000",
            "--scratch-dir",
            "/tmp/scratch",
        ])
        .expect("parses");
        match cli.command {
            Command::Explore {
                dedup,
                checkpoint,
                checkpoint_every,
                resume,
                spill,
                scratch_dir,
                ..
            } => {
                assert_eq!(
                    dedup,
                    co_net::DedupKind::Mmap {
                        budget: 64 * 1024 * 1024
                    }
                );
                assert_eq!(
                    checkpoint.as_deref(),
                    Some(std::path::Path::new("/tmp/run.ck"))
                );
                assert_eq!(checkpoint_every, 5000);
                assert_eq!(resume, None);
                assert_eq!(spill, 100_000);
                assert_eq!(
                    scratch_dir.as_deref(),
                    Some(std::path::Path::new("/tmp/scratch"))
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        let cli = Cli::parse(["explore", "--resume", "run.ck"]).expect("parses");
        match cli.command {
            Command::Explore { resume, .. } => {
                assert_eq!(resume.as_deref(), Some(std::path::Path::new("run.ck")));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(Cli::parse(["explore", "--checkpoint-every", "0"]).is_err());
        assert!(Cli::parse(["explore", "--spill", "lots"]).is_err());
    }

    #[test]
    fn dedup_parse_errors_list_the_backends() {
        let e = Cli::parse(["explore", "--dedup", "cuckoo"]).unwrap_err();
        for name in co_net::DedupKind::NAMES {
            assert!(e.to_string().contains(name), "{name} missing: {e}");
        }
    }

    #[test]
    fn every_registry_entry_parses_and_round_trips() {
        for name in co_bench::protocols().names() {
            let cli = Cli::parse(["record", "--protocol", name]).expect("parses");
            match cli.command {
                Command::Record { protocol } => assert_eq!(protocol.to_string(), name),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn protocol_parse_errors_list_the_registry() {
        let e = Cli::parse(["record", "--protocol", "bogus"]).unwrap_err();
        // The list is rendered from the registry, so onboarding a
        // protocol extends this message with no CLI edit.
        for name in co_bench::protocols().names() {
            assert!(e.to_string().contains(name), "{name} missing: {e}");
        }

        let e = Cli::parse(["fleet", "--protocol", "chang-roberts"]).unwrap_err();
        assert!(e.to_string().contains("does not support fleet"), "{e}");
        assert!(e.to_string().contains("alg1, alg2"), "{e}");
    }

    #[test]
    fn parses_protocols_command() {
        let cli = Cli::parse(["protocols"]).expect("parses");
        assert_eq!(cli.command, Command::Protocols);
        assert!(usage().contains("protocols"));
        assert!(usage().contains("chang-roberts"));
    }

    #[test]
    fn parses_fleet() {
        let cli = Cli::parse(["fleet"]).expect("parses");
        assert_eq!(
            cli.command,
            Command::Fleet {
                rings: 10_000,
                sizes: co_net::fleet::RingSizes::Uniform { min: 3, max: 9 },
                protocol: ProtocolChoice::named("alg1"),
                fault_rate: 0.0,
                rounds: 1,
                duration_ms: None,
                jobs: 0,
            }
        );

        let cli = Cli::parse([
            "fleet",
            "--rings",
            "500",
            "--ring-sizes",
            "mix:3,5,8",
            "--protocol",
            "alg2",
            "--fault-rate",
            "0.01",
            "--rounds",
            "3",
            "--jobs",
            "4",
            "--seed",
            "9",
        ])
        .expect("parses");
        assert_eq!(cli.opts.seed, 9);
        match cli.command {
            Command::Fleet {
                rings,
                sizes,
                protocol,
                fault_rate,
                rounds,
                duration_ms,
                jobs,
            } => {
                assert_eq!(rings, 500);
                assert_eq!(sizes, co_net::fleet::RingSizes::Mix(vec![3, 5, 8]));
                assert_eq!(protocol, ProtocolChoice::named("alg2"));
                assert!((fault_rate - 0.01).abs() < 1e-12);
                assert_eq!((rounds, duration_ms, jobs), (3, None, 4));
            }
            other => panic!("unexpected {other:?}"),
        }

        let cli = Cli::parse(["fleet", "--duration", "2.5"]).expect("parses");
        match cli.command {
            Command::Fleet { duration_ms, .. } => assert_eq!(duration_ms, Some(2500)),
            other => panic!("unexpected {other:?}"),
        }

        assert!(Cli::parse(["fleet", "--rings", "0"]).is_err());
        assert!(Cli::parse(["fleet", "--fault-rate", "1.5"]).is_err());
        assert!(Cli::parse(["fleet", "--rounds", "0"]).is_err());
        assert!(Cli::parse(["fleet", "--duration", "-1"]).is_err());
        assert!(Cli::parse(["fleet", "--ring-sizes", "nope"]).is_err());
        assert!(Cli::parse(["fleet", "--protocol", "alg3"]).is_err());
    }

    #[test]
    fn replay_requires_a_schedule() {
        assert!(Cli::parse(["replay"]).is_err());
        assert!(Cli::parse(["replay", "--schedule", "0,x"]).is_err());
        assert!(Cli::parse(["record", "--protocol", "bogus"]).is_err());
    }

    #[test]
    fn parses_batch_flag() {
        let cli = Cli::parse(["elect", "--batch", "on"]).expect("parses");
        assert_eq!(cli.opts.batch, Some(true));
        let cli = Cli::parse(["elect", "--batch", "off"]).expect("parses");
        assert_eq!(cli.opts.batch, Some(false));
        let cli = Cli::parse(["elect"]).expect("parses");
        assert_eq!(cli.opts.batch, None);
        assert!(Cli::parse(["elect", "--batch", "maybe"]).is_err());
        assert!(Cli::parse(["elect", "--batch"]).is_err());
    }

    #[test]
    fn recorded_schedule_carries_its_mode() {
        let bare: RecordedSchedule = "0,3,2".parse().expect("parses");
        assert!(!bare.batch);
        assert_eq!(bare.to_string(), "0,3,2");

        let batched: RecordedSchedule = "batch:0,3,2".parse().expect("parses");
        assert!(batched.batch);
        assert_eq!(batched.picks, bare.picks);
        assert_eq!(batched.to_string(), "batch:0,3,2");

        let explicit: RecordedSchedule = "pulse:0,3,2".parse().expect("parses");
        assert_eq!(explicit, bare);

        assert!("batch:0,x".parse::<RecordedSchedule>().is_err());

        let cli = Cli::parse(["replay", "--schedule", "batch:1,0"]).expect("parses");
        match cli.command {
            Command::Replay { schedule, .. } => {
                assert!(schedule.batch);
                assert_eq!(schedule.picks.to_string(), "1,0");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Cli::parse(["elect", "--ids", "0,1"]).is_err());
        assert!(Cli::parse(["elect", "--scheduler", "bogus"]).is_err());
        assert!(Cli::parse(["frobnicate"]).is_err());
        assert!(Cli::parse(["elect", "--seed"]).is_err());
    }

    #[test]
    fn parses_latency_options() {
        let cli = Cli::parse([
            "elect",
            "--latency",
            "uniform:1..9",
            "--latency-seed",
            "42",
            "--scheduler",
            "latency",
        ])
        .expect("parses");
        assert_eq!(cli.opts.latency, LatencyModel::Uniform { min: 1, max: 9 });
        assert_eq!(cli.opts.latency_seed, 42);
        assert_eq!(cli.opts.scheduler, SchedulerKind::Latency);
        assert!(!cli.opts.latency_plan().is_zero());

        let cli = Cli::parse(["elect"]).expect("parses");
        assert_eq!(cli.opts.latency, LatencyModel::Zero);
        assert!(cli.opts.latency_plan().is_zero());

        assert!(Cli::parse(["elect", "--latency", "uniform:9..1"]).is_err());
        assert!(Cli::parse(["elect", "--latency", "sometimes"]).is_err());
    }

    #[test]
    fn empty_args_is_help() {
        let cli = Cli::parse(Vec::<String>::new()).expect("parses");
        assert_eq!(cli.command, Command::Help);
        assert!(usage().contains("co-ring"));
    }
}
