//! # `co-cli` — command-line driver
//!
//! Implements the `co-ring` binary: run elections, orientations, anonymous
//! rings, compositions and solitude-pattern extractions from the shell,
//! with optional JSON output and trace export. See `co-ring help` or the
//! [`run`] entry point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{Cli, Command, CommonOpts, ParseError};
pub use commands::run;
