//! Command implementations for `co-ring`.

use crate::args::{usage, Cli, Command, CommonOpts};
use co_compose::pipeline::elect_then_ring_size;
use co_core::anonymous::{success_rate, SamplingConfig};
use co_core::election::ElectionReport;
use co_core::lower_bound::solitude_pattern_alg2;
use co_core::{runner, IdScheme, Role};
use co_json::{array, object, Value};
use co_net::RingSpec;

/// Output of a command: human text plus an optional JSON value.
#[derive(Clone, Debug)]
pub struct CommandOutput {
    /// Human-readable report.
    pub text: String,
    /// JSON document (pretty-printed when `--json`).
    pub json: Value,
    /// Process exit code.
    pub code: i32,
}

fn ok(text: String, json: Value) -> CommandOutput {
    CommandOutput {
        text,
        json,
        code: 0,
    }
}

fn election_json(report: &ElectionReport) -> Value {
    object([
        ("outcome", Value::from(report.outcome.to_string())),
        ("total_messages", Value::from(report.total_messages)),
        ("steps", Value::from(report.steps)),
        ("leader", Value::from(report.leader)),
        ("roles", array(report.roles.iter().map(ToString::to_string))),
        ("predicted_messages", Value::from(report.predicted_messages)),
    ])
}

/// Executes a parsed invocation and returns its output.
#[must_use]
pub fn run(cli: &Cli) -> CommandOutput {
    match &cli.command {
        Command::Help => CommandOutput {
            text: usage(),
            json: Value::Null,
            code: 0,
        },
        Command::Elect => elect(&cli.opts),
        Command::Stabilize => stabilize(&cli.opts),
        Command::Orient { scheme } => orient(&cli.opts, *scheme),
        Command::Anonymous { n, c, trials } => anonymous(&cli.opts, *n, *c, *trials),
        Command::Compose => compose(&cli.opts),
        Command::Solitude { max_id } => solitude(*max_id),
        Command::Baseline { which } => baseline(&cli.opts, *which),
        Command::Echo { graph, root } => echo(&cli.opts, graph, *root),
        Command::Tables { exps, jobs } => tables(exps, *jobs),
    }
}

fn tables(exps: &[co_bench::Experiment], jobs: usize) -> CommandOutput {
    let selected: Vec<co_bench::Experiment> = if exps.is_empty() {
        co_bench::Experiment::ALL.to_vec()
    } else {
        exps.to_vec()
    };
    let mut text = String::new();
    let mut docs = Vec::new();
    for exp in selected {
        let table = co_bench::run_experiment_with(exp, jobs);
        text.push_str(&table.to_string());
        text.push('\n');
        docs.push(table.to_json());
    }
    ok(text, array(docs))
}

fn describe_roles(spec: &RingSpec, roles: &[Role]) -> String {
    roles
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let mark = if *r == Role::Leader {
                " <== leader"
            } else {
                ""
            };
            format!("  node {i} (ID {:>3}): {r}{mark}\n", spec.id(i))
        })
        .collect()
}

fn elect(opts: &CommonOpts) -> CommandOutput {
    let spec = RingSpec::oriented(opts.ids.clone());
    let report = runner::run_alg2(&spec, opts.scheduler, opts.seed);
    let text = format!(
        "Algorithm 2 on {spec} under {} (seed {})\noutcome: {}\n{}pulses: {} (Theorem 1 predicts {})\n",
        opts.scheduler,
        opts.seed,
        report.outcome,
        describe_roles(&spec, &report.roles),
        report.total_messages,
        report.predicted_messages.unwrap_or(0),
    );
    ok(text, election_json(&report))
}

fn stabilize(opts: &CommonOpts) -> CommandOutput {
    let spec = RingSpec::oriented(opts.ids.clone());
    let report = runner::run_alg1(&spec, opts.scheduler, opts.seed);
    let text = format!(
        "Algorithm 1 on {spec} under {} (seed {})\noutcome: {} (stabilizing: nodes never terminate)\n{}pulses: {} (Corollary 13 predicts {})\n",
        opts.scheduler,
        opts.seed,
        report.outcome,
        describe_roles(&spec, &report.roles),
        report.total_messages,
        report.predicted_messages.unwrap_or(0),
    );
    ok(text, election_json(&report))
}

fn orient(opts: &CommonOpts, scheme: IdScheme) -> CommandOutput {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let spec = RingSpec::random_flips(opts.ids.clone(), &mut rng);
    let out = runner::run_alg3(&spec, scheme, opts.scheduler, opts.seed);
    let ports: String = out
        .cw_ports
        .iter()
        .enumerate()
        .map(|(i, p)| {
            format!(
                "  node {i}: claims CW = {}\n",
                p.map_or("undecided".to_owned(), |p| p.to_string())
            )
        })
        .collect();
    let text = format!(
        "Algorithm 3 ({scheme}) on {spec}\noutcome: {}\n{}{}orientation consistent: {}\npulses: {} (predicted {})\n",
        out.report.outcome,
        describe_roles(&spec, &out.report.roles),
        ports,
        out.orientation_consistent,
        out.report.total_messages,
        out.report.predicted_messages.unwrap_or(0),
    );
    let json = object([
        ("report", election_json(&out.report)),
        (
            "cw_ports",
            array(out.cw_ports.iter().map(|p| p.map(|p| p.index()))),
        ),
        (
            "orientation_consistent",
            Value::from(out.orientation_consistent),
        ),
    ]);
    ok(text, json)
}

fn anonymous(opts: &CommonOpts, n: usize, c: f64, trials: u64) -> CommandOutput {
    // 16-bit cap keeps the heavy geometric tail simulatable interactively;
    // see SamplingConfig::max_bits for the (documented) deviation.
    let cfg = SamplingConfig::new(c).with_max_bits(16);
    let stats = success_rate(n, &cfg, opts.scheduler, trials, opts.seed);
    let text = format!(
        "Anonymous ring n={n}, c={c}, {trials} trials (Theorem 3)\n\
         success:     {:.1}% (failures are exactly tied maxima)\n\
         unique max:  {:.1}%\n\
         mean ID_max: {:.1}   largest ID_max: {}\n\
         max pulses:  {}\n",
        100.0 * stats.rate(),
        100.0 * stats.unique_max as f64 / trials as f64,
        stats.mean_id_max,
        stats.max_id_max,
        stats.max_messages,
    );
    let json = object([
        ("trials", Value::from(stats.trials)),
        ("successes", Value::from(stats.successes)),
        ("unique_max", Value::from(stats.unique_max)),
        ("mean_id_max", Value::from(stats.mean_id_max)),
        ("max_id_max", Value::from(stats.max_id_max)),
        ("max_messages", Value::from(stats.max_messages)),
    ]);
    ok(text, json)
}

fn compose(opts: &CommonOpts) -> CommandOutput {
    let spec = RingSpec::oriented(opts.ids.clone());
    let out = elect_then_ring_size(&spec, opts.scheduler, opts.seed);
    let json = object([
        (
            "quiescently_terminated",
            Value::from(out.quiescently_terminated),
        ),
        ("leader", Value::from(out.leader)),
        ("ring_size_answers", Value::from(out.outputs.clone())),
        ("total_messages", Value::from(out.total_messages)),
        ("election_messages", Value::from(out.election_messages)),
    ]);
    let text = format!(
        "Corollary 5 on {spec}: elect (Algorithm 2), then every node computes n\n\
         quiescent termination: {}\nleader: position {:?}\n\
         answers: {:?}\npulses: {} total ({} for the election)\n",
        out.quiescently_terminated,
        out.leader,
        out.outputs,
        out.total_messages,
        out.election_messages,
    );
    ok(text, json)
}

fn solitude(max_id: u64) -> CommandOutput {
    struct PatternRow {
        id: u64,
        pattern: String,
        length: usize,
    }
    let rows: Vec<PatternRow> = (1..=max_id)
        .map(|id| {
            let p = solitude_pattern_alg2(id).expect("Algorithm 2 terminates in solitude");
            PatternRow {
                id,
                length: p.len(),
                pattern: p.to_string(),
            }
        })
        .collect();
    let mut text = format!("Solitude patterns of Algorithm 2 (Definition 21), IDs 1..={max_id}\n");
    for r in &rows {
        text.push_str(&format!(
            "  ID {:>4}: {} (len {})\n",
            r.id, r.pattern, r.length
        ));
    }
    text.push_str("All patterns are pairwise distinct (Lemma 22).\n");
    let json = Value::Array(
        rows.iter()
            .map(|r| {
                object([
                    ("id", Value::from(r.id)),
                    ("pattern", Value::from(r.pattern.clone())),
                    ("length", Value::from(r.length)),
                ])
            })
            .collect(),
    );
    ok(text, json)
}

fn baseline(opts: &CommonOpts, which: co_classic::runner::Baseline) -> CommandOutput {
    let spec = RingSpec::oriented(opts.ids.clone());
    let report = which.run(&spec, opts.scheduler, opts.seed);
    let text = format!(
        "{which} (content-carrying baseline) on {spec}\noutcome: {}\n{}messages: {}\n\
         NOTE: this algorithm reads message content and cannot run on\n\
         defective channels; see `co-ring elect` for the content-oblivious one.\n",
        report.outcome,
        describe_roles(&spec, &report.roles),
        report.total_messages,
    );
    ok(text, election_json(&report))
}

fn echo(opts: &CommonOpts, graph: &crate::args::GraphSpec, root: usize) -> CommandOutput {
    use co_core::general::{EchoNode, EchoState};
    use co_net::multiport::{GraphSim, GraphWiring};
    use co_net::{Budget, Pulse};

    let g = graph.build();
    let n = g.vertex_count();
    if root >= n {
        return CommandOutput {
            text: format!("error: --root {root} out of range for {n} nodes\n"),
            json: Value::Null,
            code: 1,
        };
    }
    let wiring = GraphWiring::from_graph(&g);
    let nodes = (0..n).map(|v| EchoNode::new(v == root)).collect();
    let mut sim: GraphSim<Pulse, EchoNode> =
        GraphSim::new(wiring, nodes, opts.scheduler.build(opts.seed));
    let report = sim.run(Budget::steps(10_000_000));
    let done = (0..n)
        .filter(|&v| sim.node(v).state() == EchoState::Done)
        .count();

    let json = object([
        ("nodes", Value::from(n)),
        ("edges", Value::from(g.edge_count())),
        ("two_edge_connected", Value::from(g.is_two_edge_connected())),
        ("bridges", Value::from(g.bridges())),
        ("outcome", Value::from(report.outcome.to_string())),
        ("pulses", Value::from(report.total_sent)),
        ("nodes_done", Value::from(done)),
    ]);
    let text = format!(
        "flood-echo wave on {graph:?} (root {root}) under {}\n\
         n = {n}, m = {}, 2-edge-connected = {} (bridges: {:?})\n\
         outcome: {} | pulses: {} (2m = {}) | nodes done: {done}/{n}\n",
        opts.scheduler,
        g.edge_count(),
        g.is_two_edge_connected(),
        g.bridges(),
        report.outcome,
        report.total_sent,
        2 * g.edge_count(),
    );
    ok(text, json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Cli;

    fn run_line(line: &[&str]) -> CommandOutput {
        run(&Cli::parse(line.iter().copied()).expect("parses"))
    }

    #[test]
    fn elect_reports_theorem1() {
        let out = run_line(&["elect", "--ids", "3,9,5", "--scheduler", "fifo"]);
        assert_eq!(out.code, 0);
        assert!(out.text.contains("quiescent termination"));
        assert!(out.text.contains("57")); // 3 * (2*9 + 1)
        assert!(out.json.get("total_messages").is_some());
    }

    #[test]
    fn stabilize_reports_quiescence() {
        let out = run_line(&["stabilize", "--n", "4", "--scheduler", "fifo"]);
        assert!(out.text.contains("quiescence without termination"));
        assert!(out.text.contains("16")); // 4 * ID_max(4)
    }

    #[test]
    fn orient_reports_consistency() {
        let out = run_line(&["orient", "--ids", "2,8,5", "--seed", "3"]);
        assert!(out.text.contains("orientation consistent: true"));
    }

    #[test]
    fn anonymous_reports_rates() {
        let out = run_line(&[
            "anonymous",
            "--n",
            "6",
            "--trials",
            "10",
            "--c",
            "0.5",
            "--seed",
            "1",
        ]);
        assert!(out.text.contains("success"));
    }

    #[test]
    fn compose_reports_ring_size() {
        let out = run_line(&["compose", "--n", "5", "--scheduler", "fifo"]);
        assert!(out.text.contains("Some(5)"));
    }

    #[test]
    fn solitude_prints_patterns() {
        let out = run_line(&["solitude", "--max-id", "3"]);
        assert!(out.text.contains("0001111"));
    }

    #[test]
    fn baseline_runs() {
        let out = run_line(&["baseline", "--algo", "hs", "--n", "6"]);
        assert!(out.text.contains("hirschberg-sinclair"));
    }

    #[test]
    fn help_prints_usage() {
        let out = run_line(&["help"]);
        assert!(out.text.contains("USAGE"));
    }

    #[test]
    fn echo_runs_on_graphs() {
        let out = run_line(&["echo", "--graph", "complete:5", "--root", "2"]);
        assert!(out.text.contains("pulses: 20 (2m = 20)"));
        assert!(out.text.contains("nodes done: 5/5"));
        let out = run_line(&["echo", "--graph", "path:4"]);
        assert!(out.text.contains("2-edge-connected = false"));
        assert!(out.text.contains("nodes done: 4/4"));
    }

    #[test]
    fn echo_rejects_bad_root() {
        let out = run_line(&["echo", "--graph", "ring:3", "--root", "9"]);
        assert_eq!(out.code, 1);
    }
}
