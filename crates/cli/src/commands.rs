//! Command implementations for `co-ring`.

use crate::args::{usage, Cli, Command, CommonOpts, ProtocolChoice, RecordedSchedule};
use co_bench::protocols;
use co_compose::pipeline::elect_then_ring_size;
use co_core::anonymous::{success_rate, SamplingConfig};
use co_core::election::ElectionReport;
use co_core::lower_bound::solitude_pattern_alg2;
use co_core::registry::{Capability, DriveOpts, RegistryError};
use co_core::{runner, IdScheme, Role};
use co_json::{array, object, Value};
use co_net::explore::{CheckpointPlan, ExploreCheckpoint, ExploreConfig, ExploreLimits};
use co_net::{shrink_schedule, RingSpec, RunReport, Schedule, SchedulerKind};

fn mode_name(batch: bool) -> &'static str {
    if batch {
        "batch"
    } else {
        "per-pulse"
    }
}

/// Output of a command: human text plus an optional JSON value.
#[derive(Clone, Debug)]
pub struct CommandOutput {
    /// Human-readable report.
    pub text: String,
    /// JSON document (pretty-printed when `--json`).
    pub json: Value,
    /// Process exit code.
    pub code: i32,
}

fn ok(text: String, json: Value) -> CommandOutput {
    CommandOutput {
        text,
        json,
        code: 0,
    }
}

fn election_json(report: &ElectionReport) -> Value {
    object([
        ("outcome", Value::from(report.outcome.to_string())),
        ("total_messages", Value::from(report.total_messages)),
        ("steps", Value::from(report.steps)),
        ("leader", Value::from(report.leader)),
        ("roles", array(report.roles.iter().map(ToString::to_string))),
        ("predicted_messages", Value::from(report.predicted_messages)),
    ])
}

/// Executes a parsed invocation and returns its output.
#[must_use]
pub fn run(cli: &Cli) -> CommandOutput {
    match &cli.command {
        Command::Help => CommandOutput {
            text: usage(),
            json: Value::Null,
            code: 0,
        },
        Command::Elect => elect(&cli.opts),
        Command::Stabilize => stabilize(&cli.opts),
        Command::Orient { scheme } => orient(&cli.opts, *scheme),
        Command::Anonymous { n, c, trials } => anonymous(&cli.opts, *n, *c, *trials),
        Command::Compose => compose(&cli.opts),
        Command::Solitude { max_id } => solitude(*max_id),
        Command::Baseline { which } => baseline(&cli.opts, *which),
        Command::Echo { graph, root } => echo(&cli.opts, graph, *root),
        Command::Tables { exps, jobs } => tables(exps, *jobs, cli.opts.batch.unwrap_or(false)),
        Command::Fleet {
            rings,
            sizes,
            protocol,
            fault_rate,
            rounds,
            duration_ms,
            jobs,
        } => fleet(
            &cli.opts,
            *rings,
            sizes,
            *protocol,
            *fault_rate,
            *rounds,
            *duration_ms,
            *jobs,
        ),
        Command::Record { protocol } => record(&cli.opts, *protocol),
        Command::Replay { protocol, schedule } => replay(&cli.opts, *protocol, schedule),
        Command::Shrink { protocol } => shrink(&cli.opts, *protocol),
        Command::Explore {
            protocol,
            max_configs,
            jobs,
            dedup,
            checkpoint,
            checkpoint_every,
            resume,
            spill,
            scratch_dir,
        } => explore_cmd(
            &cli.opts,
            *protocol,
            *max_configs,
            *jobs,
            *dedup,
            &ExploreIo {
                checkpoint: checkpoint.clone(),
                checkpoint_every: *checkpoint_every,
                resume: resume.clone(),
                spill: *spill,
                scratch_dir: scratch_dir.clone(),
            },
        ),
        Command::Protocols => protocols_cmd(),
    }
}

/// Renders a typed registry failure (unknown name / missing capability)
/// as an exit-code-1 output whose JSON mirrors the error variant.
fn registry_error(e: &RegistryError) -> CommandOutput {
    let json = match e {
        RegistryError::Unknown { name, known } => object([
            ("error", Value::from("unknown-protocol")),
            ("protocol", Value::from(name.clone())),
            ("known", array(known.iter().copied())),
        ]),
        RegistryError::Unsupported {
            name,
            capability,
            supported,
        } => object([
            ("error", Value::from("missing-capability")),
            ("protocol", Value::from(*name)),
            ("capability", Value::from(capability.to_string())),
            ("supported", array(supported.iter().copied())),
        ]),
    };
    CommandOutput {
        text: format!("error: {e}\n"),
        json,
        code: 1,
    }
}

fn drive_opts(opts: &CommonOpts, batch: bool) -> DriveOpts {
    DriveOpts {
        scheduler: opts.scheduler,
        seed: opts.seed,
        latency: opts.latency_plan(),
        batch,
    }
}

fn run_report_json(report: &RunReport) -> Value {
    object([
        ("outcome", Value::from(report.outcome.to_string())),
        ("steps", Value::from(report.steps)),
        ("total_sent", Value::from(report.total_sent)),
    ])
}

fn record(opts: &CommonOpts, protocol: ProtocolChoice) -> CommandOutput {
    let batch = opts.batch.unwrap_or(false);
    if batch {
        // Run-batching is certified per protocol (the macro-stepping
        // equivalence contract); uncertified protocols are refused with
        // the registry's typed error instead of silently running fused.
        if let Err(e) = protocols().require(protocol.name(), Capability::Batch) {
            return registry_error(&e);
        }
    }
    let spec = RingSpec::oriented(opts.ids.clone());
    let rec = protocol.spec().record(&spec, &drive_opts(opts, batch));
    let schedule = RecordedSchedule {
        batch,
        picks: rec.picks,
    };
    let text = format!(
        "{protocol} on {spec} under {} (seed {}, {} delivery)\n\
         outcome: {} | deliveries: {} | pulses: {}\n\
         fingerprint: {:016x} | leaders: {:?}\n\
         schedule ({} picks, feed to `replay --schedule`):\n{schedule}\n",
        opts.scheduler,
        opts.seed,
        mode_name(batch),
        rec.report.outcome,
        rec.report.steps,
        rec.report.total_sent,
        rec.fingerprint,
        rec.leaders,
        schedule.picks.len(),
    );
    let json = object([
        ("protocol", Value::from(protocol.to_string())),
        ("scheduler", Value::from(opts.scheduler.to_string())),
        ("seed", Value::from(opts.seed)),
        ("batch", Value::from(batch)),
        ("report", run_report_json(&rec.report)),
        ("fingerprint", Value::from(rec.fingerprint)),
        ("leaders", array(rec.leaders.iter().copied())),
        ("schedule", Value::from(schedule.to_string())),
    ]);
    ok(text, json)
}

fn replay(
    opts: &CommonOpts,
    protocol: ProtocolChoice,
    schedule: &RecordedSchedule,
) -> CommandOutput {
    // The recording's embedded delivery mode is authoritative: a pick in a
    // batched recording can stand for a whole fused pulse run, so replaying
    // it in the other mode would silently drive a different trajectory. An
    // explicit `--batch` that contradicts the recording is refused.
    if let Some(requested) = opts.batch {
        if requested != schedule.batch {
            let text = format!(
                "error: schedule was recorded with {} delivery but --batch {} \
                 requests {} delivery; re-record with --batch {} or drop the flag\n",
                mode_name(schedule.batch),
                if requested { "on" } else { "off" },
                mode_name(requested),
                if schedule.batch { "on" } else { "off" },
            );
            let json = object([
                ("error", Value::from("batch-mode-mismatch")),
                ("recorded_batch", Value::from(schedule.batch)),
                ("requested_batch", Value::from(requested)),
            ]);
            return CommandOutput {
                text,
                json,
                code: 1,
            };
        }
    }
    // The scheduler choice is irrelevant: the replay engine overrides it.
    // The latency plan is not: timestamps shape the trace, so a replay must
    // run under the same `--latency`/`--latency-seed` as the recording. The
    // delivery mode comes from the recording itself (checked above).
    let spec = RingSpec::oriented(opts.ids.clone());
    let rep = protocol
        .spec()
        .replay(&spec, &drive_opts(opts, schedule.batch), &schedule.picks);
    let text = format!(
        "replaying {} picks of {protocol} on {spec} ({} delivery, deterministic)\n\
         outcome: {} | deliveries: {} | pulses: {}\n\
         fingerprint: {:016x} | leaders: {:?}\n",
        schedule.picks.len(),
        mode_name(schedule.batch),
        rep.report.outcome,
        rep.report.steps,
        rep.report.total_sent,
        rep.fingerprint,
        rep.leaders,
    );
    let json = object([
        ("protocol", Value::from(protocol.to_string())),
        ("batch", Value::from(schedule.batch)),
        ("schedule_len", Value::from(schedule.picks.len())),
        ("report", run_report_json(&rep.report)),
        ("fingerprint", Value::from(rep.fingerprint)),
        ("leaders", array(rep.leaders.iter().copied())),
    ]);
    ok(text, json)
}

fn shrink(opts: &CommonOpts, protocol: ProtocolChoice) -> CommandOutput {
    let driver = match protocols().shrink(protocol.name()) {
        Ok(driver) => driver,
        Err(e) => return registry_error(&e),
    };
    let spec = RingSpec::oriented(opts.ids.clone());
    let violates = |schedule: &Schedule| driver.violates(&spec, schedule);

    // Hunt for a monitor-violating recorded schedule across the adversary
    // matrix; the broken ablation yields one quickly, the correct protocols
    // never do.
    let mut found: Option<(SchedulerKind, u64, Schedule)> = None;
    'hunt: for kind in SchedulerKind::ALL {
        for seed in opts.seed..opts.seed + 16 {
            if let Some(schedule) = driver.hunt(&spec, kind, seed) {
                found = Some((kind, seed, schedule));
                break 'hunt;
            }
        }
    }

    let Some((kind, seed, original)) = found else {
        let text = format!(
            "no invariant violation found for {protocol} on {spec} \
             (all schedulers, seeds {}..{})\n",
            opts.seed,
            opts.seed + 16
        );
        let json = object([
            ("protocol", Value::from(protocol.to_string())),
            ("violation_found", Value::from(false)),
        ]);
        return ok(text, json);
    };

    let shrunk = shrink_schedule(&original, violates);
    debug_assert!(violates(&shrunk), "ddmin must preserve the failure");
    let text = format!(
        "{protocol} on {spec}: invariant violation under {kind} (seed {seed})\n\
         recorded schedule: {} picks\n\
         shrunk (1-minimal): {} picks\n\
         replay with:\n  co-ring replay --protocol {protocol} --ids {} --schedule {shrunk}\n",
        original.len(),
        shrunk.len(),
        opts.ids
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(","),
    );
    let json = object([
        ("protocol", Value::from(protocol.to_string())),
        ("violation_found", Value::from(true)),
        ("scheduler", Value::from(kind.to_string())),
        ("seed", Value::from(seed)),
        ("original_len", Value::from(original.len())),
        ("shrunk_len", Value::from(shrunk.len())),
        ("shrunk_schedule", Value::from(shrunk.to_string())),
    ]);
    ok(text, json)
}

/// Out-of-core flags of `explore`, bundled so the driver call stays tidy.
struct ExploreIo {
    checkpoint: Option<std::path::PathBuf>,
    checkpoint_every: usize,
    resume: Option<std::path::PathBuf>,
    spill: usize,
    scratch_dir: Option<std::path::PathBuf>,
}

fn explore_error(msg: String) -> CommandOutput {
    let json = object([
        ("error", Value::from("explore")),
        ("message", Value::from(msg.clone())),
    ]);
    CommandOutput {
        text: format!("error: {msg}\n"),
        json,
        code: 1,
    }
}

fn explore_cmd(
    opts: &CommonOpts,
    protocol: ProtocolChoice,
    max_configs: usize,
    jobs: usize,
    dedup: co_net::DedupKind,
    io: &ExploreIo,
) -> CommandOutput {
    let driver = match protocols().explore(protocol.name()) {
        Ok(driver) => driver,
        Err(e) => return registry_error(&e),
    };
    let spec = RingSpec::oriented(opts.ids.clone());
    // Instance identity stored in (and checked against) checkpoints: a
    // checkpoint resumes the *same* exploration, so the protocol, ring,
    // and dedup backend must all match.
    let meta = format!(
        "co-ring explore v1|{protocol}|{ids}|{dedup}",
        ids = opts
            .ids
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(",")
    );
    let resume = match &io.resume {
        None => None,
        Some(path) => match ExploreCheckpoint::read(path) {
            Ok(ck) => {
                if ck.meta != meta.as_bytes() {
                    return explore_error(format!(
                        "checkpoint {} was written for '{}', this run is '{meta}'; \
                         pass the same --protocol/--ids/--dedup to resume",
                        path.display(),
                        String::from_utf8_lossy(&ck.meta),
                    ));
                }
                Some(ck)
            }
            Err(e) => return explore_error(e),
        },
    };
    let config = ExploreConfig {
        limits: ExploreLimits {
            max_configs,
            ..ExploreLimits::default()
        },
        jobs,
        dedup,
        spill_high_water: io.spill,
        scratch_dir: io.scratch_dir.clone(),
        checkpoint: io.checkpoint.as_ref().map(|path| CheckpointPlan {
            path: path.clone(),
            every: io.checkpoint_every,
            meta: meta.clone().into_bytes(),
        }),
        resume,
        ..ExploreConfig::default()
    };
    let report = driver.run(&spec, &config);
    let text = format!(
        "exhaustive exploration of {protocol} on {spec}\n\
         workers: {} | dedup: {}\n\
         configurations: {} ({} quiescent) | complete: {}\n\
         dedup index: {} bytes ({} heap + {} file)\n\
         spilled frontier items: {} | checkpoints written: {}\n",
        config.jobs,
        config.dedup,
        report.configs,
        report.quiescent_configs,
        report.complete,
        report.visited_bytes,
        report.visited_heap_bytes,
        report.visited_file_bytes,
        report.spilled_jobs,
        report.checkpoints_written,
    );
    let json = object([
        ("protocol", Value::from(protocol.to_string())),
        ("jobs", Value::from(config.jobs)),
        ("dedup", Value::from(config.dedup.to_string())),
        ("configs", Value::from(report.configs)),
        ("quiescent_configs", Value::from(report.quiescent_configs)),
        ("complete", Value::from(report.complete)),
        ("visited_bytes", Value::from(report.visited_bytes)),
        ("visited_heap_bytes", Value::from(report.visited_heap_bytes)),
        ("visited_file_bytes", Value::from(report.visited_file_bytes)),
        ("spilled_jobs", Value::from(report.spilled_jobs)),
        (
            "checkpoints_written",
            Value::from(report.checkpoints_written),
        ),
        ("violations", Value::from(report.violations.len())),
    ]);
    ok(text, json)
}

fn tables(exps: &[co_bench::Experiment], jobs: usize, batch: bool) -> CommandOutput {
    let selected: Vec<co_bench::Experiment> = if exps.is_empty() {
        co_bench::Experiment::ALL.to_vec()
    } else {
        exps.to_vec()
    };
    let mut text = String::new();
    let mut docs = Vec::new();
    for exp in selected {
        let table = co_bench::run_experiment_batch(exp, jobs, batch);
        text.push_str(&table.to_string());
        text.push('\n');
        docs.push(table.to_json());
    }
    ok(text, array(docs))
}

/// Prints the protocol registry: every entry's name, layer and capability
/// column, exactly as rendered by [`co_core::registry::Registry::table`].
/// The README's protocol table is generated from this output, and CI greps
/// it as a smoke check that the registry spans both layers.
fn protocols_cmd() -> CommandOutput {
    let reg = protocols();
    let docs: Vec<Value> = reg
        .entries()
        .iter()
        .map(|entry| {
            object([
                ("name", Value::from(entry.name())),
                ("layer", Value::from(entry.layer())),
                ("summary", Value::from(entry.summary())),
                (
                    "capabilities",
                    array(
                        Capability::ALL
                            .iter()
                            .filter(|c| entry.supports(**c))
                            .map(|c| c.to_string()),
                    ),
                ),
            ])
        })
        .collect();
    ok(reg.table(), array(docs))
}

fn describe_roles(spec: &RingSpec, roles: &[Role]) -> String {
    roles
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let mark = if *r == Role::Leader {
                " <== leader"
            } else {
                ""
            };
            format!("  node {i} (ID {:>3}): {r}{mark}\n", spec.id(i))
        })
        .collect()
}

/// Runs the fleet harness: `rounds` rounds of `rings` independent ring
/// elections (or whole rounds until `--duration` elapses), streaming one
/// cumulative progress line per round to stderr and returning the merged
/// aggregate report. The report is deterministic — a pure function of
/// `(seed, rings, sizes, fault_rate, protocol, rounds)`, independent of
/// `--jobs` — while the throughput line is wall-clock.
#[allow(clippy::too_many_arguments)]
fn fleet(
    opts: &CommonOpts,
    rings: u64,
    sizes: &co_net::fleet::RingSizes,
    protocol: ProtocolChoice,
    fault_rate: f64,
    rounds: u64,
    duration_ms: Option<u64>,
    jobs: usize,
) -> CommandOutput {
    use std::time::{Duration, Instant};

    // Parsing already gated on `Capability::Fleet`; resolving here keeps
    // programmatic callers honest too.
    let driver = match protocols().fleet(protocol.name()) {
        Ok(driver) => driver,
        Err(e) => return registry_error(&e),
    };

    let mut cfg = co_net::fleet::FleetConfig::new(rings);
    cfg.sizes = sizes.clone();
    cfg.seed = opts.seed;
    cfg.fault_rate = fault_rate;

    let start = Instant::now();
    let mut report = co_net::fleet::FleetReport::new();
    let mut round = 0u64;
    loop {
        report.merge(&co_bench::run_fleet_round(&cfg, driver, round, jobs));
        round += 1;
        let elapsed = start.elapsed();
        let secs = elapsed.as_secs_f64().max(1e-9);
        eprintln!(
            "round {round}: {} rings, {} elections, {} pulses, {:.0} elections/sec",
            report.rings,
            report.elections,
            report.total_pulses,
            report.elections as f64 / secs,
        );
        let done = match duration_ms {
            Some(ms) => elapsed >= Duration::from_millis(ms),
            None => round >= rounds,
        };
        if done {
            break;
        }
    }
    let summary = co_bench::FleetRunSummary {
        report,
        rounds: round,
        elapsed: start.elapsed(),
    };

    let report = &summary.report;
    let text = format!(
        "fleet: {rings} × {sizes} rings/round under {protocol} (fault rate {fault_rate}, \
         seed {}, jobs {jobs})\n{}",
        opts.seed,
        summary.render(),
    );
    let json = object([
        ("protocol", Value::from(protocol.to_string())),
        ("rings", Value::from(report.rings)),
        ("nodes", Value::from(report.nodes)),
        ("sizes", Value::from(sizes.to_string())),
        ("fault_rate", Value::Float(fault_rate)),
        ("seed", Value::from(opts.seed)),
        ("rounds", Value::from(summary.rounds)),
        ("elections", Value::from(report.elections)),
        (
            "quiescent_terminated",
            Value::from(report.quiescent_terminated),
        ),
        ("quiescent", Value::from(report.quiescent)),
        (
            "terminated_nonquiescent",
            Value::from(report.terminated_nonquiescent),
        ),
        ("budget_exhausted", Value::from(report.budget_exhausted)),
        ("total_pulses", Value::from(report.total_pulses)),
        ("total_sent", Value::from(report.total_sent)),
        ("faults_injected", Value::from(report.faults_injected)),
        (
            "peak_ring_queue_bytes",
            Value::from(report.peak_ring_queue_bytes),
        ),
        ("p50_pulses_to_quiescence", Value::from(report.p50())),
        ("p99_pulses_to_quiescence", Value::from(report.p99())),
        (
            "elapsed_ms",
            Value::from(summary.elapsed.as_millis() as u64),
        ),
        (
            "elections_per_sec",
            Value::Float(summary.elections_per_sec()),
        ),
    ]);
    ok(text, json)
}

fn elect(opts: &CommonOpts) -> CommandOutput {
    let spec = RingSpec::oriented(opts.ids.clone());
    let report = runner::run_alg2_batch(
        &spec,
        opts.scheduler,
        opts.seed,
        &opts.latency_plan(),
        opts.batch.unwrap_or(false),
    );
    let text = format!(
        "Algorithm 2 on {spec} under {} (seed {})\noutcome: {}\n{}pulses: {} (Theorem 1 predicts {})\n",
        opts.scheduler,
        opts.seed,
        report.outcome,
        describe_roles(&spec, &report.roles),
        report.total_messages,
        report.predicted_messages.unwrap_or(0),
    );
    ok(text, election_json(&report))
}

fn stabilize(opts: &CommonOpts) -> CommandOutput {
    let spec = RingSpec::oriented(opts.ids.clone());
    let report = runner::run_alg1_batch(
        &spec,
        opts.scheduler,
        opts.seed,
        &opts.latency_plan(),
        opts.batch.unwrap_or(false),
    );
    let text = format!(
        "Algorithm 1 on {spec} under {} (seed {})\noutcome: {} (stabilizing: nodes never terminate)\n{}pulses: {} (Corollary 13 predicts {})\n",
        opts.scheduler,
        opts.seed,
        report.outcome,
        describe_roles(&spec, &report.roles),
        report.total_messages,
        report.predicted_messages.unwrap_or(0),
    );
    ok(text, election_json(&report))
}

fn orient(opts: &CommonOpts, scheme: IdScheme) -> CommandOutput {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let spec = RingSpec::random_flips(opts.ids.clone(), &mut rng);
    let out = runner::run_alg3(&spec, scheme, opts.scheduler, opts.seed);
    let ports: String = out
        .cw_ports
        .iter()
        .enumerate()
        .map(|(i, p)| {
            format!(
                "  node {i}: claims CW = {}\n",
                p.map_or("undecided".to_owned(), |p| p.to_string())
            )
        })
        .collect();
    let text = format!(
        "Algorithm 3 ({scheme}) on {spec}\noutcome: {}\n{}{}orientation consistent: {}\npulses: {} (predicted {})\n",
        out.report.outcome,
        describe_roles(&spec, &out.report.roles),
        ports,
        out.orientation_consistent,
        out.report.total_messages,
        out.report.predicted_messages.unwrap_or(0),
    );
    let json = object([
        ("report", election_json(&out.report)),
        (
            "cw_ports",
            array(out.cw_ports.iter().map(|p| p.map(|p| p.index()))),
        ),
        (
            "orientation_consistent",
            Value::from(out.orientation_consistent),
        ),
    ]);
    ok(text, json)
}

fn anonymous(opts: &CommonOpts, n: usize, c: f64, trials: u64) -> CommandOutput {
    // 16-bit cap keeps the heavy geometric tail simulatable interactively;
    // see SamplingConfig::max_bits for the (documented) deviation.
    let cfg = SamplingConfig::new(c).with_max_bits(16);
    let stats = success_rate(n, &cfg, opts.scheduler, trials, opts.seed);
    let text = format!(
        "Anonymous ring n={n}, c={c}, {trials} trials (Theorem 3)\n\
         success:     {:.1}% (failures are exactly tied maxima)\n\
         unique max:  {:.1}%\n\
         mean ID_max: {:.1}   largest ID_max: {}\n\
         max pulses:  {}\n",
        100.0 * stats.rate(),
        100.0 * stats.unique_max as f64 / trials as f64,
        stats.mean_id_max,
        stats.max_id_max,
        stats.max_messages,
    );
    let json = object([
        ("trials", Value::from(stats.trials)),
        ("successes", Value::from(stats.successes)),
        ("unique_max", Value::from(stats.unique_max)),
        ("mean_id_max", Value::from(stats.mean_id_max)),
        ("max_id_max", Value::from(stats.max_id_max)),
        ("max_messages", Value::from(stats.max_messages)),
    ]);
    ok(text, json)
}

fn compose(opts: &CommonOpts) -> CommandOutput {
    let spec = RingSpec::oriented(opts.ids.clone());
    let out = elect_then_ring_size(&spec, opts.scheduler, opts.seed);
    let json = object([
        (
            "quiescently_terminated",
            Value::from(out.quiescently_terminated),
        ),
        ("leader", Value::from(out.leader)),
        ("ring_size_answers", Value::from(out.outputs.clone())),
        ("total_messages", Value::from(out.total_messages)),
        ("election_messages", Value::from(out.election_messages)),
    ]);
    let text = format!(
        "Corollary 5 on {spec}: elect (Algorithm 2), then every node computes n\n\
         quiescent termination: {}\nleader: position {:?}\n\
         answers: {:?}\npulses: {} total ({} for the election)\n",
        out.quiescently_terminated,
        out.leader,
        out.outputs,
        out.total_messages,
        out.election_messages,
    );
    ok(text, json)
}

fn solitude(max_id: u64) -> CommandOutput {
    struct PatternRow {
        id: u64,
        pattern: String,
        length: usize,
    }
    let rows: Vec<PatternRow> = (1..=max_id)
        .map(|id| {
            let p = solitude_pattern_alg2(id).expect("Algorithm 2 terminates in solitude");
            PatternRow {
                id,
                length: p.len(),
                pattern: p.to_string(),
            }
        })
        .collect();
    let mut text = format!("Solitude patterns of Algorithm 2 (Definition 21), IDs 1..={max_id}\n");
    for r in &rows {
        text.push_str(&format!(
            "  ID {:>4}: {} (len {})\n",
            r.id, r.pattern, r.length
        ));
    }
    text.push_str("All patterns are pairwise distinct (Lemma 22).\n");
    let json = Value::Array(
        rows.iter()
            .map(|r| {
                object([
                    ("id", Value::from(r.id)),
                    ("pattern", Value::from(r.pattern.clone())),
                    ("length", Value::from(r.length)),
                ])
            })
            .collect(),
    );
    ok(text, json)
}

fn baseline(opts: &CommonOpts, which: co_classic::runner::Baseline) -> CommandOutput {
    let spec = RingSpec::oriented(opts.ids.clone());
    let report = which.run(&spec, opts.scheduler, opts.seed);
    let text = format!(
        "{which} (content-carrying baseline) on {spec}\noutcome: {}\n{}messages: {}\n\
         NOTE: this algorithm reads message content and cannot run on\n\
         defective channels; see `co-ring elect` for the content-oblivious one.\n",
        report.outcome,
        describe_roles(&spec, &report.roles),
        report.total_messages,
    );
    ok(text, election_json(&report))
}

fn echo(opts: &CommonOpts, graph: &crate::args::GraphSpec, root: usize) -> CommandOutput {
    use co_core::general::{EchoNode, EchoState};
    use co_net::multiport::{GraphSim, GraphWiring};
    use co_net::{Budget, Pulse};

    let g = graph.build();
    let n = g.vertex_count();
    if root >= n {
        return CommandOutput {
            text: format!("error: --root {root} out of range for {n} nodes\n"),
            json: Value::Null,
            code: 1,
        };
    }
    let wiring = GraphWiring::from_graph(&g);
    let nodes = (0..n).map(|v| EchoNode::new(v == root)).collect();
    let mut sim: GraphSim<Pulse, EchoNode> =
        GraphSim::new(wiring, nodes, opts.scheduler.build(opts.seed));
    let report = sim.run(Budget::steps(10_000_000));
    let done = (0..n)
        .filter(|&v| sim.node(v).state() == EchoState::Done)
        .count();

    let json = object([
        ("nodes", Value::from(n)),
        ("edges", Value::from(g.edge_count())),
        ("two_edge_connected", Value::from(g.is_two_edge_connected())),
        ("bridges", Value::from(g.bridges())),
        ("outcome", Value::from(report.outcome.to_string())),
        ("pulses", Value::from(report.total_sent)),
        ("nodes_done", Value::from(done)),
    ]);
    let text = format!(
        "flood-echo wave on {graph:?} (root {root}) under {}\n\
         n = {n}, m = {}, 2-edge-connected = {} (bridges: {:?})\n\
         outcome: {} | pulses: {} (2m = {}) | nodes done: {done}/{n}\n",
        opts.scheduler,
        g.edge_count(),
        g.is_two_edge_connected(),
        g.bridges(),
        report.outcome,
        report.total_sent,
        2 * g.edge_count(),
    );
    ok(text, json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Cli;

    fn run_line(line: &[&str]) -> CommandOutput {
        run(&Cli::parse(line.iter().copied()).expect("parses"))
    }

    #[test]
    fn elect_reports_theorem1() {
        let out = run_line(&["elect", "--ids", "3,9,5", "--scheduler", "fifo"]);
        assert_eq!(out.code, 0);
        assert!(out.text.contains("quiescent termination"));
        assert!(out.text.contains("57")); // 3 * (2*9 + 1)
        assert!(out.json.get("total_messages").is_some());
    }

    #[test]
    fn stabilize_reports_quiescence() {
        let out = run_line(&["stabilize", "--n", "4", "--scheduler", "fifo"]);
        assert!(out.text.contains("quiescence without termination"));
        assert!(out.text.contains("16")); // 4 * ID_max(4)
    }

    #[test]
    fn orient_reports_consistency() {
        let out = run_line(&["orient", "--ids", "2,8,5", "--seed", "3"]);
        assert!(out.text.contains("orientation consistent: true"));
    }

    #[test]
    fn anonymous_reports_rates() {
        let out = run_line(&[
            "anonymous",
            "--n",
            "6",
            "--trials",
            "10",
            "--c",
            "0.5",
            "--seed",
            "1",
        ]);
        assert!(out.text.contains("success"));
    }

    #[test]
    fn compose_reports_ring_size() {
        let out = run_line(&["compose", "--n", "5", "--scheduler", "fifo"]);
        assert!(out.text.contains("Some(5)"));
    }

    #[test]
    fn solitude_prints_patterns() {
        let out = run_line(&["solitude", "--max-id", "3"]);
        assert!(out.text.contains("0001111"));
    }

    #[test]
    fn baseline_runs() {
        let out = run_line(&["baseline", "--algo", "hs", "--n", "6"]);
        assert!(out.text.contains("hirschberg-sinclair"));
    }

    #[test]
    fn help_prints_usage() {
        let out = run_line(&["help"]);
        assert!(out.text.contains("USAGE"));
    }

    #[test]
    fn fleet_reports_aggregates() {
        let out = run_line(&[
            "fleet",
            "--rings",
            "200",
            "--ring-sizes",
            "4",
            "--protocol",
            "alg2",
            "--jobs",
            "2",
        ]);
        assert_eq!(out.code, 0);
        assert!(out.text.contains("200 × 4 rings/round under alg2"));
        // Clean fixed-size fleet: every ring elects, Theorem 1 pulse count.
        assert!(out.text.contains("elections/sec"));
        assert_eq!(out.json.get("elections").and_then(Value::as_u64), Some(200));
        assert_eq!(
            out.json.get("total_sent").and_then(Value::as_u64),
            Some(200 * 4 * (2 * 4 + 1))
        );
    }

    #[test]
    fn fleet_output_is_jobs_invariant() {
        let args = |jobs: &'static str| {
            vec![
                "fleet",
                "--rings",
                "150",
                "--ring-sizes",
                "uniform:3..7",
                "--fault-rate",
                "0.05",
                "--rounds",
                "2",
                "--seed",
                "11",
                "--jobs",
                jobs,
            ]
        };
        let a = run_line(&args("1"));
        let b = run_line(&args("4"));
        // Wall-clock keys differ; every deterministic key must not.
        for key in [
            "elections",
            "total_pulses",
            "total_sent",
            "faults_injected",
            "budget_exhausted",
            "peak_ring_queue_bytes",
            "p50_pulses_to_quiescence",
            "p99_pulses_to_quiescence",
        ] {
            assert_eq!(
                a.json.get(key).and_then(Value::as_u64),
                b.json.get(key).and_then(Value::as_u64),
                "{key}"
            );
        }
    }

    #[test]
    fn echo_runs_on_graphs() {
        let out = run_line(&["echo", "--graph", "complete:5", "--root", "2"]);
        assert!(out.text.contains("pulses: 20 (2m = 20)"));
        assert!(out.text.contains("nodes done: 5/5"));
        let out = run_line(&["echo", "--graph", "path:4"]);
        assert!(out.text.contains("2-edge-connected = false"));
        assert!(out.text.contains("nodes done: 4/4"));
    }

    #[test]
    fn record_then_replay_round_trips() {
        let rec = run_line(&[
            "record",
            "--ids",
            "2,3,1",
            "--scheduler",
            "random",
            "--seed",
            "5",
        ]);
        assert_eq!(rec.code, 0);
        let schedule = rec.json.get("schedule").expect("schedule in JSON");
        let Value::Str(schedule) = schedule else {
            panic!("schedule should be a string")
        };
        let rep = run_line(&["replay", "--ids", "2,3,1", "--schedule", schedule]);
        assert_eq!(rep.code, 0);
        // The replay delivers exactly the recorded picks.
        assert!(rep.text.contains("quiescent termination"));
        assert_eq!(
            rec.json.get("report").and_then(|r| r.get("total_sent")),
            rep.json.get("report").and_then(|r| r.get("total_sent")),
        );
    }

    #[test]
    fn elect_batch_matches_per_pulse() {
        let off = run_line(&["elect", "--ids", "3,9,5", "--seed", "4"]);
        let on = run_line(&["elect", "--ids", "3,9,5", "--seed", "4", "--batch", "on"]);
        assert_eq!(on.code, 0);
        assert_eq!(off.json, on.json); // observational equivalence, byte for byte
    }

    #[test]
    fn batched_record_then_replay_round_trips() {
        let rec = run_line(&[
            "record",
            "--ids",
            "2,3,1",
            "--scheduler",
            "random",
            "--seed",
            "5",
            "--batch",
            "on",
        ]);
        assert_eq!(rec.code, 0);
        assert_eq!(rec.json.get("batch"), Some(&Value::Bool(true)));
        let Some(Value::Str(schedule)) = rec.json.get("schedule") else {
            panic!("schedule should be a string")
        };
        assert!(schedule.starts_with("batch:"), "mode must be embedded");

        // No --batch flag: the replay follows the recording's mode.
        let rep = run_line(&["replay", "--ids", "2,3,1", "--schedule", schedule]);
        assert_eq!(rep.code, 0);
        assert_eq!(rep.json.get("batch"), Some(&Value::Bool(true)));
        assert_eq!(
            rec.json.get("report").and_then(|r| r.get("total_sent")),
            rep.json.get("report").and_then(|r| r.get("total_sent")),
        );
        // An agreeing explicit flag is also fine.
        let rep2 = run_line(&[
            "replay",
            "--ids",
            "2,3,1",
            "--schedule",
            schedule,
            "--batch",
            "on",
        ]);
        assert_eq!(rep2.code, 0);
        assert_eq!(rep.json, rep2.json);
    }

    #[test]
    fn replay_refuses_a_batch_mode_mismatch() {
        // Per-pulse recording, batched replay requested.
        let out = run_line(&[
            "replay",
            "--ids",
            "2,3,1",
            "--schedule",
            "0,1,2",
            "--batch",
            "on",
        ]);
        assert_eq!(out.code, 1);
        assert_eq!(
            out.json.get("error"),
            Some(&Value::Str("batch-mode-mismatch".to_owned()))
        );
        assert_eq!(out.json.get("recorded_batch"), Some(&Value::Bool(false)));
        assert_eq!(out.json.get("requested_batch"), Some(&Value::Bool(true)));
        assert!(out.text.contains("recorded with per-pulse delivery"));

        // Batched recording, per-pulse replay requested.
        let out = run_line(&[
            "replay",
            "--ids",
            "2,3,1",
            "--schedule",
            "batch:0,1,2",
            "--batch",
            "off",
        ]);
        assert_eq!(out.code, 1);
        assert_eq!(out.json.get("recorded_batch"), Some(&Value::Bool(true)));
        assert_eq!(out.json.get("requested_batch"), Some(&Value::Bool(false)));
    }

    #[test]
    fn latency_record_then_replay_round_trips() {
        fn line<'a>(cmd: &'a str, extra: &[&'a str]) -> Vec<&'a str> {
            let mut v = vec![
                cmd,
                "--ids",
                "2,3,1",
                "--scheduler",
                "latency",
                "--latency",
                "uniform:1..9",
                "--latency-seed",
                "7",
            ];
            v.extend_from_slice(extra);
            v
        }
        let rec = run_line(&line("record", &[]));
        assert_eq!(rec.code, 0);
        let Some(Value::Str(schedule)) = rec.json.get("schedule") else {
            panic!("schedule should be a string")
        };
        let rep = run_line(&line("replay", &["--schedule", schedule]));
        assert_eq!(rep.code, 0);
        assert_eq!(
            rec.json.get("report").and_then(|r| r.get("total_sent")),
            rep.json.get("report").and_then(|r| r.get("total_sent")),
        );
        // Same flags, same bytes: recording again is deterministic.
        let rec2 = run_line(&line("record", &[]));
        assert_eq!(rec.json.get("schedule"), rec2.json.get("schedule"));
    }

    #[test]
    fn elect_accepts_latency_flags() {
        let out = run_line(&[
            "elect",
            "--ids",
            "3,9,5",
            "--latency",
            "fixed:4",
            "--latency-seed",
            "2",
        ]);
        assert_eq!(out.code, 0);
        assert!(out.text.contains("quiescent termination"));
        assert!(out.text.contains("57")); // latency never changes Theorem 1
    }

    #[test]
    fn shrink_minimizes_the_ungated_ablation() {
        let out = run_line(&["shrink", "--ids", "1,2,3", "--scheduler", "random"]);
        assert_eq!(out.code, 0);
        assert_eq!(out.json.get("violation_found"), Some(&Value::Bool(true)));
        let orig = out.json.get("original_len").expect("original_len");
        let shrunk = out.json.get("shrunk_len").expect("shrunk_len");
        let (Value::UInt(orig), Value::UInt(shrunk)) = (orig, shrunk) else {
            panic!("lengths should be numbers")
        };
        assert!(shrunk <= orig, "shrunk schedule may not grow");
    }

    #[test]
    fn shrink_finds_nothing_on_the_real_algorithm() {
        let out = run_line(&["shrink", "--protocol", "alg2", "--ids", "1,2"]);
        assert_eq!(out.code, 0);
        assert_eq!(out.json.get("violation_found"), Some(&Value::Bool(false)));
    }

    #[test]
    fn shrink_rejects_protocols_without_ccw_counters() {
        let out = run_line(&["shrink", "--protocol", "alg1"]);
        assert_eq!(out.code, 1);
    }

    #[test]
    fn explore_counts_configurations() {
        let out = run_line(&["explore", "--ids", "1,2"]);
        assert_eq!(out.code, 0);
        assert_eq!(out.json.get("complete"), Some(&Value::Bool(true)));
        let Some(Value::UInt(configs)) = out.json.get("configs") else {
            panic!("configs should be a number")
        };
        assert!(*configs > 1);
        let out = run_line(&["explore", "--ids", "1,2", "--max-configs", "2"]);
        assert_eq!(out.json.get("complete"), Some(&Value::Bool(false)));
    }

    #[test]
    fn echo_rejects_bad_root() {
        let out = run_line(&["echo", "--graph", "ring:3", "--root", "9"]);
        assert_eq!(out.code, 1);
    }

    #[test]
    fn chang_roberts_records_and_replays_byte_identically() {
        let record = run_line(&[
            "record",
            "--protocol",
            "chang-roberts",
            "--ids",
            "4,9,2,7",
            "--scheduler",
            "random",
            "--seed",
            "5",
        ]);
        assert_eq!(record.code, 0);
        let schedule = record
            .json
            .get("schedule")
            .and_then(Value::as_str)
            .expect("schedule string");
        let replay = run_line(&[
            "replay",
            "--protocol",
            "chang-roberts",
            "--ids",
            "4,9,2,7",
            "--schedule",
            schedule,
        ]);
        assert_eq!(replay.code, 0);
        for key in ["report", "fingerprint", "leaders"] {
            assert_eq!(record.json.get(key), replay.json.get(key), "{key}");
        }
        // Position 1 holds the maximum ID, so Chang-Roberts elects it.
        assert!(replay.text.contains("leaders: [1]"));
    }

    #[test]
    fn batched_record_refuses_uncertified_protocols() {
        let out = run_line(&[
            "record",
            "--protocol",
            "chang-roberts",
            "--ids",
            "1,2",
            "--batch",
            "on",
        ]);
        assert_eq!(out.code, 1);
        assert_eq!(
            out.json.get("error").and_then(Value::as_str),
            Some("missing-capability")
        );
        assert_eq!(
            out.json.get("capability").and_then(Value::as_str),
            Some("batch")
        );
        assert!(out.text.contains("does not support batch"));
    }

    #[test]
    fn explore_rejects_content_carrying_protocols() {
        let out = run_line(&["explore", "--protocol", "franklin", "--ids", "1,2"]);
        assert_eq!(out.code, 1);
        assert_eq!(
            out.json.get("error").and_then(Value::as_str),
            Some("missing-capability")
        );
        let supported = out.json.get("supported").expect("supported list");
        assert!(supported.to_string().contains("alg2"));
    }

    #[test]
    fn shrink_runs_clean_on_chang_roberts() {
        let out = run_line(&["shrink", "--protocol", "chang-roberts", "--ids", "2,5,3"]);
        assert_eq!(out.code, 0);
        assert_eq!(out.json.get("violation_found"), Some(&Value::Bool(false)));
    }

    #[test]
    fn protocols_lists_the_registry() {
        let out = run_line(&["protocols"]);
        assert_eq!(out.code, 0);
        for name in co_bench::protocols().names() {
            assert!(out.text.contains(name), "table must list {name}");
        }
        let Value::Array(docs) = &out.json else {
            panic!("protocols JSON should be an array")
        };
        assert_eq!(docs.len(), co_bench::protocols().entries().len());
        let cr = docs
            .iter()
            .find(|d| d.get("name").and_then(Value::as_str) == Some("chang-roberts"))
            .expect("chang-roberts entry");
        assert!(cr.to_string().contains("shrink"));
    }
}
