//! Substrate microbenchmarks: raw delivery throughput of the simulator and
//! the per-step cost of each scheduler, independent of any algorithm.

use co_bench::harness::{BenchmarkId, Criterion, Throughput};
use co_bench::{criterion_group, criterion_main};
use co_net::{Budget, Context, Port, Protocol, Pulse, RingSpec, SchedulerKind, Simulation};

/// Relays every pulse clockwise forever (runs are bounded by the budget).
#[derive(Clone, Debug)]
struct Relay;

impl Protocol<Pulse> for Relay {
    type Output = ();
    fn on_start(&mut self, ctx: &mut Context<'_, Pulse>) {
        ctx.send(Port::One, Pulse);
    }
    fn on_message(&mut self, _p: Port, _m: Pulse, ctx: &mut Context<'_, Pulse>) {
        ctx.send(Port::One, Pulse);
    }
    fn output(&self) -> Option<()> {
        None
    }
}

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/throughput");
    const STEPS: u64 = 100_000;
    group.throughput(Throughput::Elements(STEPS));
    for n in [4usize, 64, 1024] {
        let spec = RingSpec::oriented((1..=n as u64).collect());
        group.bench_with_input(BenchmarkId::from_parameter(n), &spec, |b, spec| {
            b.iter(|| {
                let nodes = vec![Relay; spec.len()];
                let mut sim: Simulation<Pulse, Relay> =
                    Simulation::new(spec.wiring(), nodes, SchedulerKind::Fifo.build(0));
                sim.run(Budget::steps(STEPS))
            })
        });
    }
    group.finish();
}

fn bench_scheduler_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/scheduler_overhead");
    const STEPS: u64 = 50_000;
    group.throughput(Throughput::Elements(STEPS));
    let spec = RingSpec::oriented((1..=64u64).collect());
    for kind in SchedulerKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            b.iter(|| {
                let nodes = vec![Relay; spec.len()];
                let mut sim: Simulation<Pulse, Relay> =
                    Simulation::new(spec.wiring(), nodes, kind.build(7));
                sim.run(Budget::steps(STEPS))
            })
        });
    }
    group.finish();
}

fn bench_trace_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/trace_overhead");
    const STEPS: u64 = 50_000;
    let spec = RingSpec::oriented((1..=64u64).collect());
    group.bench_function("off", |b| {
        b.iter(|| {
            let nodes = vec![Relay; spec.len()];
            let mut sim: Simulation<Pulse, Relay> =
                Simulation::new(spec.wiring(), nodes, SchedulerKind::Fifo.build(0));
            sim.run(Budget::steps(STEPS))
        })
    });
    group.bench_function("on", |b| {
        b.iter(|| {
            let nodes = vec![Relay; spec.len()];
            let mut sim: Simulation<Pulse, Relay> =
                Simulation::new(spec.wiring(), nodes, SchedulerKind::Fifo.build(0));
            sim.enable_trace(Some(1024));
            sim.run(Budget::steps(STEPS))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_throughput,
    bench_scheduler_overhead,
    bench_trace_overhead
);
criterion_main!(benches);
