//! E14 bench — the universal ring simulation: cost of running a simulated
//! content-carrying algorithm (Chang–Roberts) over the defective ring, as
//! a function of ring size and of the simulated message magnitude (the
//! unary encoding makes words expensive — the price of obliviousness).

use co_bench::harness::{BenchmarkId, Criterion};
use co_bench::{criterion_group, criterion_main};
use co_classic::chang_roberts::{ChangRobertsNode, CrMsg};
use co_compose::universal::simulate_on_defective_ring;
use co_net::{Port, RingSpec, SchedulerKind};

fn cr_encode(m: &CrMsg) -> u64 {
    match *m {
        CrMsg::Candidate(id) => id << 1,
        CrMsg::Elected(id) => (id << 1) | 1,
    }
}

fn cr_decode(w: u64) -> CrMsg {
    if w & 1 == 0 {
        CrMsg::Candidate(w >> 1)
    } else {
        CrMsg::Elected(w >> 1)
    }
}

fn bench_by_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("universal/chang_roberts_by_n");
    group.sample_size(20);
    for n in [3u64, 6, 12] {
        let spec = RingSpec::oriented((1..=n).collect());
        group.bench_with_input(BenchmarkId::from_parameter(n), &spec, |b, spec| {
            b.iter(|| {
                simulate_on_defective_ring(
                    spec,
                    SchedulerKind::Fifo,
                    0,
                    |i| ChangRobertsNode::new(spec.id(i), Port::One),
                    cr_encode,
                    cr_decode,
                )
            })
        });
    }
    group.finish();
}

fn bench_by_id_magnitude(c: &mut Criterion) {
    // Same ring size, bigger IDs: unary word cost grows linearly.
    let mut group = c.benchmark_group("universal/chang_roberts_by_id");
    group.sample_size(20);
    for base in [4u64, 32, 256] {
        let spec = RingSpec::oriented(vec![base, base + 1, base + 2]);
        group.bench_with_input(BenchmarkId::from_parameter(base), &spec, |b, spec| {
            b.iter(|| {
                simulate_on_defective_ring(
                    spec,
                    SchedulerKind::Fifo,
                    0,
                    |i| ChangRobertsNode::new(spec.id(i), Port::One),
                    cr_encode,
                    cr_decode,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_by_n, bench_by_id_magnitude);
criterion_main!(benches);
