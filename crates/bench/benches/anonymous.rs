//! E5 bench — Theorem 3: anonymous-ring election cost across `n` and `c`.
//! The complexity is `n^{O(1)}` but grows with `c` through `ID_max`.

use co_bench::harness::{BenchmarkId, Criterion};
use co_bench::{criterion_group, criterion_main};
use co_core::anonymous::{elect_anonymous, SamplingConfig};
use co_net::SchedulerKind;

fn bench_by_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("anonymous/by_n");
    group.sample_size(20);
    let cfg = SamplingConfig::new(1.0).with_max_bits(12);
    for n in [8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                elect_anonymous(n, &cfg, SchedulerKind::Random, seed)
            })
        });
    }
    group.finish();
}

fn bench_by_c(c: &mut Criterion) {
    let mut group = c.benchmark_group("anonymous/by_c");
    group.sample_size(20);
    for c_param in [0.5f64, 1.0, 2.0] {
        let cfg = SamplingConfig::new(c_param).with_max_bits(12);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("c={c_param}")),
            &cfg,
            |b, cfg| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    elect_anonymous(16, cfg, SchedulerKind::Random, seed)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_by_n, bench_by_c);
criterion_main!(benches);
