//! E3/E4 bench — Proposition 15 vs Theorem 2: the two virtual-ID schemes of
//! Algorithm 3 on non-oriented rings. The improved scheme should run at
//! roughly half the doubled scheme's cost (pulse ratio ≈ (2·ID)/(4·ID)).

use co_bench::harness::{BenchmarkId, Criterion, Throughput};
use co_bench::{criterion_group, criterion_main};
use co_core::{runner, IdScheme};
use co_net::{RingSpec, SchedulerKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg3/scheme");
    let mut rng = StdRng::seed_from_u64(33);
    for n in [16u64, 64, 256] {
        let spec = RingSpec::random_flips((1..=n).collect(), &mut rng);
        for scheme in [IdScheme::Doubled, IdScheme::Improved] {
            let pulses = scheme.predicted_messages(n, n);
            group.throughput(Throughput::Elements(pulses));
            let label = format!("{scheme:?}/n={n}");
            group.bench_with_input(BenchmarkId::from_parameter(label), &spec, |b, spec| {
                b.iter(|| {
                    let out = runner::run_alg3(spec, scheme, SchedulerKind::Fifo, 0);
                    assert_eq!(out.report.total_messages, pulses);
                    out
                })
            });
        }
    }
    group.finish();
}

fn bench_resampling_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg3/prop19_resampling");
    let spec = RingSpec::oriented(vec![5, 5, 5, 5, 5, 5, 5, 120]);
    group.bench_function("without", |b| {
        b.iter(|| runner::run_alg3(&spec, IdScheme::Improved, SchedulerKind::Random, 4))
    });
    group.bench_function("with", |b| {
        b.iter(|| runner::run_alg3_resampling(&spec, IdScheme::Improved, SchedulerKind::Random, 4))
    });
    group.finish();
}

criterion_group!(benches, bench_schemes, bench_resampling_overhead);
criterion_main!(benches);
