//! E1 bench — Theorem 1: Algorithm 2 across ring sizes and ID magnitudes.
//!
//! Wall-clock scales with the pulse count `n(2·ID_max + 1)`; the bench
//! sweeps both axes to expose the `ID_max` dependence that Theorem 4 proves
//! inherent.

use co_bench::harness::{BenchmarkId, Criterion, Throughput};
use co_bench::{criterion_group, criterion_main};
use co_core::runner;
use co_net::{RingSpec, SchedulerKind};

fn bench_by_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg2/by_n");
    for n in [8u64, 32, 128, 512] {
        let spec = RingSpec::oriented((1..=n).collect());
        let pulses = n * (2 * n + 1);
        group.throughput(Throughput::Elements(pulses));
        group.bench_with_input(BenchmarkId::from_parameter(n), &spec, |b, spec| {
            b.iter(|| {
                let report = runner::run_alg2(spec, SchedulerKind::Fifo, 0);
                assert_eq!(report.total_messages, pulses);
                report
            })
        });
    }
    group.finish();
}

fn bench_by_id_max(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg2/by_id_max");
    // Fixed n = 8: complexity is governed purely by ID_max.
    for id_max in [64u64, 256, 1024, 4096, 16384] {
        let mut ids: Vec<u64> = (1..8).collect();
        ids.push(id_max);
        let spec = RingSpec::oriented(ids);
        let pulses = 8 * (2 * id_max + 1);
        group.throughput(Throughput::Elements(pulses));
        group.bench_with_input(BenchmarkId::from_parameter(id_max), &spec, |b, spec| {
            b.iter(|| {
                let report = runner::run_alg2(spec, SchedulerKind::Fifo, 0);
                assert_eq!(report.total_messages, pulses);
                report
            })
        });
    }
    group.finish();
}

fn bench_by_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg2/by_scheduler");
    let spec = RingSpec::oriented((1..=64u64).collect());
    for kind in SchedulerKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            b.iter(|| runner::run_alg2(&spec, kind, 1))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_by_n, bench_by_id_max, bench_by_scheduler);
criterion_main!(benches);
