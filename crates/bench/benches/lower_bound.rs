//! E6/E7 bench — solitude-pattern extraction (Definition 21) and the
//! pigeonhole analysis (Lemma 23 / Corollary 24) behind Theorem 4.

use co_bench::harness::{BenchmarkId, Criterion};
use co_bench::{criterion_group, criterion_main};
use co_core::lower_bound::{max_prefix_group, solitude_pattern_alg2, SolitudePattern};

fn bench_pattern_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("lower_bound/solitude_pattern");
    for id in [16u64, 256, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(id), &id, |b, &id| {
            b.iter(|| solitude_pattern_alg2(id).expect("terminates"))
        });
    }
    group.finish();
}

fn bench_prefix_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("lower_bound/prefix_group");
    let patterns: Vec<SolitudePattern> = (1..=256)
        .map(|id| solitude_pattern_alg2(id).expect("terminates"))
        .collect();
    for n in [2usize, 16, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| max_prefix_group(&patterns, n))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pattern_extraction, bench_prefix_analysis);
criterion_main!(benches);
