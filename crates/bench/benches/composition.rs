//! E9 bench — Corollary 5: the cost of election-then-computation pipelines.

use co_bench::harness::{BenchmarkId, Criterion};
use co_bench::{criterion_group, criterion_main};
use co_compose::pipeline::{elect_then_aggregate, elect_then_ring_size};
use co_net::{RingSpec, SchedulerKind};

fn bench_ring_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("composition/ring_size");
    for n in [8u64, 32, 128] {
        let spec = RingSpec::oriented((1..=n).collect());
        group.bench_with_input(BenchmarkId::from_parameter(n), &spec, |b, spec| {
            b.iter(|| elect_then_ring_size(spec, SchedulerKind::Fifo, 0))
        });
    }
    group.finish();
}

fn bench_aggregate(c: &mut Criterion) {
    let mut group = c.benchmark_group("composition/aggregate");
    for n in [8u64, 32, 128] {
        let spec = RingSpec::oriented((1..=n).collect());
        let inputs: Vec<u64> = (0..n).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &spec, |b, spec| {
            b.iter(|| elect_then_aggregate(spec, &inputs, SchedulerKind::Fifo, 0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ring_size, bench_aggregate);
criterion_main!(benches);
