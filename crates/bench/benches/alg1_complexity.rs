//! E2 bench — Corollary 13: Algorithm 1 stabilization cost (`n·ID_max`
//! pulses), with and without the full Lemma 6–12 invariant monitors, to
//! quantify the monitoring overhead.

use co_bench::harness::{BenchmarkId, Criterion, Throughput};
use co_bench::{criterion_group, criterion_main};
use co_core::runner;
use co_net::{RingSpec, SchedulerKind};

fn bench_by_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg1/by_n");
    for n in [8u64, 32, 128, 512] {
        let spec = RingSpec::oriented((1..=n).collect());
        group.throughput(Throughput::Elements(n * n));
        group.bench_with_input(BenchmarkId::from_parameter(n), &spec, |b, spec| {
            b.iter(|| runner::run_alg1(spec, SchedulerKind::Fifo, 0))
        });
    }
    group.finish();
}

fn bench_monitored(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg1/monitored");
    let spec = RingSpec::oriented((1..=32u64).collect());
    group.bench_function("plain", |b| {
        b.iter(|| runner::run_alg1(&spec, SchedulerKind::Random, 2))
    });
    group.bench_function("with_lemma_monitors", |b| {
        b.iter(|| runner::run_alg1_monitored(&spec, SchedulerKind::Random, 2).expect("invariants"))
    });
    group.finish();
}

criterion_group!(benches, bench_by_n, bench_monitored);
criterion_main!(benches);
