//! E12 bench — cost of exhaustively model-checking Algorithm 2's schedule
//! space as the instance grows (configurations grow combinatorially; the
//! fingerprint-deduplication keeps it tractable).

use co_bench::harness::{BenchmarkId, Criterion};
use co_bench::{criterion_group, criterion_main};
use co_core::Alg2Node;
use co_net::explore::{explore, ExploreLimits};
use co_net::RingSpec;

fn check(ids: &[u64]) -> usize {
    let spec = RingSpec::oriented(ids.to_vec());
    let report = explore(
        &spec.wiring(),
        || {
            (0..spec.len())
                .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
                .collect()
        },
        |_| Ok(()),
        |_| Ok(()),
        ExploreLimits::default(),
    );
    assert!(report.complete && report.violations.is_empty());
    report.configs
}

fn bench_model_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_check/alg2");
    for ids in [
        vec![1u64, 2],
        vec![1, 2, 3],
        vec![2, 3, 4],
        vec![1, 2, 3, 4],
    ] {
        let label = format!("{ids:?}");
        group.bench_with_input(BenchmarkId::from_parameter(label), &ids, |b, ids| {
            b.iter(|| check(ids))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_model_check);
criterion_main!(benches);
