//! E8 bench — §1.2 comparison: classical content-carrying baselines vs the
//! content-oblivious Algorithm 2 on the same rings.

use co_bench::harness::{BenchmarkId, Criterion};
use co_bench::{criterion_group, criterion_main};
use co_classic::runner::Baseline;
use co_core::{runner, IdAssignment};
use co_net::{RingSpec, SchedulerKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_all(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines/by_n");
    let mut rng = StdRng::seed_from_u64(88);
    for n in [32usize, 128, 512] {
        let spec = RingSpec::oriented(IdAssignment::Shuffled.generate(n, &mut rng));
        for baseline in Baseline::ALL {
            let label = format!("{baseline}/n={n}");
            group.bench_with_input(BenchmarkId::from_parameter(label), &spec, |b, spec| {
                b.iter(|| baseline.run(spec, SchedulerKind::Fifo, 2))
            });
        }
        let label = format!("alg2-content-oblivious/n={n}");
        group.bench_with_input(BenchmarkId::from_parameter(label), &spec, |b, spec| {
            b.iter(|| runner::run_alg2(spec, SchedulerKind::Fifo, 2))
        });
    }
    group.finish();
}

fn bench_cr_worst_case(c: &mut Criterion) {
    // Chang-Roberts' pathological descending ring vs ours on the same ring.
    let mut group = c.benchmark_group("baselines/descending_ring");
    let n = 256u64;
    let spec = RingSpec::oriented((1..=n).rev().collect());
    group.bench_function("chang_roberts", |b| {
        b.iter(|| Baseline::ChangRoberts.run(&spec, SchedulerKind::Fifo, 0))
    });
    group.bench_function("alg2", |b| {
        b.iter(|| runner::run_alg2(&spec, SchedulerKind::Fifo, 0))
    });
    group.finish();
}

criterion_group!(benches, bench_all, bench_cr_worst_case);
criterion_main!(benches);
