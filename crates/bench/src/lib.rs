//! # `co-bench` — the experiment harness
//!
//! Regenerates every quantitative claim of the paper as a table
//! (experiments E0–E10, indexed in `DESIGN.md` §5). Each experiment is a
//! pure function returning a [`Table`]; the `tables` binary prints them and
//! the Criterion benches measure the wall-clock cost of representative
//! configurations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod stats;
pub mod table;

pub use experiments::{run_experiment, Experiment};
pub use stats::Summary;
pub use table::Table;
