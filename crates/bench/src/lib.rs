//! # `co-bench` — the experiment harness
//!
//! Regenerates every quantitative claim of the paper as a table
//! (experiments E0–E22, indexed in `DESIGN.md` §5). Each experiment is a
//! pure function returning a [`Table`]; the `tables` binary prints them
//! (optionally fanning the catalogue across a worker pool, see
//! [`parallel`]) and the [`harness`] benches measure the wall-clock cost of
//! representative configurations. The [`check`] module is the benchmark
//! regression gate CI runs against `bench_baseline.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod experiments;
pub mod fleet;
pub mod harness;
pub mod parallel;
pub mod registry;
pub mod stats;
pub mod table;

pub use check::{collect_metrics, compare, CheckReport, Metric};
pub use experiments::{run_experiment, run_experiment_batch, run_experiment_with, Experiment};
pub use fleet::{run_fleet, run_fleet_round, FleetRunSummary};
pub use parallel::{effective_jobs, par_map};
pub use registry::protocols;
pub use stats::Summary;
pub use table::Table;
