//! Deterministic worker-pool fan-out for experiment grids.
//!
//! [`par_map`] runs a function over a slice on `jobs` scoped OS threads
//! (`std::thread::scope` — no external dependencies) and returns results in
//! **input order** regardless of which worker finished first. Experiments
//! seed every trial from its grid coordinates, so a parallel run produces a
//! byte-identical table to a sequential one; the harness determinism test
//! locks that in.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a `--jobs` request: `0` means "one worker per available core".
#[must_use]
pub fn effective_jobs(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    }
}

/// Applies `f` to every item on a pool of `jobs` threads, preserving input
/// order in the returned vector.
///
/// Work is handed out by an atomic cursor, so the assignment of items to
/// workers is dynamic (good load balance for skewed grids) while the output
/// order stays deterministic. With `jobs <= 1` the items run inline on the
/// caller's thread with no pool at all.
///
/// # Panics
///
/// Propagates a panic from `f` after the scope unwinds.
pub fn par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = effective_jobs(jobs).min(items.len().max(1));
    if jobs <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(&items, 8, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential_for_every_job_count() {
        let items: Vec<u64> = (0..37).collect();
        let sequential = par_map(&items, 1, |&x| x.wrapping_mul(0x9E37_79B9).rotate_left(7));
        for jobs in [2, 3, 4, 8, 64] {
            let parallel = par_map(&items, jobs, |&x| {
                x.wrapping_mul(0x9E37_79B9).rotate_left(7)
            });
            assert_eq!(parallel, sequential, "jobs = {jobs}");
        }
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let count = AtomicU64::new(0);
        let items: Vec<usize> = (0..50).collect();
        let _ = par_map(&items, 4, |_| count.fetch_add(1, Ordering::SeqCst));
        assert_eq!(count.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 8, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], 8, |&x| x + 1), vec![8]);
    }

    #[test]
    fn zero_jobs_means_all_cores() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
        let items: Vec<u32> = (0..16).collect();
        assert_eq!(par_map(&items, 0, |&x| x), items);
    }
}
