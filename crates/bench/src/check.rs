//! `check` — the benchmark regression gate.
//!
//! Collects a small set of *deterministic* metrics drawn from the experiment
//! catalogue (message complexity from E1/E2, an anonymous-election sample from
//! E5, dedup memory from E15, explorer state counts from E16, and the E17
//! scaling invariants: step count and per-backend peak queue bytes at
//! n = 1000, the E18 pick-latency and E19 virtual-time guards, the E20
//! run-batching invariants, and the E21 fleet aggregates) and compares
//! them against the committed baseline `bench_baseline.json`. CI runs
//! `tables check` on every push: a metric that drifts outside its per-metric
//! tolerance fails the build before the regression can land.
//!
//! Every metric here must be a pure function of the source tree — no wall
//! clock, no ambient randomness (seeds are fixed, explorers run single
//! worker). Wall-clock performance is tracked by the [`crate::harness`]
//! benches instead, which are too noisy to gate on.
//!
//! The `e18_*` timings and `e19_timer_ns_per_op` are the deliberate
//! exception: they time the scheduler pick path (the target of the
//! incremental-index work) and the virtual-time timer heap and so *are*
//! wall-clock. They carry a 400% `Increase`-only tolerance — wide
//! enough for any CI-runner speed difference, tight enough to trip if a
//! pick ever falls from O(log C) back to an O(ready) scan (a ~80× swing
//! at 4000 channels).
//!
//! `e21_elections_per_sec_10k` follows the same exception pattern from the
//! other side: it is a *throughput* (higher is better), so it gates with an
//! 80% `Decrease` tolerance — a run slower than one fifth of baseline trips
//! the gate. That budget absorbs any plausible CI-runner speed spread while
//! still catching an accidental per-ring allocation, lock, or O(fleet) scan
//! in the fleet hot loop, each of which costs well over 5× on 10⁴ rings.
//!
//! The `e22_*_configs_per_sec` pair uses the same 80% `Decrease` budget for
//! the out-of-core explorer: exact is the in-heap reference, mmap the
//! file-backed table. A positioned-I/O regression (per-probe file reopen,
//! lost page-cache locality, accidental sync) costs an order of magnitude on
//! a 20k-config exhaustion, far outside the budget; runner speed spread is
//! far inside it. The remaining `e22_*` metrics are exact: the mmap table's
//! final file size is a pure function of the visited set (insert-order
//! independent — growth triggers on per-shard occupancy counts), and the
//! checkpoint kill-and-resume equality is a boolean invariant.

use co_json::{object, Value};

/// Which direction of drift counts as a regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Only an increase beyond tolerance is a regression (costs: messages,
    /// bytes). An improvement is reported but passes.
    Increase,
    /// Only a decrease beyond tolerance is a regression (throughputs:
    /// elections/sec). A speed-up is reported but passes.
    Decrease,
    /// Any drift beyond tolerance is a regression (invariants: exact state
    /// counts, paper-predicted complexities).
    Both,
}

impl Direction {
    fn as_str(self) -> &'static str {
        match self {
            Direction::Increase => "increase",
            Direction::Decrease => "decrease",
            Direction::Both => "both",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "increase" => Some(Direction::Increase),
            "decrease" => Some(Direction::Decrease),
            "both" => Some(Direction::Both),
            _ => None,
        }
    }
}

/// One gated metric: a named scalar with a drift budget.
#[derive(Debug, Clone)]
pub struct Metric {
    /// Stable identifier, also the baseline JSON key.
    pub name: &'static str,
    /// The measured value.
    pub value: f64,
    /// Allowed relative drift in percent (0 = must match exactly).
    pub tolerance_pct: f64,
    /// Which drift direction fails the gate.
    pub direction: Direction,
}

/// The comparison of one metric against its baseline entry.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The metric name.
    pub name: String,
    /// Current value.
    pub value: f64,
    /// Baseline value (`None` = metric missing from the baseline).
    pub baseline: Option<f64>,
    /// Relative drift in percent vs the baseline (0 when no baseline).
    pub drift_pct: f64,
    /// Whether this metric fails the gate.
    pub regressed: bool,
}

/// Outcome of a full gate run.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Per-metric findings, in collection order.
    pub findings: Vec<Finding>,
    /// Metric names present in the baseline but no longer collected.
    pub stale_baseline_entries: Vec<String>,
}

impl CheckReport {
    /// True when no metric regressed and no baseline entry is stale.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.stale_baseline_entries.is_empty() && self.findings.iter().all(|f| !f.regressed)
    }

    /// Renders the human-readable report (also uploaded as a CI artifact).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("benchmark regression gate\n");
        out.push_str(
            "  metric                            current      baseline     drift    status\n",
        );
        for f in &self.findings {
            let baseline = f
                .baseline
                .map_or_else(|| "MISSING".into(), |b| format!("{b:.1}"));
            let status = if f.regressed { "REGRESSED" } else { "ok" };
            out.push_str(&format!(
                "  {:<32} {:>12.1} {:>13} {:>8.2}% {:>9}\n",
                f.name, f.value, baseline, f.drift_pct, status
            ));
        }
        for name in &self.stale_baseline_entries {
            out.push_str(&format!(
                "  {name:<32} stale baseline entry (metric no longer collected)\n"
            ));
        }
        out.push_str(if self.passed() {
            "verdict: PASS\n"
        } else {
            "verdict: FAIL\n"
        });
        out
    }
}

/// Collects every gated metric.
///
/// `inject_regression_pct` scales the first metric by `1 + pct/100` — a
/// seeded synthetic regression used to prove the gate actually trips
/// (`tables check --inject-regression`).
#[must_use]
pub fn collect_metrics(inject_regression_pct: Option<f64>) -> Vec<Metric> {
    use co_core::anonymous::{elect_anonymous, SamplingConfig};
    use co_core::{runner, Alg2Node};
    use co_net::explore::{explore, explore_parallel, ExploreConfig, ExploreLimits};
    use co_net::{DedupKind, RingSpec, SchedulerKind};

    let mut metrics = Vec::new();

    // E1 / E2 — message complexity on a fixed n=8 ring. Theorem 1 and
    // Corollary 13 make these exact; any drift is a protocol bug.
    let spec8 = RingSpec::oriented(vec![5, 3, 8, 1, 7, 2, 6, 4]);
    let alg2 = runner::run_alg2(&spec8, SchedulerKind::Fifo, 0);
    metrics.push(Metric {
        name: "e1_alg2_pulses_n8",
        value: alg2.total_messages as f64,
        tolerance_pct: 0.0,
        direction: Direction::Both,
    });
    let alg1 = runner::run_alg1(&spec8, SchedulerKind::Fifo, 0);
    metrics.push(Metric {
        name: "e2_alg1_pulses_n8",
        value: alg1.total_messages as f64,
        tolerance_pct: 0.0,
        direction: Direction::Both,
    });

    // E5 — one fixed-seed anonymous election; pulses follow the sampled IDs.
    let anon = elect_anonymous(16, &SamplingConfig::new(2.0), SchedulerKind::Fifo, 7);
    metrics.push(Metric {
        name: "e5_anon_pulses_n16_c2_seed7",
        value: anon.messages as f64,
        tolerance_pct: 0.0,
        direction: Direction::Both,
    });

    // E15 — dedup memory: fingerprint index vs the byte cost it replaces.
    let spec3 = RingSpec::oriented(vec![1, 2, 4]);
    let snap = explore(
        &spec3.wiring(),
        || {
            (0..spec3.len())
                .map(|i| Alg2Node::new(spec3.id(i), spec3.cw_port(i)))
                .collect::<Vec<_>>()
        },
        |_| Ok(()),
        |_| Ok(()),
        ExploreLimits::default(),
    );
    metrics.push(Metric {
        name: "e15_snap_configs_ring124",
        value: snap.configs as f64,
        tolerance_pct: 0.0,
        direction: Direction::Both,
    });
    metrics.push(Metric {
        name: "e15_snap_bytes_ring124",
        value: snap.visited_bytes as f64,
        tolerance_pct: 0.0,
        direction: Direction::Increase,
    });

    // E16 — parallel explorer state counts. Single worker: the exploration
    // order (and thus any bloom false positive) is deterministic.
    let spec7 = RingSpec::oriented(vec![3, 5, 2, 4, 1, 6, 7]);
    let make7 = || {
        (0..spec7.len())
            .map(|i| Alg2Node::new(spec7.id(i), spec7.cw_port(i)))
            .collect::<Vec<_>>()
    };
    let exact = explore_parallel(
        &spec7.wiring(),
        make7,
        |_| Ok(()),
        |_| Ok(()),
        &ExploreConfig {
            jobs: 1,
            ..ExploreConfig::default()
        },
    );
    metrics.push(Metric {
        name: "e16_exact_configs_alg2n7",
        value: exact.configs as f64,
        tolerance_pct: 0.0,
        direction: Direction::Both,
    });
    let bloom = explore_parallel(
        &spec7.wiring(),
        make7,
        |_| Ok(()),
        |_| Ok(()),
        &ExploreConfig {
            jobs: 1,
            dedup: DedupKind::Bloom,
            ..ExploreConfig::default()
        },
    );
    // Bloom may prune a false-positive handful; give it a 1% drift budget so
    // an innocent fingerprint reshuffle does not fail the gate.
    metrics.push(Metric {
        name: "e16_bloom_configs_alg2n7",
        value: bloom.configs as f64,
        tolerance_pct: 1.0,
        direction: Direction::Both,
    });
    metrics.push(Metric {
        name: "e16_bloom_bytes",
        value: bloom.visited_bytes as f64,
        tolerance_pct: 0.0,
        direction: Direction::Increase,
    });

    metrics.extend(e17_metrics().iter().cloned());
    metrics.extend(e18_metrics().iter().cloned());
    metrics.extend(e19_metrics().iter().cloned());
    metrics.extend(e20_metrics().iter().cloned());
    metrics.extend(e21_metrics().iter().cloned());
    metrics.extend(e22_metrics().iter().cloned());

    if let Some(pct) = inject_regression_pct {
        metrics[0].value *= 1.0 + pct / 100.0;
    }
    metrics
}

/// E17 — scaling invariants on the n = 1000 Algorithm 2 ring under Fifo.
///
/// The step count is backend-independent by construction; the two peak
/// queue byte counts pin the storage cost of each backend on the exact
/// same delivery sequence.
///
/// This is by far the most expensive gate metric (two 2-million-step
/// elections: ~2 s in release, over a minute per call in debug), and it is
/// a pure function of a fixed seed, so it is collected once per process.
/// Its run-to-run determinism is pinned elsewhere: `tests/record_replay.rs`
/// and `tests/backend_equivalence.rs` cover the underlying simulations, and
/// the release gate compares against the *committed* baseline file, which
/// trips on any cross-process drift.
fn e17_metrics() -> &'static [Metric; 3] {
    use co_core::runner;
    use co_net::{RingSpec, SchedulerKind};
    use std::sync::OnceLock;

    static CELL: OnceLock<[Metric; 3]> = OnceLock::new();
    CELL.get_or_init(|| {
        let spec1000 = RingSpec::oriented((1..=1000).collect::<Vec<u64>>());
        let mut peaks = [0usize; 2];
        let mut steps = 0u64;
        for (slot, backend) in [co_net::QueueBackend::Vec, co_net::QueueBackend::Counter]
            .into_iter()
            .enumerate()
        {
            let out = runner::run_alg2_scaled(
                &spec1000,
                SchedulerKind::Fifo,
                0,
                backend,
                co_net::Budget::default(),
            );
            peaks[slot] = out.peak_queue_bytes;
            steps = out.report.steps;
        }
        [
            Metric {
                name: "e17_peak_queue_bytes_vec_n1000",
                value: peaks[0] as f64,
                tolerance_pct: 0.0,
                direction: Direction::Increase,
            },
            Metric {
                name: "e17_peak_queue_bytes_counter_n1000",
                value: peaks[1] as f64,
                tolerance_pct: 0.0,
                direction: Direction::Increase,
            },
            Metric {
                name: "e17_alg2_steps_n1000",
                value: steps as f64,
                tolerance_pct: 0.0,
                direction: Direction::Both,
            },
        ]
    })
}

/// E18 — scheduler pick-path latency (the wall-clock exception; see the
/// module docs).
///
/// Two micro-benchmarks drive a scheduler's incremental index through the
/// exact per-step sequence the engine uses — `indexed_pick` followed by an
/// `on_head_change` re-key — over a 4000-channel ready set, and one macro
/// metric times the full 8-scheduler matrix on the n = 5000 Algorithm 2
/// election (budget-capped so debug test runs stay affordable). Collected
/// once per process (`OnceLock`): the in-process gate tests compare a
/// cached value against itself, so only the release CI comparison against
/// the committed baseline ever sees cross-run timing variance — absorbed
/// by the 400% tolerance.
fn e18_metrics() -> &'static [Metric; 3] {
    use co_core::runner;
    use co_net::sched::{FifoScheduler, LongestQueueScheduler};
    use co_net::{
        Budget, ChannelId, ChannelView, QueueBackend, RingSpec, Scheduler, SchedulerKind,
    };
    use std::hint::black_box;
    use std::sync::OnceLock;
    use std::time::Instant;

    /// ns/op of `indexed_pick` + `on_head_change` over `channels` ready
    /// channels, re-keyed by `key` per op.
    fn pick_ns(scheduler: &mut dyn Scheduler, channels: usize, ops: u64) -> f64 {
        let views: Vec<ChannelView> = (0..channels)
            .map(|i| ChannelView {
                id: ChannelId::from_index(i),
                queue_len: 1 + i % 5,
                head_seq: i as u64,
                direction: None,
                arrival: 0,
            })
            .collect();
        scheduler.rebuild_index(&views);
        let start = Instant::now();
        let mut sink = 0usize;
        for seq in channels as u64..channels as u64 + ops {
            let id = scheduler.indexed_pick().expect("scheduler keeps an index");
            sink ^= id.index();
            scheduler.on_head_change(ChannelView {
                id,
                queue_len: 1 + id.index() % 5,
                head_seq: seq,
                direction: None,
                arrival: 0,
            });
        }
        black_box(sink);
        start.elapsed().as_nanos() as f64 / ops as f64
    }

    static CELL: OnceLock<[Metric; 3]> = OnceLock::new();
    CELL.get_or_init(|| {
        let fifo = pick_ns(&mut FifoScheduler::new(), 4000, 200_000);
        let longest = pick_ns(&mut LongestQueueScheduler::new(), 4000, 200_000);
        let spec5k = RingSpec::oriented((1..=5000u64).collect::<Vec<u64>>());
        let start = Instant::now();
        for kind in SchedulerKind::ALL {
            let out = runner::run_alg2_scaled(
                &spec5k,
                kind,
                0,
                QueueBackend::Counter,
                Budget::steps(100_000),
            );
            assert_eq!(out.report.steps, 100_000, "budget-capped cell under {kind}");
        }
        let matrix_ms = start.elapsed().as_millis() as f64;
        [
            Metric {
                name: "e18_pick_ns_fifo_c4000",
                value: fifo,
                tolerance_pct: 400.0,
                direction: Direction::Increase,
            },
            Metric {
                name: "e18_pick_ns_longest_queue_c4000",
                value: longest,
                tolerance_pct: 400.0,
                direction: Direction::Increase,
            },
            Metric {
                name: "e18_matrix_wall_ms_n5000",
                value: matrix_ms,
                tolerance_pct: 400.0,
                direction: Direction::Increase,
            },
        ]
    })
}

/// E19 — virtual-time invariants and timer-heap throughput.
///
/// Two exact metrics and one wall-clock metric:
///
/// * `e19_alg2_steps_fixed1_n300` — the n = 300 Algorithm 2 election with a
///   `fixed:1` latency plan must deliver exactly the Theorem 1 count
///   n(2·ID_max + 1): the clock layer may reorder deliveries in virtual
///   time but can never change how many happen.
/// * `e19_virtual_now_latency_n50` — the final virtual time of an n = 50
///   election under the earliest-arrival scheduler and a seeded
///   `uniform:1..8` plan. A pure function of the per-channel RNG streams
///   and the arrival rule; any change to either moves it.
/// * `e19_timer_ns_per_op` — wall-clock nanoseconds per arm/fire pair
///   through the engine's timer heap, driven by 64 async sleepers
///   ([`co_net::runtime`]) for 2048 rounds. Same 400% `Increase` budget as
///   the `e18_*` timings (see the module docs).
fn e19_metrics() -> &'static [Metric; 3] {
    use co_core::Alg2Node;
    use co_net::runtime::AsyncRing;
    use co_net::{
        Budget, LatencyModel, LatencyPlan, Outcome, Pulse, RingSpec, SchedulerKind, Simulation,
    };
    use std::sync::OnceLock;
    use std::time::Instant;

    static CELL: OnceLock<[Metric; 3]> = OnceLock::new();
    CELL.get_or_init(|| {
        let alg2_nodes = |spec: &RingSpec| {
            (0..spec.len())
                .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
                .collect::<Vec<_>>()
        };

        let spec300 = RingSpec::oriented((1..=300).collect::<Vec<u64>>());
        let mut timed: Simulation<Pulse, Alg2Node> = Simulation::new(
            spec300.wiring(),
            alg2_nodes(&spec300),
            SchedulerKind::Fifo.build(0),
        );
        timed.set_latency(LatencyPlan::new(LatencyModel::Fixed(1), 0));
        let fixed1 = timed.run(Budget::default());
        assert_eq!(fixed1.outcome, Outcome::QuiescentTerminated);

        let spec50 = RingSpec::oriented((1..=50).collect::<Vec<u64>>());
        let mut latency: Simulation<Pulse, Alg2Node> = Simulation::new(
            spec50.wiring(),
            alg2_nodes(&spec50),
            SchedulerKind::Latency.build(0),
        );
        latency.set_latency(LatencyPlan::new(
            LatencyModel::Uniform { min: 1, max: 8 },
            0,
        ));
        let run50 = latency.run(Budget::default());
        assert_eq!(run50.outcome, Outcome::QuiescentTerminated);

        let (sleepers, rounds) = (64usize, 2048u64);
        let sleep_spec = RingSpec::oriented((1..=sleepers as u64).collect::<Vec<u64>>());
        let mut ring: AsyncRing<Pulse, ()> =
            AsyncRing::new(sleep_spec.wiring(), SchedulerKind::Fifo.build(0), |_, h| {
                Box::pin(async move {
                    for _ in 0..rounds {
                        h.sleep(1).await;
                    }
                })
            });
        let start = Instant::now();
        ring.run(Budget::default());
        let ops = sleepers as u64 * rounds;
        assert_eq!(ring.stats().timer_fires, ops);
        let timer_ns = start.elapsed().as_nanos() as f64 / ops as f64;

        [
            Metric {
                name: "e19_alg2_steps_fixed1_n300",
                value: fixed1.steps as f64,
                tolerance_pct: 0.0,
                direction: Direction::Both,
            },
            Metric {
                name: "e19_virtual_now_latency_n50",
                value: latency.now() as f64,
                tolerance_pct: 0.0,
                direction: Direction::Both,
            },
            Metric {
                name: "e19_timer_ns_per_op",
                value: timer_ns,
                tolerance_pct: 400.0,
                direction: Direction::Increase,
            },
        ]
    })
}

/// E20 — run-batched macro-stepping invariants.
///
/// Four exact metrics, collected once per process (`OnceLock`, like
/// [`e17_metrics`]):
///
/// * `e20_elect_steps_n100k` — pulse count of the budget-capped n = 100,000
///   Algorithm 2 election, which must be exactly the cap in *both* delivery
///   modes (budget boundaries are pulse-exact under batching).
/// * `e20_elect_batch_match_n100k` — 1.0 iff the batch-on run of that
///   election reaches the identical configuration fingerprint at the
///   identical pulse count as the batch-off run. Elections carry unit runs,
///   so this also pins the no-fusion/no-overhead property.
/// * `e20_burst_pulses_batched` — pulses delivered by the batched 10⁹-pulse
///   injected run on the 2-node Algorithm 1 relay ring: exactly the 10⁹
///   budget.
/// * `e20_burst_transitions_batched` — engine transitions that run took.
///   The whole point of macro-stepping: a handful, not 10⁹. `Increase`
///   with zero tolerance — if the fused path ever falls back to per-pulse,
///   this explodes by ~8 orders of magnitude and trips the gate.
fn e20_metrics() -> &'static [Metric; 4] {
    use co_core::Alg1Node;
    use co_net::{Budget, Outcome, Pulse, QueueBackend, RingSpec, SchedulerKind, Simulation};
    use std::sync::OnceLock;

    static CELL: OnceLock<[Metric; 4]> = OnceLock::new();
    CELL.get_or_init(|| {
        use co_core::Alg2Node;

        // Capped n = 100,000 election, both modes. The cap is smaller than
        // E20's table row (the gate also runs inside debug-profile tests,
        // where every pulse is ~30× dearer).
        const ELECT_CAP: u64 = 500_000;
        let spec = RingSpec::oriented((1..=100_000u64).collect::<Vec<u64>>());
        let mut cells = Vec::new();
        for batch in [false, true] {
            let nodes = (0..spec.len())
                .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
                .collect();
            let mut sim: Simulation<Pulse, Alg2Node> = Simulation::with_backend(
                spec.wiring(),
                nodes,
                SchedulerKind::Fifo.build(0),
                QueueBackend::Counter,
            );
            sim.set_batch(batch);
            let run = sim.run(Budget::steps(ELECT_CAP));
            assert_eq!(run.outcome, Outcome::BudgetExhausted);
            cells.push((run.steps, sim.fingerprint()));
        }
        let match_ok = cells[0] == cells[1];

        // The 10⁹-pulse injected run, batched (per-pulse would be minutes).
        const BURST: u64 = 1_000_000_000;
        let spec2 = RingSpec::oriented(vec![2, 5]);
        let nodes = (0..spec2.len())
            .map(|i| Alg1Node::new(spec2.id(i), spec2.cw_port(i)))
            .collect::<Vec<Alg1Node>>();
        let mut sim: Simulation<Pulse, Alg1Node> = Simulation::with_backend(
            spec2.wiring(),
            nodes,
            SchedulerKind::Fifo.build(0),
            QueueBackend::Counter,
        );
        sim.set_batch(true);
        sim.enable_metrics();
        sim.start();
        let channel = sim.ready_channels()[0];
        sim.inject_run(channel, Pulse, BURST);
        let run = sim.run(Budget::steps(BURST));
        assert_eq!(run.outcome, Outcome::BudgetExhausted);
        let transitions = sim.metrics().expect("metrics enabled").transitions;

        [
            Metric {
                name: "e20_elect_steps_n100k",
                value: cells[0].0 as f64,
                tolerance_pct: 0.0,
                direction: Direction::Both,
            },
            Metric {
                name: "e20_elect_batch_match_n100k",
                value: f64::from(u8::from(match_ok)),
                tolerance_pct: 0.0,
                direction: Direction::Both,
            },
            Metric {
                name: "e20_burst_pulses_batched",
                value: run.steps as f64,
                tolerance_pct: 0.0,
                direction: Direction::Both,
            },
            Metric {
                name: "e20_burst_transitions_batched",
                value: transitions as f64,
                tolerance_pct: 0.0,
                direction: Direction::Increase,
            },
        ]
    })
}

/// E21 — fleet-mode invariants and throughput (partly wall-clock; see the
/// module docs).
///
/// Three exact metrics plus one wall-clock metric from a single 10⁴-ring
/// fleet (Algorithm 1, sizes `uniform:3..9`, seed 21, 1% fault rate) run
/// through the parallel driver with one worker per core. The fleet's
/// aggregate report is byte-identical at any worker count
/// (`tests/fleet_determinism.rs`), so the exact metrics are pure functions
/// of the config despite the parallel run. Collected once per process
/// (`OnceLock`), like the other wall-clock collectors.
///
/// * `e21_fleet_elections_10k` — rings electing exactly one leader within
///   budget. Exact: the per-ring seeds, sizes and fault rolls are all
///   derived from the config.
/// * `e21_fleet_pulses_10k` — total pulses delivered across the fleet.
/// * `e21_fleet_peak_bytes_per_ring` — the peak live queue bytes any single
///   ring reached under the counter backend (16-byte runs): the fleet's
///   per-ring memory headline. `Increase`-gated at 0%.
/// * `e21_elections_per_sec_10k` — wall-clock elections per second through
///   the whole parallel stack; `Decrease`-gated at 80% (see the module
///   docs for why that budget).
fn e21_metrics() -> &'static [Metric; 4] {
    use co_net::fleet::{FleetConfig, RingSizes};
    use std::sync::OnceLock;

    static CELL: OnceLock<[Metric; 4]> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut cfg = FleetConfig::new(10_000);
        cfg.sizes = RingSizes::Uniform { min: 3, max: 9 };
        cfg.seed = 21;
        cfg.fault_rate = 0.01;
        let fleet = crate::registry::protocols()
            .fleet("alg1")
            .expect("alg1 is fleet-capable");
        let summary = crate::fleet::run_fleet(&cfg, fleet, 1, 0);
        let report = &summary.report;
        [
            Metric {
                name: "e21_fleet_elections_10k",
                value: report.elections as f64,
                tolerance_pct: 0.0,
                direction: Direction::Both,
            },
            Metric {
                name: "e21_fleet_pulses_10k",
                value: report.total_pulses as f64,
                tolerance_pct: 0.0,
                direction: Direction::Both,
            },
            Metric {
                name: "e21_fleet_peak_bytes_per_ring",
                value: report.peak_ring_queue_bytes as f64,
                tolerance_pct: 0.0,
                direction: Direction::Increase,
            },
            Metric {
                name: "e21_elections_per_sec_10k",
                value: summary.elections_per_sec(),
                tolerance_pct: 80.0,
                direction: Direction::Decrease,
            },
        ]
    })
}

/// E22 — out-of-core explorer invariants and throughput (partly wall-clock;
/// see the module docs).
///
/// Five exact metrics plus two wall-clock metrics from single-worker
/// explorations of the n = 7 Algorithm 2 ring (ids `3,5,2,4,1,6,7`, the
/// ~20k-configuration space of E16/E22) under the exact and mmap backends,
/// plus a checkpointed kill-and-resume pass. Collected once per process
/// (`OnceLock`).
///
/// * `e22_mmap_configs_alg2n7` — configurations visited by the mmap
///   backend; must stay bit-identical to the exact count.
/// * `e22_exact_heap_bytes_per_config` — the in-heap reference footprint
///   (8 B/config: one 64-bit fingerprint).
/// * `e22_mmap_heap_bytes_alg2n7` — heap-resident index bytes under mmap;
///   pinned at 0 (the whole point of the backend).
/// * `e22_mmap_file_bytes_alg2n7` — the mmap table's final file size.
///   Deterministic: growth triggers on per-shard occupancy of a fixed
///   visited set, so insert order cannot move it.
/// * `e22_resume_matches_uninterrupted` — 1 iff a run cut at a third of the
///   space by `max_configs` resumes from its checkpoint file to the
///   uninterrupted run's exact configuration and quiescent counts.
/// * `e22_exact_configs_per_sec` / `e22_mmap_configs_per_sec` — wall-clock
///   exhaustion throughput per backend; `Decrease`-gated at 80% (see the
///   module docs for why that budget).
fn e22_metrics() -> &'static [Metric; 7] {
    use co_core::Alg2Node;
    use co_net::explore::{
        explore_parallel, CheckpointPlan, ExploreCheckpoint, ExploreConfig, ExploreLimits,
    };
    use co_net::{DedupKind, RingSpec};
    use std::sync::OnceLock;
    use std::time::Instant;

    static CELL: OnceLock<[Metric; 7]> = OnceLock::new();
    CELL.get_or_init(|| {
        let spec = RingSpec::oriented(vec![3, 5, 2, 4, 1, 6, 7]);
        let make = || {
            (0..spec.len())
                .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
                .collect::<Vec<Alg2Node>>()
        };
        let scratch = std::env::temp_dir();
        let mmap = DedupKind::Mmap { budget: 1 << 20 };
        let run = |config: &ExploreConfig| {
            let start = Instant::now();
            let report = explore_parallel(&spec.wiring(), make, |_| Ok(()), |_| Ok(()), config);
            (report, start.elapsed().as_secs_f64())
        };
        let (exact, exact_secs) = run(&ExploreConfig {
            jobs: 1,
            ..ExploreConfig::default()
        });
        let (mm, mmap_secs) = run(&ExploreConfig {
            jobs: 1,
            dedup: mmap,
            scratch_dir: Some(scratch.clone()),
            ..ExploreConfig::default()
        });

        // Kill-and-resume: cut by max_configs with a checkpoint plan, resume
        // from the file with the limit lifted, compare against the
        // uninterrupted totals.
        let ck_path = scratch.join(format!("co-ring-gate-{}.ck", std::process::id()));
        let plan = CheckpointPlan {
            path: ck_path.clone(),
            every: 2000,
            meta: b"e22-gate".to_vec(),
        };
        let (cut, _) = run(&ExploreConfig {
            jobs: 2,
            dedup: mmap,
            limits: ExploreLimits {
                max_configs: exact.configs / 3,
                ..ExploreLimits::default()
            },
            spill_high_water: 64,
            scratch_dir: Some(scratch.clone()),
            checkpoint: Some(plan.clone()),
            ..ExploreConfig::default()
        });
        let resumed = ExploreCheckpoint::read(&ck_path).ok().map(|ck| {
            run(&ExploreConfig {
                jobs: 2,
                dedup: mmap,
                spill_high_water: 64,
                scratch_dir: Some(scratch.clone()),
                checkpoint: Some(plan),
                resume: Some(ck),
                ..ExploreConfig::default()
            })
            .0
        });
        let _ = std::fs::remove_file(&ck_path);
        let resume_ok = resumed.is_some_and(|r| {
            !cut.complete
                && r.complete
                && r.configs == exact.configs
                && r.quiescent_configs == exact.quiescent_configs
        });

        [
            Metric {
                name: "e22_mmap_configs_alg2n7",
                value: mm.configs as f64,
                tolerance_pct: 0.0,
                direction: Direction::Both,
            },
            Metric {
                name: "e22_exact_heap_bytes_per_config",
                value: exact.visited_heap_bytes as f64 / exact.configs as f64,
                tolerance_pct: 0.0,
                direction: Direction::Increase,
            },
            Metric {
                name: "e22_mmap_heap_bytes_alg2n7",
                value: mm.visited_heap_bytes as f64,
                tolerance_pct: 0.0,
                direction: Direction::Increase,
            },
            Metric {
                name: "e22_mmap_file_bytes_alg2n7",
                value: mm.visited_file_bytes as f64,
                tolerance_pct: 0.0,
                direction: Direction::Increase,
            },
            Metric {
                name: "e22_resume_matches_uninterrupted",
                value: f64::from(u8::from(resume_ok)),
                tolerance_pct: 0.0,
                direction: Direction::Both,
            },
            Metric {
                name: "e22_exact_configs_per_sec",
                value: exact.configs as f64 / exact_secs.max(1e-9),
                tolerance_pct: 80.0,
                direction: Direction::Decrease,
            },
            Metric {
                name: "e22_mmap_configs_per_sec",
                value: mm.configs as f64 / mmap_secs.max(1e-9),
                tolerance_pct: 80.0,
                direction: Direction::Decrease,
            },
        ]
    })
}

/// Serializes metrics as the committed baseline document.
#[must_use]
pub fn baseline_json(metrics: &[Metric]) -> Value {
    Value::Array(
        metrics
            .iter()
            .map(|m| {
                object([
                    ("name", Value::Str(m.name.into())),
                    ("value", Value::Float(m.value)),
                    ("tolerance_pct", Value::Float(m.tolerance_pct)),
                    ("direction", Value::Str(m.direction.as_str().into())),
                ])
            })
            .collect(),
    )
}

fn lookup<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Compares the current metrics against a parsed baseline document.
///
/// The baseline's per-metric `tolerance_pct`/`direction` are authoritative —
/// the gate's thresholds are version-controlled data, not code.
#[must_use]
pub fn compare(current: &[Metric], baseline: &Value) -> CheckReport {
    let entries: Vec<&[(String, Value)]> = baseline
        .as_array()
        .unwrap_or(&[])
        .iter()
        .filter_map(Value::as_object)
        .collect();
    let mut findings = Vec::new();
    for m in current {
        let entry = entries
            .iter()
            .find(|e| lookup(e, "name").and_then(Value::as_str) == Some(m.name));
        let Some(entry) = entry else {
            // A metric with no baseline is a hard failure: the baseline must
            // be regenerated deliberately (`tables check --update`).
            findings.push(Finding {
                name: m.name.into(),
                value: m.value,
                baseline: None,
                drift_pct: 0.0,
                regressed: true,
            });
            continue;
        };
        let base = lookup(entry, "value").and_then(Value::as_f64);
        let tolerance = lookup(entry, "tolerance_pct")
            .and_then(Value::as_f64)
            .unwrap_or(m.tolerance_pct);
        let direction = lookup(entry, "direction")
            .and_then(Value::as_str)
            .and_then(Direction::parse)
            .unwrap_or(m.direction);
        let Some(base) = base else {
            findings.push(Finding {
                name: m.name.into(),
                value: m.value,
                baseline: None,
                drift_pct: 0.0,
                regressed: true,
            });
            continue;
        };
        let drift_pct = if base == 0.0 {
            if m.value == 0.0 {
                0.0
            } else {
                100.0
            }
        } else {
            (m.value - base) / base * 100.0
        };
        let over_budget = match direction {
            Direction::Increase => drift_pct > tolerance,
            Direction::Decrease => drift_pct < -tolerance,
            Direction::Both => drift_pct.abs() > tolerance,
        };
        findings.push(Finding {
            name: m.name.into(),
            value: m.value,
            baseline: Some(base),
            drift_pct,
            regressed: over_budget,
        });
    }
    let current_names: Vec<&str> = current.iter().map(|m| m.name).collect();
    let stale_baseline_entries = entries
        .iter()
        .filter_map(|e| lookup(e, "name").and_then(Value::as_str))
        .filter(|name| !current_names.contains(name))
        .map(String::from)
        .collect();
    CheckReport {
        findings,
        stale_baseline_entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed_metrics() -> Vec<Metric> {
        vec![
            Metric {
                name: "alpha",
                value: 100.0,
                tolerance_pct: 0.0,
                direction: Direction::Both,
            },
            Metric {
                name: "beta",
                value: 200.0,
                tolerance_pct: 5.0,
                direction: Direction::Increase,
            },
        ]
    }

    #[test]
    fn identical_metrics_pass() {
        let metrics = fixed_metrics();
        let report = compare(&metrics, &baseline_json(&metrics));
        assert!(report.passed(), "{}", report.render());
        assert!(report.findings.iter().all(|f| f.drift_pct == 0.0));
    }

    #[test]
    fn the_gate_trips_on_an_injected_regression() {
        // The acceptance criterion of the CI satellite: a synthetic +10%
        // message-count regression must fail the gate.
        let baseline = baseline_json(&collect_metrics(None));
        let regressed = collect_metrics(Some(10.0));
        let report = compare(&regressed, &baseline);
        assert!(!report.passed());
        let finding = &report.findings[0];
        assert_eq!(finding.name, "e1_alg2_pulses_n8");
        assert!(finding.regressed);
        assert!((finding.drift_pct - 10.0).abs() < 1e-9, "{finding:?}");
        // Only the injected metric trips.
        assert_eq!(report.findings.iter().filter(|f| f.regressed).count(), 1);
    }

    #[test]
    fn collected_metrics_are_deterministic() {
        let a = collect_metrics(None);
        let b = collect_metrics(None);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert!((x.value - y.value).abs() < f64::EPSILON, "{}", x.name);
        }
    }

    #[test]
    fn tolerance_and_direction_come_from_the_baseline() {
        let mut metrics = fixed_metrics();
        let baseline = baseline_json(&metrics);
        // +4% on a 5%-tolerance Increase metric: passes.
        metrics[1].value = 208.0;
        assert!(compare(&metrics, &baseline).passed());
        // -40% on an Increase metric: an improvement, still passes.
        metrics[1].value = 120.0;
        assert!(compare(&metrics, &baseline).passed());
        // +6%: over budget.
        metrics[1].value = 212.0;
        assert!(!compare(&metrics, &baseline).passed());
    }

    #[test]
    fn decrease_direction_gates_on_drops_only() {
        let mut metrics = vec![Metric {
            name: "throughput",
            value: 1000.0,
            tolerance_pct: 80.0,
            direction: Direction::Decrease,
        }];
        let baseline = baseline_json(&metrics);
        // 5× faster: an improvement, passes.
        metrics[0].value = 5000.0;
        assert!(compare(&metrics, &baseline).passed());
        // -79%: inside the budget, passes.
        metrics[0].value = 210.0;
        assert!(compare(&metrics, &baseline).passed());
        // -81%: a real slowdown, trips.
        metrics[0].value = 190.0;
        let report = compare(&metrics, &baseline);
        assert!(!report.passed());
        assert!(report.findings[0].regressed);
    }

    #[test]
    fn missing_and_stale_entries_fail() {
        let metrics = fixed_metrics();
        let baseline = baseline_json(&metrics[..1]);
        let report = compare(&metrics, &baseline);
        assert!(!report.passed());
        assert!(report.findings[1].baseline.is_none() && report.findings[1].regressed);

        let baseline = baseline_json(&metrics);
        let report = compare(&metrics[..1], &baseline);
        assert!(!report.passed());
        assert_eq!(report.stale_baseline_entries, vec!["beta".to_string()]);
    }

    #[test]
    fn baseline_round_trips_through_the_parser() {
        let metrics = fixed_metrics();
        let text = baseline_json(&metrics).to_string_compact();
        let parsed = co_json::parse(&text).expect("baseline JSON must parse");
        let report = compare(&metrics, &parsed);
        assert!(report.passed(), "{}", report.render());
    }
}
