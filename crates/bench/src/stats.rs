//! Small numeric-summary helpers for experiment sweeps.

use std::fmt;

/// Summary statistics of a sample.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarises a sample.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    #[must_use]
    pub fn of(values: &[f64]) -> Summary {
        assert!(!values.is_empty(), "cannot summarise an empty sample");
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / count as f64;
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        Summary {
            count,
            mean,
            stddev: var.sqrt(),
            min: sorted[0],
            median: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
            max: sorted[count - 1],
        }
    }

    /// Summarises integer counts.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    #[must_use]
    pub fn of_counts(values: &[u64]) -> Summary {
        let floats: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        Summary::of(&floats)
    }
}

/// Linear-interpolation percentile of a pre-sorted sample, `q ∈ [0, 1]`.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (pos - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} σ={:.1} min={:.0} p50={:.1} p95={:.1} max={:.0}",
            self.count, self.mean, self.stddev, self.min, self.median, self.p95, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.stddev - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interpolate() {
        let s = Summary::of(&[0.0, 10.0]);
        assert!((s.median - 5.0).abs() < 1e-12);
        assert!((s.p95 - 9.5).abs() < 1e-12);
    }

    #[test]
    fn counts_helper() {
        let s = Summary::of_counts(&[2, 4, 6]);
        assert!((s.mean - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_rejected() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn display_is_compact() {
        let s = Summary::of(&[1.0, 1.0]);
        assert!(s.to_string().contains("n=2"));
    }
}
