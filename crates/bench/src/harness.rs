//! Minimal wall-clock bench harness with a Criterion-shaped API.
//!
//! The offline build cannot fetch Criterion, so the `[[bench]]` targets
//! (already `harness = false`) link against this drop-in subset instead:
//! [`Criterion`], benchmark groups, [`BenchmarkId`], [`Throughput`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Timing is adaptive —
//! each benchmark body is repeated until it accumulates enough wall-clock
//! time for a stable per-iteration estimate — and results print as one
//! aligned line per benchmark.
//!
//! [`criterion_group!`]: crate::criterion_group
//! [`criterion_main!`]: crate::criterion_main

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target accumulated measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(60);
/// Hard cap on timed iterations, for extremely cheap bodies.
const MAX_ITERS: u64 = 1 << 22;

/// Top-level driver: owns output formatting; passed to every bench fn.
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        run_one(self, name.to_owned(), f);
    }

    /// Prints the closing summary line.
    pub fn final_summary(&self) {
        println!("({} benchmarks)", self.benchmarks_run);
    }
}

/// A named group of benchmarks (`Criterion::benchmark_group`).
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Declares the work per iteration; accepted for API compatibility.
    pub fn throughput(&mut self, _t: Throughput) {}

    /// Declares a sample-size hint; accepted for API compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` against `input` under `id` within this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let label = format!("{}/{}", self.name, id.0);
        run_one(self.criterion, label, |b| f(b, input));
    }

    /// Benchmarks `f` under `name` within this group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, name);
        run_one(self.criterion, label, f);
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An ID that is just the parameter's display form.
    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId(param.to_string())
    }

    /// An ID combining a function name and a parameter.
    pub fn new(name: impl Into<String>, param: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{param}", name.into()))
    }
}

/// Work performed per iteration; informational only in this harness.
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; runs and times the body.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, adaptively choosing an iteration count.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm up caches and any lazy initialization.
        for _ in 0..2 {
            black_box(f());
        }
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET || iters >= MAX_ITERS {
                self.iters = iters;
                self.elapsed = elapsed;
                return;
            }
            // Scale toward the target in one step, with headroom.
            iters = if elapsed.is_zero() {
                iters * 64
            } else {
                let scale = TARGET.as_secs_f64() / elapsed.as_secs_f64();
                ((iters as f64 * scale * 1.2) as u64).clamp(iters + 1, MAX_ITERS)
            };
        }
    }
}

fn run_one(criterion: &mut Criterion, label: String, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    criterion.benchmarks_run += 1;
    let per_iter = if bencher.iters == 0 {
        Duration::ZERO
    } else {
        bencher.elapsed / u32::try_from(bencher.iters.min(u64::from(u32::MAX))).unwrap_or(1)
    };
    println!(
        "{label:<44} {:>12}/iter  ({} iters)",
        format_duration(per_iter),
        bencher.iters
    );
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Collects bench functions into a group runner, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::harness::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Emits `fn main` running the given groups, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::harness::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| std::hint::black_box(41u64) + 1);
        assert!(b.iters >= 1);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn group_api_shape() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.throughput(Throughput::Elements(10));
        g.sample_size(5);
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.bench_function("f", |b| b.iter(|| 1u64 + 1));
        g.finish();
        assert_eq!(c.benchmarks_run, 2);
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(format_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(format_duration(Duration::from_micros(2)), "2.00 µs");
        assert_eq!(format_duration(Duration::from_millis(3)), "3.00 ms");
        assert_eq!(format_duration(Duration::from_secs(4)), "4.00 s");
    }
}
