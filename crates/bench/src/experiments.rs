//! Experiments E0–E22: one function per quantitative claim of the paper.
//!
//! See `DESIGN.md` §5 for the claim-to-experiment index and
//! `EXPERIMENTS.md` for recorded paper-vs-measured results.

use crate::table::Table;
use co_classic::defective::Defective;
use co_classic::runner::Baseline;
use co_classic::ChangRobertsNode;
use co_compose::pipeline::{elect_then_aggregate, elect_then_replicate, elect_then_ring_size};
use co_core::anonymous::SamplingConfig;
use co_core::lower_bound::{
    lower_bound_messages, max_prefix_group, patterns_unique, solitude_pattern_alg2,
};
use co_core::{runner, IdAssignment, IdScheme, Role};
use co_net::{Budget, Outcome, Protocol, RingSpec, SchedulerKind, Simulation};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// The experiment catalogue.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Experiment {
    /// Classical algorithms break under full defectiveness.
    E0,
    /// Theorem 1: Algorithm 2's exact complexity `n(2·ID_max+1)`.
    E1,
    /// Corollary 13: Algorithm 1 converges to `n·ID_max`.
    E2,
    /// Proposition 15: Algorithm 3 (doubled) costs `n(4·ID_max−1)`.
    E3,
    /// Theorem 2: Algorithm 3 (improved) costs `n(2·ID_max+1)`.
    E4,
    /// Theorem 3 / Lemma 18: anonymous rings succeed whp.
    E5,
    /// Lemma 22: solitude patterns are unique.
    E6,
    /// Theorem 4/20: the `n⌊log(ID_max/n)⌋` lower bound vs measured.
    E7,
    /// §1.2: baselines vs the content-oblivious algorithm.
    E8,
    /// Corollary 5: composition end-to-end.
    E9,
    /// Lemmas 6–12/17: invariant monitors over a run matrix.
    E10,
    /// Ablation: remove Algorithm 2's CCW receive gate and watch it break.
    E11,
    /// Exhaustive model check: all schedules of tiny instances.
    E12,
    /// Model violations: dropped / duplicated pulses break the algorithms.
    E13,
    /// Corollary 5 full strength: classical algorithms simulated over pulses.
    E14,
    /// Snapshot explorer vs the reference: explored-state counts and dedup bytes.
    E15,
    /// Parallel frontier-sharded exploration: speedup grid and exhaustive
    /// fault model-checking.
    E16,
    /// Scaling: thousand-node rings under both queue backends, plus the
    /// million-pulse single-channel burst that motivates the counter store.
    E17,
    /// Incremental scheduler indexes: per-scheduler pick latency (indexed
    /// vs scan) and the n = 5000 full scheduler-matrix wall time.
    E18,
    /// Virtual time: clock-on vs clock-off election throughput, the
    /// earliest-arrival scheduler under seeded latency, and timer-heap
    /// throughput through the async facade.
    E19,
    /// Run-batched macro-stepping: batch-on vs batch-off equivalence and
    /// throughput, the n = 100,000 election, and the 10⁹-pulse burst.
    E20,
    /// Fleet mode: 10⁴ concurrent small-ring elections per cell through the
    /// struct-of-arrays fleet harness — jobs-invariant aggregates, fault
    /// behaviour, and elections/sec throughput.
    E21,
    /// Out-of-core exploration: exact vs Bloom vs mmap dedup backends
    /// (bytes-per-config and configs/sec), frontier spill, and checkpointed
    /// kill-and-resume equality.
    E22,
}

impl Experiment {
    /// All experiments in order.
    pub const ALL: [Experiment; 23] = [
        Experiment::E0,
        Experiment::E1,
        Experiment::E2,
        Experiment::E3,
        Experiment::E4,
        Experiment::E5,
        Experiment::E6,
        Experiment::E7,
        Experiment::E8,
        Experiment::E9,
        Experiment::E10,
        Experiment::E11,
        Experiment::E12,
        Experiment::E13,
        Experiment::E14,
        Experiment::E15,
        Experiment::E16,
        Experiment::E17,
        Experiment::E18,
        Experiment::E19,
        Experiment::E20,
        Experiment::E21,
        Experiment::E22,
    ];

    /// Parses `"e3"` / `"E3"` into the experiment.
    #[must_use]
    pub fn parse(s: &str) -> Option<Experiment> {
        let s = s.to_ascii_lowercase();
        Experiment::ALL
            .into_iter()
            .find(|e| e.to_string().to_ascii_lowercase() == s)
    }
}

impl fmt::Display for Experiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Runs one experiment at the default (fast) scale, sequentially.
#[must_use]
pub fn run_experiment(exp: Experiment) -> Table {
    run_experiment_with(exp, 1)
}

/// Runs one experiment, fanning its internal `(n, seed, scheduler)` grid
/// across up to `jobs` worker threads where the experiment has one.
///
/// Every trial is seeded from its grid coordinates, so the produced table is
/// byte-identical for every `jobs` value (`0` means one worker per core).
#[must_use]
pub fn run_experiment_with(exp: Experiment, jobs: usize) -> Table {
    run_experiment_batch(exp, jobs, false)
}

/// [`run_experiment_with`] with run-batched macro-stepping on or off for
/// the heavyweight election workloads (E17's matrix, E18's matrix).
///
/// Batched delivery is observationally equivalent to per-pulse delivery
/// (`tests/batch_equivalence.rs`), so every verdict column is byte-identical
/// under either mode — only the wall-clock columns move. E20 always runs
/// both modes (comparing them is its point); the remaining experiments
/// ignore the flag.
#[must_use]
pub fn run_experiment_batch(exp: Experiment, jobs: usize, batch: bool) -> Table {
    match exp {
        Experiment::E5 => e5_anonymous_jobs(jobs),
        Experiment::E8 => e8_baselines_jobs(jobs),
        Experiment::E10 => e10_invariants_jobs(jobs),
        Experiment::E16 => e16_parallel_explore_jobs(jobs),
        Experiment::E17 => e17_scaling_jobs(jobs, batch),
        Experiment::E18 => e18_sched_index_jobs(jobs, batch),
        Experiment::E19 => e19_virtual_time_jobs(jobs),
        Experiment::E21 => e21_fleet_jobs(jobs),
        _ => run_sequential(exp),
    }
}

fn run_sequential(exp: Experiment) -> Table {
    match exp {
        Experiment::E0 => e0_defective_sanity(),
        Experiment::E1 => e1_theorem1(),
        Experiment::E2 => e2_algorithm1(),
        Experiment::E3 => e3_prop15(),
        Experiment::E4 => e4_theorem2(),
        Experiment::E5 => e5_anonymous(),
        Experiment::E6 => e6_solitude(),
        Experiment::E7 => e7_lower_bound(),
        Experiment::E8 => e8_baselines(),
        Experiment::E9 => e9_composition(),
        Experiment::E10 => e10_invariants(),
        Experiment::E11 => e11_ablation(),
        Experiment::E12 => e12_model_check(),
        Experiment::E13 => e13_model_violations(),
        Experiment::E14 => e14_universal_simulation(),
        Experiment::E15 => e15_explore_dedup(),
        Experiment::E16 => e16_parallel_explore(),
        Experiment::E17 => e17_scaling(),
        Experiment::E18 => e18_sched_index(),
        Experiment::E19 => e19_virtual_time(),
        Experiment::E20 => e20_run_batching(),
        Experiment::E21 => e21_fleet(),
        Experiment::E22 => e22_out_of_core(),
    }
}

/// E0 — classical election dies on fully defective channels.
#[must_use]
pub fn e0_defective_sanity() -> Table {
    let mut t = Table::new(
        "E0 — fully defective channels break content-carrying election",
        "§2: no algorithm relying on message content survives total corruption",
        vec![
            "n",
            "reliable CR leader",
            "defective CR leaders",
            "defective msgs",
        ],
    );
    let mut all_dead = true;
    for n in [2usize, 4, 8, 16, 32, 64] {
        let spec = RingSpec::oriented((1..=n as u64).collect());
        let healthy = co_classic::runner::run_chang_roberts(&spec, SchedulerKind::Random, 1);
        let nodes = (0..n)
            .map(|i| Defective::new(ChangRobertsNode::new(spec.id(i), spec.cw_port(i))))
            .collect();
        let mut sim: Simulation<co_classic::chang_roberts::CrMsg, _> =
            Simulation::new(spec.wiring(), nodes, SchedulerKind::Random.build(1));
        let report = sim.run(Budget::default());
        let leaders = (0..n)
            .filter(|&i| sim.node(i).output() == Some(Role::Leader))
            .count();
        all_dead &= leaders == 0;
        t.row(vec![
            n.to_string(),
            format!("{:?}", healthy.leader),
            leaders.to_string(),
            report.total_sent.to_string(),
        ]);
    }
    t.set_verdict(if all_dead {
        "corruption prevents every election; content-oblivious design is necessary"
    } else {
        "UNEXPECTED: some defective run elected a leader"
    });
    t
}

fn complexity_sweep<F, P>(mut t: Table, predict: fn(u64, u64) -> u64, run: F) -> Table
where
    F: Fn(&RingSpec, SchedulerKind, u64) -> (u64, bool, P),
    P: fmt::Display,
{
    let mut rng = StdRng::seed_from_u64(0xE1);
    let mut all_exact = true;
    for n in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        for assignment in [
            IdAssignment::Contiguous,
            IdAssignment::Shuffled,
            IdAssignment::SingleBig {
                id_max: 4 * n as u64 + 17,
            },
        ] {
            let spec = RingSpec::oriented(assignment.generate(n, &mut rng));
            let id_max = spec.id_max();
            let predicted = predict(n as u64, id_max);
            // Measure under two contrasting adversaries.
            let mut measured = Vec::new();
            let mut ok = true;
            let mut extra = None;
            for kind in [
                SchedulerKind::Fifo,
                SchedulerKind::Lifo,
                SchedulerKind::Random,
            ] {
                let (msgs, valid, info) = run(&spec, kind, 7);
                measured.push(msgs);
                ok &= valid && msgs == predicted;
                extra = Some(info);
            }
            all_exact &= ok;
            t.row(vec![
                n.to_string(),
                assignment.to_string(),
                id_max.to_string(),
                predicted.to_string(),
                format!("{:?}", measured),
                extra.expect("ran at least once").to_string(),
                ok.to_string(),
            ]);
        }
    }
    t.set_verdict(if all_exact {
        "measured counts equal the paper's formula exactly, under every adversary"
    } else {
        "MISMATCH: some run deviates from the formula"
    });
    t
}

/// E1 — Theorem 1: Algorithm 2 sends exactly `n(2·ID_max + 1)` pulses.
#[must_use]
pub fn e1_theorem1() -> Table {
    let t = Table::new(
        "E1 — Theorem 1: Algorithm 2 message complexity",
        "quiescently terminating election with exactly n(2·ID_max + 1) pulses",
        vec![
            "n",
            "assignment",
            "ID_max",
            "predicted",
            "measured (fifo/lifo/rand)",
            "outcome",
            "exact",
        ],
    );
    complexity_sweep(
        t,
        |n, id_max| n * (2 * id_max + 1),
        |spec, kind, seed| {
            let r = runner::run_alg2(spec, kind, seed);
            let valid = r.quiescently_terminated() && r.validate(spec).is_ok();
            (r.total_messages, valid, r.outcome)
        },
    )
}

/// E2 — Corollary 13: Algorithm 1 converges with `n·ID_max` pulses.
#[must_use]
pub fn e2_algorithm1() -> Table {
    let t = Table::new(
        "E2 — Corollary 13: Algorithm 1 message complexity",
        "quiescent stabilization; every node sends and receives exactly ID_max pulses",
        vec![
            "n",
            "assignment",
            "ID_max",
            "predicted",
            "measured (fifo/lifo/rand)",
            "outcome",
            "exact",
        ],
    );
    complexity_sweep(
        t,
        |n, id_max| n * id_max,
        |spec, kind, seed| {
            let r = runner::run_alg1(spec, kind, seed);
            let valid = r.outcome == Outcome::Quiescent && r.validate(spec).is_ok();
            (r.total_messages, valid, r.outcome)
        },
    )
}

fn alg3_sweep(mut t: Table, scheme: IdScheme) -> Table {
    let mut rng = StdRng::seed_from_u64(0xE3);
    let mut all_exact = true;
    for n in [1usize, 2, 4, 8, 16, 32, 64] {
        let ids = IdAssignment::Shuffled.generate(n, &mut rng);
        let spec = RingSpec::random_flips(ids, &mut rng);
        let predicted = scheme.predicted_messages(n as u64, spec.id_max());
        let out = runner::run_alg3(&spec, scheme, SchedulerKind::Random, 3);
        let ok = out.report.validate(&spec).is_ok()
            && out.orientation_consistent
            && out.report.total_messages == predicted;
        all_exact &= ok;
        t.row(vec![
            n.to_string(),
            spec.id_max().to_string(),
            spec.flips().iter().filter(|&&f| f).count().to_string(),
            predicted.to_string(),
            out.report.total_messages.to_string(),
            out.orientation_consistent.to_string(),
            ok.to_string(),
        ]);
    }
    t.set_verdict(if all_exact {
        "election + orientation correct on every random port layout; counts exact"
    } else {
        "MISMATCH in some configuration"
    });
    t
}

/// E3 — Proposition 15: Algorithm 3 (doubled IDs) costs `n(4·ID_max − 1)`.
#[must_use]
pub fn e3_prop15() -> Table {
    let t = Table::new(
        "E3 — Proposition 15: Algorithm 3 with doubled virtual IDs",
        "elects + orients non-oriented rings using n(4·ID_max − 1) pulses",
        vec![
            "n",
            "ID_max",
            "flipped ports",
            "predicted",
            "measured",
            "oriented",
            "exact",
        ],
    );
    alg3_sweep(t, IdScheme::Doubled)
}

/// E4 — Theorem 2: Algorithm 3 (improved IDs) costs `n(2·ID_max + 1)`.
#[must_use]
pub fn e4_theorem2() -> Table {
    let t = Table::new(
        "E4 — Theorem 2: Algorithm 3 with improved virtual IDs",
        "elects + orients non-oriented rings using n(2·ID_max + 1) pulses",
        vec![
            "n",
            "ID_max",
            "flipped ports",
            "predicted",
            "measured",
            "oriented",
            "exact",
        ],
    );
    alg3_sweep(t, IdScheme::Improved)
}

/// E5 — Theorem 3 / Lemma 18: anonymous rings.
#[must_use]
pub fn e5_anonymous() -> Table {
    e5_anonymous_jobs(1)
}

fn e5_anonymous_jobs(jobs: usize) -> Table {
    use co_core::anonymous::elect_anonymous;

    let mut t = Table::new(
        "E5 — Theorem 3: anonymous rings with randomness",
        "success probability 1 − O(n^-c); ID_max unique whp, n^Ω(c) ≤ ID_max ≤ n^O(c²)",
        vec![
            "n",
            "c",
            "trials",
            "success",
            "unique max",
            "ID_max (mean/p95/max)",
            "msgs (p95)",
        ],
    );
    let trials = 100u64;
    // The (c, n) grid, flattened to one work item per *trial*: every trial
    // is independently seeded from its coordinates, so items fan across
    // workers (even within a single heavy cell) without changing output.
    let cells: Vec<(f64, usize)> = [0.5f64, 1.0, 2.0]
        .iter()
        .flat_map(|&c| [4usize, 8, 16, 32, 64].map(|n| (c, n)))
        .collect();
    let items: Vec<(f64, usize, u64)> = cells
        .iter()
        .flat_map(|&(c, n)| (0..trials).map(move |trial| (c, n, trial)))
        .collect();
    let per_trial = crate::parallel::par_map(&items, jobs, |&(c, n, trial)| {
        // 14-bit cap: a documented harness guard keeping the geometric
        // tail's worst case at ~2M pulses per trial (n = 64).
        let cfg = SamplingConfig::new(c).with_max_bits(14);
        let r = elect_anonymous(
            n,
            &cfg,
            SchedulerKind::Random,
            0xE5u64.wrapping_add(trial.wrapping_mul(0x2545_F491)),
        );
        (r.id_max, r.messages, r.success, r.unique_max)
    });
    let mut ok = true;
    for (&(c, n), chunk) in cells.iter().zip(per_trial.chunks(trials as usize)) {
        let id_maxes: Vec<u64> = chunk.iter().map(|r| r.0).collect();
        let messages: Vec<u64> = chunk.iter().map(|r| r.1).collect();
        let successes: u64 = chunk.iter().map(|r| u64::from(r.2)).sum();
        let unique: u64 = chunk.iter().map(|r| u64::from(r.3)).sum();
        ok &= successes == unique; // failures are exactly ties
        let ids = crate::stats::Summary::of_counts(&id_maxes);
        let msgs = crate::stats::Summary::of_counts(&messages);
        t.row(vec![
            n.to_string(),
            format!("{c:.1}"),
            trials.to_string(),
            format!("{:.1}%", 100.0 * successes as f64 / trials as f64),
            format!("{:.1}%", 100.0 * unique as f64 / trials as f64),
            format!("{:.0}/{:.0}/{:.0}", ids.mean, ids.p95, ids.max),
            format!("{:.0}", msgs.p95),
        ]);
    }
    t.set_verdict(if ok {
        "every failure coincides with a tied maximum (Lemma 18); success rises with c and n"
    } else {
        "UNEXPECTED: an election failed despite a unique maximum"
    });
    t
}

/// E6 — Lemma 22 / Definition 21: solitude patterns.
#[must_use]
pub fn e6_solitude() -> Table {
    let mut t = Table::new(
        "E6 — Definition 21 / Lemma 22: solitude patterns",
        "each ID's solitude pattern is unique; Algorithm 2's is 0^ID 1^(ID+1)",
        vec!["ID", "pattern (CW=0, CCW=1)", "length", "= 2·ID+1"],
    );
    for id in [1u64, 2, 3, 5, 8, 13] {
        let p = solitude_pattern_alg2(id).expect("terminates");
        let display = if p.len() <= 27 {
            p.to_string()
        } else {
            format!("{}…", &p.to_string()[..27])
        };
        t.row(vec![
            id.to_string(),
            display,
            p.len().to_string(),
            (p.len() as u64 == 2 * id + 1).to_string(),
        ]);
    }
    let patterns: Vec<_> = (1..=512)
        .map(|id| solitude_pattern_alg2(id).expect("terminates"))
        .collect();
    t.set_verdict(format!(
        "patterns for IDs 1..=512 pairwise distinct: {}",
        patterns_unique(&patterns)
    ));
    t
}

/// E7 — Theorem 4/20: the lower bound vs the measured upper bound.
#[must_use]
pub fn e7_lower_bound() -> Table {
    let mut t = Table::new(
        "E7 — Theorem 4/20: lower bound n·⌊log(ID_max/n)⌋ vs Algorithm 2",
        "any terminating content-oblivious election sends ≥ n⌊log(k/n)⌋ pulses",
        vec![
            "n",
            "ID_max = k",
            "lower bound",
            "Alg2 measured",
            "shared prefix (Cor.24 ≥)",
            "holds",
        ],
    );
    let mut all_hold = true;
    for n in [1u64, 2, 4, 8] {
        for exp in [8u32, 12, 16] {
            let id_max = 1u64 << exp;
            let mut ids: Vec<u64> = (1..n).collect();
            ids.push(id_max);
            let spec = RingSpec::oriented(ids);
            let measured = runner::run_alg2(&spec, SchedulerKind::Fifo, 0).total_messages;
            let bound = lower_bound_messages(id_max, n);
            // Corollary 24 check on a subsample of patterns (k capped for
            // tractability: pattern extraction is Θ(k²) pulses total).
            let k_sample = 64u64.min(id_max);
            let patterns: Vec<_> = (1..=k_sample)
                .map(|id| solitude_pattern_alg2(id).expect("terminates"))
                .collect();
            let (shared, _) = max_prefix_group(&patterns, n.min(k_sample) as usize);
            let pigeonhole = (k_sample / n).max(1).ilog2() as usize;
            let holds = measured >= bound && shared >= pigeonhole;
            all_hold &= holds;
            t.row(vec![
                n.to_string(),
                id_max.to_string(),
                bound.to_string(),
                measured.to_string(),
                format!("{shared} ≥ {pigeonhole}"),
                holds.to_string(),
            ]);
        }
    }
    t.set_verdict(if all_hold {
        "bound always below measured cost; pigeonhole prefix guarantee observed"
    } else {
        "VIOLATION of the lower bound?!"
    });
    t
}

/// E8 — §1.2 comparison: baselines vs the content-oblivious algorithm.
#[must_use]
pub fn e8_baselines() -> Table {
    e8_baselines_jobs(1)
}

fn e8_baselines_jobs(jobs: usize) -> Table {
    let mut t = Table::new(
        "E8 — §1.2: classical baselines vs content-oblivious election",
        "CR O(n²), HS/Peterson/Franklin O(n log n) with content; ours O(n·ID_max) without",
        vec![
            "n",
            "CR",
            "HS",
            "Peterson",
            "Franklin",
            "Alg2 (ID≤n)",
            "Alg2 (ID≤n²)",
        ],
    );
    // Specs are drawn from one sequential RNG stream (so the table is
    // independent of `jobs`); only the election runs fan out.
    let mut rng = StdRng::seed_from_u64(0xE8);
    let specs: Vec<(usize, RingSpec, RingSpec)> = [4usize, 8, 16, 32, 64, 128, 256]
        .into_iter()
        .map(|n| {
            let spec = RingSpec::oriented(IdAssignment::Shuffled.generate(n, &mut rng));
            let big_ids = IdAssignment::SparseUniform {
                id_max: (n * n) as u64,
            }
            .generate(n, &mut rng);
            (n, spec, RingSpec::oriented(big_ids))
        })
        .collect();
    let rows = crate::parallel::par_map(&specs, jobs, |(n, spec, big_spec)| {
        let mut cells = vec![n.to_string()];
        for baseline in Baseline::ALL {
            let r = baseline.run(spec, SchedulerKind::Fifo, 1);
            cells.push(r.total_messages.to_string());
        }
        let small = runner::run_alg2(spec, SchedulerKind::Fifo, 1).total_messages;
        cells.push(small.to_string());
        let big = runner::run_alg2(big_spec, SchedulerKind::Fifo, 1).total_messages;
        cells.push(big.to_string());
        cells
    });
    for row in rows {
        t.row(row);
    }
    t.set_verdict(
        "with dense IDs our cost is ~2n² (competitive with CR's worst case); \
         sparse IDs inflate it — exactly the ID_max dependence Theorem 4 proves necessary",
    );
    t
}

/// E9 — Corollary 5: composition end-to-end.
#[must_use]
pub fn e9_composition() -> Table {
    let mut t = Table::new(
        "E9 — Corollary 5: election composed with computation",
        "after quiescent termination the leader roots an arbitrary ring computation",
        vec![
            "n",
            "app",
            "correct",
            "quiescent term.",
            "total msgs",
            "election msgs",
        ],
    );
    let mut rng = StdRng::seed_from_u64(0xE9);
    let mut all_ok = true;
    for n in [2usize, 4, 8, 16, 32] {
        let spec = RingSpec::oriented(IdAssignment::Shuffled.generate(n, &mut rng));

        let rs = elect_then_ring_size(&spec, SchedulerKind::Random, 5);
        let rs_ok = rs.outputs == vec![Some(n as u64); n];
        all_ok &= rs_ok && rs.quiescently_terminated;
        t.row(vec![
            n.to_string(),
            "ring-size".into(),
            rs_ok.to_string(),
            rs.quiescently_terminated.to_string(),
            rs.total_messages.to_string(),
            rs.election_messages.to_string(),
        ]);

        let inputs: Vec<u64> = (0..n as u64).map(|i| i * i).collect();
        let agg = elect_then_aggregate(&spec, &inputs, SchedulerKind::Random, 5);
        let want_sum: u64 = inputs.iter().sum();
        let agg_ok = agg
            .outputs
            .iter()
            .all(|o| o.is_some_and(|o| o.sum == want_sum && o.count == n as u64));
        all_ok &= agg_ok && agg.quiescently_terminated;
        t.row(vec![
            n.to_string(),
            "aggregate".into(),
            agg_ok.to_string(),
            agg.quiescently_terminated.to_string(),
            agg.total_messages.to_string(),
            agg.election_messages.to_string(),
        ]);

        let script = vec![7i64, -11, 100];
        let rep = elect_then_replicate(&spec, &script, SchedulerKind::Random, 5);
        let rep_ok = rep.outputs == vec![Some(96); n];
        all_ok &= rep_ok && rep.quiescently_terminated;
        t.row(vec![
            n.to_string(),
            "replicated-counter".into(),
            rep_ok.to_string(),
            rep.quiescently_terminated.to_string(),
            rep.total_messages.to_string(),
            rep.election_messages.to_string(),
        ]);
    }
    t.set_verdict(if all_ok {
        "every composition computed correctly with quiescent termination end-to-end"
    } else {
        "composition FAILED somewhere"
    });
    t
}

/// E10 — Lemmas 6–12/17 as continuously-checked invariants.
#[must_use]
pub fn e10_invariants() -> Table {
    e10_invariants_jobs(1)
}

fn e10_invariants_jobs(jobs: usize) -> Table {
    let mut t = Table::new(
        "E10 — Lemmas 6-12, 17: invariant monitors",
        "σ=ρ+1 before absorption, σ=ρ after; quiescence ⟺ ∀v ρ≥ID; ID_max absorbs last; ρ≤ID_max",
        vec!["n", "assignment", "schedulers × seeds", "violations"],
    );
    // Specs are drawn from one sequential RNG stream (so the table is
    // independent of `jobs`); only the monitored runs fan out.
    let mut rng = StdRng::seed_from_u64(0xE10);
    let mut cells = Vec::new();
    for n in [1usize, 2, 5, 9, 17] {
        for assignment in [
            IdAssignment::Shuffled,
            IdAssignment::SingleBig {
                id_max: 3 * n as u64 + 40,
            },
        ] {
            let spec = RingSpec::oriented(assignment.generate(n, &mut rng));
            cells.push((n, assignment, spec));
        }
    }
    let results = crate::parallel::par_map(&cells, jobs, |(_, _, spec)| {
        let mut bad = 0u64;
        let mut runs = 0u64;
        for kind in SchedulerKind::ALL {
            for seed in 0..4u64 {
                runs += 1;
                if runner::run_alg1_monitored(spec, kind, seed).is_err() {
                    bad += 1;
                }
                runs += 1;
                if runner::run_alg2_monitored(spec, kind, seed).is_err() {
                    bad += 1;
                }
            }
        }
        (runs, bad)
    });
    let mut total_runs = 0u64;
    let mut violations = 0u64;
    for ((n, assignment, _), (runs, bad)) in cells.iter().zip(results) {
        total_runs += runs;
        violations += bad;
        t.row(vec![
            n.to_string(),
            assignment.to_string(),
            runs.to_string(),
            bad.to_string(),
        ]);
    }
    t.set_verdict(format!(
        "{violations} violations in {total_runs} fully-monitored executions"
    ));
    t
}

/// E11 — ablation: Algorithm 2 without the CCW receive gate.
#[must_use]
pub fn e11_ablation() -> Table {
    use co_core::ablation::UngatedAlg2Node;
    use co_net::explore::{explore, ExploreLimits};

    let mut t = Table::new(
        "E11 — ablation: Algorithm 2 without the CCW receive gate",
        "§3.2: gating recvCCW on ρ_cw ≥ ID is what confines the termination trigger to ID_max",
        vec![
            "ring",
            "variant",
            "configs explored",
            "all schedules correct",
        ],
    );
    let mut gated_ok = true;
    let mut ungated_broken = false;
    for ids in [vec![1u64, 2], vec![2, 3], vec![1, 2, 3]] {
        let spec = RingSpec::oriented(ids.clone());
        let leader = spec.max_position();

        let check = |roles: &[Role], terminated: &[bool], sent: u64, predicted: u64| {
            terminated.iter().all(|&t| t)
                && roles
                    .iter()
                    .enumerate()
                    .all(|(i, r)| (*r == Role::Leader) == (i == leader))
                && sent == predicted
        };
        let predicted = spec.len() as u64 * (2 * spec.id_max() + 1);

        let gated = explore(
            &spec.wiring(),
            || {
                (0..spec.len())
                    .map(|i| co_core::Alg2Node::new(spec.id(i), spec.cw_port(i)))
                    .collect()
            },
            |_| Ok(()),
            |state| {
                let roles: Vec<Role> = state.nodes.iter().map(co_core::Alg2Node::role).collect();
                if check(&roles, &state.terminated, state.sent, predicted) {
                    Ok(())
                } else {
                    Err("wrong final configuration".into())
                }
            },
            ExploreLimits::default(),
        );
        gated_ok &= gated.complete && gated.violations.is_empty();
        t.row(vec![
            format!("{ids:?}"),
            "gated (paper)".into(),
            gated.configs.to_string(),
            (gated.violations.is_empty()).to_string(),
        ]);

        let ungated = explore(
            &spec.wiring(),
            || {
                (0..spec.len())
                    .map(|i| UngatedAlg2Node::new(spec.id(i), spec.cw_port(i)))
                    .collect()
            },
            |_| Ok(()),
            |state| {
                let roles: Vec<Role> = state.nodes.iter().map(UngatedAlg2Node::role).collect();
                if check(&roles, &state.terminated, state.sent, predicted) {
                    Ok(())
                } else {
                    Err("wrong final configuration".into())
                }
            },
            ExploreLimits::default(),
        );
        ungated_broken |= !ungated.violations.is_empty();
        t.row(vec![
            format!("{ids:?}"),
            "ungated (ablated)".into(),
            ungated.configs.to_string(),
            (ungated.violations.is_empty()).to_string(),
        ]);
    }
    t.set_verdict(if gated_ok && ungated_broken {
        "the gate is load-bearing: the paper's variant is correct on every schedule, the ablation is not"
    } else {
        "UNEXPECTED ablation outcome"
    });
    t
}

/// E12 — exhaustive model check of Algorithm 2 on tiny instances.
#[must_use]
pub fn e12_model_check() -> Table {
    use co_net::explore::{explore, ExploreLimits};
    let mut t = Table::new(
        "E12 — exhaustive model check: every schedule of tiny instances",
        "Theorem 1 holds for all asynchronous schedules, not just sampled adversaries",
        vec![
            "ring",
            "configs",
            "quiescent configs",
            "complete",
            "violations",
        ],
    );
    let mut all_ok = true;
    for ids in [
        vec![1u64],
        vec![4u64],
        vec![1, 2],
        vec![2, 1],
        vec![3, 1],
        vec![1, 2, 3],
        vec![3, 1, 2],
        vec![2, 3, 1],
        vec![1, 2, 4],
    ] {
        let spec = RingSpec::oriented(ids.clone());
        let leader = spec.max_position();
        let predicted = spec.len() as u64 * (2 * spec.id_max() + 1);
        let report = explore(
            &spec.wiring(),
            || {
                (0..spec.len())
                    .map(|i| co_core::Alg2Node::new(spec.id(i), spec.cw_port(i)))
                    .collect()
            },
            |_| Ok(()),
            |state| {
                let ok = state.terminated.iter().all(|&x| x)
                    && state
                        .nodes
                        .iter()
                        .enumerate()
                        .all(|(i, n)| (n.role() == Role::Leader) == (i == leader))
                    && state.sent == predicted;
                if ok {
                    Ok(())
                } else {
                    Err("bad quiescent configuration".into())
                }
            },
            ExploreLimits::default(),
        );
        all_ok &= report.complete && report.violations.is_empty();
        t.row(vec![
            format!("{ids:?}"),
            report.configs.to_string(),
            report.quiescent_configs.to_string(),
            report.complete.to_string(),
            report.violations.len().to_string(),
        ]);
    }
    t.set_verdict(if all_ok {
        "Theorem 1 verified on the full schedule space of every instance"
    } else {
        "model check FAILED"
    });
    t
}

/// E13 — model violations: dropped / duplicated pulses break everything.
#[must_use]
pub fn e13_model_violations() -> Table {
    use co_net::FaultPlan;
    let mut t = Table::new(
        "E13 — violating the channel model (§2: \"pulses cannot be dropped or injected\")",
        "one lost pulse deadlocks the election; one duplicate corrupts it",
        vec!["ring", "fault", "outcome", "healthy outcome", "broken"],
    );
    let mut all_broken = true;
    for ids in [vec![3u64, 5, 2], vec![2, 7, 4, 1]] {
        let spec = RingSpec::oriented(ids.clone());
        for (label, plan) in [
            ("drop seq 4", FaultPlan::new().drop_seq(4)),
            ("duplicate seq 1", FaultPlan::new().duplicate_seq(1)),
        ] {
            let nodes = (0..spec.len())
                .map(|i| co_core::Alg2Node::new(spec.id(i), spec.cw_port(i)))
                .collect();
            let mut sim: Simulation<co_net::Pulse, co_core::Alg2Node> =
                Simulation::new(spec.wiring(), nodes, SchedulerKind::Fifo.build(0));
            sim.set_faults(plan);
            let faulty = sim.run(Budget::steps(500_000));
            let healthy = runner::run_alg2(&spec, SchedulerKind::Fifo, 0);
            let broken = faulty.outcome != Outcome::QuiescentTerminated;
            all_broken &= broken;
            t.row(vec![
                format!("{ids:?}"),
                label.into(),
                faulty.outcome.to_string(),
                healthy.outcome.to_string(),
                broken.to_string(),
            ]);
        }
    }
    t.set_verdict(if all_broken {
        "every injected model violation destroyed quiescent termination — the assumption is necessary"
    } else {
        "UNEXPECTED: some faulted run still terminated quiescently"
    });
    t
}

/// E14 — Corollary 5 full strength: Chang–Roberts simulated over pulses.
#[must_use]
pub fn e14_universal_simulation() -> Table {
    use co_classic::chang_roberts::CrMsg;
    use co_compose::universal::simulate_on_defective_ring;
    use co_net::Port;

    fn cr_encode(m: &CrMsg) -> u64 {
        match *m {
            CrMsg::Candidate(id) => id << 1,
            CrMsg::Elected(id) => (id << 1) | 1,
        }
    }
    fn cr_decode(w: u64) -> CrMsg {
        if w & 1 == 0 {
            CrMsg::Candidate(w >> 1)
        } else {
            CrMsg::Elected(w >> 1)
        }
    }

    let mut t = Table::new(
        "E14 — Corollary 5, full strength: Chang-Roberts simulated over pulses",
        "any asynchronous ring algorithm can be simulated in a fully defective oriented ring",
        vec![
            "n",
            "ID_max",
            "CR leader (simulated)",
            "correct",
            "election pulses",
            "simulation pulses",
            "quiescent term.",
        ],
    );
    let mut rng = StdRng::seed_from_u64(0xE14);
    let mut all_ok = true;
    for n in [2usize, 3, 4, 6, 8] {
        let spec = RingSpec::oriented(IdAssignment::Shuffled.generate(n, &mut rng));
        let out = simulate_on_defective_ring(
            &spec,
            SchedulerKind::Random,
            5,
            |i| ChangRobertsNode::new(spec.id(i), Port::One),
            cr_encode,
            cr_decode,
        );
        let leader = out.outputs.iter().position(|o| *o == Some(Role::Leader));
        let correct = leader == Some(spec.max_position()) && out.quiescently_terminated;
        all_ok &= correct;
        t.row(vec![
            n.to_string(),
            spec.id_max().to_string(),
            format!("{leader:?}"),
            correct.to_string(),
            out.election_messages.to_string(),
            (out.total_messages - out.election_messages).to_string(),
            out.quiescently_terminated.to_string(),
        ]);
    }
    t.set_verdict(if all_ok {
        "Chang-Roberts — which compares IDs inside messages — ran correctly over bare pulses"
    } else {
        "simulation FAILED somewhere"
    });
    t
}

/// E15 — explored-state accounting: engines × dedup backends × worker counts.
#[must_use]
pub fn e15_explore_dedup() -> Table {
    use co_core::Alg2Node;
    use co_net::explore::{explore, explore_parallel, explore_reference, ExploreConfig};
    use co_net::DedupKind;
    let mut t = Table::new(
        "E15 — explorer grid: sequential / reference / parallel × {exact, bloom}",
        "fingerprint dedup (8 B/config) and the parallel explorer cover the same state space",
        vec![
            "ring", "engine", "jobs", "configs", "bytes", "complete", "agree",
        ],
    );
    let mut all_ok = true;
    for ids in [
        vec![1u64, 2],
        vec![3u64, 1],
        vec![1, 2, 3],
        vec![2, 3, 1],
        vec![1, 2, 4],
    ] {
        let spec = RingSpec::oriented(ids.clone());
        let make = || {
            (0..spec.len())
                .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
                .collect::<Vec<_>>()
        };
        let snap = explore(
            &spec.wiring(),
            make,
            |_| Ok(()),
            |_| Ok(()),
            co_net::explore::ExploreLimits::default(),
        );
        let reference = explore_reference(
            &spec.wiring(),
            make,
            |node: &Alg2Node| {
                (
                    node.rho_cw(),
                    node.sigma_cw(),
                    node.rho_ccw(),
                    node.sigma_ccw(),
                    node.deferred_ccw(),
                    node.role() == Role::Leader,
                    node.is_terminated(),
                )
            },
            |_| Ok(()),
            |_| Ok(()),
            co_net::explore::ExploreLimits::default(),
        );
        // Reference agreement requires identical state counts and a strictly
        // larger footprint for the tuple-keyed set.
        let ref_ok = snap.complete
            && reference.complete
            && snap.configs == reference.configs
            && snap.visited_bytes < reference.visited_bytes;
        all_ok &= ref_ok;
        t.row(vec![
            format!("{ids:?}"),
            "seq/exact".into(),
            "1".into(),
            snap.configs.to_string(),
            snap.visited_bytes.to_string(),
            snap.complete.to_string(),
            "-".into(),
        ]);
        t.row(vec![
            format!("{ids:?}"),
            "reference".into(),
            "1".into(),
            reference.configs.to_string(),
            reference.visited_bytes.to_string(),
            reference.complete.to_string(),
            ref_ok.to_string(),
        ]);
        for (kind, jobs) in [
            (DedupKind::Exact, 1usize),
            (DedupKind::Exact, 4),
            (DedupKind::Bloom, 4),
        ] {
            let config = ExploreConfig {
                jobs,
                dedup: kind,
                ..ExploreConfig::default()
            };
            let par = explore_parallel(&spec.wiring(), make, |_| Ok(()), |_| Ok(()), &config);
            // Exact parallel must agree bit-for-bit on the count; bloom may
            // only prune via false positives, never add states.
            let agree = match kind {
                // The mmap backend is a set, like exact: bit-for-bit counts.
                DedupKind::Exact | DedupKind::Mmap { .. } => {
                    par.complete && par.configs == snap.configs
                }
                DedupKind::Bloom => {
                    par.complete
                        && par.configs <= snap.configs
                        && par.configs * 100 >= snap.configs * 99
                }
            };
            all_ok &= agree;
            t.row(vec![
                format!("{ids:?}"),
                format!("par/{kind}"),
                jobs.to_string(),
                par.configs.to_string(),
                par.visited_bytes.to_string(),
                par.complete.to_string(),
                agree.to_string(),
            ]);
        }
    }
    t.set_verdict(if all_ok {
        "identical state spaces across engines and worker counts; fingerprints far smaller than the reference"
    } else {
        "UNEXPECTED: explorer disagreement or no memory saving"
    });
    t
}

/// E16 — parallel explorer at its default worker grid.
#[must_use]
pub fn e16_parallel_explore() -> Table {
    e16_parallel_explore_jobs(0)
}

/// E16 — parallel frontier-sharded exploration: speedup grid and exhaustive
/// fault model-checking.
///
/// `jobs <= 1` runs the default 1/2/4/8 worker grid; otherwise the grid is
/// `[1, jobs]`.
#[must_use]
pub fn e16_parallel_explore_jobs(jobs: usize) -> Table {
    use co_core::{Alg1Node, Alg2Node};
    use co_net::explore::{explore, explore_parallel, ExploreConfig, ExploreLimits};
    use co_net::{DedupKind, FaultPlan};
    use std::time::Instant;

    let mut t = Table::new(
        "E16 — parallel frontier-sharded exploration: speedup and exhaustive faults",
        "work stealing makes larger rings and exhaustive fault injection model-checkable",
        vec![
            "workload",
            "backend",
            "jobs",
            "configs",
            "quiescent",
            "bytes",
            "ms",
            "complete",
            "agree",
        ],
    );
    let worker_grid: Vec<usize> = if jobs <= 1 {
        vec![1, 2, 4, 8]
    } else {
        vec![1, jobs]
    };
    let max_jobs = worker_grid.iter().copied().max().unwrap_or(1);
    let mut all_ok = true;

    // -- Part 1: speedup grid -------------------------------------------------
    // Two workloads: the n=4 Algorithm 1 ring of the PR acceptance criterion
    // (Alg 1 quiesces per Corollary 13, so every maximal schedule ends in a
    // countable quiescent configuration), and an n=7 Algorithm 2 ring whose
    // ~20k-configuration space is large enough for work stealing to pay off.
    enum Nodes {
        A1(Vec<u64>),
        A2(Vec<u64>),
    }
    let workloads = [
        ("alg1 n=4", Nodes::A1(vec![2, 4, 1, 3])),
        ("alg2 n=7", Nodes::A2(vec![3, 5, 2, 4, 1, 6, 7])),
    ];
    for (label, nodes) in &workloads {
        let (spec, is_alg1) = match nodes {
            Nodes::A1(ids) => (RingSpec::oriented(ids.clone()), true),
            Nodes::A2(ids) => (RingSpec::oriented(ids.clone()), false),
        };
        // Run one engine configuration, dispatching on the protocol type.
        let run = |engine_jobs: Option<usize>, kind: DedupKind| {
            let config = ExploreConfig {
                jobs: engine_jobs.unwrap_or(1),
                dedup: kind,
                ..ExploreConfig::default()
            };
            let start = Instant::now();
            let report = if is_alg1 {
                let make = || {
                    (0..spec.len())
                        .map(|i| Alg1Node::new(spec.id(i), spec.cw_port(i)))
                        .collect::<Vec<Alg1Node>>()
                };
                match engine_jobs {
                    None => explore(
                        &spec.wiring(),
                        make,
                        |_| Ok(()),
                        |_| Ok(()),
                        ExploreLimits::default(),
                    ),
                    Some(_) => {
                        explore_parallel(&spec.wiring(), make, |_| Ok(()), |_| Ok(()), &config)
                    }
                }
            } else {
                let make = || {
                    (0..spec.len())
                        .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
                        .collect::<Vec<Alg2Node>>()
                };
                match engine_jobs {
                    None => explore(
                        &spec.wiring(),
                        make,
                        |_| Ok(()),
                        |_| Ok(()),
                        ExploreLimits::default(),
                    ),
                    Some(_) => {
                        explore_parallel(&spec.wiring(), make, |_| Ok(()), |_| Ok(()), &config)
                    }
                }
            };
            (report, start.elapsed().as_millis())
        };
        let (seq, seq_ms) = run(None, DedupKind::Exact);
        all_ok &= seq.complete && seq.violations.is_empty();
        t.row(vec![
            (*label).into(),
            "seq/exact".into(),
            "1".into(),
            seq.configs.to_string(),
            seq.quiescent_configs.to_string(),
            seq.visited_bytes.to_string(),
            seq_ms.to_string(),
            seq.complete.to_string(),
            "-".into(),
        ]);
        // Exact at every worker count; bloom only at the widest — its point is
        // the fixed memory footprint, not the scaling curve.
        let grid = worker_grid
            .iter()
            .map(|&w| (DedupKind::Exact, w))
            .chain(std::iter::once((DedupKind::Bloom, max_jobs)));
        for (kind, w) in grid {
            let (par, ms) = run(Some(w), kind);
            // The verdict only depends on deterministic quantities: config
            // counts, byte totals and verdict agreement. Wall-clock columns
            // are informational.
            let agree = match kind {
                DedupKind::Exact | DedupKind::Mmap { .. } => {
                    par.complete
                        && par.configs == seq.configs
                        && par.quiescent_configs == seq.quiescent_configs
                        && par.violations.is_empty()
                }
                DedupKind::Bloom => {
                    par.complete
                        && par.configs <= seq.configs
                        && par.configs * 1000 >= seq.configs * 999
                        && par.violations.is_empty()
                }
            };
            all_ok &= agree;
            t.row(vec![
                (*label).into(),
                format!("par/{kind}"),
                w.to_string(),
                par.configs.to_string(),
                par.quiescent_configs.to_string(),
                par.visited_bytes.to_string(),
                ms.to_string(),
                par.complete.to_string(),
                agree.to_string(),
            ]);
        }
    }

    // -- Part 2: exhaustive fault model-checking (E13, quantified ∀ schedules) -
    // E13 samples one schedule per fault; here every schedule of the faulted
    // n=3 instance is explored. The quiescence predicate is inverted: a
    // violation would mean some schedule *survives* the fault and still elects
    // correctly — we verify none does.
    let spec3 = RingSpec::oriented(vec![3u64, 5, 2]);
    let leader = spec3.max_position();
    let predicted = spec3.len() as u64 * (2 * spec3.id_max() + 1);
    let make3 = || {
        (0..spec3.len())
            .map(|i| co_core::Alg2Node::new(spec3.id(i), spec3.cw_port(i)))
            .collect::<Vec<co_core::Alg2Node>>()
    };
    for (label, plan, bounded) in [
        // A dropped pulse only shrinks the state space: the exploration is
        // exhaustive and proves the fault deadlocks EVERY schedule.
        ("drop seq 4", FaultPlan::new().drop_seq(4), false),
        // A duplicated pulse circulates forever (the gate defers it but never
        // absorbs it), so the space is infinite; the search is bounded and the
        // claim is over every configuration within the bound.
        ("duplicate seq 1", FaultPlan::new().duplicate_seq(1), true),
    ] {
        let config = ExploreConfig {
            jobs: max_jobs,
            faults: plan,
            limits: ExploreLimits {
                max_configs: if bounded { 50_000 } else { 2_000_000 },
                ..ExploreLimits::default()
            },
            ..ExploreConfig::default()
        };
        let start = Instant::now();
        let par = explore_parallel(
            &spec3.wiring(),
            make3,
            |_| Ok(()),
            |state| {
                let healthy = state.terminated.iter().all(|&x| x)
                    && state
                        .nodes
                        .iter()
                        .enumerate()
                        .all(|(i, n)| (n.role() == Role::Leader) == (i == leader))
                    && state.sent == predicted;
                if healthy {
                    Err("schedule survived the fault with a healthy election".into())
                } else {
                    Ok(())
                }
            },
            &config,
        );
        let ms = start.elapsed().as_millis();
        // "agree" here means the fault is fatal: no explored quiescent
        // configuration passed the healthy-election predicate. The drop run
        // must additionally be exhaustive and actually reach (deadlocked)
        // quiescent configurations; the duplicate run must keep generating
        // state (the stray pulse never quiesces healthily), hence hits the
        // configuration bound.
        let fatal = par.violations.is_empty()
            && if bounded {
                !par.complete
            } else {
                par.complete && par.quiescent_configs > 0
            };
        all_ok &= fatal;
        t.row(vec![
            format!("alg2 n=3 {label}"),
            "par/exact".into(),
            max_jobs.to_string(),
            par.configs.to_string(),
            par.quiescent_configs.to_string(),
            par.visited_bytes.to_string(),
            ms.to_string(),
            par.complete.to_string(),
            fatal.to_string(),
        ]);
    }

    t.set_verdict(if all_ok {
        "parallel sweep matches the sequential verdict, and no schedule survives an injected fault"
    } else {
        "UNEXPECTED: parallel/sequential disagreement or a fault-surviving schedule"
    });
    t
}

/// E17 — thousand-node scaling under both queue backends (default scale).
#[must_use]
pub fn e17_scaling() -> Table {
    e17_scaling_jobs(1, false)
}

/// E17 — thousand-node scaling under both queue backends.
///
/// Three workloads, each at `n ∈ {100, 500, 1000, 2000, 5000}` under both
/// the generic `VecDeque` store and the run-length counter store:
///
/// 1. **token** — one pulse circulating the ring for a fixed 500 k
///    deliveries. The message count is fixed while `n` grows 50×, so with
///    incremental ready tracking steps/sec stays flat in `n` (the old
///    per-step `ready_buf` rebuild was O(channels) even with one pulse in
///    flight).
/// 2. **election matrix** — Alg1/Alg2/Alg3 with contiguous IDs, exact to
///    the paper's complexity formulas. Step and pulse counts must be
///    byte-identical across backends; wall-time and peak queue bytes are
///    informational. At this scale wall-time is dominated by the
///    scheduler's O(ready) scan (see `--profile`), so the big cells run
///    minutes — the matrix fans across `jobs` workers.
/// 3. **burst** — 10⁶ pulses fired into a single channel, isolating the
///    memory claim: the counter store keeps one 16-byte `(head_seq, len)`
///    run however many pulses are queued; the `VecDeque` store pays one
///    envelope each.
///
/// `batch` runs every workload through the run-batched macro-stepping path
/// ([`co_net::Simulation::set_batch`]); all counts are byte-identical either
/// way, only wall-clock moves.
#[must_use]
pub fn e17_scaling_jobs(jobs: usize, batch: bool) -> Table {
    use co_net::{Context, Port, Pulse, QueueBackend};
    use std::time::Instant;

    let mut t = Table::new(
        "E17 — scaling: thousand-node rings, pluggable queue backends",
        "identical counts under both stores; ready upkeep O(1)/step; counter store O(runs) memory",
        vec![
            "workload",
            "n",
            "backend",
            "steps",
            "pulses",
            "exact",
            "peak queue B",
            "ms",
            "Ksteps/s",
        ],
    );
    let ns = [100usize, 500, 1000, 2000, 5000];
    let mut all_ok = true;
    let row_of = |workload: String,
                  n: usize,
                  backend: QueueBackend,
                  steps: u64,
                  pulses: u64,
                  exact: bool,
                  peak: usize,
                  ms: u128| {
        let ksteps = steps as f64 / 1e3 / (ms.max(1) as f64 / 1e3);
        vec![
            workload,
            n.to_string(),
            backend.to_string(),
            steps.to_string(),
            pulses.to_string(),
            exact.to_string(),
            peak.to_string(),
            ms.to_string(),
            format!("{ksteps:.0}"),
        ]
    };

    // -- Workload 1: fixed message count, growing ring ------------------------
    // One token relayed clockwise forever; the budget cuts it off after
    // exactly 500 k deliveries on every ring size.
    #[derive(Clone, Debug)]
    struct Token {
        starts: bool,
    }
    impl Protocol<Pulse> for Token {
        type Output = ();
        fn on_start(&mut self, ctx: &mut Context<'_, Pulse>) {
            if self.starts {
                ctx.send(Port::One, Pulse);
            }
        }
        fn on_message(&mut self, _p: Port, _m: Pulse, ctx: &mut Context<'_, Pulse>) {
            ctx.send(Port::One, Pulse);
        }
        fn output(&self) -> Option<()> {
            None
        }
    }
    const TOKEN_STEPS: u64 = 500_000;
    for n in ns {
        let spec = RingSpec::oriented((1..=n as u64).collect());
        for backend in QueueBackend::ALL {
            let nodes = (0..n).map(|i| Token { starts: i == 0 }).collect();
            let mut sim: Simulation<Pulse, Token> = Simulation::with_backend(
                spec.wiring(),
                nodes,
                SchedulerKind::Fifo.build(0),
                backend,
            );
            sim.set_batch(batch);
            let start = Instant::now();
            let run = sim.run(Budget::steps(TOKEN_STEPS));
            let ms = start.elapsed().as_millis();
            // Exactly one pulse is ever in flight: the budget, not
            // quiescence, ends the run, after TOKEN_STEPS deliveries and
            // TOKEN_STEPS + 1 sends.
            let exact = run.outcome == Outcome::BudgetExhausted
                && run.steps == TOKEN_STEPS
                && run.total_sent == TOKEN_STEPS + 1;
            all_ok &= exact;
            t.row(row_of(
                "token 500k".into(),
                n,
                backend,
                run.steps,
                run.total_sent,
                exact,
                sim.peak_queue_bytes(),
                ms,
            ));
        }
    }

    // -- Workload 2: the election matrix --------------------------------------
    // Alg2 at n = 5000 with contiguous IDs sends n(2n+1) ≈ 50 M pulses,
    // which exceeds the 50 M-step default budget — size it explicitly.
    let budget = Budget::steps(120_000_000);
    let cells: Vec<(usize, &str, QueueBackend)> = ns
        .iter()
        .flat_map(|&n| {
            ["alg1", "alg2", "alg3"]
                .into_iter()
                .flat_map(move |alg| QueueBackend::ALL.map(|b| (n, alg, b)))
        })
        .collect();
    let results = crate::parallel::par_map(&cells, jobs, |&(n, alg, backend)| {
        let spec = RingSpec::oriented((1..=n as u64).collect());
        let start = Instant::now();
        let out = match alg {
            "alg1" => {
                runner::run_alg1_scaled_batch(&spec, SchedulerKind::Fifo, 0, backend, budget, batch)
            }
            "alg2" => {
                runner::run_alg2_scaled_batch(&spec, SchedulerKind::Fifo, 0, backend, budget, batch)
            }
            _ => runner::run_alg3_scaled_batch(
                &spec,
                IdScheme::Improved,
                SchedulerKind::Fifo,
                0,
                backend,
                budget,
                batch,
            ),
        };
        let ms = start.elapsed().as_millis();
        (out, ms)
    });
    for (chunk, items) in results.chunks(2).zip(cells.chunks(2)) {
        // Chunks pair the Vec and Counter runs of one (n, alg) cell; their
        // step and pulse counts must be byte-identical.
        let counts: Vec<(u64, u64)> = chunk
            .iter()
            .map(|(out, _)| (out.report.steps, out.report.total_messages))
            .collect();
        let backends_agree = counts[0] == counts[1];
        for ((out, ms), &(n, alg, backend)) in chunk.iter().zip(items) {
            let r = &out.report;
            let exact = r.reached_quiescence()
                && Some(r.total_messages) == r.predicted_messages
                && backends_agree;
            all_ok &= exact;
            t.row(row_of(
                alg.into(),
                n,
                backend,
                r.steps,
                r.total_messages,
                exact,
                out.peak_queue_bytes,
                *ms,
            ));
        }
    }

    // -- Workload 3: the memory claim in isolation ----------------------------
    // One node on a self-loop fires 10⁶ consecutive-seq pulses into a
    // single channel at start, then drains them.
    #[derive(Clone, Debug)]
    struct Burst;
    impl Protocol<Pulse> for Burst {
        type Output = ();
        fn on_start(&mut self, ctx: &mut Context<'_, Pulse>) {
            for _ in 0..1_000_000 {
                ctx.send(Port::One, Pulse);
            }
        }
        fn on_message(&mut self, _p: Port, _m: Pulse, _ctx: &mut Context<'_, Pulse>) {}
        fn output(&self) -> Option<()> {
            None
        }
    }
    let spec1 = RingSpec::oriented(vec![1]);
    let mut peaks = Vec::new();
    for backend in QueueBackend::ALL {
        let mut sim: Simulation<Pulse, Burst> = Simulation::with_backend(
            spec1.wiring(),
            vec![Burst],
            SchedulerKind::Fifo.build(0),
            backend,
        );
        sim.set_batch(batch);
        let start = Instant::now();
        let run = sim.run(Budget::steps(2_000_000));
        let ms = start.elapsed().as_millis();
        let exact = run.outcome == Outcome::Quiescent && run.steps == 1_000_000;
        all_ok &= exact;
        peaks.push(sim.peak_queue_bytes());
        t.row(row_of(
            "burst 1e6".into(),
            1,
            backend,
            run.steps,
            run.total_sent,
            exact,
            sim.peak_queue_bytes(),
            ms,
        ));
    }
    // peaks[0] is the Vec store, peaks[1] the counter store.
    let burst_ok = peaks[0] >= 1_000_000 * 8 && peaks[1] <= 64;
    all_ok &= burst_ok;

    t.set_verdict(if all_ok {
        "counts identical under both stores at every scale; the counter store holds a \
         million queued pulses in one 16-byte run"
    } else {
        "MISMATCH: backend-dependent counts or unexpected queue memory"
    });
    t
}

/// E18 — incremental scheduler indexes (default scale).
#[must_use]
pub fn e18_sched_index() -> Table {
    e18_sched_index_jobs(1, false)
}

/// E18 — incremental scheduler indexes: O(log C) adversary picks.
///
/// Two workloads:
///
/// 1. **pick latency** — the n = 2000 Algorithm 2 election (4000 channels)
///    under every deterministic adversary, run twice per scheduler: once
///    with the incrementally maintained index answering picks, once forced
///    onto the retained O(ready) scan path. Each run is capped at the same
///    2 M-delivery budget (Theorem 1 puts the full election at
///    n(2n+1) ≈ 16 M pulses, so every cell exhausts it at exactly the same
///    configuration) and bracketed by the [`co_net::prof`] collector, so
///    the rows report the measured per-pick mean and the pick phase's
///    share of hot-path time. Exactness demands identical step counts
///    *and* identical configuration fingerprints between the two modes —
///    the indexes change the clock, never the schedule — and, for every
///    scheduler that keeps an index, an indexed mean no worse than the
///    scan mean. Runs sequentially: the profiler is process-global.
/// 2. **matrix n = 5000** — the full 8-scheduler matrix on the n = 5000
///    Algorithm 2 election (indexed, counter backend, the same 2 M cap),
///    fanned across `jobs` workers: the wall-time row that used to be
///    scheduler-bound.
///
/// `batch` runs the election cells through the run-batched macro-stepping
/// path; elections carry unit runs, so counts and fingerprints are
/// byte-identical either way (see `tests/batch_equivalence.rs`).
#[must_use]
pub fn e18_sched_index_jobs(jobs: usize, batch: bool) -> Table {
    use co_core::Alg2Node;
    use co_net::{prof, Pulse, QueueBackend};
    use std::time::Instant;

    let mut t = Table::new(
        "E18 — incremental scheduler indexes: O(log C) adversary picks",
        "indexed picks are bit-identical to scans and ≥10× faster; pick no longer dominates",
        vec![
            "workload",
            "scheduler",
            "n",
            "pick path",
            "steps",
            "pick mean ns",
            "pick %",
            "exact",
            "ms",
        ],
    );
    let mut all_ok = true;
    const CAP: u64 = 2_000_000;

    // -- Workload 1: per-scheduler pick latency, indexed vs scan --------------
    let was_profiling = prof::enabled();
    let n = 2000usize;
    let spec = RingSpec::oriented((1..=n as u64).collect());
    for kind in SchedulerKind::ALL {
        // (steps, fingerprint, pick mean ns, pick share %, wall ms) per mode.
        let mut modes = Vec::new();
        for indexed in [true, false] {
            let nodes = (0..n)
                .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
                .collect();
            let mut sim: Simulation<Pulse, Alg2Node> =
                Simulation::new(spec.wiring(), nodes, kind.build(0));
            sim.set_indexed_picks(indexed);
            sim.set_batch(batch);
            prof::reset();
            prof::set_enabled(true);
            let start = Instant::now();
            let run = sim.run(Budget::steps(CAP));
            let ms = start.elapsed().as_millis();
            prof::set_enabled(false);
            let report = prof::report();
            let pick = report.phase(prof::Phase::Pick).clone();
            let hot_ns: u64 = prof::Phase::ALL
                .iter()
                .map(|&p| report.phase(p).total_ns)
                .sum();
            let share = pick.total_ns as f64 / hot_ns.max(1) as f64 * 100.0;
            modes.push((run.steps, sim.fingerprint(), pick.mean_ns(), share, ms));
        }
        let (indexed, scan) = (&modes[0], &modes[1]);
        // The index may change the clock, never the schedule. Random keeps
        // no index (both modes are the same scan), so its means only differ
        // by timing noise and are not compared.
        let exact = indexed.0 == CAP
            && scan.0 == CAP
            && indexed.1 == scan.1
            && (kind == SchedulerKind::Random || indexed.2 <= scan.2);
        all_ok &= exact;
        for (label, m) in [("indexed", indexed), ("scan", scan)] {
            t.row(vec![
                "pick latency".into(),
                kind.to_string(),
                n.to_string(),
                label.into(),
                m.0.to_string(),
                m.2.to_string(),
                format!("{:.1}", m.3),
                exact.to_string(),
                m.4.to_string(),
            ]);
        }
    }
    prof::reset();
    prof::set_enabled(was_profiling);

    // -- Workload 2: the full scheduler matrix at n = 5000 --------------------
    let spec5k = RingSpec::oriented((1..=5000u64).collect());
    let kinds: Vec<SchedulerKind> = SchedulerKind::ALL.to_vec();
    let results = crate::parallel::par_map(&kinds, jobs, |&kind| {
        let start = Instant::now();
        let out = runner::run_alg2_scaled_batch(
            &spec5k,
            kind,
            0,
            QueueBackend::Counter,
            Budget::steps(CAP),
            batch,
        );
        (out.report.steps, start.elapsed().as_millis())
    });
    for (&kind, &(steps, ms)) in kinds.iter().zip(&results) {
        // Theorem 1 puts the full election at 5000 × 10001 ≈ 50 M pulses
        // under *any* schedule, so every cell must exhaust the 2 M cap.
        let exact = steps == CAP;
        all_ok &= exact;
        t.row(vec![
            "matrix".into(),
            kind.to_string(),
            "5000".into(),
            "indexed".into(),
            steps.to_string(),
            "-".into(),
            "-".into(),
            exact.to_string(),
            ms.to_string(),
        ]);
    }

    t.set_verdict(if all_ok {
        "indexed and scan runs reach identical configurations at identical step counts; \
         every indexed adversary picks no slower than its scan twin"
    } else {
        "MISMATCH: indexed/scan divergence or an index slower than its scan"
    });
    t
}

/// E19 — virtual time (default scale).
#[must_use]
pub fn e19_virtual_time() -> Table {
    e19_virtual_time_jobs(1)
}

/// E19 — virtual time: the clock layer costs nothing it does not deliver.
///
/// Three workloads:
///
/// 1. **clock overhead** — the n = 1000 Algorithm 2 election under Fifo,
///    once on the untimed fast path and once per timed latency model
///    (`fixed:1`, `uniform:1..4`). Theorem 1 makes the message complexity
///    schedule-independent and Algorithm 2's final configuration unique, so
///    every mode must report identical step counts *and* identical
///    configuration fingerprints — latency moves deliveries in virtual
///    time, never changes how many happen or where the ring ends up. The
///    wall-clock columns show what the timestamp bookkeeping costs.
/// 2. **earliest-arrival adversary** — the `latency` scheduler (pick the
///    earliest-timestamped head, [`co_net::sched::LatencyScheduler`]) on a
///    seeded `uniform:1..8` plan, fanned across a latency-seed grid with
///    `jobs` workers. Each cell runs twice; exactness demands the reruns
///    agree byte-for-byte (steps, fingerprint, final virtual time): all
///    sampling flows through per-channel RNGs keyed by the plan seed.
/// 3. **timer heap** — 64 async nodes ([`co_net::runtime`]) each awaiting
///    32 consecutive one-tick sleeps: 2048 arm/fire pairs through the
///    engine's timer heap, every one reached by a quiescence-driven clock
///    jump. Exactness pins the fire count and the final virtual time; the
///    ops/ms column is the heap's throughput.
#[must_use]
pub fn e19_virtual_time_jobs(jobs: usize) -> Table {
    use co_core::Alg2Node;
    use co_net::runtime::AsyncRing;
    use co_net::{LatencyModel, LatencyPlan, Pulse};
    use std::time::Instant;

    let mut t = Table::new(
        "E19 — virtual time: seeded latency, earliest-arrival picks, timer heap",
        "latency timestamps reorder deliveries without changing complexity; timers are deterministic",
        vec![
            "workload", "mode", "n", "steps", "now", "timers", "exact", "ms",
        ],
    );
    let mut all_ok = true;

    // -- Workload 1: clock on vs clock off ------------------------------------
    let n = 1000usize;
    let spec = RingSpec::oriented((1..=n as u64).collect());
    let modes: [(&str, LatencyModel); 3] = [
        ("untimed", LatencyModel::Zero),
        ("fixed:1", LatencyModel::Fixed(1)),
        ("uniform:1..4", LatencyModel::Uniform { min: 1, max: 4 }),
    ];
    let mut reference: Option<(u64, u64)> = None; // (steps, fingerprint)
    for (label, model) in modes {
        let nodes = (0..n)
            .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
            .collect();
        let mut sim: Simulation<Pulse, Alg2Node> =
            Simulation::new(spec.wiring(), nodes, SchedulerKind::Fifo.build(0));
        sim.set_latency(LatencyPlan::new(model, 19));
        let start = Instant::now();
        let run = sim.run(Budget::default());
        let ms = start.elapsed().as_millis();
        let cell = (run.steps, sim.fingerprint());
        // Theorem 1: same pulse count under any timing; unique final
        // configuration: same fingerprint. The untimed run is the referee.
        let exact =
            run.outcome == Outcome::QuiescentTerminated && reference.is_none_or(|r| r == cell);
        reference.get_or_insert(cell);
        all_ok &= exact;
        t.row(vec![
            "clock overhead".into(),
            label.into(),
            n.to_string(),
            run.steps.to_string(),
            sim.now().to_string(),
            "0".into(),
            exact.to_string(),
            ms.to_string(),
        ]);
    }

    // -- Workload 2: the earliest-arrival adversary over a seed grid ----------
    let seeds: Vec<u64> = (0..8).collect();
    let spec2 = RingSpec::oriented((1..=200u64).collect());
    let results = crate::parallel::par_map(&seeds, jobs, |&seed| {
        let run_once = || {
            let nodes = (0..spec2.len())
                .map(|i| Alg2Node::new(spec2.id(i), spec2.cw_port(i)))
                .collect();
            let mut sim: Simulation<Pulse, Alg2Node> =
                Simulation::new(spec2.wiring(), nodes, SchedulerKind::Latency.build(seed));
            sim.set_latency(LatencyPlan::new(
                LatencyModel::Uniform { min: 1, max: 8 },
                seed,
            ));
            let run = sim.run(Budget::default());
            (run.outcome, run.steps, sim.fingerprint(), sim.now())
        };
        (run_once(), run_once())
    });
    for (&seed, (a, b)) in seeds.iter().zip(&results) {
        let exact = a == b && a.0 == Outcome::QuiescentTerminated;
        all_ok &= exact;
        t.row(vec![
            "earliest-arrival".into(),
            format!("uniform:1..8 seed {seed}"),
            spec2.len().to_string(),
            a.1.to_string(),
            a.3.to_string(),
            "0".into(),
            exact.to_string(),
            "-".into(),
        ]);
    }

    // -- Workload 3: timer-heap throughput through the async facade -----------
    let (sleepers, rounds) = (64usize, 32u64);
    let sleep_spec = RingSpec::oriented((1..=sleepers as u64).collect());
    let mut ring: AsyncRing<Pulse, ()> =
        AsyncRing::new(sleep_spec.wiring(), SchedulerKind::Fifo.build(0), |_, h| {
            Box::pin(async move {
                for _ in 0..rounds {
                    h.sleep(1).await;
                }
            })
        });
    let start = Instant::now();
    let run = ring.run(Budget::default());
    let ms = start.elapsed().as_millis();
    let fires = ring.stats().timer_fires;
    let exact = run.outcome == Outcome::QuiescentTerminated
        && fires == sleepers as u64 * rounds
        && ring.now() == rounds;
    all_ok &= exact;
    t.row(vec![
        "timer heap".into(),
        format!("{sleepers} sleepers x {rounds}"),
        sleepers.to_string(),
        run.steps.to_string(),
        ring.now().to_string(),
        fires.to_string(),
        exact.to_string(),
        ms.to_string(),
    ]);

    t.set_verdict(if all_ok {
        "clock-on runs match the untimed election exactly; seeded latency and \
         timers replay byte-identically"
    } else {
        "MISMATCH: virtual time changed an outcome that must be timing-independent"
    });
    t
}

/// E20 — run-batched macro-stepping: deliver pulse runs, not pulses.
///
/// Three workloads, each comparing `set_batch(false)` against
/// `set_batch(true)` on the counter backend under Fifo:
///
/// 1. **election equivalence** — budget-capped Algorithm 2 elections at
///    n = 1000 and n = 100,000 (200,000 channels). Exactness demands
///    identical pulse counts *and* identical configuration fingerprints
///    across modes. The honest finding: elections only ever carry runs of
///    length 1 (every delivery sends exactly one pulse, and run fusion
///    needs consecutive global send-sequence numbers on one channel), so
///    `transitions == pulses` in both modes — batching neither helps nor
///    hurts an election; its win is bursts.
/// 2. **burst 10⁶, both modes** — an Algorithm 1 ring seeded with a
///    10⁶-pulse injected run ([`Simulation::inject_run`]). Algorithm 1's
///    closed-form run handler relays the whole run per macro-step, so
///    batch-on must reproduce batch-off byte-for-byte while using >100×
///    fewer transitions.
/// 3. **burst 10⁹, batch-on** — the macro-stepping headline: a 10⁹-pulse
///    injected run delivered to the budget in a handful of O(1) fused
///    transitions. Per-pulse delivery of 10⁹ pulses is ~minutes of compute
///    (extrapolate from the 10⁶ batch-off row); the fused path is
///    milliseconds.
#[must_use]
pub fn e20_run_batching() -> Table {
    use co_core::{Alg1Node, Alg2Node};
    use co_net::{Pulse, QueueBackend};
    use std::time::Instant;

    let mut t = Table::new(
        "E20 — run-batched macro-stepping: deliver pulse runs, not pulses",
        "batch-on is byte-identical to per-pulse everywhere; injected bursts collapse by the run length",
        vec![
            "workload",
            "mode",
            "n",
            "pulses",
            "transitions",
            "fused x",
            "exact",
            "ms",
            "Mpulse/s",
        ],
    );
    let mut all_ok = true;
    let row_of = |workload: &str,
                  mode: &str,
                  n: usize,
                  pulses: u64,
                  transitions: u64,
                  exact: bool,
                  ms: u128| {
        let rate = pulses as f64 / 1e6 / (ms.max(1) as f64 / 1e3);
        vec![
            workload.into(),
            mode.into(),
            n.to_string(),
            pulses.to_string(),
            transitions.to_string(),
            format!("{:.1}", pulses as f64 / transitions.max(1) as f64),
            exact.to_string(),
            ms.to_string(),
            format!("{rate:.1}"),
        ]
    };

    // -- Workload 1: election equivalence, n = 1000 and n = 100,000 -----------
    // Budget-capped: a full n = 100,000 election is n(2·ID_max + 1) ≈ 2×10¹⁰
    // pulses under ANY delivery mode (batching fuses transitions, never
    // pulses), so the row pins the first 2 M pulses of it instead.
    const ELECT_CAP: u64 = 2_000_000;
    for n in [1000usize, 100_000] {
        let spec = RingSpec::oriented((1..=n as u64).collect());
        let mut cells = Vec::new();
        for batch in [false, true] {
            let nodes = (0..n)
                .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
                .collect();
            let mut sim: Simulation<Pulse, Alg2Node> = Simulation::with_backend(
                spec.wiring(),
                nodes,
                SchedulerKind::Fifo.build(0),
                QueueBackend::Counter,
            );
            sim.set_batch(batch);
            sim.enable_metrics();
            let start = Instant::now();
            let run = sim.run(Budget::steps(ELECT_CAP));
            let ms = start.elapsed().as_millis();
            let transitions = sim.metrics().expect("metrics enabled").transitions;
            cells.push((run, sim.fingerprint(), transitions, ms));
        }
        let (off, on) = (&cells[0], &cells[1]);
        let exact = off.0 == on.0
            && off.1 == on.1
            && off.0.outcome == Outcome::BudgetExhausted
            && off.0.steps == ELECT_CAP;
        all_ok &= exact;
        for (label, cell) in [("batch-off", off), ("batch-on", on)] {
            t.row(row_of(
                "election",
                label,
                n,
                cell.0.steps,
                cell.2,
                exact,
                cell.3,
            ));
        }
    }

    // -- Workloads 2 + 3: injected bursts on an Algorithm 1 relay ring --------
    // Algorithm 1 implements the closed-form run handler, so a seeded run
    // circulates and every hop is one fused O(1) transition.
    let spec2 = RingSpec::oriented(vec![2, 5]);
    let burst_cell = |batch: bool, burst: u64| {
        let nodes = (0..spec2.len())
            .map(|i| Alg1Node::new(spec2.id(i), spec2.cw_port(i)))
            .collect::<Vec<Alg1Node>>();
        let mut sim: Simulation<Pulse, Alg1Node> = Simulation::with_backend(
            spec2.wiring(),
            nodes,
            SchedulerKind::Fifo.build(0),
            QueueBackend::Counter,
        );
        sim.set_batch(batch);
        sim.enable_metrics();
        sim.start();
        let channel = sim.ready_channels()[0];
        sim.inject_run(channel, Pulse, burst);
        let start = Instant::now();
        let run = sim.run(Budget::steps(burst));
        let ms = start.elapsed().as_millis();
        let transitions = sim.metrics().expect("metrics enabled").transitions;
        (run, sim.fingerprint(), transitions, ms)
    };

    const SMALL_BURST: u64 = 1_000_000;
    let off = burst_cell(false, SMALL_BURST);
    let on = burst_cell(true, SMALL_BURST);
    let small_ok =
        off.0 == on.0 && off.1 == on.1 && off.0.steps == SMALL_BURST && on.2 * 100 < off.2;
    all_ok &= small_ok;
    t.row(row_of(
        "burst 1e6",
        "batch-off",
        2,
        off.0.steps,
        off.2,
        small_ok,
        off.3,
    ));
    t.row(row_of(
        "burst 1e6",
        "batch-on",
        2,
        on.0.steps,
        on.2,
        small_ok,
        on.3,
    ));

    const BIG_BURST: u64 = 1_000_000_000;
    let big = burst_cell(true, BIG_BURST);
    let big_ok = big.0.outcome == Outcome::BudgetExhausted
        && big.0.steps == BIG_BURST
        && big.2 * 1000 <= BIG_BURST;
    all_ok &= big_ok;
    t.row(row_of(
        "burst 1e9",
        "batch-on",
        2,
        big.0.steps,
        big.2,
        big_ok,
        big.3,
    ));

    t.set_verdict(if all_ok {
        "batch-on reproduces per-pulse byte-for-byte; elections carry unit runs (no fusion, \
         no overhead), while a 10⁹-pulse injected run collapses into a handful of O(1) \
         fused transitions"
    } else {
        "MISMATCH: batch-on diverged from per-pulse, or a burst failed to fuse"
    });
    t
}

/// E21 — fleet mode: 10⁴ concurrent ring elections per cell.
#[must_use]
pub fn e21_fleet() -> Table {
    e21_fleet_jobs(0)
}

/// E21 with an explicit worker count (`0` = one per core).
///
/// Runs the struct-of-arrays fleet harness (`co_net::fleet`) over a grid of
/// protocol × fault-rate cells, each a fleet of 10,000 independent oriented
/// rings with sizes drawn uniformly from 3..=9. Per cell the experiment
/// checks three things:
///
/// 1. **Determinism across thread counts** — the parallel aggregate report
///    must equal the single-threaded reference byte-for-byte (`det`
///    column). Shard boundaries come from the config, never the thread
///    count, so this must hold at any `jobs`.
/// 2. **Universal election on clean fleets** — with `fault_rate = 0` every
///    ring elects exactly one leader (`elections == rings`), per the
///    paper's correctness theorems applied 10⁴ times over mixed sizes.
/// 3. **Fault visibility** — with spurious clockwise pulses injected into
///    1% of rings, the aggregate report separates corrupted rings
///    (budget-exhausted) from clean elections instead of silently
///    miscounting.
///
/// The throughput columns (`ms`, `elect/s`) are wall-clock and therefore
/// *not* part of the determinism claim; they feed the `e21_*` wall-clock
/// gate metrics whose wide tolerances are documented in [`crate::check`].
#[must_use]
pub fn e21_fleet_jobs(jobs: usize) -> Table {
    use crate::registry::protocols;
    use co_core::registry::Capability;
    use co_net::fleet::{FleetConfig, RingSizes};

    const RINGS: u64 = 10_000;

    let mut t = Table::new(
        "E21 — fleet mode: 10⁴ concurrent rings per cell, jobs-invariant aggregates",
        "the fleet harness elects on every clean ring, surfaces injected faults, and its \
         aggregate report is byte-identical at any thread count",
        vec![
            "protocol",
            "rings",
            "sizes",
            "fault",
            "elections",
            "exhausted",
            "pulses",
            "p50",
            "p99",
            "peak B/ring",
            "det",
            "ms",
            "elect/s",
        ],
    );

    let mut all_ok = true;
    for protocol in protocols().supporting(Capability::Fleet) {
        let fleet = protocols().fleet(protocol).expect("capability-filtered");
        for fault_rate in [0.0, 0.01] {
            let mut cfg = FleetConfig::new(RINGS);
            cfg.sizes = RingSizes::Uniform { min: 3, max: 9 };
            cfg.seed = 21;
            cfg.fault_rate = fault_rate;
            let summary = crate::fleet::run_fleet(&cfg, fleet, 1, jobs);
            let report = &summary.report;
            let det = *report == fleet.run_round(&cfg, 0);
            let clean_ok = fault_rate > 0.0 || report.elections == RINGS;
            all_ok &= det && clean_ok;
            t.row(vec![
                protocol.to_string(),
                report.rings.to_string(),
                cfg.sizes.to_string(),
                format!("{fault_rate}"),
                report.elections.to_string(),
                report.budget_exhausted.to_string(),
                report.total_pulses.to_string(),
                report.p50().to_string(),
                report.p99().to_string(),
                report.peak_ring_queue_bytes.to_string(),
                det.to_string(),
                summary.elapsed.as_millis().to_string(),
                format!("{:.0}", summary.elections_per_sec()),
            ]);
        }
    }

    t.set_verdict(if all_ok {
        "every clean ring elects exactly one leader, injected faults show up as \
         budget-exhausted rings, and the aggregate report is byte-identical to the \
         single-threaded reference"
    } else {
        "MISMATCH: a parallel fleet diverged from the sequential reference, or a clean \
         ring failed to elect"
    });
    t
}

/// E22 — out-of-core exploration: exact vs Bloom vs mmap dedup backends,
/// frontier spill, and checkpointed kill-and-resume equality.
///
/// Part 1 runs the two acceptance-criteria workloads (the full n = 4
/// Algorithm 1 ring and the n = 7 Algorithm 2 ring) under all three
/// [`co_net::DedupKind`] backends and reports the heap/file split of the visited
/// index, bytes per configuration, and configs/sec. The mmap backend must be
/// state-space-identical to the exact backend with **zero** heap-resident
/// index bytes — the table moved into a page-cache-backed file. Part 2 cuts
/// a checkpointed mmap run at a third of the state space, resumes it from
/// the checkpoint file, and asserts the resumed totals are byte-identical
/// to the uninterrupted run.
#[must_use]
pub fn e22_out_of_core() -> Table {
    use co_core::{Alg1Node, Alg2Node};
    use co_net::explore::{
        explore_parallel, CheckpointPlan, ExploreCheckpoint, ExploreConfig, ExploreLimits,
    };
    use co_net::DedupKind;
    use std::time::Instant;

    let mut t = Table::new(
        "E22 — out-of-core exploration: mmap dedup, frontier spill, checkpoint/resume",
        "the visited set moves to a file-backed table and interrupted runs resume to identical counts",
        vec![
            "workload", "backend", "configs", "quiescent", "heap B", "file B", "B/config",
            "cfg/s", "complete", "agree",
        ],
    );
    let mut all_ok = true;
    let scratch = std::env::temp_dir();
    let mmap = DedupKind::Mmap { budget: 1 << 20 };

    // -- Part 1: backend grid -------------------------------------------------
    enum Nodes {
        A1(Vec<u64>),
        A2(Vec<u64>),
    }
    let workloads = [
        ("alg1 n=4", Nodes::A1(vec![2, 4, 1, 3])),
        ("alg2 n=7", Nodes::A2(vec![3, 5, 2, 4, 1, 6, 7])),
    ];
    let mut alg2_exact_report = None;
    for (label, nodes) in &workloads {
        let (spec, is_alg1) = match nodes {
            Nodes::A1(ids) => (RingSpec::oriented(ids.clone()), true),
            Nodes::A2(ids) => (RingSpec::oriented(ids.clone()), false),
        };
        let run = |config: &ExploreConfig| {
            let start = Instant::now();
            let report = if is_alg1 {
                let make = || {
                    (0..spec.len())
                        .map(|i| Alg1Node::new(spec.id(i), spec.cw_port(i)))
                        .collect::<Vec<Alg1Node>>()
                };
                explore_parallel(&spec.wiring(), make, |_| Ok(()), |_| Ok(()), config)
            } else {
                let make = || {
                    (0..spec.len())
                        .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
                        .collect::<Vec<Alg2Node>>()
                };
                explore_parallel(&spec.wiring(), make, |_| Ok(()), |_| Ok(()), config)
            };
            (report, start.elapsed().as_secs_f64())
        };
        let mut exact_configs = 0usize;
        for (name, kind) in [
            ("exact", DedupKind::Exact),
            ("bloom", DedupKind::Bloom),
            ("mmap", mmap),
        ] {
            let config = ExploreConfig {
                jobs: 1,
                dedup: kind,
                scratch_dir: Some(scratch.clone()),
                ..ExploreConfig::default()
            };
            let (report, secs) = run(&config);
            let agree = match kind {
                DedupKind::Exact => {
                    exact_configs = report.configs;
                    if !is_alg1 {
                        alg2_exact_report = Some((report.configs, report.quiescent_configs));
                    }
                    report.complete && report.violations.is_empty()
                }
                // Bloom may merge states on a false positive: undercount only.
                DedupKind::Bloom => {
                    report.complete
                        && report.configs <= exact_configs
                        && report.configs * 100 >= exact_configs * 99
                }
                // The mmap table is semantically exact: identical state space,
                // zero heap-resident index bytes.
                DedupKind::Mmap { .. } => {
                    report.complete
                        && report.configs == exact_configs
                        && report.visited_heap_bytes == 0
                        && report.visited_file_bytes > 0
                }
            };
            all_ok &= agree;
            t.row(vec![
                (*label).into(),
                name.into(),
                report.configs.to_string(),
                report.quiescent_configs.to_string(),
                report.visited_heap_bytes.to_string(),
                report.visited_file_bytes.to_string(),
                format!("{:.1}", report.visited_bytes as f64 / report.configs as f64),
                format!("{:.0}", report.configs as f64 / secs.max(1e-9)),
                report.complete.to_string(),
                agree.to_string(),
            ]);
        }
    }

    // -- Part 2: checkpointed kill-and-resume --------------------------------
    // Cut an mmap+spill run of the alg2 n=7 space at a third of its
    // configurations via `max_configs`, then resume from the checkpoint file
    // with the limit lifted; the resumed totals must equal the uninterrupted
    // run's exactly.
    let (full_configs, full_quiescent) = alg2_exact_report.unwrap_or((0, 0));
    let spec = RingSpec::oriented(vec![3, 5, 2, 4, 1, 6, 7]);
    let make = || {
        (0..spec.len())
            .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
            .collect::<Vec<Alg2Node>>()
    };
    let ck_path = scratch.join(format!("co-ring-e22-{}.ck", std::process::id()));
    let plan = CheckpointPlan {
        path: ck_path.clone(),
        every: 2000,
        meta: b"e22".to_vec(),
    };
    let cut_config = ExploreConfig {
        jobs: 2,
        dedup: mmap,
        limits: ExploreLimits {
            max_configs: full_configs / 3,
            ..ExploreLimits::default()
        },
        spill_high_water: 64,
        scratch_dir: Some(scratch.clone()),
        checkpoint: Some(plan.clone()),
        ..ExploreConfig::default()
    };
    let cut = explore_parallel(&spec.wiring(), make, |_| Ok(()), |_| Ok(()), &cut_config);
    let start = Instant::now();
    let resumed = match ExploreCheckpoint::read(&ck_path) {
        Ok(ck) => {
            let resume_config = ExploreConfig {
                jobs: 2,
                dedup: mmap,
                spill_high_water: 64,
                scratch_dir: Some(scratch.clone()),
                checkpoint: Some(plan),
                resume: Some(ck),
                ..ExploreConfig::default()
            };
            Some(explore_parallel(
                &spec.wiring(),
                make,
                |_| Ok(()),
                |_| Ok(()),
                &resume_config,
            ))
        }
        Err(_) => None,
    };
    let secs = start.elapsed().as_secs_f64();
    let _ = std::fs::remove_file(&ck_path);
    let resume_ok = resumed.as_ref().is_some_and(|r| {
        !cut.complete
            && r.complete
            && r.configs == full_configs
            && r.quiescent_configs == full_quiescent
    });
    all_ok &= resume_ok;
    if let Some(r) = resumed {
        t.row(vec![
            "alg2 n=7 cut+resume".into(),
            "mmap".into(),
            r.configs.to_string(),
            r.quiescent_configs.to_string(),
            r.visited_heap_bytes.to_string(),
            r.visited_file_bytes.to_string(),
            format!("{:.1}", r.visited_bytes as f64 / r.configs as f64),
            format!("{:.0}", r.configs as f64 / secs.max(1e-9)),
            r.complete.to_string(),
            resume_ok.to_string(),
        ]);
    }

    t.set_verdict(if all_ok {
        "mmap matches exact bit-for-bit with zero heap-resident index bytes, and the \
         killed run resumes from its checkpoint to the uninterrupted totals"
    } else {
        "UNEXPECTED: a backend diverged from exact, or the resumed run missed the \
         uninterrupted totals"
    });
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_parse_roundtrip() {
        for e in Experiment::ALL {
            assert_eq!(Experiment::parse(&e.to_string()), Some(e));
        }
        assert_eq!(Experiment::parse("e23"), None);
    }

    #[test]
    fn jobs_do_not_change_tables() {
        // The worker pool must be a pure wall-clock optimization: E10 has a
        // fanned grid AND a sequential spec-RNG stream, so it exercises both
        // determinism hazards. Byte-identical at 1 and 8 workers.
        let sequential = run_experiment_with(Experiment::E10, 1);
        let fanned = run_experiment_with(Experiment::E10, 8);
        assert_eq!(sequential.to_string(), fanned.to_string());
        assert_eq!(
            sequential.to_json().to_string_compact(),
            fanned.to_json().to_string_compact()
        );
    }

    #[test]
    fn fast_experiments_report_success() {
        // The heavyweight sweeps run in the tables binary / benches; here we
        // sanity-check the cheapest ones end-to-end.
        let t = e0_defective_sanity();
        assert!(t.verdict.contains("necessary"), "{}", t.verdict);
        let t = e6_solitude();
        assert!(t.verdict.contains("true"), "{}", t.verdict);
    }
}
