//! The full workspace protocol registry.
//!
//! `co_core::registry::core_registry` only knows the paper's algorithms —
//! `co-core` cannot see `co-classic`. This crate depends on both, so it
//! owns the complete assembly: the paper's protocols followed by the
//! content-carrying baselines, in one [`Registry`] every driver layer
//! (CLI, fleet, tables) resolves against.

use co_core::registry::{core_entries, Registry};
use std::sync::OnceLock;

/// The workspace registry: the paper's protocols (`alg1`, `alg2`, `alg3`,
/// `ungated`) followed by the classic baselines (`chang-roberts`,
/// `hirschberg-sinclair`, `peterson`, `franklin`).
#[must_use]
pub fn protocols() -> &'static Registry {
    static CELL: OnceLock<Registry> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut entries = core_entries();
        entries.extend(co_classic::registry::classic_entries());
        Registry::new(entries)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_core::registry::Capability;

    #[test]
    fn full_registry_spans_both_layers() {
        let reg = protocols();
        assert_eq!(
            reg.names(),
            vec![
                "alg1",
                "alg2",
                "alg3",
                "ungated",
                "chang-roberts",
                "hirschberg-sinclair",
                "peterson",
                "franklin",
            ]
        );
        assert_eq!(reg.supporting(Capability::Fleet), vec!["alg1", "alg2"]);
        assert_eq!(
            reg.supporting(Capability::Shrink),
            vec![
                "alg2",
                "ungated",
                "chang-roberts",
                "hirschberg-sinclair",
                "peterson",
                "franklin",
            ]
        );
        assert_eq!(
            reg.supporting(Capability::AsyncTwin),
            vec!["alg1", "chang-roberts"]
        );
    }
}
