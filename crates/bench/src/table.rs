//! Minimal aligned-text tables with JSON export.

use std::fmt;

/// A result table: title, column headers, string rows, and commentary.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment title, e.g. `"E1 — Theorem 1 message complexity"`.
    pub title: String,
    /// What the paper predicts, for the header block.
    pub claim: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// One-line verdict appended under the table.
    pub verdict: String,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: impl Into<String>, claim: impl Into<String>, headers: Vec<&str>) -> Table {
        Table {
            title: title.into(),
            claim: claim.into(),
            headers: headers.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
            verdict: String::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Sets the verdict line.
    pub fn set_verdict(&mut self, verdict: impl Into<String>) {
        self.verdict = verdict.into();
    }

    /// JSON form of the table (same field names as the struct).
    #[must_use]
    pub fn to_json(&self) -> co_json::Value {
        co_json::object([
            ("title", co_json::Value::from(self.title.clone())),
            ("claim", co_json::Value::from(self.claim.clone())),
            ("headers", co_json::array(self.headers.clone())),
            (
                "rows",
                co_json::Value::Array(
                    self.rows
                        .iter()
                        .map(|row| co_json::array(row.clone()))
                        .collect(),
                ),
            ),
            ("verdict", co_json::Value::from(self.verdict.clone())),
        ])
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        writeln!(f, "   claim: {}", self.claim)?;
        let widths = self.widths();
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "   {}", fmt_row(&self.headers))?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "   {}", "-".repeat(total))?;
        for row in &self.rows {
            writeln!(f, "   {}", fmt_row(row))?;
        }
        if !self.verdict.is_empty() {
            writeln!(f, "   => {}", self.verdict)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("T", "c", vec!["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "2000".into()]);
        t.set_verdict("ok");
        let s = t.to_string();
        assert!(s.contains("== T =="));
        assert!(s.contains("long-header"));
        assert!(s.contains("=> ok"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("T", "c", vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
