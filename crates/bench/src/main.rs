//! `tables` — prints the experiment tables regenerating the paper's claims,
//! and hosts the `check` benchmark-regression gate.
//!
//! ```sh
//! cargo run -p co-bench --bin tables --release            # all experiments
//! cargo run -p co-bench --bin tables --release -- --exp e1
//! cargo run -p co-bench --bin tables --release -- --json  # JSON lines
//! cargo run -p co-bench --bin tables --release -- --jobs 8
//! cargo run -p co-bench --bin tables --release -- --exp e19 --profile
//! cargo run -p co-bench --bin tables --release -- check              # gate
//! cargo run -p co-bench --bin tables --release -- check --update    # re-baseline
//! ```
//!
//! `--jobs N` fans each experiment's internal trial grid across up to `N`
//! worker threads (`--jobs 0` uses one worker per core). Every trial is
//! seeded from its grid coordinates, so the output is byte-identical for
//! every jobs value — only the wall clock changes.
//!
//! `--batch on|off` (default off) routes the heavyweight election workloads
//! (E17's matrix, E18's matrix) through run-batched macro-stepping
//! (`Simulation::set_batch`). Batched delivery is observationally
//! equivalent to per-pulse delivery, so tables stay byte-identical in their
//! verdict columns; only wall-clock columns move. E20 always compares both
//! modes regardless of the flag.
//!
//! `--profile` turns on the event core's hot-path collector
//! (`co_net::prof`) and prints a per-phase latency table (enqueue / pick /
//! deliver / observe: sample counts, total ms, mean and tail nanoseconds)
//! after each experiment. Collection is reset between experiments, so each
//! profile covers exactly one table.
//!
//! `check` collects the deterministic gate metrics and compares them against
//! `bench_baseline.json`, exiting nonzero on any regression. `--update`
//! rewrites the baseline instead; `--inject-regression` applies a synthetic
//! +10% to the first metric (proof the gate trips); `--report FILE` writes
//! the human-readable report for CI artifact upload.

use co_bench::{run_experiment_batch, Experiment};
use std::process::ExitCode;

const DEFAULT_BASELINE: &str = "bench_baseline.json";

fn run_check(args: &[String]) -> ExitCode {
    let mut baseline_path = DEFAULT_BASELINE.to_string();
    let mut update = false;
    let mut inject: Option<f64> = None;
    let mut report_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--baseline" => {
                i += 1;
                let Some(p) = args.get(i) else {
                    eprintln!("--baseline requires a path");
                    return ExitCode::FAILURE;
                };
                baseline_path = p.clone();
            }
            "--update" => update = true,
            "--inject-regression" => inject = Some(10.0),
            "--report" => {
                i += 1;
                let Some(p) = args.get(i) else {
                    eprintln!("--report requires a path");
                    return ExitCode::FAILURE;
                };
                report_path = Some(p.clone());
            }
            other => {
                eprintln!("unknown check argument {other}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let metrics = co_bench::collect_metrics(inject);
    if update {
        let doc = co_bench::check::baseline_json(&metrics);
        if let Err(e) = std::fs::write(&baseline_path, doc.to_string_compact() + "\n") {
            eprintln!("cannot write {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "baseline written to {baseline_path} ({} metrics)",
            metrics.len()
        );
        return ExitCode::SUCCESS;
    }

    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {baseline_path}: {e} (run `tables check --update` once)");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match co_json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{baseline_path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = co_bench::compare(&metrics, &baseline);
    let rendered = report.render();
    print!("{rendered}");
    if let Some(path) = report_path {
        if let Err(e) = std::fs::write(&path, &rendered) {
            eprintln!("cannot write report to {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("check") {
        return run_check(&args[1..]);
    }
    let mut selected: Vec<Experiment> = Vec::new();
    let mut json = false;
    let mut jobs = 1usize;
    let mut profile = false;
    let mut batch = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--exp" => {
                i += 1;
                let Some(name) = args.get(i) else {
                    eprintln!("--exp requires an argument (e0..e22)");
                    return ExitCode::FAILURE;
                };
                match Experiment::parse(name) {
                    Some(e) => selected.push(e),
                    None => {
                        eprintln!("unknown experiment {name}; expected e0..e22");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--batch" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("on") => batch = true,
                    Some("off") => batch = false,
                    _ => {
                        eprintln!("--batch requires 'on' or 'off'");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--jobs" => {
                i += 1;
                let parsed = args.get(i).and_then(|s| s.parse::<usize>().ok());
                let Some(n) = parsed else {
                    eprintln!("--jobs requires a number (0 = one worker per core)");
                    return ExitCode::FAILURE;
                };
                jobs = n;
            }
            "--json" => json = true,
            "--profile" => profile = true,
            "--help" | "-h" => {
                println!(
                    "usage: tables [--exp eN]... [--jobs N] [--batch on|off] [--json] [--profile]\n       tables check [--baseline FILE] [--update] [--inject-regression] [--report FILE]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    if selected.is_empty() {
        selected = Experiment::ALL.to_vec();
    }
    co_net::prof::set_enabled(profile);
    for exp in selected {
        co_net::prof::reset();
        let table = run_experiment_batch(exp, jobs, batch);
        if json {
            println!("{}", table.to_json().to_string_compact());
        } else {
            println!("{table}");
        }
        if profile {
            println!("hot-path profile ({exp}):\n{}", co_net::prof::report());
        }
    }
    ExitCode::SUCCESS
}
