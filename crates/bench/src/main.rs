//! `tables` — prints the experiment tables regenerating the paper's claims.
//!
//! ```sh
//! cargo run -p co-bench --bin tables --release            # all experiments
//! cargo run -p co-bench --bin tables --release -- --exp e1
//! cargo run -p co-bench --bin tables --release -- --json  # JSON lines
//! cargo run -p co-bench --bin tables --release -- --jobs 8
//! ```
//!
//! `--jobs N` fans each experiment's internal trial grid across up to `N`
//! worker threads (`--jobs 0` uses one worker per core). Every trial is
//! seeded from its grid coordinates, so the output is byte-identical for
//! every jobs value — only the wall clock changes.

use co_bench::{run_experiment_with, Experiment};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut selected: Vec<Experiment> = Vec::new();
    let mut json = false;
    let mut jobs = 1usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--exp" => {
                i += 1;
                let Some(name) = args.get(i) else {
                    eprintln!("--exp requires an argument (e0..e14)");
                    return ExitCode::FAILURE;
                };
                match Experiment::parse(name) {
                    Some(e) => selected.push(e),
                    None => {
                        eprintln!("unknown experiment {name}; expected e0..e14");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--jobs" => {
                i += 1;
                let parsed = args.get(i).and_then(|s| s.parse::<usize>().ok());
                let Some(n) = parsed else {
                    eprintln!("--jobs requires a number (0 = one worker per core)");
                    return ExitCode::FAILURE;
                };
                jobs = n;
            }
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: tables [--exp eN]... [--jobs N] [--json]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    if selected.is_empty() {
        selected = Experiment::ALL.to_vec();
    }
    for exp in selected {
        let table = run_experiment_with(exp, jobs);
        if json {
            println!("{}", table.to_json().to_string_compact());
        } else {
            println!("{table}");
        }
    }
    ExitCode::SUCCESS
}
