//! `tables` — prints the experiment tables regenerating the paper's claims.
//!
//! ```sh
//! cargo run -p co-bench --bin tables --release            # all experiments
//! cargo run -p co-bench --bin tables --release -- --exp e1
//! cargo run -p co-bench --bin tables --release -- --json  # JSON lines
//! ```

use co_bench::{run_experiment, Experiment};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut selected: Vec<Experiment> = Vec::new();
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--exp" => {
                i += 1;
                let Some(name) = args.get(i) else {
                    eprintln!("--exp requires an argument (e0..e10)");
                    return ExitCode::FAILURE;
                };
                match Experiment::parse(name) {
                    Some(e) => selected.push(e),
                    None => {
                        eprintln!("unknown experiment {name}; expected e0..e10");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: tables [--exp eN]... [--json]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    if selected.is_empty() {
        selected = Experiment::ALL.to_vec();
    }
    for exp in selected {
        let table = run_experiment(exp);
        if json {
            println!(
                "{}",
                serde_json::to_string(&table).expect("tables serialize")
            );
        } else {
            println!("{table}");
        }
    }
    ExitCode::SUCCESS
}
