//! Parallel fleet driver: `co_net::fleet` shards fanned out over
//! [`par_map`], plus the wall-clock throughput layer.
//!
//! The split of responsibilities is deliberate: `co_net::fleet` owns the
//! deterministic per-shard engine, the protocol registry
//! (`co_core::registry`, assembled in [`crate::registry`]) monomorphizes
//! it per fleet-capable protocol, and this module owns *scheduling shards
//! onto threads* and *timing*. Shard boundaries come from
//! [`FleetConfig::shard_rings`] — never from the thread count — and
//! [`par_map`] returns results in input order, so [`run_fleet_round`]
//! merges the same reports in the same order at any `jobs` value: the
//! aggregate [`FleetReport`] is byte-identical across `--jobs` settings
//! and across runs (`tests/fleet_determinism.rs` locks this in).
//!
//! Wall-clock throughput (elections/sec) lives in [`FleetRunSummary`],
//! outside the deterministic report, and is gated in `bench_baseline.json`
//! via the `e21_*` metrics with the wide wall-clock tolerances documented
//! in [`check`](crate::check).

use crate::parallel::par_map;
use co_core::registry::FleetDriver;
use co_net::fleet::{FleetConfig, FleetReport};
use std::time::{Duration, Instant};

/// Runs one fleet round with shards distributed over `jobs` threads
/// (`0` = one per core). Deterministic: the report depends only on `cfg`,
/// the protocol behind `fleet` and `round`. Resolve `fleet` through
/// [`crate::registry::protocols`] (capability-gated with typed errors) —
/// holding a [`FleetDriver`] is itself the proof the protocol is
/// fleet-capable.
#[must_use]
pub fn run_fleet_round(
    cfg: &FleetConfig,
    fleet: FleetDriver,
    round: u64,
    jobs: usize,
) -> FleetReport {
    let shards: Vec<u64> = (0..cfg.shard_count()).collect();
    let parts = par_map(&shards, jobs, |&shard| {
        fleet.run_shard(cfg, round, cfg.shard_range(shard))
    });
    let mut report = FleetReport::new();
    for part in &parts {
        report.merge(part);
    }
    report
}

/// A timed multi-round fleet run: the deterministic aggregate plus the
/// wall-clock throughput derived from it.
#[derive(Clone, Debug)]
pub struct FleetRunSummary {
    /// Merged deterministic report over all rounds.
    pub report: FleetReport,
    /// Rounds executed.
    pub rounds: u64,
    /// Wall-clock time for the whole run.
    pub elapsed: Duration,
}

impl FleetRunSummary {
    /// Successful elections per wall-clock second.
    #[must_use]
    pub fn elections_per_sec(&self) -> f64 {
        self.per_sec(self.report.elections)
    }

    /// Rings completed per wall-clock second.
    #[must_use]
    pub fn rings_per_sec(&self) -> f64 {
        self.per_sec(self.report.rings)
    }

    /// Pulses delivered per wall-clock second.
    #[must_use]
    pub fn pulses_per_sec(&self) -> f64 {
        self.per_sec(self.report.total_pulses)
    }

    fn per_sec(&self, count: u64) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            count as f64 / secs
        } else {
            0.0
        }
    }

    /// One-line throughput summary appended to the deterministic report.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{}throughput: {:.0} elections/sec | {:.0} rings/sec | {:.2} Mpulses/sec \
             ({} rounds in {:.2?})\n",
            self.report.render(),
            self.elections_per_sec(),
            self.rings_per_sec(),
            self.pulses_per_sec() / 1e6,
            self.rounds,
            self.elapsed,
        )
    }
}

/// Runs `rounds` fleet rounds (round indices `0..rounds`), merging the
/// deterministic reports and timing the whole run.
#[must_use]
pub fn run_fleet(
    cfg: &FleetConfig,
    fleet: FleetDriver,
    rounds: u64,
    jobs: usize,
) -> FleetRunSummary {
    let start = Instant::now();
    let mut report = FleetReport::new();
    for round in 0..rounds {
        report.merge(&run_fleet_round(cfg, fleet, round, jobs));
    }
    FleetRunSummary {
        report,
        rounds,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::protocols;
    use co_core::registry::FleetDriver;
    use co_net::fleet::RingSizes;

    fn driver(name: &str) -> FleetDriver {
        protocols().fleet(name).expect("fleet-capable")
    }

    #[test]
    fn jobs_never_change_the_report() {
        let mut cfg = FleetConfig::new(300);
        cfg.sizes = RingSizes::Uniform { min: 3, max: 8 };
        cfg.fault_rate = 0.05;
        cfg.shard_rings = 32;
        let reference = run_fleet_round(&cfg, driver("alg1"), 0, 1);
        for jobs in [2, 4, 8] {
            assert_eq!(
                run_fleet_round(&cfg, driver("alg1"), 0, jobs),
                reference,
                "jobs = {jobs}"
            );
        }
    }

    #[test]
    fn multi_round_summary_accumulates() {
        let mut cfg = FleetConfig::new(40);
        cfg.sizes = RingSizes::Fixed(4);
        let summary = run_fleet(&cfg, driver("alg2"), 3, 2);
        assert_eq!(summary.rounds, 3);
        assert_eq!(summary.report.rings, 120);
        assert_eq!(summary.report.elections, 120);
        assert!(summary.elections_per_sec() > 0.0);
        assert!(summary.render().contains("elections/sec"));
    }
}
