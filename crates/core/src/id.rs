//! Node ID assignments.
//!
//! The paper allows IDs to be *any* set of distinct positive integers — the
//! whole point of Theorems 1 and 4 is that the message complexity is governed
//! by `ID_max`, not by `n`. The generators here produce the assignment
//! families the experiment harness sweeps over.

use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BTreeSet;
use std::fmt;

/// A family of ID assignments for a ring of `n` nodes.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum IdAssignment {
    /// IDs `1..=n` in clockwise position order (best case: `ID_max = n`).
    Contiguous,
    /// A random permutation of `1..=n`.
    Shuffled,
    /// `n` distinct IDs drawn uniformly from `1..=id_max`.
    SparseUniform {
        /// Upper bound of the ID universe; must satisfy `id_max >= n`.
        id_max: u64,
    },
    /// IDs `1..=n-1` plus a single `id_max` at a random position — the
    /// adversarial case where one huge ID dominates the complexity.
    SingleBig {
        /// The dominating ID; must satisfy `id_max >= n`.
        id_max: u64,
    },
    /// IDs `1..=n` in *counterclockwise* position order: the node that
    /// absorbs first sits immediately clockwise of the next absorber,
    /// maximising pulse travel before each absorption.
    Descending,
}

impl IdAssignment {
    /// Generates an assignment for `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, or if the variant carries an `id_max < n` (there
    /// must be enough IDs for `n` distinct nodes).
    #[must_use]
    pub fn generate<R: Rng + ?Sized>(self, n: usize, rng: &mut R) -> Vec<u64> {
        assert!(n > 0, "a ring needs at least one node");
        let n64 = n as u64;
        match self {
            IdAssignment::Contiguous => (1..=n64).collect(),
            IdAssignment::Shuffled => {
                let mut ids: Vec<u64> = (1..=n64).collect();
                ids.shuffle(rng);
                ids
            }
            IdAssignment::SparseUniform { id_max } => {
                assert!(id_max >= n64, "need id_max >= n distinct IDs");
                let mut set = BTreeSet::new();
                while set.len() < n {
                    set.insert(rng.gen_range(1..=id_max));
                }
                let mut ids: Vec<u64> = set.into_iter().collect();
                ids.shuffle(rng);
                ids
            }
            IdAssignment::SingleBig { id_max } => {
                assert!(id_max >= n64, "need id_max >= n");
                let mut ids: Vec<u64> = (1..n64).collect();
                ids.push(id_max);
                ids.shuffle(rng);
                ids
            }
            IdAssignment::Descending => (1..=n64).rev().collect(),
        }
    }
}

impl fmt::Display for IdAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdAssignment::Contiguous => f.write_str("contiguous"),
            IdAssignment::Shuffled => f.write_str("shuffled"),
            IdAssignment::SparseUniform { id_max } => write!(f, "sparse(max={id_max})"),
            IdAssignment::SingleBig { id_max } => write!(f, "single-big(max={id_max})"),
            IdAssignment::Descending => f.write_str("descending"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn assert_valid(ids: &[u64], n: usize) {
        assert_eq!(ids.len(), n);
        assert!(ids.iter().all(|&id| id >= 1));
        let set: BTreeSet<u64> = ids.iter().copied().collect();
        assert_eq!(set.len(), n, "IDs must be distinct: {ids:?}");
    }

    #[test]
    fn contiguous_is_identity() {
        assert_eq!(
            IdAssignment::Contiguous.generate(4, &mut rng()),
            vec![1, 2, 3, 4]
        );
    }

    #[test]
    fn descending_reverses() {
        assert_eq!(
            IdAssignment::Descending.generate(4, &mut rng()),
            vec![4, 3, 2, 1]
        );
    }

    #[test]
    fn shuffled_is_a_permutation() {
        let ids = IdAssignment::Shuffled.generate(16, &mut rng());
        assert_valid(&ids, 16);
        assert_eq!(*ids.iter().max().unwrap(), 16);
    }

    #[test]
    fn sparse_uniform_distinct_and_bounded() {
        let ids = IdAssignment::SparseUniform { id_max: 1000 }.generate(10, &mut rng());
        assert_valid(&ids, 10);
        assert!(ids.iter().all(|&id| id <= 1000));
    }

    #[test]
    fn single_big_has_exactly_one_large_id() {
        let ids = IdAssignment::SingleBig { id_max: 500 }.generate(8, &mut rng());
        assert_valid(&ids, 8);
        assert_eq!(ids.iter().filter(|&&id| id == 500).count(), 1);
        assert_eq!(ids.iter().filter(|&&id| id < 8).count(), 7);
    }

    #[test]
    #[should_panic(expected = "id_max >= n")]
    fn sparse_uniform_requires_room() {
        let _ = IdAssignment::SparseUniform { id_max: 3 }.generate(10, &mut rng());
    }

    #[test]
    fn display_names() {
        assert_eq!(IdAssignment::Contiguous.to_string(), "contiguous");
        assert_eq!(
            IdAssignment::SparseUniform { id_max: 9 }.to_string(),
            "sparse(max=9)"
        );
    }
}
