//! Ablations: remove one design element of Algorithm 2 and watch it break.
//!
//! The paper motivates two load-bearing mechanisms in §3.2:
//!
//! 1. **receive gating** — a node consumes counterclockwise pulses only
//!    once `ρ_cw ≥ ID` (pseudocode line 9 guards `recvCCW`). Without it,
//!    the termination trigger `ρ_cw = ID = ρ_ccw` can fire at a *non*-max
//!    node, electing the wrong leader and destroying quiescent termination.
//! 2. **unique IDs** — "It is the uniqueness of all IDs, crucially
//!    including `ID_max`, that enables this approach": with a duplicated
//!    maximum, two nodes trigger termination.
//!
//! [`UngatedAlg2Node`] removes mechanism 1. The tests (and experiment E11)
//! exhibit concrete schedules under which it misbehaves, demonstrating the
//! gate is necessary, not an implementation nicety.

use crate::election::Role;
use crate::invariants::{CcwInstanceView, CwInstanceView};
use co_net::{Context, Fingerprint, Port, Protocol, Pulse, Snapshot};

/// Algorithm 2 **without** the CCW receive gate — a deliberately broken
/// variant for ablation studies. Do not use for actual elections.
///
/// Differences from [`crate::Alg2Node`]: counterclockwise pulses are
/// processed immediately on arrival, even while `ρ_cw < ID`; consequently a
/// node may also relay CCW pulses before injecting its own initial one,
/// suppressing that injection entirely (the `σ_ccw = 0` check no longer
/// coincides with gate opening).
#[derive(Clone, Debug)]
pub struct UngatedAlg2Node {
    id: u64,
    cw_port: Port,
    rho_cw: u64,
    sigma_cw: u64,
    rho_ccw: u64,
    sigma_ccw: u64,
    role: Role,
    awaiting_echo: bool,
    terminated: bool,
}

impl UngatedAlg2Node {
    /// Creates the ablated node.
    ///
    /// # Panics
    ///
    /// Panics if `id == 0`.
    #[must_use]
    pub fn new(id: u64, cw_port: Port) -> UngatedAlg2Node {
        assert!(id > 0, "IDs must be positive integers");
        UngatedAlg2Node {
            id,
            cw_port,
            rho_cw: 0,
            sigma_cw: 0,
            rho_ccw: 0,
            sigma_ccw: 0,
            role: Role::NonLeader,
            awaiting_echo: false,
            terminated: false,
        }
    }

    /// The node's current role claim.
    #[must_use]
    pub fn role(&self) -> Role {
        self.role
    }

    /// Clockwise pulses received.
    #[must_use]
    pub fn rho_cw(&self) -> u64 {
        self.rho_cw
    }

    /// Counterclockwise pulses received.
    #[must_use]
    pub fn rho_ccw(&self) -> u64 {
        self.rho_ccw
    }

    /// Clockwise pulses sent.
    #[must_use]
    pub fn sigma_cw(&self) -> u64 {
        self.sigma_cw
    }

    /// Counterclockwise pulses sent.
    #[must_use]
    pub fn sigma_ccw(&self) -> u64 {
        self.sigma_ccw
    }

    /// Whether this node has initiated termination and awaits the echo.
    #[must_use]
    pub fn awaiting_echo(&self) -> bool {
        self.awaiting_echo
    }

    fn send_cw(&mut self, ctx: &mut Context<'_, Pulse>) {
        self.sigma_cw += 1;
        ctx.send(self.cw_port, Pulse);
    }

    fn send_ccw(&mut self, ctx: &mut Context<'_, Pulse>) {
        self.sigma_ccw += 1;
        ctx.send(self.cw_port.opposite(), Pulse);
    }

    fn maybe_start_ccw(&mut self, ctx: &mut Context<'_, Pulse>) {
        if self.rho_cw >= self.id && self.sigma_ccw == 0 {
            self.send_ccw(ctx);
        }
    }

    fn maybe_initiate_termination(&mut self, ctx: &mut Context<'_, Pulse>) {
        if !self.awaiting_echo && self.rho_cw == self.id && self.rho_ccw == self.id {
            self.send_ccw(ctx);
            self.awaiting_echo = true;
        }
    }
}

impl Protocol<Pulse> for UngatedAlg2Node {
    type Output = Role;

    fn on_start(&mut self, ctx: &mut Context<'_, Pulse>) {
        self.send_cw(ctx);
    }

    fn on_message(&mut self, port: Port, _msg: Pulse, ctx: &mut Context<'_, Pulse>) {
        if self.terminated {
            return;
        }
        if port == self.cw_port.opposite() {
            self.rho_cw += 1;
            if self.rho_cw == self.id {
                self.role = Role::Leader;
            } else {
                self.role = Role::NonLeader;
                self.send_cw(ctx);
            }
            self.maybe_start_ccw(ctx);
            self.maybe_initiate_termination(ctx);
        } else {
            // ABLATED: no gate — the pulse is consumed immediately.
            self.rho_ccw += 1;
            if self.awaiting_echo {
                self.terminated = true;
                return;
            }
            if self.rho_ccw > self.rho_cw {
                self.send_ccw(ctx);
                self.terminated = true;
                return;
            }
            if self.rho_ccw != self.id {
                self.send_ccw(ctx);
            }
            self.maybe_initiate_termination(ctx);
        }
    }

    fn is_terminated(&self) -> bool {
        self.terminated
    }

    fn output(&self) -> Option<Role> {
        self.terminated.then_some(self.role)
    }
}

impl Snapshot for UngatedAlg2Node {
    type State = UngatedAlg2Node;

    fn extract(&self) -> UngatedAlg2Node {
        self.clone()
    }

    fn restore(&mut self, state: &UngatedAlg2Node) {
        *self = state.clone();
    }

    fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_u64(self.id);
        fp.write_usize(self.cw_port.index());
        fp.write_u64(self.rho_cw);
        fp.write_u64(self.sigma_cw);
        fp.write_u64(self.rho_ccw);
        fp.write_u64(self.sigma_ccw);
        fp.write_bool(self.role == Role::Leader);
        fp.write_bool(self.awaiting_echo);
        fp.write_bool(self.terminated);
        fp.finish()
    }
}

impl CwInstanceView for UngatedAlg2Node {
    fn cw_id(&self) -> u64 {
        self.id
    }
    fn cw_rho(&self) -> u64 {
        self.rho_cw
    }
    fn cw_sigma(&self) -> u64 {
        self.sigma_cw
    }
}

impl CcwInstanceView for UngatedAlg2Node {
    fn ccw_rho(&self) -> u64 {
        self.rho_ccw
    }
    fn ccw_sigma(&self) -> u64 {
        self.sigma_ccw
    }
    fn ccw_deferred(&self) -> u64 {
        // The ablation has no deferral queue — that is the point.
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_net::explore::{explore, ExploreLimits};
    use co_net::{RingSpec, SchedulerKind};

    /// The ablated variant misbehaves on *some* schedule: exhaustively
    /// explore a 2-ring and find a quiescent/terminated configuration with
    /// the wrong leader set, or a node terminating while pulses remain.
    #[test]
    fn ungated_variant_fails_under_some_schedule() {
        let spec = RingSpec::oriented(vec![1, 2]);
        let report = explore(
            &spec.wiring(),
            || {
                vec![
                    UngatedAlg2Node::new(1, spec.cw_port(0)),
                    UngatedAlg2Node::new(2, spec.cw_port(1)),
                ]
            },
            |_| Ok(()),
            |state| {
                // A *correct* Algorithm 2 ends every schedule with node 1
                // (ID 2) as unique leader and both nodes terminated.
                let both_done = state.terminated.iter().all(|&t| t);
                let correct = both_done
                    && state.nodes[0].role == Role::NonLeader
                    && state.nodes[1].role == Role::Leader;
                if correct {
                    Ok(())
                } else {
                    Err(format!(
                        "bad final config: roles ({:?}, {:?}), terminated {:?}",
                        state.nodes[0].role, state.nodes[1].role, state.terminated
                    ))
                }
            },
            ExploreLimits::default(),
        );
        assert!(report.complete, "tiny instance must be fully explored");
        assert!(
            !report.violations.is_empty(),
            "the ungated ablation should fail on some schedule \
             ({} configs explored)",
            report.configs
        );
    }

    /// Control: the *real* Algorithm 2 passes the identical exhaustive
    /// check on the same ring — the failure above is caused by the ablation.
    #[test]
    fn gated_original_passes_the_same_exhaustive_check() {
        use crate::alg2::Alg2Node;
        let spec = RingSpec::oriented(vec![1, 2]);
        let report = explore(
            &spec.wiring(),
            || {
                vec![
                    Alg2Node::new(1, spec.cw_port(0)),
                    Alg2Node::new(2, spec.cw_port(1)),
                ]
            },
            |_| Ok(()),
            |state| {
                let both_done = state.terminated.iter().all(|&t| t);
                if both_done
                    && state.nodes[0].role() == Role::NonLeader
                    && state.nodes[1].role() == Role::Leader
                    && state.sent == 2 * (2 * 2 + 1)
                {
                    Ok(())
                } else {
                    Err(format!(
                        "roles ({:?}, {:?}), terminated {:?}, sent {}",
                        state.nodes[0].role(),
                        state.nodes[1].role(),
                        state.terminated,
                        state.sent
                    ))
                }
            },
            ExploreLimits::default(),
        );
        assert!(report.complete);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    /// Even without exhaustive search, a plain adversary already breaks the
    /// ungated variant on slightly larger rings for some seed.
    #[test]
    fn ungated_variant_fails_under_sampled_adversaries() {
        let spec = RingSpec::oriented(vec![1, 2, 3]);
        let mut failures = 0;
        let mut runs = 0;
        for kind in SchedulerKind::ALL {
            for seed in 0..8u64 {
                let nodes = (0..3)
                    .map(|i| UngatedAlg2Node::new(spec.id(i), spec.cw_port(i)))
                    .collect();
                let mut sim: co_net::Simulation<Pulse, UngatedAlg2Node> =
                    co_net::Simulation::new(spec.wiring(), nodes, kind.build(seed));
                let report = sim.run(co_net::Budget::steps(100_000));
                runs += 1;
                let ok = report.outcome == co_net::Outcome::QuiescentTerminated
                    && sim.node(2).role() == Role::Leader
                    && sim.node(0).role() == Role::NonLeader
                    && sim.node(1).role() == Role::NonLeader
                    && report.total_sent == 3 * (2 * 3 + 1);
                if !ok {
                    failures += 1;
                }
            }
        }
        assert!(
            failures > 0,
            "expected at least one misbehaving run out of {runs}"
        );
    }
}
