//! Algorithm 2 — quiescently *terminating* leader election (paper §3.2,
//! Theorem 1).
//!
//! Two instances of Algorithm 1 run in parallel: one over the clockwise
//! channel (started immediately) and one over the counterclockwise channel
//! (started at node `v` only once `ρ_cw[v] ≥ ID_v`, so the CCW instance
//! always lags behind the CW one). Because of this lag and the uniqueness of
//! IDs, the event `ρ_cw = ID_v = ρ_ccw` occurs **only** at the maximum-ID
//! node, after both instances have quiesced globally. That node — the
//! leader — then emits a single extra counterclockwise *termination pulse*.
//! Every node that sees `ρ_ccw > ρ_cw` for the first time forwards the pulse
//! and terminates; the pulse returns to the leader, which terminates last
//! without forwarding.
//!
//! Message complexity: exactly `n·ID_max` CW pulses + `n·ID_max` CCW
//! pulses + `n` termination pulses = `n(2·ID_max + 1)` (Theorem 1),
//! achieved with quiescent termination — no pulse is in flight toward any
//! terminated node.
//!
//! ## Event-driven translation
//!
//! The paper's pseudocode polls `recvCCW()` only while `ρ_cw ≥ ID_v`
//! (line 9 guards lines 10–13). In an event-driven node this gating becomes
//! an explicit *deferral queue*: CCW pulses delivered while the gate is
//! closed are buffered unprocessed — semantically identical to leaving them
//! in the channel — and drained as soon as the gate opens. The
//! `ρ_cw = ID = ρ_ccw` check (line 14) runs after every processed pulse,
//! which is equivalent to the pseudocode's per-iteration check because the
//! triggering state can only first arise immediately after processing a
//! pulse.
//!
//! ```rust
//! use co_core::{runner, Role};
//! use co_net::{RingSpec, SchedulerKind};
//!
//! let spec = RingSpec::oriented(vec![4, 9, 2]);
//! let report = runner::run_alg2(&spec, SchedulerKind::Lifo, 7);
//! assert!(report.quiescently_terminated());
//! assert_eq!(report.roles[1], Role::Leader);
//! assert_eq!(report.total_messages, 3 * (2 * 9 + 1));
//! ```

use crate::election::Role;
use crate::invariants::{CcwInstanceView, CwInstanceView};
use co_net::{Context, Fingerprint, Port, Protocol, Pulse, Snapshot};
use std::fmt;

/// Phase of an [`Alg2Node`], exposed for monitors and debugging.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Alg2Phase {
    /// Only the CW instance is running (`ρ_cw < ID`).
    CwOnly,
    /// Both instances run (`ρ_cw ≥ ID`; the CCW gate is open).
    BothInstances,
    /// This node initiated the termination pulse and awaits its return
    /// (leader only).
    AwaitingEcho,
    /// Terminated: the node ignores pulses and sends nothing.
    Terminated,
}

/// A node running Algorithm 2 on an oriented ring.
#[derive(Clone, Debug)]
pub struct Alg2Node {
    id: u64,
    cw_port: Port,
    rho_cw: u64,
    sigma_cw: u64,
    rho_ccw: u64,
    sigma_ccw: u64,
    role: Role,
    /// CCW pulses delivered while the gate (`ρ_cw ≥ ID`) was closed.
    deferred_ccw: u64,
    /// Set when this node sent the termination pulse (line 15).
    awaiting_echo: bool,
    terminated: bool,
}

impl Alg2Node {
    /// Creates a node with the given (positive) ID and clockwise port.
    ///
    /// # Panics
    ///
    /// Panics if `id == 0`; the paper requires positive integer IDs.
    #[must_use]
    pub fn new(id: u64, cw_port: Port) -> Alg2Node {
        assert!(id > 0, "IDs must be positive integers");
        Alg2Node {
            id,
            cw_port,
            rho_cw: 0,
            sigma_cw: 0,
            rho_ccw: 0,
            sigma_ccw: 0,
            role: Role::NonLeader,
            deferred_ccw: 0,
            awaiting_echo: false,
            terminated: false,
        }
    }

    /// The node's ID.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Clockwise pulses received (`ρ_cw`).
    #[must_use]
    pub fn rho_cw(&self) -> u64 {
        self.rho_cw
    }

    /// Clockwise pulses sent (`σ_cw`).
    #[must_use]
    pub fn sigma_cw(&self) -> u64 {
        self.sigma_cw
    }

    /// Counterclockwise pulses received and processed (`ρ_ccw`).
    ///
    /// Deferred pulses (delivered while the gate was closed) are *not*
    /// included — they match the paper's pulses still waiting in the
    /// incoming queue.
    #[must_use]
    pub fn rho_ccw(&self) -> u64 {
        self.rho_ccw
    }

    /// Counterclockwise pulses sent (`σ_ccw`).
    #[must_use]
    pub fn sigma_ccw(&self) -> u64 {
        self.sigma_ccw
    }

    /// CCW pulses currently deferred (delivered but not yet processed).
    #[must_use]
    pub fn deferred_ccw(&self) -> u64 {
        self.deferred_ccw
    }

    /// Whether this node has sent the termination pulse and awaits its
    /// return (line 15–17; true only at the leader).
    #[must_use]
    pub fn awaiting_echo(&self) -> bool {
        self.awaiting_echo
    }

    /// The node's current role.
    #[must_use]
    pub fn role(&self) -> Role {
        self.role
    }

    /// The node's phase.
    #[must_use]
    pub fn phase(&self) -> Alg2Phase {
        if self.terminated {
            Alg2Phase::Terminated
        } else if self.awaiting_echo {
            Alg2Phase::AwaitingEcho
        } else if self.rho_cw >= self.id {
            Alg2Phase::BothInstances
        } else {
            Alg2Phase::CwOnly
        }
    }

    fn send_cw(&mut self, ctx: &mut Context<'_, Pulse>) {
        self.sigma_cw += 1;
        ctx.send(self.cw_port, Pulse);
    }

    fn send_ccw(&mut self, ctx: &mut Context<'_, Pulse>) {
        self.sigma_ccw += 1;
        ctx.send(self.cw_port.opposite(), Pulse);
    }

    /// Whether the CCW gate is open (pseudocode line 9: `ρ_cw ≥ ID_v`).
    fn gate_open(&self) -> bool {
        self.rho_cw >= self.id
    }

    /// Pseudocode lines 9–10: on gate opening, inject the initial CCW pulse.
    fn maybe_start_ccw(&mut self, ctx: &mut Context<'_, Pulse>) {
        if self.gate_open() && self.sigma_ccw == 0 {
            self.send_ccw(ctx);
        }
    }

    /// Pseudocode line 14–17: the leader-only termination trigger.
    fn maybe_initiate_termination(&mut self, ctx: &mut Context<'_, Pulse>) {
        if !self.awaiting_echo && self.rho_cw == self.id && self.rho_ccw == self.id {
            self.send_ccw(ctx);
            self.awaiting_echo = true;
        }
    }

    /// Processes one CCW pulse (pseudocode lines 11–13 plus the `until`
    /// check of line 18).
    fn process_ccw(&mut self, ctx: &mut Context<'_, Pulse>) {
        self.rho_ccw += 1;
        if self.awaiting_echo {
            // Line 16–17: the termination pulse returned to the leader; it
            // terminates without forwarding.
            self.terminated = true;
            return;
        }
        if self.rho_ccw > self.rho_cw {
            // Line 18 fires: this is the termination pulse passing through a
            // non-leader. ρ_ccw > ρ_cw implies ρ_ccw > ID (the gate is
            // open), so line 12 forwarded it before the loop exited.
            self.send_ccw(ctx);
            self.terminated = true;
            return;
        }
        if self.rho_ccw != self.id {
            // Line 12–13: relay.
            self.send_ccw(ctx);
        }
        self.maybe_initiate_termination(ctx);
    }

    /// Drains deferred CCW pulses while the gate is open, checking the
    /// termination trigger after each one — equivalent to the pseudocode
    /// consuming one queued CCW pulse per loop iteration.
    fn drain_deferred(&mut self, ctx: &mut Context<'_, Pulse>) {
        while self.deferred_ccw > 0 && self.gate_open() && !self.terminated {
            self.deferred_ccw -= 1;
            self.process_ccw(ctx);
        }
    }
}

impl Protocol<Pulse> for Alg2Node {
    type Output = Role;

    fn on_start(&mut self, ctx: &mut Context<'_, Pulse>) {
        // Line 1: sendCW().
        self.send_cw(ctx);
        // An ID of 1 opens the gate only after receiving a pulse, so nothing
        // else happens at start; but keep the checks uniform.
        self.maybe_start_ccw(ctx);
        self.maybe_initiate_termination(ctx);
    }

    fn on_message(&mut self, port: Port, _msg: Pulse, ctx: &mut Context<'_, Pulse>) {
        if self.terminated {
            return; // Defensive; the simulator already drops these.
        }
        if port == self.cw_port.opposite() {
            // A clockwise pulse (lines 3–8).
            self.rho_cw += 1;
            if self.rho_cw == self.id {
                self.role = Role::Leader;
            } else {
                self.role = Role::NonLeader;
                self.send_cw(ctx);
            }
            // Lines 9–10: the gate may just have opened.
            self.maybe_start_ccw(ctx);
            self.drain_deferred(ctx);
            self.maybe_initiate_termination(ctx);
        } else {
            // A counterclockwise pulse (lines 11–13): processed only while
            // the gate is open, otherwise left pending (deferral queue).
            if self.gate_open() {
                self.process_ccw(ctx);
            } else {
                self.deferred_ccw += 1;
            }
        }
    }

    fn is_terminated(&self) -> bool {
        self.terminated
    }

    fn output(&self) -> Option<Role> {
        // Line 19: output is produced at termination.
        self.terminated.then_some(self.role)
    }
}

impl CwInstanceView for Alg2Node {
    fn cw_id(&self) -> u64 {
        self.id
    }
    fn cw_rho(&self) -> u64 {
        self.rho_cw
    }
    fn cw_sigma(&self) -> u64 {
        self.sigma_cw
    }
}

impl CcwInstanceView for Alg2Node {
    fn ccw_rho(&self) -> u64 {
        self.rho_ccw
    }
    fn ccw_sigma(&self) -> u64 {
        self.sigma_ccw
    }
    fn ccw_deferred(&self) -> u64 {
        self.deferred_ccw
    }
}

impl Snapshot for Alg2Node {
    type State = Alg2Node;

    fn extract(&self) -> Alg2Node {
        self.clone()
    }

    fn restore(&mut self, state: &Alg2Node) {
        *self = state.clone();
    }

    fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_u64(self.id);
        fp.write_usize(self.cw_port.index());
        fp.write_u64(self.rho_cw);
        fp.write_u64(self.sigma_cw);
        fp.write_u64(self.rho_ccw);
        fp.write_u64(self.sigma_ccw);
        fp.write_u64(self.deferred_ccw);
        fp.write_bool(self.role == Role::Leader);
        fp.write_bool(self.awaiting_echo);
        fp.write_bool(self.terminated);
        fp.finish()
    }
}

impl fmt::Display for Alg2Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "alg2(id={}, ρcw={}, σcw={}, ρccw={}, σccw={}, {:?})",
            self.id,
            self.rho_cw,
            self.sigma_cw,
            self.rho_ccw,
            self.sigma_ccw,
            self.phase()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_net::{Budget, Outcome, RingSpec, SchedulerKind, Simulation};

    fn run(spec: &RingSpec, kind: SchedulerKind, seed: u64) -> Simulation<Pulse, Alg2Node> {
        let nodes = (0..spec.len())
            .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
            .collect();
        let mut sim = Simulation::new(spec.wiring(), nodes, kind.build(seed));
        let report = sim.run(Budget::default());
        assert_eq!(
            report.outcome,
            Outcome::QuiescentTerminated,
            "{kind}: expected quiescent termination"
        );
        sim
    }

    fn assert_exact_complexity(spec: &RingSpec, sim: &Simulation<Pulse, Alg2Node>) {
        let n = spec.len() as u64;
        let id_max = spec.id_max();
        assert_eq!(sim.stats().total_sent, n * (2 * id_max + 1), "Theorem 1");
    }

    #[test]
    fn theorem1_on_small_ring() {
        let spec = RingSpec::oriented(vec![2, 5, 1, 4]);
        let sim = run(&spec, SchedulerKind::Fifo, 0);
        assert_eq!(sim.node(1).role(), Role::Leader);
        for i in [0usize, 2, 3] {
            assert_eq!(sim.node(i).role(), Role::NonLeader, "node {i}");
        }
        assert_exact_complexity(&spec, &sim);
    }

    #[test]
    fn all_schedulers_agree() {
        let spec = RingSpec::oriented(vec![6, 3, 9, 1, 7]);
        for kind in SchedulerKind::ALL {
            for seed in [0u64, 1, 2] {
                let sim = run(&spec, kind, seed);
                assert_eq!(sim.node(2).role(), Role::Leader, "{kind} seed {seed}");
                assert_exact_complexity(&spec, &sim);
            }
        }
    }

    #[test]
    fn single_node_ring_terminates() {
        let spec = RingSpec::oriented(vec![5]);
        let sim = run(&spec, SchedulerKind::Fifo, 0);
        assert_eq!(sim.node(0).role(), Role::Leader);
        // 2 * 5 + 1 = 11 pulses on the self-loop.
        assert_eq!(sim.stats().total_sent, 11);
    }

    #[test]
    fn two_node_ring_terminates() {
        let spec = RingSpec::oriented(vec![1, 2]);
        let sim = run(&spec, SchedulerKind::Lifo, 0);
        assert_eq!(sim.node(0).role(), Role::NonLeader);
        assert_eq!(sim.node(1).role(), Role::Leader);
        assert_eq!(sim.stats().total_sent, 2 * (2 * 2 + 1));
    }

    #[test]
    fn counters_converge_to_id_max() {
        let spec = RingSpec::oriented(vec![3, 8, 5]);
        let sim = run(&spec, SchedulerKind::Random, 77);
        for i in 0..3 {
            let node = sim.node(i);
            // CW instance: everyone at ID_max (Lemma 11). CCW instance: the
            // termination pulse adds one receive everywhere and one send at
            // every node (leader's initiation or non-leader's forward).
            assert_eq!(node.rho_cw(), 8, "node {i}");
            assert_eq!(node.sigma_cw(), 8, "node {i}");
            assert_eq!(node.rho_ccw(), 8 + 1, "node {i}");
            assert_eq!(node.sigma_ccw(), 8 + 1, "node {i}");
            assert_eq!(node.deferred_ccw(), 0, "node {i}");
            assert_eq!(node.phase(), Alg2Phase::Terminated);
        }
    }

    #[test]
    fn leader_terminates_last() {
        let spec = RingSpec::oriented(vec![4, 2, 7, 1]);
        let nodes = (0..4)
            .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
            .collect();
        let mut sim: Simulation<Pulse, Alg2Node> =
            Simulation::new(spec.wiring(), nodes, SchedulerKind::Random.build(5));
        let mut order = Vec::new();
        sim.start();
        while sim.step().is_some() {
            for i in 0..4 {
                if sim.is_terminated(i) && !order.contains(&i) {
                    order.push(i);
                }
            }
        }
        assert_eq!(order.len(), 4, "all nodes terminate");
        assert_eq!(*order.last().unwrap(), 2, "the leader (ID 7) is last");
    }

    #[test]
    fn output_only_after_termination() {
        let node = Alg2Node::new(3, Port::One);
        assert_eq!(node.output(), None);
        assert_eq!(node.phase(), Alg2Phase::CwOnly);
    }

    #[test]
    fn sparse_ids_complexity_tracks_id_max_not_n() {
        // Theorem 4's point: complexity grows with ID_max even for fixed n.
        let small = RingSpec::oriented(vec![1, 6]);
        let big = RingSpec::oriented(vec![1, 60]);
        let sim_small = run(&small, SchedulerKind::Fifo, 0);
        let sim_big = run(&big, SchedulerKind::Fifo, 0);
        assert_eq!(sim_small.stats().total_sent, 2 * 13);
        assert_eq!(sim_big.stats().total_sent, 2 * 121);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_id() {
        let _ = Alg2Node::new(0, Port::One);
    }
}
