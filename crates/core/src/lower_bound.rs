//! Lower-bound machinery — Theorem 20 / Theorem 4 and Definition 21
//! (paper §6).
//!
//! The paper proves that any deterministic terminating content-oblivious
//! leader-election algorithm sends at least `n⌊log(k/n)⌋` pulses when `k`
//! IDs are assignable. The proof pivots on *solitude patterns*
//! (Definition 21): run the algorithm on a single-node ring under the
//! canonical scheduler (deliver in send order, CW-first tie-break) and
//! record the sequence of incoming pulse directions as a binary string
//! (`0` = CW, `1` = CCW). Lemma 22 shows distinct IDs must have distinct
//! solitude patterns; Lemma 23 / Corollary 24 then extract `n` IDs whose
//! patterns share a long common prefix, forcing `n⌊log(k/n)⌋` sends.
//!
//! This module provides:
//!
//! * [`solitude_pattern`] — extract the pattern of any protocol;
//! * [`patterns_unique`] — empirical Lemma 22;
//! * [`max_prefix_group`] / [`shared_prefix_len`] — the pigeonhole step of
//!   Lemma 23 / Corollary 24;
//! * [`lower_bound_messages`] — the bound `n⌊log(k/n)⌋` itself.
//!
//! ```rust
//! use co_core::lower_bound::{self, SolitudeExtract};
//!
//! // Algorithm 2's solitude pattern for ID i is 0^i 1^(i+1): i clockwise
//! // pulses, then i CCW pulses plus the termination pulse.
//! let p3 = lower_bound::solitude_pattern_alg2(3).unwrap();
//! assert_eq!(p3.bits(), &[0, 0, 0, 1, 1, 1, 1]);
//!
//! // Theorem 4's bound for k = 1024 assignable IDs on an 8-node ring:
//! assert_eq!(lower_bound::lower_bound_messages(1024, 8), 8 * 7);
//! # let _: Option<SolitudeExtract> = None;
//! ```

use crate::alg1::Alg1Node;
use crate::alg2::Alg2Node;
use crate::alg3::{Alg3Node, IdScheme};
use co_net::sched::SolitudeScheduler;
use co_net::{Budget, Direction, Outcome, Port, Protocol, Pulse, RingSpec, Simulation};
use std::fmt;

/// A solitude pattern (Definition 21): the direction sequence of pulses a
/// single node receives when running alone, encoded `CW ↦ 0`, `CCW ↦ 1`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SolitudePattern {
    bits: Vec<u8>,
}

impl SolitudePattern {
    /// Builds a pattern from received-pulse directions.
    #[must_use]
    pub fn from_directions(directions: &[Direction]) -> SolitudePattern {
        SolitudePattern {
            bits: directions
                .iter()
                .map(|d| match d {
                    Direction::Cw => 0u8,
                    Direction::Ccw => 1,
                })
                .collect(),
        }
    }

    /// The pattern as 0/1 bits.
    #[must_use]
    pub fn bits(&self) -> &[u8] {
        &self.bits
    }

    /// Pattern length (= pulses received in solitude).
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the node received no pulses at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Length of the longest common prefix with `other`.
    #[must_use]
    pub fn common_prefix_len(&self, other: &SolitudePattern) -> usize {
        self.bits
            .iter()
            .zip(&other.bits)
            .take_while(|(a, b)| a == b)
            .count()
    }
}

impl fmt::Display for SolitudePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.bits {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

/// Result of extracting a solitude pattern.
#[derive(Clone, Debug)]
pub struct SolitudeExtract {
    /// The pattern.
    pub pattern: SolitudePattern,
    /// Total pulses the lone node sent.
    pub sent: u64,
    /// Whether the lone run terminated / quiesced (vs. budget exhaustion).
    pub completed: bool,
}

/// Extracts the solitude pattern of an arbitrary protocol.
///
/// Runs `node` on a one-node ring (self-loop) under the canonical scheduler
/// of Definition 21 and records incoming pulse directions until quiescence,
/// termination, or `budget` deliveries.
///
/// Returns `None` if the protocol neither terminated nor quiesced within
/// budget (its pattern would be a strict prefix of the true one).
#[must_use]
pub fn solitude_pattern<P: Protocol<Pulse>>(node: P, budget: Budget) -> Option<SolitudeExtract> {
    // The ring spec needs an ID but the protocol instance already carries
    // its own; any positive placeholder yields the same self-loop wiring.
    let spec = RingSpec::oriented(vec![1]);
    let mut sim = Simulation::new(
        spec.wiring(),
        vec![node],
        Box::new(SolitudeScheduler::new()),
    );
    sim.enable_trace(None);
    let report = sim.run(budget);
    let completed = matches!(
        report.outcome,
        Outcome::QuiescentTerminated | Outcome::TerminatedNonQuiescent | Outcome::Quiescent
    );
    if !completed {
        return None;
    }
    let directions = sim.trace().expect("trace enabled").delivery_directions();
    Some(SolitudeExtract {
        pattern: SolitudePattern::from_directions(&directions),
        sent: report.total_sent,
        completed,
    })
}

/// Solitude pattern of Algorithm 2 for a given ID.
///
/// Returns `None` only if the (internal, generous) budget is exceeded,
/// which cannot happen for IDs below ~10⁷.
#[must_use]
pub fn solitude_pattern_alg2(id: u64) -> Option<SolitudePattern> {
    solitude_pattern(Alg2Node::new(id, Port::One), Budget::default()).map(|e| e.pattern)
}

/// Solitude pattern of Algorithm 1 for a given ID.
#[must_use]
pub fn solitude_pattern_alg1(id: u64) -> Option<SolitudePattern> {
    solitude_pattern(Alg1Node::new(id, Port::One), Budget::default()).map(|e| e.pattern)
}

/// Solitude pattern of Algorithm 3 for a given ID and scheme.
#[must_use]
pub fn solitude_pattern_alg3(id: u64, scheme: IdScheme) -> Option<SolitudePattern> {
    solitude_pattern(Alg3Node::new(id, scheme), Budget::default()).map(|e| e.pattern)
}

/// Empirical Lemma 22: are all patterns pairwise distinct?
#[must_use]
pub fn patterns_unique(patterns: &[SolitudePattern]) -> bool {
    let mut sorted: Vec<&SolitudePattern> = patterns.iter().collect();
    sorted.sort();
    sorted.windows(2).all(|w| w[0] != w[1])
}

/// The pigeonhole step (Lemma 23 / Corollary 24): among `patterns`, finds
/// the largest `s` such that at least `n` patterns share a common prefix of
/// length `≥ s`, returning `(s, indices of one such group)`.
///
/// # Panics
///
/// Panics if `n == 0` or `n > patterns.len()`.
#[must_use]
pub fn max_prefix_group(patterns: &[SolitudePattern], n: usize) -> (usize, Vec<usize>) {
    assert!(n >= 1 && n <= patterns.len(), "need 1 ≤ n ≤ k");
    // Sort lexicographically; any n patterns sharing a prefix of length s
    // occupy a contiguous window of the sorted order, and the window's
    // common prefix is the min of adjacent common prefixes.
    let mut order: Vec<usize> = (0..patterns.len()).collect();
    order.sort_by(|&a, &b| patterns[a].bits().cmp(patterns[b].bits()));
    if n == 1 {
        // A single pattern shares its whole length with itself.
        let best = order
            .iter()
            .max_by_key(|&&i| patterns[i].len())
            .copied()
            .expect("non-empty");
        return (patterns[best].len(), vec![best]);
    }
    let adj: Vec<usize> = order
        .windows(2)
        .map(|w| patterns[w[0]].common_prefix_len(&patterns[w[1]]))
        .collect();
    let mut best_s = 0;
    let mut best_at = 0;
    for start in 0..=adj.len().saturating_sub(n - 1) {
        let s = adj[start..start + n - 1].iter().copied().min().unwrap_or(0);
        if s > best_s {
            best_s = s;
            best_at = start;
        }
    }
    (best_s, order[best_at..best_at + n].to_vec())
}

/// Length of the longest prefix shared by at least `n` of the patterns —
/// the quantity Corollary 24 lower-bounds by `⌊log(k/n)⌋`.
#[must_use]
pub fn shared_prefix_len(patterns: &[SolitudePattern], n: usize) -> usize {
    max_prefix_group(patterns, n).0
}

/// Theorem 20 / Theorem 4: the minimum number of pulses any terminating
/// content-oblivious leader-election algorithm sends on an `n`-node ring
/// when `k ≥ n` IDs are assignable: `n·⌊log₂(k/n)⌋`.
///
/// # Panics
///
/// Panics if `n == 0` or `k < n`.
#[must_use]
pub fn lower_bound_messages(k: u64, n: u64) -> u64 {
    assert!(n >= 1, "ring must be non-empty");
    assert!(k >= n, "need at least n assignable IDs");
    // ⌊log2(k/n)⌋ over the rationals equals ⌊log2(⌊k/n⌋)⌋ since k/n ≥ 1.
    n * u64::from((k / n).ilog2())
}

/// The adversarial construction inside the proof of Theorem 20, made
/// executable for Algorithm 2: from the ID universe `1..=k`, extract the
/// `n` IDs whose solitude patterns share the longest common prefix and
/// assemble them into the ring on which the pigeonhole argument operates.
///
/// Returns the witness ring and the shared prefix length `s`: for the
/// first `s` scheduler steps of the canonical schedule, every node of this
/// ring is indistinguishable from its solitude run, forcing `n·s ≥
/// n⌊log(k/n)⌋` pulses.
///
/// # Panics
///
/// Panics if `n == 0`, `k < n`, or pattern extraction fails (it cannot for
/// feasible `k`).
#[must_use]
pub fn theorem20_witness(k: u64, n: usize) -> (RingSpec, usize) {
    assert!(n >= 1 && k >= n as u64, "need 1 ≤ n ≤ k");
    let patterns: Vec<SolitudePattern> = (1..=k)
        .map(|id| solitude_pattern_alg2(id).expect("Algorithm 2 terminates in solitude"))
        .collect();
    let (s, group) = max_prefix_group(&patterns, n);
    // Pattern index i corresponds to ID i + 1.
    let ids: Vec<u64> = group.into_iter().map(|i| i as u64 + 1).collect();
    (RingSpec::oriented(ids), s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alg2_pattern_is_zeros_then_ones() {
        // ID i alone: i CW pulses, then i CCW pulses, then the termination
        // pulse (CCW) — pattern 0^i 1^(i+1).
        for id in 1..=12u64 {
            let p = solitude_pattern_alg2(id).expect("terminates");
            let expected: Vec<u8> = std::iter::repeat_n(0u8, id as usize)
                .chain(std::iter::repeat_n(1u8, id as usize + 1))
                .collect();
            assert_eq!(p.bits(), &expected[..], "id {id}");
        }
    }

    #[test]
    fn alg1_pattern_is_all_cw() {
        let p = solitude_pattern_alg1(5).expect("quiesces");
        assert_eq!(p.bits(), &[0, 0, 0, 0, 0]);
    }

    #[test]
    fn alg3_pattern_lengths_match_scheme() {
        // On a self-loop with ID 4: improved scheme receives (4+1) + 4 = 9
        // pulses; doubled scheme receives 8 + 7 = 15.
        let improved = solitude_pattern_alg3(4, IdScheme::Improved).unwrap();
        assert_eq!(improved.len(), 9);
        let doubled = solitude_pattern_alg3(4, IdScheme::Doubled).unwrap();
        assert_eq!(doubled.len(), 15);
    }

    #[test]
    fn lemma22_uniqueness_for_alg2() {
        let patterns: Vec<SolitudePattern> = (1..=64)
            .map(|id| solitude_pattern_alg2(id).expect("terminates"))
            .collect();
        assert!(patterns_unique(&patterns));
    }

    #[test]
    fn duplicate_patterns_detected() {
        let a = SolitudePattern::from_directions(&[Direction::Cw, Direction::Ccw]);
        let b = a.clone();
        assert!(!patterns_unique(&[a, b]));
    }

    #[test]
    fn common_prefix_len_basic() {
        let a = SolitudePattern {
            bits: vec![0, 0, 1, 1],
        };
        let b = SolitudePattern {
            bits: vec![0, 0, 1, 0],
        };
        let c = SolitudePattern { bits: vec![1] };
        assert_eq!(a.common_prefix_len(&b), 3);
        assert_eq!(a.common_prefix_len(&c), 0);
        assert_eq!(a.common_prefix_len(&a), 4);
    }

    #[test]
    fn corollary24_holds_for_alg2_patterns() {
        // With k = 32 IDs and n = 4, some 4 patterns must share a prefix of
        // length ≥ ⌊log2(32/4)⌋ = 3.
        let patterns: Vec<SolitudePattern> = (1..=32)
            .map(|id| solitude_pattern_alg2(id).unwrap())
            .collect();
        let (s, group) = max_prefix_group(&patterns, 4);
        assert!(s >= 3, "shared prefix {s} < pigeonhole bound 3");
        assert_eq!(group.len(), 4);
        // Alg2 patterns 0^i 1^(i+1): the top-4 IDs share prefix 0^29.
        assert_eq!(s, 29);
    }

    #[test]
    fn prefix_group_single() {
        let patterns: Vec<SolitudePattern> = (1..=5)
            .map(|id| solitude_pattern_alg2(id).unwrap())
            .collect();
        let (s, group) = max_prefix_group(&patterns, 1);
        assert_eq!(group.len(), 1);
        assert_eq!(s, 2 * 5 + 1, "longest pattern is ID 5's");
    }

    #[test]
    fn bound_formula() {
        assert_eq!(lower_bound_messages(1024, 8), 8 * 7);
        assert_eq!(lower_bound_messages(8, 8), 0);
        assert_eq!(lower_bound_messages(1 << 20, 1), 20);
        // Non-power-of-two: ⌊log2(1000/3)⌋ = ⌊log2 333⌋ = 8.
        assert_eq!(lower_bound_messages(1000, 3), 24);
    }

    #[test]
    fn theorem1_upper_vs_theorem4_lower() {
        // Our algorithm's complexity n(2·ID_max+1) always dominates the
        // lower bound n⌊log(ID_max/n)⌋.
        for n in [1u64, 2, 4, 8] {
            for id_max in [8u64, 64, 1 << 12] {
                if id_max < n {
                    continue;
                }
                let upper = n * (2 * id_max + 1);
                let lower = lower_bound_messages(id_max, n);
                assert!(upper >= lower, "n={n} id_max={id_max}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least n")]
    fn bound_rejects_k_below_n() {
        let _ = lower_bound_messages(3, 5);
    }

    #[test]
    fn theorem20_witness_forces_the_bound() {
        use crate::runner;
        use co_net::SchedulerKind;
        // The witness ring's measured complexity must dominate n·s, which
        // itself dominates the pigeonhole bound n⌊log(k/n)⌋.
        for (k, n) in [(16u64, 2usize), (32, 4), (64, 4)] {
            let (spec, s) = theorem20_witness(k, n);
            assert_eq!(spec.len(), n);
            assert!(spec.ids_unique());
            let pigeonhole = (k / n as u64).ilog2() as usize;
            assert!(s >= pigeonhole, "k={k} n={n}: s={s} < {pigeonhole}");
            let report = runner::run_alg2(&spec, SchedulerKind::Solitude, 0);
            assert!(
                report.total_messages >= (n * s) as u64,
                "k={k} n={n}: measured {} < n·s = {}",
                report.total_messages,
                n * s
            );
        }
    }

    #[test]
    fn witness_picks_largest_ids_for_alg2() {
        // Algorithm 2's patterns are 0^i 1^(i+1): the longest-shared-prefix
        // group of size n is always the n largest IDs.
        let (spec, s) = theorem20_witness(16, 3);
        let mut ids = spec.ids().to_vec();
        ids.sort_unstable();
        assert_eq!(ids, vec![14, 15, 16]);
        assert_eq!(s, 14, "prefix 0^14 shared by IDs 14, 15, 16");
    }

    #[test]
    fn display_renders_bits() {
        let p = SolitudePattern::from_directions(&[Direction::Cw, Direction::Ccw, Direction::Ccw]);
        assert_eq!(p.to_string(), "011");
        assert!(!p.is_empty());
    }
}
