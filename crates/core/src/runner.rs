//! High-level election runners.
//!
//! Convenience wrappers that wire a [`RingSpec`] to the right protocol,
//! drive the simulation to completion, and package the result as an
//! [`ElectionReport`] with the paper's predicted message complexity
//! attached. All the examples, integration tests, and benches go through
//! these entry points.

use crate::alg1::Alg1Node;
use crate::alg2::Alg2Node;
use crate::alg3::{Alg3Node, Alg3Output, IdScheme};
use crate::election::{unique_leader, ElectionReport, Role};
use crate::invariants::{Alg2MonitorObserver, CwMonitorObserver, InvariantViolation};
use co_net::{
    Budget, LatencyPlan, Port, Pulse, QueueBackend, RingSpec, RunReport, SchedulerKind, Simulation,
};

/// Runs Algorithm 1 (stabilizing, oriented) to quiescence.
///
/// The ring may be non-oriented as a wiring, but each node is told its
/// clockwise port — Algorithm 1 is defined for oriented rings.
#[must_use]
pub fn run_alg1(spec: &RingSpec, scheduler: SchedulerKind, seed: u64) -> ElectionReport {
    run_alg1_latency(spec, scheduler, seed, &LatencyPlan::zero())
}

/// [`run_alg1`] under a per-channel latency plan (virtual time).
///
/// A zero plan keeps the engine's untimed fast path and reproduces
/// [`run_alg1`] bit-for-bit; a non-degenerate plan timestamps every
/// delivery, which matters to latency-aware schedulers like
/// [`SchedulerKind::Latency`].
#[must_use]
pub fn run_alg1_latency(
    spec: &RingSpec,
    scheduler: SchedulerKind,
    seed: u64,
    latency: &LatencyPlan,
) -> ElectionReport {
    run_alg1_batch(spec, scheduler, seed, latency, false)
}

/// [`run_alg1_latency`] with run-batched macro-stepping on or off.
///
/// The batched engine is observationally equivalent to per-pulse delivery
/// (`tests/batch_equivalence.rs`), so the report is byte-identical either
/// way; the flag only changes how many engine transitions it takes.
#[must_use]
pub fn run_alg1_batch(
    spec: &RingSpec,
    scheduler: SchedulerKind,
    seed: u64,
    latency: &LatencyPlan,
    batch: bool,
) -> ElectionReport {
    let nodes = (0..spec.len())
        .map(|i| Alg1Node::new(spec.id(i), spec.cw_port(i)))
        .collect();
    let mut sim: Simulation<Pulse, Alg1Node> =
        Simulation::new(spec.wiring(), nodes, scheduler.build(seed));
    sim.set_latency(latency.clone());
    sim.set_batch(batch);
    let run = sim.run(Budget::default());
    let roles: Vec<Role> = (0..spec.len()).map(|i| sim.node(i).role()).collect();
    report_from(spec, &run, roles, Some(spec.len() as u64 * spec.id_max()))
}

/// Runs Algorithm 1 with the Lemma 6–12 monitors checked after every step.
///
/// # Errors
///
/// Returns the first [`InvariantViolation`] observed, if any.
pub fn run_alg1_monitored(
    spec: &RingSpec,
    scheduler: SchedulerKind,
    seed: u64,
) -> Result<ElectionReport, InvariantViolation> {
    let nodes = (0..spec.len())
        .map(|i| Alg1Node::new(spec.id(i), spec.cw_port(i)))
        .collect();
    let mut sim: Simulation<Pulse, Alg1Node> =
        Simulation::new(spec.wiring(), nodes, scheduler.build(seed));
    let mut observer = CwMonitorObserver::new();
    let run = sim.run_observed(Budget::default(), &mut observer);
    observer.finish(sim.nodes())?;
    let roles: Vec<Role> = (0..spec.len()).map(|i| sim.node(i).role()).collect();
    Ok(report_from(
        spec,
        &run,
        roles,
        Some(spec.len() as u64 * spec.id_max()),
    ))
}

/// Runs Algorithm 2 (quiescently terminating, oriented; Theorem 1).
#[must_use]
pub fn run_alg2(spec: &RingSpec, scheduler: SchedulerKind, seed: u64) -> ElectionReport {
    run_alg2_scheduler(spec, scheduler.build(seed))
}

/// [`run_alg2`] under a per-channel latency plan (virtual time).
///
/// A zero plan reproduces [`run_alg2`] bit-for-bit.
#[must_use]
pub fn run_alg2_latency(
    spec: &RingSpec,
    scheduler: SchedulerKind,
    seed: u64,
    latency: &LatencyPlan,
) -> ElectionReport {
    run_alg2_scheduler_latency(spec, scheduler.build(seed), latency)
}

/// [`run_alg2_latency`] with run-batched macro-stepping on or off.
///
/// See [`run_alg1_batch`] for the equivalence contract.
#[must_use]
pub fn run_alg2_batch(
    spec: &RingSpec,
    scheduler: SchedulerKind,
    seed: u64,
    latency: &LatencyPlan,
    batch: bool,
) -> ElectionReport {
    let nodes = alg2_nodes(spec);
    let mut sim: Simulation<Pulse, Alg2Node> =
        Simulation::new(spec.wiring(), nodes, scheduler.build(seed));
    sim.set_latency(latency.clone());
    sim.set_batch(batch);
    let run = sim.run(Budget::default());
    let roles = alg2_roles(&sim, spec.len());
    report_from(spec, &run, roles, Some(predicted_alg2(spec)))
}

/// Runs Algorithm 2 under an arbitrary (possibly custom) scheduler.
#[must_use]
pub fn run_alg2_scheduler(
    spec: &RingSpec,
    scheduler: Box<dyn co_net::Scheduler>,
) -> ElectionReport {
    run_alg2_scheduler_latency(spec, scheduler, &LatencyPlan::zero())
}

/// [`run_alg2_scheduler`] under a per-channel latency plan (virtual time).
///
/// A zero plan reproduces [`run_alg2_scheduler`] bit-for-bit.
#[must_use]
pub fn run_alg2_scheduler_latency(
    spec: &RingSpec,
    scheduler: Box<dyn co_net::Scheduler>,
    latency: &LatencyPlan,
) -> ElectionReport {
    let nodes = alg2_nodes(spec);
    let mut sim: Simulation<Pulse, Alg2Node> = Simulation::new(spec.wiring(), nodes, scheduler);
    sim.set_latency(latency.clone());
    let run = sim.run(Budget::default());
    let roles = alg2_roles(&sim, spec.len());
    report_from(spec, &run, roles, Some(predicted_alg2(spec)))
}

/// Runs Algorithm 2 with all §3 invariant monitors checked every step.
///
/// # Errors
///
/// Returns the first [`InvariantViolation`] observed, if any.
pub fn run_alg2_monitored(
    spec: &RingSpec,
    scheduler: SchedulerKind,
    seed: u64,
) -> Result<ElectionReport, InvariantViolation> {
    let nodes = alg2_nodes(spec);
    let mut sim: Simulation<Pulse, Alg2Node> =
        Simulation::new(spec.wiring(), nodes, scheduler.build(seed));
    let mut observer = Alg2MonitorObserver::new();
    let run = sim.run_observed(Budget::default(), &mut observer);
    observer.finish(sim.nodes())?;
    let roles = alg2_roles(&sim, spec.len());
    Ok(report_from(spec, &run, roles, Some(predicted_alg2(spec))))
}

/// Theorem 1's exact complexity for a ring: `n(2·ID_max + 1)`.
#[must_use]
pub fn predicted_alg2(spec: &RingSpec) -> u64 {
    spec.len() as u64 * (2 * spec.id_max() + 1)
}

fn alg2_nodes(spec: &RingSpec) -> Vec<Alg2Node> {
    (0..spec.len())
        .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
        .collect()
}

fn alg2_roles(sim: &Simulation<Pulse, Alg2Node>, n: usize) -> Vec<Role> {
    (0..n).map(|i| sim.node(i).role()).collect()
}

/// Result of a backend-parameterized run: election report plus queue-memory
/// accounting. Produced by the `*_scaled` runners behind the E17 scaling
/// experiment.
#[derive(Clone, Debug)]
pub struct ScaledReport {
    /// The election outcome.
    pub report: ElectionReport,
    /// Queue storage backend the run used.
    pub backend: QueueBackend,
    /// High-water mark of queue storage bytes over the whole run.
    pub peak_queue_bytes: usize,
}

/// Runs Algorithm 1 under an explicit queue backend and step budget.
///
/// Semantically identical to [`run_alg1`] — the report is byte-for-byte the
/// same under either backend — but additionally returns the queue-memory
/// high-water mark, and accepts a budget large enough for thousand-node
/// rings (the default budget caps at 50 M steps, which `n = 5000` Alg2
/// exceeds).
#[must_use]
pub fn run_alg1_scaled(
    spec: &RingSpec,
    scheduler: SchedulerKind,
    seed: u64,
    backend: QueueBackend,
    budget: Budget,
) -> ScaledReport {
    run_alg1_scaled_batch(spec, scheduler, seed, backend, budget, false)
}

/// [`run_alg1_scaled`] with run-batched macro-stepping on or off.
///
/// See [`run_alg1_batch`] for the equivalence contract.
#[must_use]
pub fn run_alg1_scaled_batch(
    spec: &RingSpec,
    scheduler: SchedulerKind,
    seed: u64,
    backend: QueueBackend,
    budget: Budget,
    batch: bool,
) -> ScaledReport {
    let nodes = (0..spec.len())
        .map(|i| Alg1Node::new(spec.id(i), spec.cw_port(i)))
        .collect();
    let mut sim: Simulation<Pulse, Alg1Node> =
        Simulation::with_backend(spec.wiring(), nodes, scheduler.build(seed), backend);
    sim.set_batch(batch);
    let run = sim.run(budget);
    let roles: Vec<Role> = (0..spec.len()).map(|i| sim.node(i).role()).collect();
    ScaledReport {
        report: report_from(spec, &run, roles, Some(spec.len() as u64 * spec.id_max())),
        backend,
        peak_queue_bytes: sim.peak_queue_bytes(),
    }
}

/// Runs Algorithm 2 under an explicit queue backend and step budget.
///
/// See [`run_alg1_scaled`] for the contract.
#[must_use]
pub fn run_alg2_scaled(
    spec: &RingSpec,
    scheduler: SchedulerKind,
    seed: u64,
    backend: QueueBackend,
    budget: Budget,
) -> ScaledReport {
    run_alg2_scaled_batch(spec, scheduler, seed, backend, budget, false)
}

/// [`run_alg2_scaled`] with run-batched macro-stepping on or off.
///
/// See [`run_alg1_batch`] for the equivalence contract.
#[must_use]
pub fn run_alg2_scaled_batch(
    spec: &RingSpec,
    scheduler: SchedulerKind,
    seed: u64,
    backend: QueueBackend,
    budget: Budget,
    batch: bool,
) -> ScaledReport {
    let nodes = alg2_nodes(spec);
    let mut sim: Simulation<Pulse, Alg2Node> =
        Simulation::with_backend(spec.wiring(), nodes, scheduler.build(seed), backend);
    sim.set_batch(batch);
    let run = sim.run(budget);
    let roles = alg2_roles(&sim, spec.len());
    ScaledReport {
        report: report_from(spec, &run, roles, Some(predicted_alg2(spec))),
        backend,
        peak_queue_bytes: sim.peak_queue_bytes(),
    }
}

/// Runs Algorithm 3 under an explicit queue backend and step budget.
///
/// See [`run_alg1_scaled`] for the contract.
#[must_use]
pub fn run_alg3_scaled(
    spec: &RingSpec,
    scheme: IdScheme,
    scheduler: SchedulerKind,
    seed: u64,
    backend: QueueBackend,
    budget: Budget,
) -> ScaledReport {
    run_alg3_scaled_batch(spec, scheme, scheduler, seed, backend, budget, false)
}

/// [`run_alg3_scaled`] with run-batched macro-stepping on or off.
///
/// See [`run_alg1_batch`] for the equivalence contract.
#[must_use]
pub fn run_alg3_scaled_batch(
    spec: &RingSpec,
    scheme: IdScheme,
    scheduler: SchedulerKind,
    seed: u64,
    backend: QueueBackend,
    budget: Budget,
    batch: bool,
) -> ScaledReport {
    let nodes = (0..spec.len())
        .map(|i| Alg3Node::new(spec.id(i), scheme))
        .collect();
    let mut sim: Simulation<Pulse, Alg3Node> =
        Simulation::with_backend(spec.wiring(), nodes, scheduler.build(seed), backend);
    sim.set_batch(batch);
    let run = sim.run(budget);
    let out = alg3_report_from(spec, scheme, &sim, &run);
    ScaledReport {
        report: out.report,
        backend,
        peak_queue_bytes: sim.peak_queue_bytes(),
    }
}

/// Result of an Algorithm 3 run: election report plus orientation data.
#[derive(Clone, Debug)]
pub struct Alg3Report {
    /// The election outcome.
    pub report: ElectionReport,
    /// Each node's claimed clockwise port (position order); `None` if the
    /// node never reached the output guard.
    pub cw_ports: Vec<Option<Port>>,
    /// Whether the orientation claims form one consistent global walk.
    pub orientation_consistent: bool,
}

/// Runs Algorithm 3 on a (possibly non-oriented) ring to quiescence.
#[must_use]
pub fn run_alg3(
    spec: &RingSpec,
    scheme: IdScheme,
    scheduler: SchedulerKind,
    seed: u64,
) -> Alg3Report {
    let nodes = (0..spec.len())
        .map(|i| Alg3Node::new(spec.id(i), scheme))
        .collect();
    run_alg3_nodes(spec, scheme, nodes, scheduler, seed)
}

/// Runs Algorithm 3 with Proposition 19 ID resampling enabled.
///
/// Returns the report plus each node's final (resampled) ID.
#[must_use]
pub fn run_alg3_resampling(
    spec: &RingSpec,
    scheme: IdScheme,
    scheduler: SchedulerKind,
    seed: u64,
) -> (Alg3Report, Vec<u64>) {
    let nodes = (0..spec.len())
        .map(|i| Alg3Node::with_resampling(spec.id(i), scheme, seed ^ (i as u64) << 32 | i as u64))
        .collect::<Vec<_>>();
    let spec_clone = spec.clone();
    let mut sim: Simulation<Pulse, Alg3Node> =
        Simulation::new(spec.wiring(), nodes, scheduler.build(seed));
    let run = sim.run(Budget::default());
    let final_ids: Vec<u64> = (0..spec.len()).map(|i| sim.node(i).id()).collect();
    let report = alg3_report_from(&spec_clone, scheme, &sim, &run);
    (report, final_ids)
}

fn run_alg3_nodes(
    spec: &RingSpec,
    scheme: IdScheme,
    nodes: Vec<Alg3Node>,
    scheduler: SchedulerKind,
    seed: u64,
) -> Alg3Report {
    let mut sim: Simulation<Pulse, Alg3Node> =
        Simulation::new(spec.wiring(), nodes, scheduler.build(seed));
    let run = sim.run(Budget::default());
    alg3_report_from(spec, scheme, &sim, &run)
}

fn alg3_report_from(
    spec: &RingSpec,
    scheme: IdScheme,
    sim: &Simulation<Pulse, Alg3Node>,
    run: &RunReport,
) -> Alg3Report {
    let outputs: Vec<Option<Alg3Output>> = (0..spec.len()).map(|i| sim.node(i).output()).collect();
    let roles: Vec<Role> = outputs
        .iter()
        .map(|o| o.map_or(Role::NonLeader, |o| o.role))
        .collect();
    let cw_ports: Vec<Option<Port>> = outputs.iter().map(|o| o.map(|o| o.cw_port)).collect();
    let decided = outputs.iter().all(Option::is_some);
    let all_cw = decided && (0..spec.len()).all(|i| cw_ports[i] == Some(spec.cw_port(i)));
    let all_ccw = decided && (0..spec.len()).all(|i| cw_ports[i] == Some(spec.ccw_port(i)));
    let report = report_from(
        spec,
        run,
        roles,
        Some(scheme.predicted_messages(spec.len() as u64, spec.id_max())),
    );
    Alg3Report {
        report,
        cw_ports,
        orientation_consistent: all_cw || all_ccw,
    }
}

fn report_from(
    _spec: &RingSpec,
    run: &RunReport,
    roles: Vec<Role>,
    predicted: Option<u64>,
) -> ElectionReport {
    ElectionReport {
        outcome: run.outcome,
        total_messages: run.total_sent,
        steps: run.steps,
        leader: unique_leader(&roles),
        roles,
        predicted_messages: predicted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::IdAssignment;
    use co_net::Outcome;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn run_alg1_stabilizes_and_predicts() {
        let spec = RingSpec::oriented(vec![2, 6, 3]);
        let report = run_alg1(&spec, SchedulerKind::Fifo, 0);
        assert_eq!(report.outcome, Outcome::Quiescent);
        assert_eq!(report.leader, Some(1));
        assert_eq!(report.total_messages, report.predicted_messages.unwrap());
        report.validate(&spec).expect("valid election");
    }

    #[test]
    fn run_alg2_terminates_and_predicts() {
        let spec = RingSpec::oriented(vec![2, 6, 3]);
        let report = run_alg2(&spec, SchedulerKind::Random, 11);
        assert!(report.quiescently_terminated());
        assert_eq!(report.total_messages, 3 * 13);
        assert_eq!(report.predicted_messages, Some(39));
        report.validate(&spec).expect("valid election");
    }

    #[test]
    fn monitored_runs_pass_over_scheduler_family() {
        let mut rng = StdRng::seed_from_u64(4);
        for n in [1usize, 2, 3, 5, 9] {
            let ids = IdAssignment::Shuffled.generate(n, &mut rng);
            let spec = RingSpec::oriented(ids);
            for kind in SchedulerKind::ALL {
                run_alg1_monitored(&spec, kind, 17).expect("Alg1 invariants");
                let report = run_alg2_monitored(&spec, kind, 17).expect("Alg2 invariants");
                report.validate(&spec).expect("valid election");
            }
        }
    }

    #[test]
    fn run_alg3_reports_orientation() {
        let spec = RingSpec::with_flips(vec![3, 8, 1, 5], vec![true, false, false, true]);
        let out = run_alg3(&spec, IdScheme::Improved, SchedulerKind::Random, 2);
        assert!(out.report.reached_quiescence());
        assert!(out.orientation_consistent);
        assert_eq!(out.report.leader, Some(1));
        assert_eq!(out.report.total_messages, 4 * 17);
    }

    #[test]
    fn custom_scheduler_entry_point() {
        use co_net::sched::BoundedDelayScheduler;
        // Partial synchrony is just another adversary: Theorem 1 unchanged.
        let spec = RingSpec::oriented(vec![4, 7, 2, 5]);
        for bound in [0u64, 1, 5, 50] {
            let report = run_alg2_scheduler(&spec, Box::new(BoundedDelayScheduler::new(bound, 3)));
            assert!(report.quiescently_terminated(), "bound {bound}");
            assert_eq!(report.leader, Some(1), "bound {bound}");
            assert_eq!(report.total_messages, 4 * (2 * 7 + 1), "bound {bound}");
        }
    }

    #[test]
    fn scaled_runners_agree_with_plain_across_backends() {
        let spec = RingSpec::oriented(vec![2, 6, 3, 5]);
        let plain1 = run_alg1(&spec, SchedulerKind::Fifo, 0);
        let plain2 = run_alg2(&spec, SchedulerKind::Fifo, 0);
        let plain3 = run_alg3(&spec, IdScheme::Improved, SchedulerKind::Fifo, 0);
        for backend in QueueBackend::ALL {
            let budget = Budget::default();
            let s1 = run_alg1_scaled(&spec, SchedulerKind::Fifo, 0, backend, budget);
            let s2 = run_alg2_scaled(&spec, SchedulerKind::Fifo, 0, backend, budget);
            let s3 = run_alg3_scaled(
                &spec,
                IdScheme::Improved,
                SchedulerKind::Fifo,
                0,
                backend,
                budget,
            );
            for (scaled, plain) in [(&s1, &plain1), (&s2, &plain2), (&s3, &plain3.report)] {
                assert_eq!(scaled.backend, backend);
                assert_eq!(scaled.report.outcome, plain.outcome, "{backend}");
                assert_eq!(scaled.report.steps, plain.steps, "{backend}");
                assert_eq!(
                    scaled.report.total_messages, plain.total_messages,
                    "{backend}"
                );
                assert_eq!(scaled.report.leader, plain.leader, "{backend}");
                assert!(scaled.peak_queue_bytes > 0, "{backend}: queues were used");
            }
        }
    }

    #[test]
    fn resampling_returns_final_ids() {
        let spec = RingSpec::oriented(vec![2, 2, 7, 2]);
        let (out, ids) = run_alg3_resampling(&spec, IdScheme::Improved, SchedulerKind::Fifo, 3);
        assert!(out.report.reached_quiescence());
        assert_eq!(ids.len(), 4);
        assert_eq!(ids[2], 7, "the max node keeps its ID");
        assert!(ids.iter().all(|&id| id >= 1));
    }
}
