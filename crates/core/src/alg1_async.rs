//! Algorithm 1 as straight-line `async fn` node logic.
//!
//! The async twin of [`Alg1Node`](crate::Alg1Node): the same pseudocode —
//! "send one clockwise pulse, then relay every received pulse except the
//! `ID`-th" — written as sequential control flow over
//! [`co_net::runtime`] instead of an `on_message` state machine. Both
//! representations compile onto identical engine events, so under any
//! scheduler (and under record/replay) they produce byte-identical
//! [`RunReport`](co_net::RunReport)s, [`SimStats`](co_net::SimStats), and
//! network fingerprints — `tests/async_equivalence.rs` pins this.
//!
//! Algorithm 1 is quiescently *stabilizing*, not terminating: the future
//! never returns. It reports the node's current role with
//! [`NodeHandle::publish`] after every state change, mirroring
//! [`Protocol::output`](co_net::Protocol::output) of the state machine.

use crate::election::Role;
use co_net::runtime::{AsyncRing, NodeFuture, NodeHandle};
use co_net::{Port, Pulse, RingSpec, Scheduler};

/// The Algorithm 1 node program as a boxed future.
///
/// `cw_port` is the port leading to the clockwise neighbour, as in
/// [`Alg1Node::new`](crate::Alg1Node::new).
///
/// # Panics
///
/// Panics if `id == 0`; the paper requires positive integer IDs.
#[must_use]
pub fn alg1_future(id: u64, cw_port: Port, h: NodeHandle<Pulse, Role>) -> NodeFuture<Role> {
    assert!(id > 0, "IDs must be positive integers");
    Box::pin(async move {
        // Initially Non-Leader; line 1: sendCW().
        h.publish(Role::NonLeader);
        h.send(cw_port, Pulse);
        let mut rho_cw: u64 = 0;
        loop {
            let (port, Pulse) = h.recv().await;
            debug_assert_eq!(
                port,
                cw_port.opposite(),
                "Algorithm 1 received a pulse from an impossible direction"
            );
            // Lines 3-8: count the pulse; absorb it exactly when ρ_cw = ID.
            rho_cw += 1;
            if rho_cw == id {
                h.publish(Role::Leader);
            } else {
                h.publish(Role::NonLeader);
                h.send(cw_port, Pulse);
            }
        }
    })
}

/// Builds an [`AsyncRing`] running Algorithm 1 on `spec`.
///
/// The drop-in async replacement for the usual
/// `Simulation::new(spec.wiring(), alg1_nodes, scheduler)` construction.
#[must_use]
pub fn alg1_async_ring(spec: &RingSpec, scheduler: Box<dyn Scheduler>) -> AsyncRing<Pulse, Role> {
    let ids: Vec<u64> = (0..spec.len()).map(|i| spec.id(i)).collect();
    let cw_ports: Vec<Port> = (0..spec.len()).map(|i| spec.cw_port(i)).collect();
    AsyncRing::new(spec.wiring(), scheduler, move |i, h| {
        alg1_future(ids[i], cw_ports[i], h)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_net::{Budget, Outcome, SchedulerKind};

    #[test]
    fn async_alg1_stabilizes_to_max_leader() {
        let spec = RingSpec::oriented(vec![2, 5, 1, 4]);
        let mut ring = alg1_async_ring(&spec, SchedulerKind::Fifo.build(0));
        let report = ring.run(Budget::default());
        assert_eq!(report.outcome, Outcome::Quiescent);
        assert_eq!(report.total_sent, 4 * 5); // every node sends ID_max
        let outputs = ring.outputs();
        for (i, out) in outputs.iter().enumerate() {
            let expected = if i == 1 {
                Role::Leader
            } else {
                Role::NonLeader
            };
            assert_eq!(*out, Some(expected), "node {i}");
        }
    }

    #[test]
    fn single_node_ring_absorbs_its_own_pulses() {
        let spec = RingSpec::oriented(vec![4]);
        let mut ring = alg1_async_ring(&spec, SchedulerKind::Fifo.build(0));
        let report = ring.run(Budget::default());
        assert_eq!(report.outcome, Outcome::Quiescent);
        assert_eq!(report.total_sent, 4);
        assert_eq!(ring.outputs(), vec![Some(Role::Leader)]);
    }
}
