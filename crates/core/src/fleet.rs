//! Fleet entry points: the paper's protocols on `co_net::fleet`.
//!
//! [`co_net::fleet`] is protocol-generic; this module monomorphizes it for
//! the two election algorithms a fleet workload exercises — Algorithm 1
//! (stabilizing, reaches [`Outcome::Quiescent`](co_net::Outcome)) and
//! Algorithm 2 (terminating, reaches
//! [`Outcome::QuiescentTerminated`](co_net::Outcome)) — and provides the
//! node factories and leader classifiers the harness needs. Every fleet
//! ring is oriented with IDs a shuffled permutation of `1..=n`
//! ([`RingPlan`]), so `ID_max = n` and the paper's bounds apply per ring:
//! `n·ID_max` pulses for Algorithm 1 (Corollary 13), `n·(2·ID_max + 1)` for
//! Algorithm 2 (Theorem 1).

use co_net::fleet::{self, FleetConfig, FleetReport, FleetRingDetail, RingPlan};
use co_net::Port;
use std::fmt;
use std::ops::Range;
use std::str::FromStr;

use crate::election::Role;
use crate::{Alg1Node, Alg2Node};

/// Which election protocol a fleet runs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FleetProtocol {
    /// Algorithm 1: quiescently stabilizing election (never terminates).
    Alg1,
    /// Algorithm 2: quiescently terminating election.
    Alg2,
}

impl FleetProtocol {
    /// All fleet protocols, in display order.
    pub const ALL: [FleetProtocol; 2] = [FleetProtocol::Alg1, FleetProtocol::Alg2];
}

impl fmt::Display for FleetProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FleetProtocol::Alg1 => "alg1",
            FleetProtocol::Alg2 => "alg2",
        })
    }
}

impl FromStr for FleetProtocol {
    type Err = String;

    fn from_str(s: &str) -> Result<FleetProtocol, String> {
        match s {
            "alg1" => Ok(FleetProtocol::Alg1),
            "alg2" => Ok(FleetProtocol::Alg2),
            other => Err(format!("unknown fleet protocol '{other}' (alg1|alg2)")),
        }
    }
}

fn alg1_node(plan: &RingPlan, pos: usize) -> Alg1Node {
    Alg1Node::new(plan.ids[pos], Port::One)
}

fn alg1_leader(node: &Alg1Node) -> bool {
    node.role() == Role::Leader
}

fn alg2_node(plan: &RingPlan, pos: usize) -> Alg2Node {
    Alg2Node::new(plan.ids[pos], Port::One)
}

fn alg2_leader(node: &Alg2Node) -> bool {
    node.role() == Role::Leader
}

/// Runs one shard of the fleet (ring indices `rings`) under `protocol`.
///
/// Shards are independent: the bench driver fans them out across threads
/// and merges the returned reports in index order — byte-identical output
/// at any thread count.
#[must_use]
pub fn run_fleet_shard(
    cfg: &FleetConfig,
    protocol: FleetProtocol,
    round: u64,
    rings: Range<u64>,
) -> FleetReport {
    match protocol {
        FleetProtocol::Alg1 => fleet::run_shard(cfg, round, rings, &alg1_node, &alg1_leader),
        FleetProtocol::Alg2 => fleet::run_shard(cfg, round, rings, &alg2_node, &alg2_leader),
    }
}

/// Runs one whole fleet round sequentially (single-threaded reference).
#[must_use]
pub fn run_fleet_round(cfg: &FleetConfig, protocol: FleetProtocol, round: u64) -> FleetReport {
    match protocol {
        FleetProtocol::Alg1 => fleet::run_fleet_sequential(cfg, round, &alg1_node, &alg1_leader),
        FleetProtocol::Alg2 => fleet::run_fleet_sequential(cfg, round, &alg2_node, &alg2_leader),
    }
}

/// Runs a single fleet ring with full bookkeeping (report, stats,
/// fingerprint) for equivalence checks against a plain `Simulation` built
/// from the same [`RingPlan`].
#[must_use]
pub fn run_fleet_ring_detailed(
    cfg: &FleetConfig,
    protocol: FleetProtocol,
    round: u64,
    ring: u64,
) -> FleetRingDetail {
    match protocol {
        FleetProtocol::Alg1 => fleet::run_ring_detailed(cfg, round, ring, &alg1_node, &alg1_leader),
        FleetProtocol::Alg2 => fleet::run_ring_detailed(cfg, round, ring, &alg2_node, &alg2_leader),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_net::fleet::RingSizes;

    #[test]
    fn protocol_parses_and_displays() {
        for p in FleetProtocol::ALL {
            assert_eq!(p.to_string().parse::<FleetProtocol>().unwrap(), p);
        }
        assert!("alg9".parse::<FleetProtocol>().is_err());
    }

    #[test]
    fn alg1_fleet_matches_corollary_13() {
        let mut cfg = FleetConfig::new(100);
        cfg.sizes = RingSizes::Fixed(5);
        let report = run_fleet_round(&cfg, FleetProtocol::Alg1, 0);
        assert_eq!(report.rings, 100);
        assert_eq!(report.elections, 100);
        assert_eq!(
            report.quiescent, 100,
            "Algorithm 1 stabilizes, never terminates"
        );
        // IDs are 1..=5, so ID_max = 5 and each ring sends n·ID_max = 25.
        assert_eq!(report.total_sent, 100 * 25);
    }

    #[test]
    fn alg2_fleet_matches_theorem_1() {
        let mut cfg = FleetConfig::new(100);
        cfg.sizes = RingSizes::Fixed(4);
        let report = run_fleet_round(&cfg, FleetProtocol::Alg2, 0);
        assert_eq!(report.elections, 100);
        assert_eq!(
            report.quiescent_terminated, 100,
            "Algorithm 2 terminates quiescently"
        );
        // Theorem 1: exactly n·(2·ID_max + 1) pulses per ring.
        assert_eq!(report.total_sent, 100 * 4 * (2 * 4 + 1));
    }

    #[test]
    fn mixed_sizes_still_elect_everywhere() {
        let mut cfg = FleetConfig::new(200);
        cfg.sizes = RingSizes::Uniform { min: 1, max: 9 };
        cfg.seed = 3;
        for p in FleetProtocol::ALL {
            let report = run_fleet_round(&cfg, p, 0);
            assert_eq!(report.elections, 200, "{p}");
            assert_eq!(report.budget_exhausted, 0, "{p}");
        }
    }
}
