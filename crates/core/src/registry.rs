//! The protocol registry: one dispatch seam from the CLI down to the fleet.
//!
//! Every driver layer in the workspace — `co-ring record/replay/shrink/
//! explore`, the fleet harness, the bench tables — needs to turn a protocol
//! *name* into concrete monomorphized code. Before this module each layer
//! kept its own enum and its own match pyramid, so onboarding a protocol
//! meant editing ~8 files. A [`ProtocolSpec`] collapses that to one: the
//! descriptor owns the canonical name, the node-set constructor, the
//! leader extractor and the capability surface, all pre-monomorphized into
//! plain function pointers, and every dispatch site resolves through a
//! [`Registry`] lookup instead of a match.
//!
//! ## Structure
//!
//! * **Definition traits** — [`RingProtocol`] (how to build a node set on a
//!   [`RingSpec`] and classify leaders), [`MonitoredProtocol`] (an invariant
//!   monitor for the shrink hunt) and [`FleetSpec`] (a `Pulse`-message node
//!   factory for `co_net::fleet`). Implement them on a zero-sized marker
//!   type, never on the node itself.
//! * **Drivers** — generic functions (`record`, `replay`, hunt/violates,
//!   fleet shard) instantiated per definition type and stored as `fn`
//!   pointers, so a [`ProtocolSpec`] is a plain `Copy` value with no trait
//!   objects and no allocation.
//! * **Capabilities** — [`Capability`] flags gate what a protocol can do;
//!   [`Registry::require`] turns a missing capability into a typed
//!   [`RegistryError`] whose message lists the protocols that *do* support
//!   it (computed from the registry, so it can never drift).
//!
//! ## Adding a protocol
//!
//! See `DESIGN.md` §12 for the checklist; the short version: define a
//! marker type, implement [`RingProtocol`] (plus [`MonitoredProtocol`] /
//! [`FleetSpec`] where applicable), and append one
//! [`ProtocolSpec::of`] builder chain to the crate's entry list. No
//! command-layer edit is ever required.
//!
//! This module registers the paper's protocols ([`core_entries`]);
//! `co_classic::registry` adds the content-carrying baselines and
//! `co_bench::protocols` assembles the full workspace registry.

use crate::ablation::UngatedAlg2Node;
use crate::election::Role;
use crate::invariants::Alg2MonitorObserver;
use crate::{Alg1Node, Alg2Node, Alg3Node, IdScheme};
use co_net::explore::{explore_parallel, ExploreConfig, ExploreReport};
use co_net::fleet::{self, FleetConfig, FleetReport, FleetRingDetail, RingPlan};
use co_net::{
    Budget, LatencyPlan, Message, Port, Protocol, Pulse, RingSpec, RunReport, Schedule,
    SchedulerKind, SimObserver, Simulation, Snapshot, StepInfo,
};
use std::fmt;
use std::ops::Range;
use std::sync::OnceLock;

/// How to instantiate a protocol on an oriented [`RingSpec`] and read its
/// election outcome.
///
/// Implemented on a zero-sized *definition* type (e.g. `Alg2Def`), not on
/// the node: the registry monomorphizes the generic drivers per definition
/// and stores them as function pointers.
pub trait RingProtocol: 'static {
    /// The protocol's message type (a [`Pulse`] for the content-oblivious
    /// algorithms, content-carrying for the classic baselines).
    type Msg: Message;

    /// The per-node state machine.
    type Node: Protocol<Self::Msg> + Snapshot;

    /// Builds the node set for `spec`, position by position.
    fn nodes(spec: &RingSpec) -> Vec<Self::Node>;

    /// Positions (ring indices) of every node currently claiming
    /// leadership.
    fn leader_positions(nodes: &[Self::Node]) -> Vec<usize>;
}

/// A [`RingProtocol`] with an invariant monitor the `shrink` hunt can run.
pub trait MonitoredProtocol: RingProtocol {
    /// The observer watching every delivery for an invariant violation.
    type Monitor: SimObserver<Self::Msg, Self::Node>;

    /// A fresh monitor.
    fn monitor() -> Self::Monitor;

    /// Whether the monitor latched a violation.
    fn violated(monitor: &Self::Monitor) -> bool;
}

/// A `Pulse`-message node factory for the fleet harness
/// (`co_net::fleet`), which plans its own rings ([`RingPlan`]) instead of
/// taking a [`RingSpec`].
pub trait FleetSpec: 'static {
    /// The per-node state machine (fleet rings are `Pulse`-only).
    type Node: Protocol<Pulse> + Snapshot;

    /// Builds the node at ring position `pos` of `plan`.
    fn node(plan: &RingPlan, pos: usize) -> Self::Node;

    /// Whether this node currently claims leadership.
    fn is_leader(node: &Self::Node) -> bool;
}

/// Leader positions of a node set whose protocol output is a [`Role`].
#[must_use]
pub fn role_leaders<M, P>(nodes: &[P]) -> Vec<usize>
where
    M: Message,
    P: Protocol<M, Output = Role>,
{
    nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.output() == Some(Role::Leader))
        .map(|(i, _)| i)
        .collect()
}

/// Latches a violation when more than one node outputs [`Role::Leader`].
///
/// The protocol-agnostic counterpart of the Algorithm 2 lemma monitors:
/// *unique leadership* is the one safety property every election protocol
/// shares, so any [`RingProtocol`] whose output is a [`Role`] can join the
/// `shrink` toolkit through this observer — which is exactly how the
/// classic baselines are onboarded.
#[derive(Clone, Debug, Default)]
pub struct UniqueLeaderMonitor {
    violation: Option<String>,
}

impl UniqueLeaderMonitor {
    /// A fresh monitor with no violation.
    #[must_use]
    pub fn new() -> UniqueLeaderMonitor {
        UniqueLeaderMonitor::default()
    }

    /// The first violation observed, if any.
    #[must_use]
    pub fn violation(&self) -> Option<&str> {
        self.violation.as_deref()
    }
}

impl<M, P> SimObserver<M, P> for UniqueLeaderMonitor
where
    M: Message,
    P: Protocol<M, Output = Role>,
{
    fn after_step(&mut self, sim: &Simulation<M, P>, _step: &StepInfo) {
        if self.violation.is_some() {
            return;
        }
        let leaders = sim
            .nodes()
            .iter()
            .filter(|n| n.output() == Some(Role::Leader))
            .count();
        if leaders > 1 {
            self.violation = Some(format!("{leaders} nodes claim leadership simultaneously"));
        }
    }
}

/// Options shared by the `record`/`replay` drivers: scheduler, seed,
/// latency plan and delivery mode.
#[derive(Clone, Debug)]
pub struct DriveOpts {
    /// Delivery adversary (ignored by `replay`, which follows the picks).
    pub scheduler: SchedulerKind,
    /// Scheduler seed.
    pub seed: u64,
    /// Per-channel latency plan (replays must reuse the recording's plan).
    pub latency: LatencyPlan,
    /// Run-batched macro-stepping.
    pub batch: bool,
}

impl DriveOpts {
    /// Zero-latency per-pulse options under `scheduler` / `seed`.
    #[must_use]
    pub fn new(scheduler: SchedulerKind, seed: u64) -> DriveOpts {
        DriveOpts {
            scheduler,
            seed,
            latency: LatencyPlan::default(),
            batch: false,
        }
    }
}

/// Outcome of a recorded run: the report, the replayable picks, the final
/// configuration fingerprint and the elected leader positions.
#[derive(Clone, Debug)]
pub struct Recorded {
    /// The run's outcome and counters.
    pub report: RunReport,
    /// The recorded delivery schedule (feed to `replay`).
    pub picks: Schedule,
    /// FNV-1a fingerprint of the final configuration — equal fingerprints
    /// mean byte-identical node states and channel contents.
    pub fingerprint: u64,
    /// Ring positions claiming leadership at the end of the run.
    pub leaders: Vec<usize>,
}

/// Outcome of a deterministic replay (same fields as [`Recorded`], minus
/// the schedule it was driven by).
#[derive(Clone, Debug)]
pub struct Replayed {
    /// The run's outcome and counters.
    pub report: RunReport,
    /// FNV-1a fingerprint of the final configuration.
    pub fingerprint: u64,
    /// Ring positions claiming leadership at the end of the run.
    pub leaders: Vec<usize>,
}

type RecordFn = fn(&RingSpec, &DriveOpts) -> Recorded;
type ReplayFn = fn(&RingSpec, &DriveOpts, &Schedule) -> Replayed;
type ExploreFn = fn(&RingSpec, &ExploreConfig) -> ExploreReport;
type HuntFn = fn(&RingSpec, SchedulerKind, u64) -> Option<Schedule>;
type ViolatesFn = fn(&RingSpec, &Schedule) -> bool;
type FleetShardFn = fn(&FleetConfig, u64, Range<u64>) -> FleetReport;
type FleetDetailFn = fn(&FleetConfig, u64, u64) -> FleetRingDetail;

fn record_driver<D: RingProtocol>(spec: &RingSpec, opts: &DriveOpts) -> Recorded {
    let mut sim = Simulation::new(
        spec.wiring(),
        D::nodes(spec),
        opts.scheduler.build(opts.seed),
    );
    sim.set_latency(opts.latency.clone());
    sim.set_batch(opts.batch);
    let (report, picks) = sim.run_recorded(Budget::default());
    Recorded {
        report,
        picks,
        fingerprint: sim.fingerprint(),
        leaders: D::leader_positions(sim.nodes()),
    }
}

fn replay_driver<D: RingProtocol>(
    spec: &RingSpec,
    opts: &DriveOpts,
    schedule: &Schedule,
) -> Replayed {
    // The scheduler is irrelevant here — the replay engine overrides it —
    // but the latency plan and delivery mode shape the trace and must match
    // the recording's (the command layer enforces the mode).
    let mut sim = Simulation::new(spec.wiring(), D::nodes(spec), SchedulerKind::Fifo.build(0));
    sim.set_latency(opts.latency.clone());
    sim.set_batch(opts.batch);
    let report = sim.replay(schedule, Budget::default());
    Replayed {
        report,
        fingerprint: sim.fingerprint(),
        leaders: D::leader_positions(sim.nodes()),
    }
}

/// The one seam between the registry and the explorer. The out-of-core
/// machinery (mmap dedup tables, frontier spill, checkpoint/resume) rides
/// entirely inside [`ExploreConfig`], so this signature — and every
/// registered protocol — is untouched by where the visited set lives.
fn explore_driver<D>(spec: &RingSpec, config: &ExploreConfig) -> ExploreReport
where
    D: RingProtocol<Msg = Pulse>,
    D::Node: Clone + Sync,
    <D::Node as Snapshot>::State: Send,
{
    let nodes = D::nodes(spec);
    explore_parallel(
        &spec.wiring(),
        move || nodes.clone(),
        |_| Ok(()),
        |_| Ok(()),
        config,
    )
}

fn hunt_driver<D: MonitoredProtocol>(
    spec: &RingSpec,
    kind: SchedulerKind,
    seed: u64,
) -> Option<Schedule> {
    let mut sim = Simulation::new(spec.wiring(), D::nodes(spec), kind.build(seed));
    let mut monitor = D::monitor();
    sim.enable_schedule_recording();
    sim.run_observed(Budget::default(), &mut monitor);
    D::violated(&monitor).then(|| sim.recorded_schedule().expect("recording enabled"))
}

fn violates_driver<D: MonitoredProtocol>(spec: &RingSpec, schedule: &Schedule) -> bool {
    let mut sim = Simulation::new(spec.wiring(), D::nodes(spec), SchedulerKind::Fifo.build(0));
    let mut monitor = D::monitor();
    sim.replay_observed(schedule, Budget::default(), &mut monitor);
    D::violated(&monitor)
}

fn fleet_shard_driver<D: FleetSpec>(
    cfg: &FleetConfig,
    round: u64,
    rings: Range<u64>,
) -> FleetReport {
    fleet::run_shard(cfg, round, rings, &D::node, &D::is_leader)
}

fn fleet_detail_driver<D: FleetSpec>(cfg: &FleetConfig, round: u64, ring: u64) -> FleetRingDetail {
    fleet::run_ring_detailed(cfg, round, ring, &D::node, &D::is_leader)
}

/// The shrink toolkit of one protocol: a violation hunter and a replay
/// oracle, as resolved by [`Registry::shrink`].
#[derive(Copy, Clone)]
pub struct ShrinkDriver {
    hunt: HuntFn,
    violates: ViolatesFn,
}

impl ShrinkDriver {
    /// Runs the protocol under `kind`/`seed` with its monitor attached and
    /// schedule recording on; returns the recorded schedule if the monitor
    /// latched a violation.
    #[must_use]
    pub fn hunt(&self, spec: &RingSpec, kind: SchedulerKind, seed: u64) -> Option<Schedule> {
        (self.hunt)(spec, kind, seed)
    }

    /// Replays `schedule` with the monitor attached; the ddmin predicate.
    #[must_use]
    pub fn violates(&self, spec: &RingSpec, schedule: &Schedule) -> bool {
        (self.violates)(spec, schedule)
    }
}

impl fmt::Debug for ShrinkDriver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShrinkDriver").finish_non_exhaustive()
    }
}

/// The fleet harness of one protocol, as resolved by [`Registry::fleet`]:
/// shard execution plus the single-ring equivalence probe.
#[derive(Copy, Clone)]
pub struct FleetDriver {
    shard: FleetShardFn,
    detail: FleetDetailFn,
}

impl FleetDriver {
    /// Runs one shard of the fleet (ring indices `rings`). Shards are
    /// independent; merging their reports in index order is byte-identical
    /// at any thread count.
    #[must_use]
    pub fn run_shard(&self, cfg: &FleetConfig, round: u64, rings: Range<u64>) -> FleetReport {
        (self.shard)(cfg, round, rings)
    }

    /// Runs one whole round sequentially (the single-threaded reference).
    #[must_use]
    pub fn run_round(&self, cfg: &FleetConfig, round: u64) -> FleetReport {
        let mut report = FleetReport::new();
        for shard in 0..cfg.shard_count() {
            report.merge(&self.run_shard(cfg, round, cfg.shard_range(shard)));
        }
        report
    }

    /// Runs a single fleet ring with full bookkeeping (report, stats,
    /// fingerprint) for equivalence checks against a plain `Simulation`.
    #[must_use]
    pub fn run_ring_detailed(&self, cfg: &FleetConfig, round: u64, ring: u64) -> FleetRingDetail {
        (self.detail)(cfg, round, ring)
    }
}

impl fmt::Debug for FleetDriver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FleetDriver").finish_non_exhaustive()
    }
}

/// The exhaustive-exploration entry point of one protocol, as resolved by
/// [`Registry::explore`].
#[derive(Copy, Clone)]
pub struct ExploreDriver {
    explore: ExploreFn,
}

impl ExploreDriver {
    /// Explores every delivery order of the protocol on `spec`.
    #[must_use]
    pub fn run(&self, spec: &RingSpec, config: &ExploreConfig) -> ExploreReport {
        (self.explore)(spec, config)
    }
}

impl fmt::Debug for ExploreDriver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExploreDriver").finish_non_exhaustive()
    }
}

/// An optional protocol capability, gateable via [`Registry::require`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Capability {
    /// Certified for run-batched macro-stepping (`--batch on`).
    Batch,
    /// Safe for exhaustive exploration (`Pulse` messages, bounded state).
    Explore,
    /// Has an invariant monitor for the `shrink` hunt.
    Shrink,
    /// Can run under the fleet harness (`Pulse` messages).
    Fleet,
    /// Has an async/await twin over the node facade.
    AsyncTwin,
}

impl Capability {
    /// Every capability, in table-column order.
    pub const ALL: [Capability; 5] = [
        Capability::Batch,
        Capability::Explore,
        Capability::Shrink,
        Capability::Fleet,
        Capability::AsyncTwin,
    ];
}

impl fmt::Display for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Capability::Batch => "batch",
            Capability::Explore => "explore",
            Capability::Shrink => "shrink",
            Capability::Fleet => "fleet",
            Capability::AsyncTwin => "async-twin",
        })
    }
}

/// A typed registry failure: the name is unknown, or the protocol lacks a
/// required capability. Both messages list the valid alternatives,
/// computed from the registry so they can never drift from it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegistryError {
    /// No entry under this name.
    Unknown {
        /// The name that failed to resolve.
        name: String,
        /// Every registered name, in registry order.
        known: Vec<&'static str>,
    },
    /// The entry exists but lacks the required capability.
    Unsupported {
        /// The resolved protocol.
        name: &'static str,
        /// The capability it lacks.
        capability: Capability,
        /// Every protocol that does support it, in registry order.
        supported: Vec<&'static str>,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Unknown { name, known } => {
                write!(f, "unknown protocol '{name}'; one of: {}", known.join(", "))
            }
            RegistryError::Unsupported {
                name,
                capability,
                supported,
            } => write!(
                f,
                "protocol '{name}' does not support {capability}; protocols that do: {}",
                supported.join(", ")
            ),
        }
    }
}

impl std::error::Error for RegistryError {}

/// A registered protocol: canonical name, capability surface and
/// pre-monomorphized drivers.
///
/// Build one with [`ProtocolSpec::of`] and the `with_*` builders; the
/// definition type parameter is repeated per builder because a spec erases
/// it (the drivers are plain `fn` pointers).
#[derive(Copy, Clone, Debug)]
pub struct ProtocolSpec {
    name: &'static str,
    layer: &'static str,
    summary: &'static str,
    batchable: bool,
    async_twin: bool,
    record: RecordFn,
    replay: ReplayFn,
    explore: Option<ExploreDriver>,
    shrink: Option<ShrinkDriver>,
    fleet: Option<FleetDriver>,
}

impl ProtocolSpec {
    /// A baseline spec for definition `D`: record/replay only, no optional
    /// capabilities. `layer` groups the entry in tables (`"core"` for the
    /// paper's algorithms, `"classic"` for the baselines).
    #[must_use]
    pub fn of<D: RingProtocol>(
        name: &'static str,
        layer: &'static str,
        summary: &'static str,
    ) -> ProtocolSpec {
        ProtocolSpec {
            name,
            layer,
            summary,
            batchable: false,
            async_twin: false,
            record: record_driver::<D>,
            replay: replay_driver::<D>,
            explore: None,
            shrink: None,
            fleet: None,
        }
    }

    /// Marks the protocol certified for run-batched macro-stepping.
    #[must_use]
    pub fn batchable(mut self) -> ProtocolSpec {
        self.batchable = true;
        self
    }

    /// Marks the protocol as having an async/await twin.
    #[must_use]
    pub fn with_async_twin(mut self) -> ProtocolSpec {
        self.async_twin = true;
        self
    }

    /// Registers the exhaustive-exploration driver (requires `Pulse`
    /// messages and thread-safe state).
    #[must_use]
    pub fn with_explore<D>(mut self) -> ProtocolSpec
    where
        D: RingProtocol<Msg = Pulse>,
        D::Node: Clone + Sync,
        <D::Node as Snapshot>::State: Send,
    {
        self.explore = Some(ExploreDriver {
            explore: explore_driver::<D>,
        });
        self
    }

    /// Registers the shrink toolkit built from `D`'s invariant monitor.
    #[must_use]
    pub fn with_monitor<D: MonitoredProtocol>(mut self) -> ProtocolSpec {
        self.shrink = Some(ShrinkDriver {
            hunt: hunt_driver::<D>,
            violates: violates_driver::<D>,
        });
        self
    }

    /// Registers the fleet harness built from fleet definition `D`.
    #[must_use]
    pub fn with_fleet<D: FleetSpec>(mut self) -> ProtocolSpec {
        self.fleet = Some(FleetDriver {
            shard: fleet_shard_driver::<D>,
            detail: fleet_detail_driver::<D>,
        });
        self
    }

    /// The canonical name (`--protocol` spelling).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The table grouping (`"core"` or `"classic"`).
    #[must_use]
    pub fn layer(&self) -> &'static str {
        self.layer
    }

    /// One-line description.
    #[must_use]
    pub fn summary(&self) -> &'static str {
        self.summary
    }

    /// Whether the protocol has `cap`.
    #[must_use]
    pub fn supports(&self, cap: Capability) -> bool {
        match cap {
            Capability::Batch => self.batchable,
            Capability::Explore => self.explore.is_some(),
            Capability::Shrink => self.shrink.is_some(),
            Capability::Fleet => self.fleet.is_some(),
            Capability::AsyncTwin => self.async_twin,
        }
    }

    /// Records one run on `spec` under `opts`.
    #[must_use]
    pub fn record(&self, spec: &RingSpec, opts: &DriveOpts) -> Recorded {
        (self.record)(spec, opts)
    }

    /// Deterministically replays `schedule` on `spec`.
    #[must_use]
    pub fn replay(&self, spec: &RingSpec, opts: &DriveOpts, schedule: &Schedule) -> Replayed {
        (self.replay)(spec, opts, schedule)
    }

    /// The exploration driver, if [`Capability::Explore`] is supported.
    #[must_use]
    pub fn explore_driver(&self) -> Option<ExploreDriver> {
        self.explore
    }

    /// The shrink toolkit, if [`Capability::Shrink`] is supported.
    #[must_use]
    pub fn shrink_driver(&self) -> Option<ShrinkDriver> {
        self.shrink
    }

    /// The fleet harness, if [`Capability::Fleet`] is supported.
    #[must_use]
    pub fn fleet_driver(&self) -> Option<FleetDriver> {
        self.fleet
    }
}

/// An ordered, duplicate-free collection of [`ProtocolSpec`]s with typed
/// lookup and capability gating.
#[derive(Debug)]
pub struct Registry {
    entries: Vec<ProtocolSpec>,
}

impl Registry {
    /// Builds a registry from `entries`.
    ///
    /// # Panics
    ///
    /// Panics if two entries share a name — registration is a compile-time
    /// decision, so a collision is a programming error, not an input error.
    #[must_use]
    pub fn new(entries: Vec<ProtocolSpec>) -> Registry {
        for (i, a) in entries.iter().enumerate() {
            for b in &entries[i + 1..] {
                assert!(
                    a.name != b.name,
                    "duplicate protocol registration: '{}'",
                    a.name
                );
            }
        }
        Registry { entries }
    }

    /// Every entry, in registration order.
    #[must_use]
    pub fn entries(&self) -> &[ProtocolSpec] {
        &self.entries
    }

    /// Every registered name, in registration order.
    #[must_use]
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(ProtocolSpec::name).collect()
    }

    /// Names of every protocol supporting `cap`, in registration order.
    #[must_use]
    pub fn supporting(&self, cap: Capability) -> Vec<&'static str> {
        self.entries
            .iter()
            .filter(|s| s.supports(cap))
            .map(ProtocolSpec::name)
            .collect()
    }

    /// Resolves `name` to its spec.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Unknown`] listing every registered name.
    pub fn get(&self, name: &str) -> Result<&ProtocolSpec, RegistryError> {
        self.entries
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| RegistryError::Unknown {
                name: name.to_owned(),
                known: self.names(),
            })
    }

    /// Resolves `name` and checks it supports `cap`.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Unknown`] for an unregistered name;
    /// [`RegistryError::Unsupported`] (listing the protocols that do
    /// support `cap`) otherwise.
    pub fn require(&self, name: &str, cap: Capability) -> Result<&ProtocolSpec, RegistryError> {
        let spec = self.get(name)?;
        if spec.supports(cap) {
            Ok(spec)
        } else {
            Err(RegistryError::Unsupported {
                name: spec.name,
                capability: cap,
                supported: self.supporting(cap),
            })
        }
    }

    /// Resolves `name`'s exploration driver.
    ///
    /// # Errors
    ///
    /// See [`Registry::require`].
    pub fn explore(&self, name: &str) -> Result<ExploreDriver, RegistryError> {
        Ok(self
            .require(name, Capability::Explore)?
            .explore
            .expect("gated"))
    }

    /// Resolves `name`'s shrink toolkit.
    ///
    /// # Errors
    ///
    /// See [`Registry::require`].
    pub fn shrink(&self, name: &str) -> Result<ShrinkDriver, RegistryError> {
        Ok(self
            .require(name, Capability::Shrink)?
            .shrink
            .expect("gated"))
    }

    /// Resolves `name`'s fleet harness.
    ///
    /// # Errors
    ///
    /// See [`Registry::require`].
    pub fn fleet(&self, name: &str) -> Result<FleetDriver, RegistryError> {
        Ok(self.require(name, Capability::Fleet)?.fleet.expect("gated"))
    }

    /// Renders the registry as a fixed-width name × capabilities table
    /// (the `co-ring protocols` output; the README protocol table is
    /// regenerated from it).
    #[must_use]
    pub fn table(&self) -> String {
        let mut out = format!(
            "{:<20} {:<8} {:<6} {:<8} {:<7} {:<6} {:<11} summary\n",
            "protocol", "layer", "batch", "explore", "shrink", "fleet", "async-twin"
        );
        for spec in &self.entries {
            let mark = |cap| if spec.supports(cap) { "yes" } else { "-" };
            out.push_str(&format!(
                "{:<20} {:<8} {:<6} {:<8} {:<7} {:<6} {:<11} {}\n",
                spec.name,
                spec.layer,
                mark(Capability::Batch),
                mark(Capability::Explore),
                mark(Capability::Shrink),
                mark(Capability::Fleet),
                mark(Capability::AsyncTwin),
                spec.summary,
            ));
        }
        out
    }
}

// --- The paper's protocols as registry definitions. ---------------------

/// Algorithm 1 definition (quiescently stabilizing election).
struct Alg1Def;

impl RingProtocol for Alg1Def {
    type Msg = Pulse;
    type Node = Alg1Node;

    fn nodes(spec: &RingSpec) -> Vec<Alg1Node> {
        (0..spec.len())
            .map(|i| Alg1Node::new(spec.id(i), spec.cw_port(i)))
            .collect()
    }

    fn leader_positions(nodes: &[Alg1Node]) -> Vec<usize> {
        role_leaders(nodes)
    }
}

impl FleetSpec for Alg1Def {
    type Node = Alg1Node;

    fn node(plan: &RingPlan, pos: usize) -> Alg1Node {
        // Fleet rings are oriented with Port::One as everyone's CW port.
        Alg1Node::new(plan.ids[pos], Port::One)
    }

    fn is_leader(node: &Alg1Node) -> bool {
        node.role() == Role::Leader
    }
}

/// Algorithm 2 definition (quiescently terminating election).
struct Alg2Def;

impl RingProtocol for Alg2Def {
    type Msg = Pulse;
    type Node = Alg2Node;

    fn nodes(spec: &RingSpec) -> Vec<Alg2Node> {
        (0..spec.len())
            .map(|i| Alg2Node::new(spec.id(i), spec.cw_port(i)))
            .collect()
    }

    fn leader_positions(nodes: &[Alg2Node]) -> Vec<usize> {
        role_leaders(nodes)
    }
}

impl MonitoredProtocol for Alg2Def {
    type Monitor = Alg2MonitorObserver;

    fn monitor() -> Alg2MonitorObserver {
        Alg2MonitorObserver::new()
    }

    fn violated(monitor: &Alg2MonitorObserver) -> bool {
        monitor.violation().is_some()
    }
}

impl FleetSpec for Alg2Def {
    type Node = Alg2Node;

    fn node(plan: &RingPlan, pos: usize) -> Alg2Node {
        Alg2Node::new(plan.ids[pos], Port::One)
    }

    fn is_leader(node: &Alg2Node) -> bool {
        node.role() == Role::Leader
    }
}

/// Algorithm 3 definition (election + orientation, improved ID scheme).
struct Alg3Def;

impl RingProtocol for Alg3Def {
    type Msg = Pulse;
    type Node = Alg3Node;

    fn nodes(spec: &RingSpec) -> Vec<Alg3Node> {
        (0..spec.len())
            .map(|i| Alg3Node::new(spec.id(i), IdScheme::Improved))
            .collect()
    }

    fn leader_positions(nodes: &[Alg3Node]) -> Vec<usize> {
        nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.output().is_some_and(|o| o.role == Role::Leader))
            .map(|(i, _)| i)
            .collect()
    }
}

/// The deliberately broken receive-gate ablation of Algorithm 2.
struct UngatedDef;

impl RingProtocol for UngatedDef {
    type Msg = Pulse;
    type Node = UngatedAlg2Node;

    fn nodes(spec: &RingSpec) -> Vec<UngatedAlg2Node> {
        (0..spec.len())
            .map(|i| UngatedAlg2Node::new(spec.id(i), spec.cw_port(i)))
            .collect()
    }

    fn leader_positions(nodes: &[UngatedAlg2Node]) -> Vec<usize> {
        role_leaders(nodes)
    }
}

impl MonitoredProtocol for UngatedDef {
    type Monitor = Alg2MonitorObserver;

    fn monitor() -> Alg2MonitorObserver {
        Alg2MonitorObserver::new()
    }

    fn violated(monitor: &Alg2MonitorObserver) -> bool {
        monitor.violation().is_some()
    }
}

/// The paper's protocols as registry entries, in canonical order.
///
/// Capability rationale: all four run under batch mode (the macro-stepping
/// equivalence contract covers `Pulse` protocols); all four are
/// explore-safe; `alg2`/`ungated` carry the Lemma 6–12 monitor (`alg1`/
/// `alg3` have no CCW counters to check); `alg1`/`alg2` are the fleet
/// workloads; `alg1` has the async node-facade twin.
#[must_use]
pub fn core_entries() -> Vec<ProtocolSpec> {
    vec![
        ProtocolSpec::of::<Alg1Def>(
            "alg1",
            "core",
            "Algorithm 1: quiescently stabilizing election",
        )
        .batchable()
        .with_async_twin()
        .with_explore::<Alg1Def>()
        .with_fleet::<Alg1Def>(),
        ProtocolSpec::of::<Alg2Def>(
            "alg2",
            "core",
            "Algorithm 2: quiescently terminating election",
        )
        .batchable()
        .with_explore::<Alg2Def>()
        .with_monitor::<Alg2Def>()
        .with_fleet::<Alg2Def>(),
        ProtocolSpec::of::<Alg3Def>("alg3", "core", "Algorithm 3: election + ring orientation")
            .batchable()
            .with_explore::<Alg3Def>(),
        ProtocolSpec::of::<UngatedDef>("ungated", "core", "Algorithm 2 without its receive gate")
            .batchable()
            .with_explore::<UngatedDef>()
            .with_monitor::<UngatedDef>(),
    ]
}

/// The registry of the paper's protocols alone (the full workspace
/// registry, including the classic baselines, is `co_bench::protocols`).
#[must_use]
pub fn core_registry() -> &'static Registry {
    static CELL: OnceLock<Registry> = OnceLock::new();
    CELL.get_or_init(|| Registry::new(core_entries()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_net::fleet::RingSizes;
    use co_net::shrink_schedule;

    #[test]
    fn lookup_is_total_over_entries() {
        let reg = core_registry();
        assert_eq!(reg.names(), vec!["alg1", "alg2", "alg3", "ungated"]);
        for name in reg.names() {
            assert_eq!(reg.get(name).unwrap().name(), name);
        }
        let err = reg.get("alg9").unwrap_err();
        assert!(err
            .to_string()
            .contains("one of: alg1, alg2, alg3, ungated"));
    }

    #[test]
    fn capability_gating_is_typed() {
        let reg = core_registry();
        assert_eq!(reg.supporting(Capability::Fleet), vec!["alg1", "alg2"]);
        assert_eq!(reg.supporting(Capability::Shrink), vec!["alg2", "ungated"]);
        let err = reg.fleet("alg3").unwrap_err();
        assert_eq!(
            err,
            RegistryError::Unsupported {
                name: "alg3",
                capability: Capability::Fleet,
                supported: vec!["alg1", "alg2"],
            }
        );
        assert!(err.to_string().contains("protocols that do: alg1, alg2"));
        assert!(reg.fleet("nope").is_err());
    }

    #[test]
    fn record_replay_round_trips_for_every_entry() {
        let spec = RingSpec::oriented(vec![2, 3, 1]);
        for entry in core_registry().entries() {
            let opts = DriveOpts::new(SchedulerKind::Random, 5);
            let rec = entry.record(&spec, &opts);
            let rep = entry.replay(&spec, &opts, &rec.picks);
            assert_eq!(rec.report, rep.report, "{}", entry.name());
            assert_eq!(rec.fingerprint, rep.fingerprint, "{}", entry.name());
            assert_eq!(rec.leaders, rep.leaders, "{}", entry.name());
        }
    }

    #[test]
    fn alg1_fleet_matches_corollary_13() {
        let mut cfg = FleetConfig::new(100);
        cfg.sizes = RingSizes::Fixed(5);
        let fleet = core_registry().fleet("alg1").unwrap();
        let report = fleet.run_round(&cfg, 0);
        assert_eq!(report.rings, 100);
        assert_eq!(report.elections, 100);
        assert_eq!(
            report.quiescent, 100,
            "Algorithm 1 stabilizes, never terminates"
        );
        // IDs are 1..=5, so ID_max = 5 and each ring sends n·ID_max = 25.
        assert_eq!(report.total_sent, 100 * 25);
    }

    #[test]
    fn alg2_fleet_matches_theorem_1() {
        let mut cfg = FleetConfig::new(100);
        cfg.sizes = RingSizes::Fixed(4);
        let fleet = core_registry().fleet("alg2").unwrap();
        let report = fleet.run_round(&cfg, 0);
        assert_eq!(report.elections, 100);
        assert_eq!(
            report.quiescent_terminated, 100,
            "Algorithm 2 terminates quiescently"
        );
        // Theorem 1: exactly n·(2·ID_max + 1) pulses per ring.
        assert_eq!(report.total_sent, 100 * 4 * (2 * 4 + 1));
    }

    #[test]
    fn mixed_size_fleets_still_elect_everywhere() {
        let mut cfg = FleetConfig::new(200);
        cfg.sizes = RingSizes::Uniform { min: 1, max: 9 };
        cfg.seed = 3;
        for name in core_registry().supporting(Capability::Fleet) {
            let report = core_registry().fleet(name).unwrap().run_round(&cfg, 0);
            assert_eq!(report.elections, 200, "{name}");
            assert_eq!(report.budget_exhausted, 0, "{name}");
        }
    }

    #[test]
    fn shrink_driver_finds_and_minimizes_the_ablation_violation() {
        let spec = RingSpec::oriented(vec![1, 2, 3]);
        let driver = core_registry().shrink("ungated").unwrap();
        let mut found = None;
        'hunt: for kind in SchedulerKind::ALL {
            for seed in 0..16 {
                if let Some(schedule) = driver.hunt(&spec, kind, seed) {
                    found = Some(schedule);
                    break 'hunt;
                }
            }
        }
        let original = found.expect("the ungated ablation violates its invariants");
        assert!(driver.violates(&spec, &original));
        let shrunk = shrink_schedule(&original, |s| driver.violates(&spec, s));
        assert!(driver.violates(&spec, &shrunk));
        assert!(shrunk.len() <= original.len());
    }

    #[test]
    fn the_real_algorithm_2_never_violates() {
        let spec = RingSpec::oriented(vec![1, 2]);
        let driver = core_registry().shrink("alg2").unwrap();
        for kind in SchedulerKind::ALL {
            for seed in 0..16 {
                assert!(driver.hunt(&spec, kind, seed).is_none(), "{kind} {seed}");
            }
        }
    }

    #[test]
    fn table_lists_every_entry() {
        let table = core_registry().table();
        for name in core_registry().names() {
            assert!(table.contains(name), "{name} missing from table");
        }
        assert!(table.starts_with("protocol"));
    }

    #[test]
    fn unique_leader_monitor_latches_on_duplicate_leaders() {
        // Two defective Chang–Roberts-style nodes aren't available here;
        // drive the monitor directly through a simulation of the real
        // Algorithm 2, which never double-elects: the monitor must stay
        // silent over the whole adversary matrix.
        let spec = RingSpec::oriented(vec![3, 1, 2]);
        for kind in SchedulerKind::ALL {
            let mut sim = Simulation::new(spec.wiring(), Alg2Def::nodes(&spec), kind.build(7));
            let mut monitor = UniqueLeaderMonitor::new();
            sim.run_observed(Budget::default(), &mut monitor);
            assert!(monitor.violation().is_none(), "{kind}");
        }
    }
}
