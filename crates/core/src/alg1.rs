//! Algorithm 1 — quiescently stabilizing leader election (paper §3.1).
//!
//! Each node starts by sending one clockwise pulse and thereafter relays
//! every received pulse clockwise, except for the single time its received
//! count `ρ_cw` reaches its own ID: that pulse is absorbed and the node
//! (temporarily) marks itself `Leader`; any later pulse reverts it to
//! `NonLeader` and is relayed again.
//!
//! Guarantees (Lemmas 6–12, Corollary 13): in every execution the network
//! reaches quiescence with every node having sent and received exactly
//! `ID_max` pulses, and at that point exactly the maximum-ID node(s) hold
//! state `Leader`. The algorithm never *terminates* — nodes cannot tell
//! whether pulses are still in transit — which is precisely what
//! Algorithm 2 fixes.
//!
//! ```rust
//! use co_core::{Alg1Node, Role};
//! use co_net::{Budget, Outcome, Port, Pulse, RingSpec, SchedulerKind, Simulation};
//!
//! let spec = RingSpec::oriented(vec![3, 1, 2]);
//! let nodes: Vec<Alg1Node> = (0..spec.len())
//!     .map(|i| Alg1Node::new(spec.id(i), spec.cw_port(i)))
//!     .collect();
//! let mut sim = Simulation::new(spec.wiring(), nodes, SchedulerKind::Fifo.build(0));
//! let report = sim.run(Budget::default());
//!
//! assert_eq!(report.outcome, Outcome::Quiescent); // stabilizes, never terminates
//! assert_eq!(sim.node(0).role(), Role::Leader);   // ID 3 = ID_max wins
//! assert_eq!(report.total_sent, 3 * 3);           // every node sends ID_max pulses
//! ```

use crate::election::Role;
use crate::invariants::CwInstanceView;
use co_net::{Context, Fingerprint, Port, Protocol, Pulse, RunContext, Snapshot};
use std::fmt;

/// A node running Algorithm 1 on an oriented ring.
///
/// The node must be told which of its ports leads to its clockwise
/// neighbour (`cw_port`) — that is what "oriented ring" means. Clockwise
/// pulses are *sent* from `cw_port` and *arrive* at the opposite port.
#[derive(Clone, Debug)]
pub struct Alg1Node {
    id: u64,
    cw_port: Port,
    rho_cw: u64,
    sigma_cw: u64,
    role: Role,
}

impl Alg1Node {
    /// Creates a node with the given (positive) ID and clockwise port.
    ///
    /// # Panics
    ///
    /// Panics if `id == 0`; the paper requires positive integer IDs.
    #[must_use]
    pub fn new(id: u64, cw_port: Port) -> Alg1Node {
        assert!(id > 0, "IDs must be positive integers");
        Alg1Node {
            id,
            cw_port,
            rho_cw: 0,
            sigma_cw: 0,
            role: Role::NonLeader,
        }
    }

    /// The node's ID.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of clockwise pulses received (the paper's `ρ_cw`).
    #[must_use]
    pub fn rho_cw(&self) -> u64 {
        self.rho_cw
    }

    /// Number of clockwise pulses sent (the paper's `σ_cw`).
    #[must_use]
    pub fn sigma_cw(&self) -> u64 {
        self.sigma_cw
    }

    /// The node's current (stabilizing) role.
    #[must_use]
    pub fn role(&self) -> Role {
        self.role
    }

    fn send_cw(&mut self, ctx: &mut Context<'_, Pulse>) {
        self.sigma_cw += 1;
        ctx.send(self.cw_port, Pulse);
    }
}

impl Protocol<Pulse> for Alg1Node {
    type Output = Role;

    fn on_start(&mut self, ctx: &mut Context<'_, Pulse>) {
        // Line 1: sendCW().
        self.send_cw(ctx);
    }

    fn on_message(&mut self, port: Port, _msg: Pulse, ctx: &mut Context<'_, Pulse>) {
        // Clockwise pulses arrive at the counterclockwise port. Algorithm 1
        // sends no counterclockwise pulses, so nothing can legitimately
        // arrive at the clockwise port.
        debug_assert_eq!(
            port,
            self.cw_port.opposite(),
            "Algorithm 1 received a pulse from an impossible direction"
        );
        // Lines 3-8: count the pulse; absorb it exactly when ρ_cw = ID.
        self.rho_cw += 1;
        if self.rho_cw == self.id {
            self.role = Role::Leader;
        } else {
            self.role = Role::NonLeader;
            self.send_cw(ctx);
        }
    }

    fn on_message_run(
        &mut self,
        port: Port,
        _msg: &Pulse,
        count: u64,
        ctx: &mut RunContext<'_, Pulse>,
    ) -> bool {
        debug_assert_eq!(
            port,
            self.cw_port.opposite(),
            "Algorithm 1 received a pulse from an impossible direction"
        );
        // Closed form of `count` relay steps: ρ climbs from ρ₀ to ρ₀+count
        // and exactly the pulse with ρ = ID (if the climb crosses it) is
        // absorbed instead of relayed — it consumes no send, so the relayed
        // pulses' sequence numbers stay consecutive either way.
        let rho0 = self.rho_cw;
        let rho1 = rho0 + count;
        let absorbed = u64::from(rho0 < self.id && self.id <= rho1);
        let sends = count - absorbed;
        self.rho_cw = rho1;
        self.role = if rho1 == self.id {
            Role::Leader
        } else {
            Role::NonLeader
        };
        self.sigma_cw += sends;
        ctx.send_run(self.cw_port, Pulse, sends);
        true
    }

    fn output(&self) -> Option<Role> {
        Some(self.role)
    }
}

impl CwInstanceView for Alg1Node {
    fn cw_id(&self) -> u64 {
        self.id
    }
    fn cw_rho(&self) -> u64 {
        self.rho_cw
    }
    fn cw_sigma(&self) -> u64 {
        self.sigma_cw
    }
}

impl Snapshot for Alg1Node {
    type State = Alg1Node;

    fn extract(&self) -> Alg1Node {
        self.clone()
    }

    fn restore(&mut self, state: &Alg1Node) {
        *self = state.clone();
    }

    fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_u64(self.id);
        fp.write_usize(self.cw_port.index());
        fp.write_u64(self.rho_cw);
        fp.write_u64(self.sigma_cw);
        fp.write_bool(self.role == Role::Leader);
        fp.finish()
    }
}

impl fmt::Display for Alg1Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "alg1(id={}, ρ={}, σ={}, {})",
            self.id, self.rho_cw, self.sigma_cw, self.role
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_net::{Budget, Outcome, RingSpec, SchedulerKind, Simulation};

    fn run(spec: &RingSpec, kind: SchedulerKind, seed: u64) -> Simulation<Pulse, Alg1Node> {
        let nodes = (0..spec.len())
            .map(|i| Alg1Node::new(spec.id(i), spec.cw_port(i)))
            .collect();
        let mut sim = Simulation::new(spec.wiring(), nodes, kind.build(seed));
        let report = sim.run(Budget::default());
        assert_eq!(report.outcome, Outcome::Quiescent, "{kind} did not quiesce");
        sim
    }

    #[test]
    fn elects_max_id_on_small_ring() {
        let spec = RingSpec::oriented(vec![2, 5, 1, 4]);
        let sim = run(&spec, SchedulerKind::Fifo, 0);
        for i in 0..4 {
            let expected = if i == 1 {
                Role::Leader
            } else {
                Role::NonLeader
            };
            assert_eq!(sim.node(i).role(), expected, "node {i}");
        }
    }

    #[test]
    fn every_node_sends_and_receives_exactly_id_max() {
        // Corollary 13.
        let spec = RingSpec::oriented(vec![3, 7, 2, 6, 1]);
        let sim = run(&spec, SchedulerKind::Random, 123);
        for i in 0..spec.len() {
            assert_eq!(sim.node(i).rho_cw(), 7, "node {i} rho");
            assert_eq!(sim.node(i).sigma_cw(), 7, "node {i} sigma");
        }
        assert_eq!(sim.stats().total_sent, 5 * 7);
    }

    #[test]
    fn single_node_ring() {
        let spec = RingSpec::oriented(vec![4]);
        let sim = run(&spec, SchedulerKind::Fifo, 0);
        assert_eq!(sim.node(0).role(), Role::Leader);
        assert_eq!(sim.node(0).rho_cw(), 4);
        assert_eq!(sim.stats().total_sent, 4);
    }

    #[test]
    fn two_node_ring_all_schedulers() {
        let spec = RingSpec::oriented(vec![3, 8]);
        for kind in SchedulerKind::ALL {
            let sim = run(&spec, kind, 99);
            assert_eq!(sim.node(0).role(), Role::NonLeader, "{kind}");
            assert_eq!(sim.node(1).role(), Role::Leader, "{kind}");
            assert_eq!(sim.stats().total_sent, 2 * 8, "{kind}");
        }
    }

    #[test]
    fn non_unique_ids_elect_all_max_holders() {
        // Lemma 16: with duplicate IDs, all holders of ID_max end as Leader.
        let spec = RingSpec::oriented(vec![4, 2, 4, 1]);
        let sim = run(&spec, SchedulerKind::Fifo, 0);
        assert_eq!(sim.node(0).role(), Role::Leader);
        assert_eq!(sim.node(2).role(), Role::Leader);
        assert_eq!(sim.node(1).role(), Role::NonLeader);
        assert_eq!(sim.node(3).role(), Role::NonLeader);
        // Every node still converges to ID_max sent/received.
        for i in 0..4 {
            assert_eq!(sim.node(i).rho_cw(), 4);
            assert_eq!(sim.node(i).sigma_cw(), 4);
        }
    }

    #[test]
    fn leader_is_transient_for_non_max_nodes() {
        // Drive the simulation step by step and observe node 0 (ID 1) pass
        // through Leader before reverting.
        let spec = RingSpec::oriented(vec![1, 2]);
        let nodes = vec![Alg1Node::new(1, Port::One), Alg1Node::new(2, Port::One)];
        let mut sim: Simulation<Pulse, Alg1Node> =
            Simulation::new(spec.wiring(), nodes, SchedulerKind::Fifo.build(0));
        sim.start();
        let mut was_leader = false;
        while sim.step().is_some() {
            if sim.node(0).role() == Role::Leader {
                was_leader = true;
            }
        }
        assert!(was_leader, "ID 1 should hold Leader transiently");
        assert_eq!(sim.node(0).role(), Role::NonLeader);
        assert_eq!(sim.node(1).role(), Role::Leader);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_id() {
        let _ = Alg1Node::new(0, Port::One);
    }

    #[test]
    fn display_shows_state() {
        let node = Alg1Node::new(3, Port::One);
        assert_eq!(node.to_string(), "alg1(id=3, ρ=0, σ=0, Non-Leader)");
    }
}
