//! Executable invariant monitors — the paper's Lemmas 6–12 and 17 as code.
//!
//! The proofs in Section 3.1 rest on invariants of Algorithm 1's
//! configuration space. Each lemma is implemented as a predicate over the
//! *global* simulation state and checked after **every** delivery by
//! attaching a monitor observer ([`CwMonitorObserver`], [`Alg2MonitorObserver`])
//! to [`co_net::Simulation::run_observed`], turning the paper's proofs into
//! continuously-verified runtime assertions:
//!
//! * **Lemma 6** — while `ρ_cw < ID`: `σ_cw = ρ_cw + 1`; once
//!   `ρ_cw ≥ ID`: `σ_cw = ρ_cw`.
//! * **Lemma 7 / 17** — a node holding `ID_max` is the *last* to satisfy
//!   `ρ_cw ≥ ID` (17 generalises to non-unique IDs).
//! * **Lemmas 8, 9 / Corollary 10** — the CW instance is quiescent **iff**
//!   every node has `ρ_cw ≥ ID`.
//! * **Lemma 11** — at quiescence, `ρ_cw = σ_cw = ID_max` everywhere.
//! * **Lemma 12 / Corollary 13** — quiescence is eventually reached (checked
//!   by the run completing within budget).
//! * **Corollary 14** — `ρ_cw ≤ ID_max` at all times.
//!
//! The same monitors apply to Algorithm 2's CW instance through the
//! [`CwInstanceView`] trait, plus Algorithm-2-specific invariants
//! ([`Alg2Monitor`]): the CCW instance lags the CW one (`ρ_ccw ≤ ρ_cw`
//! before the termination pulse) and the termination trigger fires only at
//! the maximum-ID node.

use co_net::{Direction, Message, NodeIndex, Protocol, SimObserver, Simulation, StepInfo};
use std::fmt;

/// Read-only view of a node's CW Algorithm-1 instance.
pub trait CwInstanceView {
    /// The ID governing the CW instance.
    fn cw_id(&self) -> u64;
    /// Pulses received (`ρ_cw`).
    fn cw_rho(&self) -> u64;
    /// Pulses sent (`σ_cw`).
    fn cw_sigma(&self) -> u64;
}

/// Read-only view of a node's CCW Algorithm-1 instance (Algorithm 2 only).
pub trait CcwInstanceView: CwInstanceView {
    /// Pulses received and processed (`ρ_ccw`).
    fn ccw_rho(&self) -> u64;
    /// Pulses sent (`σ_ccw`).
    fn ccw_sigma(&self) -> u64;
    /// Pulses delivered but still deferred (gate closed).
    fn ccw_deferred(&self) -> u64;
}

/// A violated invariant, identifying the lemma and the offending state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Which lemma failed, e.g. `"Lemma 6"`.
    pub lemma: &'static str,
    /// Human-readable diagnosis.
    pub detail: String,
    /// The node where the violation was observed, if node-local.
    pub node: Option<NodeIndex>,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} violated", self.lemma)?;
        if let Some(n) = self.node {
            write!(f, " at node {n}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

impl std::error::Error for InvariantViolation {}

fn violation(lemma: &'static str, node: Option<NodeIndex>, detail: String) -> InvariantViolation {
    InvariantViolation {
        lemma,
        detail,
        node,
    }
}

/// Monitor for the CW Algorithm-1 instance (Lemmas 6–12, 17, Cor. 14).
///
/// Feed it every post-delivery state via [`CwMonitor::check`]; it returns
/// the first violation found, accumulating the absorption order needed for
/// Lemma 7/17 across calls.
///
/// The idiomatic way to drive it is [`CwMonitorObserver`], which plugs into
/// [`Simulation::run_observed`]:
///
/// ```rust
/// use co_core::invariants::CwMonitorObserver;
/// use co_core::Alg1Node;
/// use co_net::{Budget, Pulse, RingSpec, SchedulerKind, Simulation};
///
/// let spec = RingSpec::oriented(vec![2, 5, 3]);
/// let nodes = (0..3).map(|i| Alg1Node::new(spec.id(i), spec.cw_port(i))).collect();
/// let mut sim: Simulation<Pulse, Alg1Node> =
///     Simulation::new(spec.wiring(), nodes, SchedulerKind::Random.build(7));
/// let mut observer = CwMonitorObserver::new();
/// sim.run_observed(Budget::default(), &mut observer);
/// observer
///     .finish(sim.nodes())
///     .expect("the paper's lemmas hold at every step");
/// ```
#[derive(Clone, Debug, Default)]
pub struct CwMonitor {
    /// Positions in the order they first satisfied `ρ_cw ≥ ID`.
    absorption_order: Vec<NodeIndex>,
}

impl CwMonitor {
    /// Creates a fresh monitor.
    #[must_use]
    pub fn new() -> CwMonitor {
        CwMonitor::default()
    }

    /// The order in which nodes first satisfied `ρ_cw ≥ ID` so far.
    #[must_use]
    pub fn absorption_order(&self) -> &[NodeIndex] {
        &self.absorption_order
    }

    /// Checks all step-wise invariants against the current global state.
    ///
    /// `cw_in_flight` must be the number of CW pulses currently in transit
    /// **plus** any delivered-but-deferred CW pulses (zero for Algorithm 1,
    /// which never defers CW pulses).
    ///
    /// # Errors
    ///
    /// Returns the first [`InvariantViolation`] found.
    pub fn check<V: CwInstanceView>(
        &mut self,
        nodes: &[V],
        cw_in_flight: u64,
    ) -> Result<(), InvariantViolation> {
        let id_max = nodes.iter().map(CwInstanceView::cw_id).max().unwrap_or(0);

        for (i, node) in nodes.iter().enumerate() {
            let (id, rho, sigma) = (node.cw_id(), node.cw_rho(), node.cw_sigma());
            // Lemma 6.
            if rho < id {
                if sigma != rho + 1 {
                    return Err(violation(
                        "Lemma 6.1",
                        Some(i),
                        format!("ρ_cw={rho} < ID={id} but σ_cw={sigma} ≠ ρ_cw+1"),
                    ));
                }
            } else if sigma != rho {
                return Err(violation(
                    "Lemma 6.2",
                    Some(i),
                    format!("ρ_cw={rho} ≥ ID={id} but σ_cw={sigma} ≠ ρ_cw"),
                ));
            }
            // Corollary 14.
            if rho > id_max {
                return Err(violation(
                    "Corollary 14",
                    Some(i),
                    format!("ρ_cw={rho} exceeds ID_max={id_max}"),
                ));
            }
            // Track absorption order for Lemma 7/17.
            if rho >= id && !self.absorption_order.contains(&i) {
                self.absorption_order.push(i);
            }
        }

        let all_absorbed = nodes.iter().all(|v| v.cw_rho() >= v.cw_id());
        // Lemma 8: all absorbed ⇒ quiescent (CW pulses only).
        if all_absorbed && cw_in_flight != 0 {
            return Err(violation(
                "Lemma 8",
                None,
                format!("all nodes have ρ_cw ≥ ID but {cw_in_flight} CW pulses in flight"),
            ));
        }
        // Lemma 9: quiescent ⇒ all absorbed.
        if cw_in_flight == 0 && !all_absorbed {
            let bad: Vec<usize> = nodes
                .iter()
                .enumerate()
                .filter(|(_, v)| v.cw_rho() < v.cw_id())
                .map(|(i, _)| i)
                .collect();
            return Err(violation(
                "Lemma 9",
                None,
                format!("CW quiescent but nodes {bad:?} still have ρ_cw < ID"),
            ));
        }
        // Lemma 11: at quiescence, ρ = σ = ID_max everywhere.
        if cw_in_flight == 0 {
            for (i, node) in nodes.iter().enumerate() {
                if node.cw_rho() != id_max || node.cw_sigma() != id_max {
                    return Err(violation(
                        "Lemma 11",
                        Some(i),
                        format!(
                            "at CW quiescence ρ_cw={}, σ_cw={}, expected ID_max={id_max}",
                            node.cw_rho(),
                            node.cw_sigma()
                        ),
                    ));
                }
            }
        }
        // Lemma 7/17: once any ID_max holder absorbs, everyone must have.
        let any_max_absorbed = nodes
            .iter()
            .any(|v| v.cw_id() == id_max && v.cw_rho() >= v.cw_id());
        if any_max_absorbed && !all_absorbed {
            return Err(violation(
                "Lemma 7/17",
                None,
                "an ID_max node absorbed before some other node".to_string(),
            ));
        }
        Ok(())
    }

    /// Final check (Lemma 7/17's "last" claim): the last node to absorb
    /// holds `ID_max`.
    ///
    /// # Errors
    ///
    /// Returns a violation if some other node absorbed last or not every
    /// node absorbed.
    pub fn check_final<V: CwInstanceView>(&self, nodes: &[V]) -> Result<(), InvariantViolation> {
        if self.absorption_order.len() != nodes.len() {
            return Err(violation(
                "Lemma 12",
                None,
                format!(
                    "only {} of {} nodes ever satisfied ρ_cw ≥ ID",
                    self.absorption_order.len(),
                    nodes.len()
                ),
            ));
        }
        let id_max = nodes.iter().map(CwInstanceView::cw_id).max().unwrap_or(0);
        let last = *self.absorption_order.last().expect("non-empty ring");
        if nodes[last].cw_id() != id_max {
            return Err(violation(
                "Lemma 7/17",
                Some(last),
                format!(
                    "last absorber holds ID {} ≠ ID_max {id_max}",
                    nodes[last].cw_id()
                ),
            ));
        }
        Ok(())
    }
}

/// Additional invariants of Algorithm 2 (§3.2).
///
/// * the CCW instance lags: a non-terminated node that has not seen the
///   termination pulse has `ρ_ccw ≤ ρ_cw`;
/// * the termination trigger `ρ_cw = ID = ρ_ccw` fires only at a node
///   holding `ID_max` (checked via the *lag* property: when `ρ_ccw = ID`
///   at a non-max node, `ρ_cw > ID` must already hold).
#[derive(Clone, Debug, Default)]
pub struct Alg2Monitor {
    cw: CwMonitor,
}

impl Alg2Monitor {
    /// Creates a fresh monitor.
    #[must_use]
    pub fn new() -> Alg2Monitor {
        Alg2Monitor::default()
    }

    /// Access to the inner CW-instance monitor.
    #[must_use]
    pub fn cw(&self) -> &CwMonitor {
        &self.cw
    }

    /// Checks Algorithm-2 invariants; see [`CwMonitor::check`] for the
    /// meaning of `cw_in_flight`.
    ///
    /// # Errors
    ///
    /// Returns the first [`InvariantViolation`] found.
    pub fn check<V: CcwInstanceView>(
        &mut self,
        nodes: &[V],
        cw_in_flight: u64,
    ) -> Result<(), InvariantViolation> {
        self.cw.check(nodes, cw_in_flight)?;
        let id_max = nodes.iter().map(CwInstanceView::cw_id).max().unwrap_or(0);
        for (i, node) in nodes.iter().enumerate() {
            // Lag invariant: ρ_ccw can exceed ρ_cw only via the termination
            // pulse, which is the (ID_max + 1)-th CCW pulse.
            if node.ccw_rho() > node.cw_rho() && node.ccw_rho() != id_max + 1 {
                return Err(violation(
                    "§3.2 lag",
                    Some(i),
                    format!(
                        "ρ_ccw={} > ρ_cw={} before the termination pulse",
                        node.ccw_rho(),
                        node.cw_rho()
                    ),
                ));
            }
            // Uniqueness of the trigger: ρ_cw = ID = ρ_ccw only at ID_max.
            if node.cw_rho() == node.cw_id()
                && node.ccw_rho() == node.cw_id()
                && node.cw_id() != id_max
            {
                return Err(violation(
                    "§3.2 trigger",
                    Some(i),
                    format!(
                        "termination trigger ρ_cw = ID = ρ_ccw = {} at non-max node",
                        node.cw_id()
                    ),
                ));
            }
        }
        Ok(())
    }
}

/// Convenience: the number of CW pulses "outstanding" from the CW
/// instance's point of view — in transit on CW channels.
#[must_use]
pub fn cw_in_flight<M: Message, P: Protocol<M>>(sim: &Simulation<M, P>) -> u64 {
    sim.in_flight_direction(Direction::Cw)
}

/// [`SimObserver`] adapter for [`CwMonitor`]: runs the lemma checks after
/// every delivery, latching the *first* violation (the monitor's state is
/// unreliable past that point).
///
/// Attach with [`Simulation::run_observed`], then call
/// [`CwMonitorObserver::finish`] to collect the verdict including the
/// end-of-run checks (Lemma 12, last absorber).
#[derive(Clone, Debug, Default)]
pub struct CwMonitorObserver {
    monitor: CwMonitor,
    violation: Option<InvariantViolation>,
}

impl CwMonitorObserver {
    /// Creates a fresh observer around a fresh [`CwMonitor`].
    #[must_use]
    pub fn new() -> CwMonitorObserver {
        CwMonitorObserver::default()
    }

    /// The monitor driven by this observer.
    #[must_use]
    pub fn monitor(&self) -> &CwMonitor {
        &self.monitor
    }

    /// The verdict so far: the first per-step violation, if any.
    #[must_use]
    pub fn violation(&self) -> Option<&InvariantViolation> {
        self.violation.as_ref()
    }

    /// Final verdict: the first per-step violation if one was latched,
    /// otherwise the end-of-run checks ([`CwMonitor::check_final`]).
    ///
    /// # Errors
    ///
    /// Returns the first [`InvariantViolation`] observed over the whole run.
    pub fn finish<V: CwInstanceView>(self, nodes: &[V]) -> Result<(), InvariantViolation> {
        if let Some(v) = self.violation {
            return Err(v);
        }
        self.monitor.check_final(nodes)
    }
}

impl<M, P> SimObserver<M, P> for CwMonitorObserver
where
    M: Message,
    P: Protocol<M> + CwInstanceView,
{
    fn after_step(&mut self, sim: &Simulation<M, P>, _step: &StepInfo) {
        if self.violation.is_none() {
            let in_flight = sim.in_flight_direction(Direction::Cw);
            if let Err(v) = self.monitor.check(sim.nodes(), in_flight) {
                self.violation = Some(v);
            }
        }
    }
}

/// [`SimObserver`] adapter for [`Alg2Monitor`]: the Algorithm-2 analogue of
/// [`CwMonitorObserver`] (CW lemmas plus the §3.2 lag/trigger invariants).
#[derive(Clone, Debug, Default)]
pub struct Alg2MonitorObserver {
    monitor: Alg2Monitor,
    violation: Option<InvariantViolation>,
}

impl Alg2MonitorObserver {
    /// Creates a fresh observer around a fresh [`Alg2Monitor`].
    #[must_use]
    pub fn new() -> Alg2MonitorObserver {
        Alg2MonitorObserver::default()
    }

    /// The monitor driven by this observer.
    #[must_use]
    pub fn monitor(&self) -> &Alg2Monitor {
        &self.monitor
    }

    /// The verdict so far: the first per-step violation, if any.
    #[must_use]
    pub fn violation(&self) -> Option<&InvariantViolation> {
        self.violation.as_ref()
    }

    /// Final verdict: the first per-step violation if one was latched,
    /// otherwise the CW instance's end-of-run checks.
    ///
    /// # Errors
    ///
    /// Returns the first [`InvariantViolation`] observed over the whole run.
    pub fn finish<V: CwInstanceView>(self, nodes: &[V]) -> Result<(), InvariantViolation> {
        if let Some(v) = self.violation {
            return Err(v);
        }
        self.monitor.cw().check_final(nodes)
    }
}

impl<M, P> SimObserver<M, P> for Alg2MonitorObserver
where
    M: Message,
    P: Protocol<M> + CcwInstanceView,
{
    fn after_step(&mut self, sim: &Simulation<M, P>, _step: &StepInfo) {
        if self.violation.is_none() {
            let in_flight = sim.in_flight_direction(Direction::Cw);
            if let Err(v) = self.monitor.check(sim.nodes(), in_flight) {
                self.violation = Some(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake {
        id: u64,
        rho: u64,
        sigma: u64,
    }

    impl CwInstanceView for Fake {
        fn cw_id(&self) -> u64 {
            self.id
        }
        fn cw_rho(&self) -> u64 {
            self.rho
        }
        fn cw_sigma(&self) -> u64 {
            self.sigma
        }
    }

    #[test]
    fn lemma6_violation_detected() {
        let nodes = vec![Fake {
            id: 3,
            rho: 1,
            sigma: 3, // should be rho + 1 = 2
        }];
        let mut m = CwMonitor::new();
        let err = m.check(&nodes, 1).unwrap_err();
        assert_eq!(err.lemma, "Lemma 6.1");
        assert!(err.to_string().contains("node 0"));
    }

    #[test]
    fn lemma8_violation_detected() {
        // Everyone absorbed but a pulse claims to be in flight.
        let nodes = vec![Fake {
            id: 2,
            rho: 2,
            sigma: 2,
        }];
        let mut m = CwMonitor::new();
        let err = m.check(&nodes, 5).unwrap_err();
        assert_eq!(err.lemma, "Lemma 8");
    }

    #[test]
    fn lemma9_violation_detected() {
        let nodes = vec![Fake {
            id: 5,
            rho: 2,
            sigma: 3,
        }];
        let mut m = CwMonitor::new();
        let err = m.check(&nodes, 0).unwrap_err();
        assert_eq!(err.lemma, "Lemma 9");
    }

    #[test]
    fn quiescent_consistent_state_passes() {
        let nodes = vec![
            Fake {
                id: 2,
                rho: 3,
                sigma: 3,
            },
            Fake {
                id: 3,
                rho: 3,
                sigma: 3,
            },
        ];
        let mut m = CwMonitor::new();
        m.check(&nodes, 0).expect("valid quiescent state");
        assert_eq!(m.absorption_order(), &[0, 1]);
        m.check_final(&nodes).expect("ID_max node absorbed last");
    }

    #[test]
    fn corollary14_violation_detected() {
        let nodes = vec![Fake {
            id: 2,
            rho: 9,
            sigma: 9,
        }];
        let mut m = CwMonitor::new();
        let err = m.check(&nodes, 1).unwrap_err();
        assert_eq!(err.lemma, "Corollary 14");
    }

    #[test]
    fn check_final_flags_wrong_last_absorber() {
        let nodes = vec![
            Fake {
                id: 5,
                rho: 5,
                sigma: 5,
            },
            Fake {
                id: 2,
                rho: 5,
                sigma: 5,
            },
        ];
        let mut m = CwMonitor::new();
        // Feed a state where node 1 (small ID) absorbs after node 0.
        m.absorption_order = vec![0, 1];
        let err = m.check_final(&nodes).unwrap_err();
        assert_eq!(err.lemma, "Lemma 7/17");
    }
}
