//! Anonymous rings — Algorithm 4 and Theorem 3 (paper §5).
//!
//! In an anonymous ring all nodes are identical and have no IDs, but each
//! has its own source of randomness. Terminating leader election is
//! impossible here (Itai–Rodeh), so the paper aims for quiescent
//! *stabilization* with high probability `1 − O(n^{-c})`.
//!
//! The reduction is a message-free sampling step (Algorithm 4): every node
//! samples a bit-length from a geometric distribution with parameter
//! `1 − p`, `p = 2^{-1/(c+2)}`, then uniform random bits of that length.
//! Lemma 18 shows the maximal sampled ID is unique with high probability,
//! of magnitude between `n^{Ω(c)}` and `n^{O(c²)}`. Since sampling needs no
//! communication it composes trivially; afterwards the ring runs
//! Algorithm 3 with the sampled IDs, which by Lemma 16 elects exactly the
//! unique-maximum holder (and orients the ring).
//!
//! ### Implementation notes (documented substitutions)
//!
//! * The paper samples `ID ∈ {0,1}^BitCount`, which can be the integer 0;
//!   our network model requires positive IDs, so we use `value + 1`. The
//!   shift is monotone and applied to every node, so it preserves both the
//!   uniqueness of the maximum and all order statistics (and therefore
//!   Lemma 18 verbatim).
//! * [`SamplingConfig::max_bits`] optionally truncates the geometric tail.
//!   This is a *harness guard* for simulation feasibility — a sampled
//!   60-bit ID implies `n·2^60` pulses — not part of the algorithm;
//!   `None` (the default) is the paper-faithful behaviour. Probability of
//!   the guard firing is `p^max_bits` per node and is reported.
//! * This module defines no `Protocol` of its own — after sampling, the
//!   ring runs [`Alg3Node`], which implements `co_net::Snapshot`, so
//!   anonymous elections participate in record/replay and exploration
//!   through the Algorithm 3 phase.
//!
//! ```rust
//! use co_core::anonymous::{elect_anonymous, SamplingConfig};
//! use co_net::SchedulerKind;
//!
//! let cfg = SamplingConfig::new(1.0).with_max_bits(16);
//! let result = elect_anonymous(8, &cfg, SchedulerKind::Random, 42);
//! // With c = 1 a ring of 8 succeeds with high probability; this seed does.
//! assert!(result.success);
//! assert!(result.messages > 0);
//! ```

use crate::alg3::{Alg3Node, Alg3Output, IdScheme};
use crate::election::Role;
use co_net::{Budget, Outcome, RingSpec, SchedulerKind, Simulation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the ID-sampling procedure (Algorithm 4).
#[derive(Clone, Debug, PartialEq)]
pub struct SamplingConfig {
    /// The paper's constant `c > 0`: failure probability is `O(n^{-c})`.
    pub c: f64,
    /// Optional harness guard truncating the geometric tail (see module
    /// docs). `None` = paper-faithful unbounded sampling (up to the `u64`
    /// representation limit of 63 bits).
    pub max_bits: Option<u32>,
}

impl SamplingConfig {
    /// Creates a config for the given `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c <= 0`.
    #[must_use]
    pub fn new(c: f64) -> SamplingConfig {
        assert!(c > 0.0, "the paper requires c > 0");
        SamplingConfig { c, max_bits: None }
    }

    /// Sets the harness guard on the sampled bit length.
    #[must_use]
    pub fn with_max_bits(mut self, max_bits: u32) -> SamplingConfig {
        self.max_bits = Some(max_bits);
        self
    }

    /// The geometric parameter `p = 2^{-1/(c+2)}` (line 1 of Algorithm 4).
    #[must_use]
    pub fn p(&self) -> f64 {
        2f64.powf(-1.0 / (self.c + 2.0))
    }

    /// Hard representation cap: IDs must fit a `u64` even after the
    /// `2·ID` arithmetic of [`IdScheme::Doubled`].
    fn bit_cap(&self) -> u32 {
        self.max_bits.unwrap_or(62).min(62)
    }
}

/// Samples one ID per Algorithm 4 (shifted by +1; see module docs).
///
/// `BitCount ~ Geo(1 − p)` counts the failures before the first success,
/// then the ID's bits are drawn uniformly from `{0,1}^BitCount`.
#[must_use]
pub fn sample_id<R: Rng + ?Sized>(cfg: &SamplingConfig, rng: &mut R) -> u64 {
    let p = cfg.p();
    let cap = cfg.bit_cap();
    let mut bit_count = 0u32;
    while bit_count < cap && rng.gen::<f64>() < p {
        bit_count += 1;
    }
    let value = if bit_count == 0 {
        0
    } else {
        rng.gen_range(0..(1u64 << bit_count))
    };
    value + 1
}

/// Samples `n` IDs, one per node, from independent generators derived from
/// `seed` (each node owns its randomness, as the model requires).
#[must_use]
pub fn sample_ids(n: usize, cfg: &SamplingConfig, seed: u64) -> Vec<u64> {
    (0..n)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(
                seed ^ (0x5851_F42D_4C95_7F2D_u64.wrapping_mul(i as u64 + 1)),
            );
            sample_id(cfg, &mut rng)
        })
        .collect()
}

/// Outcome of one anonymous-ring election trial.
#[derive(Clone, Debug)]
pub struct AnonymousResult {
    /// The sampled IDs (position order).
    pub ids: Vec<u64>,
    /// The maximal sampled ID.
    pub id_max: u64,
    /// Whether the maximal ID was attained uniquely (Lemma 18's condition).
    pub unique_max: bool,
    /// Whether the run elected exactly one leader at the maximum holder and
    /// produced a consistent orientation.
    pub success: bool,
    /// Total pulses exchanged.
    pub messages: u64,
    /// Whether the run reached quiescence within budget.
    pub quiescent: bool,
}

/// Runs one anonymous-ring election: Algorithm 4 sampling followed by
/// Algorithm 3 (improved scheme) on a randomly port-flipped ring.
///
/// Success means: quiescence, exactly one `Leader` (at a maximum holder),
/// and a consistent orientation. By Lemma 16 plus Lemma 18 this happens
/// with probability `1 − O(n^{-c})`.
#[must_use]
pub fn elect_anonymous(
    n: usize,
    cfg: &SamplingConfig,
    scheduler: SchedulerKind,
    seed: u64,
) -> AnonymousResult {
    let ids = sample_ids(n, cfg, seed);
    let id_max = *ids.iter().max().expect("n > 0");
    let unique_max = ids.iter().filter(|&&id| id == id_max).count() == 1;

    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x9E37_79B9));
    let spec = RingSpec::random_flips(ids.clone(), &mut rng);
    let nodes = (0..n)
        .map(|i| Alg3Node::new(spec.id(i), IdScheme::Improved))
        .collect();
    let mut sim: Simulation<co_net::Pulse, Alg3Node> =
        Simulation::new(spec.wiring(), nodes, scheduler.build(seed));
    let report = sim.run(Budget::default());
    let quiescent = report.outcome == Outcome::Quiescent;

    let outputs: Vec<Option<Alg3Output>> = (0..n).map(|i| sim.node(i).output()).collect();
    let success = quiescent && validate_outputs(&spec, &outputs);

    AnonymousResult {
        ids,
        id_max,
        unique_max,
        success,
        messages: report.total_sent,
        quiescent,
    }
}

/// Validates anonymous-election outputs: one leader at a maximum holder and
/// a globally consistent orientation.
fn validate_outputs(spec: &RingSpec, outputs: &[Option<Alg3Output>]) -> bool {
    let n = spec.len();
    let Some(outputs) = outputs.iter().copied().collect::<Option<Vec<Alg3Output>>>() else {
        return false;
    };
    let leaders: Vec<usize> = outputs
        .iter()
        .enumerate()
        .filter(|(_, o)| o.role == Role::Leader)
        .map(|(i, _)| i)
        .collect();
    if leaders.len() != 1 || spec.id(leaders[0]) != spec.id_max() {
        return false;
    }
    let all_cw = (0..n).all(|i| outputs[i].cw_port == spec.cw_port(i));
    let all_ccw = (0..n).all(|i| outputs[i].cw_port == spec.ccw_port(i));
    all_cw || all_ccw
}

/// Empirical success-rate estimate over `trials` independent runs.
///
/// Returns `(successes, unique_max_count, mean_id_max, max_messages)` — the
/// quantities Theorem 3 and Lemma 18 bound.
#[must_use]
pub fn success_rate(
    n: usize,
    cfg: &SamplingConfig,
    scheduler: SchedulerKind,
    trials: u64,
    seed: u64,
) -> AnonymousStats {
    let mut successes = 0u64;
    let mut unique = 0u64;
    let mut sum_id_max = 0u128;
    let mut max_messages = 0u64;
    let mut max_id_max = 0u64;
    for t in 0..trials {
        let r = elect_anonymous(
            n,
            cfg,
            scheduler,
            seed.wrapping_add(t.wrapping_mul(0x2545_F491)),
        );
        successes += u64::from(r.success);
        unique += u64::from(r.unique_max);
        sum_id_max += u128::from(r.id_max);
        max_messages = max_messages.max(r.messages);
        max_id_max = max_id_max.max(r.id_max);
    }
    AnonymousStats {
        trials,
        successes,
        unique_max: unique,
        mean_id_max: sum_id_max as f64 / trials as f64,
        max_id_max,
        max_messages,
    }
}

/// Aggregate statistics from [`success_rate`].
#[derive(Clone, Debug)]
pub struct AnonymousStats {
    /// Number of trials run.
    pub trials: u64,
    /// Trials that elected correctly (leader + orientation).
    pub successes: u64,
    /// Trials whose maximal sampled ID was unique.
    pub unique_max: u64,
    /// Mean of the maximal sampled ID (Lemma 18: `n^{Θ(c)}`..`n^{O(c²)}`).
    pub mean_id_max: f64,
    /// Largest maximal ID seen.
    pub max_id_max: u64,
    /// Largest per-trial message count (Theorem 3: `n^{O(1)}`).
    pub max_messages: u64,
}

impl AnonymousStats {
    /// Fraction of successful trials.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.successes as f64 / self.trials as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_ids_are_positive_and_bounded() {
        let cfg = SamplingConfig::new(1.0).with_max_bits(10);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let id = sample_id(&cfg, &mut rng);
            assert!(id >= 1);
            assert!(id <= 1 << 10);
        }
    }

    #[test]
    fn geometric_parameter_matches_paper() {
        let cfg = SamplingConfig::new(1.0);
        // p = 2^{-1/3}
        assert!((cfg.p() - 2f64.powf(-1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn sampling_is_reproducible_and_independent_per_node() {
        let cfg = SamplingConfig::new(1.0).with_max_bits(12);
        let a = sample_ids(16, &cfg, 7);
        let b = sample_ids(16, &cfg, 7);
        assert_eq!(a, b);
        let c = sample_ids(16, &cfg, 8);
        assert_ne!(a, c, "different seed should change at least one ID");
    }

    #[test]
    fn larger_c_gives_longer_ids_on_average() {
        let mut rng = StdRng::seed_from_u64(3);
        let small: f64 = (0..4000)
            .map(|_| sample_id(&SamplingConfig::new(0.5).with_max_bits(24), &mut rng) as f64)
            .sum::<f64>()
            / 4000.0;
        let large: f64 = (0..4000)
            .map(|_| sample_id(&SamplingConfig::new(3.0).with_max_bits(24), &mut rng) as f64)
            .sum::<f64>()
            / 4000.0;
        assert!(
            large > small,
            "c=3 mean {large} should exceed c=0.5 mean {small}"
        );
    }

    #[test]
    fn election_succeeds_when_max_unique() {
        let cfg = SamplingConfig::new(1.0).with_max_bits(12);
        let mut ok = 0;
        let mut unique_trials = 0;
        for seed in 0..20 {
            let r = elect_anonymous(6, &cfg, SchedulerKind::Random, seed);
            assert!(r.quiescent, "seed {seed} must reach quiescence");
            if r.unique_max {
                unique_trials += 1;
                assert!(r.success, "seed {seed}: unique max must elect");
                ok += 1;
            } else {
                // With a tied maximum the improved scheme may elect zero or
                // multiple leaders — exactly the whp failure event.
                assert!(!r.success || r.unique_max);
            }
        }
        assert!(unique_trials > 10, "most trials should have a unique max");
        assert!(ok > 0);
    }

    #[test]
    fn stats_aggregate() {
        let cfg = SamplingConfig::new(1.0).with_max_bits(10);
        let stats = success_rate(4, &cfg, SchedulerKind::Fifo, 20, 99);
        assert_eq!(stats.trials, 20);
        assert!(stats.rate() > 0.5, "rate {}", stats.rate());
        assert!(stats.mean_id_max >= 1.0);
        assert!(stats.max_messages > 0);
    }

    #[test]
    #[should_panic(expected = "c > 0")]
    fn rejects_non_positive_c() {
        let _ = SamplingConfig::new(0.0);
    }
}
