//! Beyond rings: content-oblivious primitives on general graphs.
//!
//! The paper's concluding open problem asks whether content-oblivious
//! leader election is possible in arbitrary 2-edge-connected networks.
//! This module provides first stepping stones on the general-graph
//! substrate ([`co_net::multiport`]):
//!
//! * [`EchoNode`] — the classic flood-echo wave, which turns out to be
//!   content-oblivious *as is*: every edge carries exactly one pulse in
//!   each direction, so nodes only ever count pulses per port. A rooted
//!   wave quiescently terminates at every node and detects global
//!   completion at the root using exactly `2m` pulses (`m` = number of
//!   edges). This is the rooted broadcast/termination primitive that the
//!   compiler of Censor-Hillel et al. presupposes, reproduced in the
//!   defective model.
//!
//! A *leaderless* general-graph election remains open — exactly the
//! paper's conjecture — but the substrate and this wave make the gap
//! concrete: what is missing is a way to break symmetry without a root.

use co_net::multiport::{GraphContext, GraphProtocol};
use co_net::Pulse;
use std::fmt;

/// State of an [`EchoNode`] in the flood-echo wave.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EchoState {
    /// Not yet reached by the wave.
    Idle,
    /// Reached; waiting for one pulse on every non-parent port.
    Waiting,
    /// Echo sent (or, at the root, all echoes collected); done.
    Done,
}

/// The flood-echo wave (content-oblivious broadcast with termination
/// detection at the root).
///
/// The root sends one pulse on every port. A non-root adopts the first
/// pulse's port as its parent, floods all other ports, and waits until
/// every non-parent port has delivered exactly one pulse (its neighbours'
/// floods or echoes — indistinguishable, and it does not matter); then it
/// echoes to the parent and terminates. The root terminates when all its
/// ports have delivered. Total pulses: exactly one per directed edge,
/// `2m`.
///
/// ```rust
/// use co_core::general::EchoNode;
/// use co_net::graph::MultiGraph;
/// use co_net::multiport::{GraphSim, GraphWiring, GraphOutcome};
/// use co_net::sched::FifoScheduler;
/// use co_net::Budget;
///
/// let g = MultiGraph::ring(5);
/// let wiring = GraphWiring::from_graph(&g);
/// let nodes = (0..5).map(|v| EchoNode::new(v == 2)).collect();
/// let mut sim: GraphSim<co_net::Pulse, EchoNode> =
///     GraphSim::new(wiring, nodes, Box::new(FifoScheduler::new()));
/// let report = sim.run(Budget::steps(10_000));
/// assert_eq!(report.outcome, GraphOutcome::QuiescentTerminated);
/// assert_eq!(report.total_sent, 2 * 5); // 2m pulses
/// ```
#[derive(Clone, Debug)]
pub struct EchoNode {
    is_root: bool,
    state: EchoState,
    parent: Option<usize>,
    received: Vec<bool>,
    terminated: bool,
}

impl EchoNode {
    /// Creates a node; exactly one node must be the root.
    #[must_use]
    pub fn new(is_root: bool) -> EchoNode {
        EchoNode {
            is_root,
            state: EchoState::Idle,
            parent: None,
            received: Vec::new(),
            terminated: false,
        }
    }

    /// The node's wave state.
    #[must_use]
    pub fn state(&self) -> EchoState {
        self.state
    }

    /// The port toward the root (None at the root or before the wave).
    #[must_use]
    pub fn parent(&self) -> Option<usize> {
        self.parent
    }

    fn pending_ports(&self) -> usize {
        self.received
            .iter()
            .enumerate()
            .filter(|&(p, &r)| !r && Some(p) != self.parent)
            .count()
    }

    fn maybe_finish(&mut self, ctx: &mut GraphContext<'_, Pulse>) {
        if self.state == EchoState::Waiting && self.pending_ports() == 0 {
            self.state = EchoState::Done;
            if let Some(parent) = self.parent {
                ctx.send(parent, Pulse);
            }
            self.terminated = true;
        }
    }
}

impl GraphProtocol<Pulse> for EchoNode {
    type Output = EchoState;

    fn on_start(&mut self, ctx: &mut GraphContext<'_, Pulse>) {
        self.received = vec![false; ctx.degree()];
        if self.is_root {
            self.state = EchoState::Waiting;
            for p in 0..ctx.degree() {
                ctx.send(p, Pulse);
            }
            // A degree-0 root (single node, no edges) is trivially done.
            self.maybe_finish(ctx);
        }
    }

    fn on_message(&mut self, port: usize, _msg: Pulse, ctx: &mut GraphContext<'_, Pulse>) {
        debug_assert!(
            !self.received[port],
            "an edge never carries two pulses one way"
        );
        self.received[port] = true;
        if self.state == EchoState::Idle {
            // First contact: adopt the parent, flood the rest.
            self.state = EchoState::Waiting;
            self.parent = Some(port);
            for p in (0..ctx.degree()).filter(|&p| p != port) {
                ctx.send(p, Pulse);
            }
        }
        self.maybe_finish(ctx);
    }

    fn is_terminated(&self) -> bool {
        self.terminated
    }

    fn output(&self) -> Option<EchoState> {
        (self.state == EchoState::Done).then_some(self.state)
    }
}

impl fmt::Display for EchoNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "echo({:?}{}, parent={:?})",
            self.state,
            if self.is_root { ", root" } else { "" },
            self.parent
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_net::graph::MultiGraph;
    use co_net::multiport::{GraphOutcome, GraphSim, GraphWiring};
    use co_net::{Budget, SchedulerKind};

    fn run(
        graph: &MultiGraph,
        root: usize,
        kind: SchedulerKind,
        seed: u64,
    ) -> (GraphSim<Pulse, EchoNode>, GraphOutcome, u64) {
        let wiring = GraphWiring::from_graph(graph);
        let nodes = (0..graph.vertex_count())
            .map(|v| EchoNode::new(v == root))
            .collect();
        let mut sim = GraphSim::new(wiring, nodes, kind.build(seed));
        let report = sim.run(Budget::steps(1_000_000));
        (sim, report.outcome, report.total_sent)
    }

    #[test]
    fn echo_on_rings_uses_exactly_2m_pulses() {
        for n in [1usize, 2, 3, 8, 17] {
            let g = MultiGraph::ring(n);
            for kind in SchedulerKind::ALL {
                let (sim, outcome, sent) = run(&g, 0, kind, 5);
                assert_eq!(outcome, GraphOutcome::QuiescentTerminated, "n={n} {kind}");
                assert_eq!(sent, 2 * n as u64, "n={n} {kind}");
                for v in 0..n {
                    assert_eq!(sim.node(v).state(), EchoState::Done, "n={n} {kind} v={v}");
                }
            }
        }
    }

    #[test]
    fn echo_on_theta_and_complete_graphs() {
        // Theta graph.
        let mut theta = MultiGraph::new(5);
        theta.add_edge(0, 1);
        theta.add_edge(0, 2);
        theta.add_edge(2, 1);
        theta.add_edge(0, 3);
        theta.add_edge(3, 4);
        theta.add_edge(4, 1);
        let (_, outcome, sent) = run(&theta, 4, SchedulerKind::Random, 3);
        assert_eq!(outcome, GraphOutcome::QuiescentTerminated);
        assert_eq!(sent, 2 * 6);

        // K5.
        let mut k5 = MultiGraph::new(5);
        for u in 0..5 {
            for v in u + 1..5 {
                k5.add_edge(u, v);
            }
        }
        let (_, outcome, sent) = run(&k5, 2, SchedulerKind::Lifo, 1);
        assert_eq!(outcome, GraphOutcome::QuiescentTerminated);
        assert_eq!(sent, 2 * 10);
    }

    #[test]
    fn echo_parent_pointers_form_a_tree_toward_the_root() {
        let mut g = MultiGraph::new(6);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 0);
        g.add_edge(1, 4);
        g.add_edge(4, 5);
        g.add_edge(5, 2);
        let root = 0;
        let (sim, outcome, _) = run(&g, root, SchedulerKind::Random, 9);
        assert_eq!(outcome, GraphOutcome::QuiescentTerminated);
        let wiring = GraphWiring::from_graph(&g);
        // Follow parent pointers from every node; they must reach the root
        // without cycles.
        for start in 0..6 {
            let mut v = start;
            let mut hops = 0;
            while v != root {
                let parent_port = sim.node(v).parent().expect("non-root has a parent");
                let (next, _) = wiring.endpoint(v, parent_port);
                v = next;
                hops += 1;
                assert!(hops <= 6, "cycle in parent pointers from {start}");
            }
        }
    }

    #[test]
    fn echo_single_node_no_edges() {
        let g = MultiGraph::new(1);
        let (sim, outcome, sent) = run(&g, 0, SchedulerKind::Fifo, 0);
        assert_eq!(outcome, GraphOutcome::QuiescentTerminated);
        assert_eq!(sent, 0);
        assert_eq!(sim.node(0).state(), EchoState::Done);
    }

    #[test]
    fn echo_self_loop_root() {
        let mut g = MultiGraph::new(1);
        g.add_edge(0, 0);
        let (_, outcome, sent) = run(&g, 0, SchedulerKind::Fifo, 0);
        assert_eq!(outcome, GraphOutcome::QuiescentTerminated);
        assert_eq!(sent, 2);
    }
}
