//! Algorithm 3 — leader election *and ring orientation* on non-oriented
//! rings (paper §4, Proposition 15 and Theorem 2).
//!
//! On a non-oriented ring, nodes cannot tell which port leads clockwise.
//! Algorithm 3 runs two parallel executions of Algorithm 1 — one per global
//! travel direction — by exploiting that a pulse which is always re-sent
//! from the port opposite to its arrival port keeps travelling in one global
//! direction. Each node picks two *virtual IDs*, one governing the pulses
//! arriving at each port; the virtual-ID scheme guarantees the two
//! executions have distinct maxima, so at quiescence every node sees
//! strictly more pulses in one direction than the other. That asymmetry
//! yields a consistent orientation, and the node whose virtual ID was the
//! global maximum elects itself leader.
//!
//! Two [`IdScheme`]s are provided:
//!
//! * [`IdScheme::Doubled`] — `ID_v^(i) = 2·ID_v − 1 + i` (Proposition 15):
//!   simple, but doubles the complexity to `n(4·ID_max − 1)` pulses;
//! * [`IdScheme::Improved`] — `ID_v^(0) = ID_v`, `ID_v^(1) = ID_v + 1`
//!   (Theorem 2): virtual IDs are no longer unique, but Lemma 16 shows
//!   Algorithm 1 tolerates duplicates as long as the per-direction maxima
//!   are unique; complexity drops to `n(2·ID_max + 1)`.
//!
//! The algorithm is quiescently *stabilizing*: all pulse activity ceases but
//! nodes never terminate (the paper conjectures this is inherent).
//!
//! Proposition 19 is available through [`Alg3Node::with_resampling`]: nodes
//! re-sample their ID whenever `min(ρ_0, ρ_1)` exceeds it, ending with
//! pairwise-distinct IDs with high probability.
//!
//! ```rust
//! use co_core::{runner, IdScheme, Role};
//! use co_net::{RingSpec, SchedulerKind};
//!
//! // A non-oriented ring: nodes 1 and 3 have flipped ports.
//! let spec = RingSpec::with_flips(vec![4, 9, 2, 5], vec![false, true, false, true]);
//! let report = runner::run_alg3(&spec, IdScheme::Improved, SchedulerKind::Random, 3);
//! assert!(report.report.reached_quiescence());
//! assert_eq!(report.report.roles[1], Role::Leader);
//! assert!(report.orientation_consistent);
//! assert_eq!(report.report.total_messages, 4 * (2 * 9 + 1)); // Theorem 2
//! ```

use crate::election::Role;
use co_net::{Context, Fingerprint, Port, Protocol, Pulse, RunContext, Snapshot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// How a node derives its two virtual IDs from its real ID.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum IdScheme {
    /// `ID^(i) = 2·ID − 1 + i` — Proposition 15, `n(4·ID_max − 1)` pulses.
    Doubled,
    /// `ID^(0) = ID`, `ID^(1) = ID + 1` — Theorem 2, `n(2·ID_max + 1)` pulses.
    Improved,
}

impl IdScheme {
    /// The virtual ID `ID^(i)` for a node with real ID `id`.
    ///
    /// `ID^(i)` governs the pulses *arriving at* `Port_{1−i}` (equivalently:
    /// the execution whose pulses this node re-sends from `Port_i`).
    #[must_use]
    pub fn virtual_id(self, id: u64, i: usize) -> u64 {
        debug_assert!(i < 2);
        match self {
            IdScheme::Doubled => 2 * id - 1 + i as u64,
            IdScheme::Improved => id + i as u64,
        }
    }

    /// The exact total message complexity on a ring of `n` nodes with
    /// maximal ID `id_max` (Proposition 15 / Theorem 2).
    #[must_use]
    pub fn predicted_messages(self, n: u64, id_max: u64) -> u64 {
        match self {
            IdScheme::Doubled => n * (4 * id_max - 1),
            IdScheme::Improved => n * (2 * id_max + 1),
        }
    }
}

impl fmt::Display for IdScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdScheme::Doubled => f.write_str("doubled (Prop. 15)"),
            IdScheme::Improved => f.write_str("improved (Thm. 2)"),
        }
    }
}

/// The stabilizing output of an [`Alg3Node`]: a role plus the port the node
/// believes leads to its clockwise neighbour.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Alg3Output {
    /// Leader / non-leader decision.
    pub role: Role,
    /// The port this node labels *CW* (leading to the clockwise neighbour).
    pub cw_port: Port,
}

/// A node running Algorithm 3 on a (possibly) non-oriented ring.
///
/// Unlike [`crate::Alg1Node`], the constructor takes no orientation: the
/// node treats its two ports symmetrically, exactly as the paper requires.
#[derive(Clone, Debug)]
pub struct Alg3Node {
    id: u64,
    scheme: IdScheme,
    /// `virt[i]` = `ID^(i)`, governing pulses that arrive at `Port_{1-i}`.
    virt: [u64; 2],
    /// `rho[p]` = pulses received at `Port_p` (the paper's `ρ_p`).
    rho: [u64; 2],
    /// `sigma[p]` = pulses sent from `Port_p`.
    sigma: [u64; 2],
    output: Option<Alg3Output>,
    /// Proposition 19: RNG for ID resampling, if enabled.
    resampler: Option<StdRng>,
}

impl Alg3Node {
    /// Creates a node with the given (positive) ID.
    ///
    /// # Panics
    ///
    /// Panics if `id == 0`.
    #[must_use]
    pub fn new(id: u64, scheme: IdScheme) -> Alg3Node {
        assert!(id > 0, "IDs must be positive integers");
        Alg3Node {
            id,
            scheme,
            virt: [scheme.virtual_id(id, 0), scheme.virtual_id(id, 1)],
            rho: [0; 2],
            sigma: [0; 2],
            output: None,
            resampler: None,
        }
    }

    /// Creates a node that additionally re-samples its ID per
    /// Proposition 19: whenever a pulse arrives and `min(ρ_0, ρ_1)`
    /// exceeds the current ID, the ID is redrawn uniformly from
    /// `1..min(ρ_0, ρ_1)`.
    ///
    /// Re-sampling never changes the pulse dynamics — by the time it fires,
    /// both counters have passed every threshold derived from the old ID, so
    /// the node is already a permanent relay in both directions — but it
    /// leaves all nodes with pairwise-distinct IDs with high probability.
    ///
    /// # Panics
    ///
    /// Panics if `id == 0`.
    #[must_use]
    pub fn with_resampling(id: u64, scheme: IdScheme, seed: u64) -> Alg3Node {
        let mut node = Alg3Node::new(id, scheme);
        node.resampler = Some(StdRng::seed_from_u64(seed));
        node
    }

    /// The node's current ID (may change under Proposition 19 resampling).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The virtual-ID scheme this node runs.
    #[must_use]
    pub fn scheme(&self) -> IdScheme {
        self.scheme
    }

    /// Pulses received at each port.
    #[must_use]
    pub fn rho(&self) -> [u64; 2] {
        self.rho
    }

    /// Pulses sent from each port.
    #[must_use]
    pub fn sigma(&self) -> [u64; 2] {
        self.sigma
    }

    /// The node's current stabilizing output, if the guard of pseudocode
    /// line 8 (`max(ρ_0, ρ_1) ≥ ID^(1)`) has been reached.
    #[must_use]
    pub fn output(&self) -> Option<Alg3Output> {
        self.output
    }

    fn send(&mut self, port: Port, ctx: &mut Context<'_, Pulse>) {
        self.sigma[port.index()] += 1;
        ctx.send(port, Pulse);
    }

    /// Pseudocode lines 8–16: recompute the stabilizing output.
    fn update_output(&mut self) {
        let [rho0, rho1] = self.rho;
        let id1 = self.virt[1];
        if rho0.max(rho1) < id1 {
            return; // Line 8 guard: too early to decide anything.
        }
        let role = if rho0 == id1 && rho1 < id1 {
            Role::Leader
        } else {
            Role::NonLeader
        };
        // Lines 13-16: the port that received *more* pulses received the
        // busier global direction; the paper names it so that the *other*
        // port leads clockwise.
        let cw_port = if rho0 > rho1 { Port::One } else { Port::Zero };
        self.output = Some(Alg3Output { role, cw_port });
    }

    /// Proposition 19: re-sample the ID if both counters passed it.
    fn maybe_resample(&mut self) {
        let Some(rng) = &mut self.resampler else {
            return;
        };
        let min = self.rho[0].min(self.rho[1]);
        if min > self.id && min >= 2 {
            self.id = rng.gen_range(1..min);
        }
    }
}

impl Protocol<Pulse> for Alg3Node {
    type Output = Alg3Output;

    fn on_start(&mut self, ctx: &mut Context<'_, Pulse>) {
        // Lines 1-3: send one pulse out of each port.
        self.send(Port::Zero, ctx);
        self.send(Port::One, ctx);
    }

    fn on_message(&mut self, port: Port, _msg: Pulse, ctx: &mut Context<'_, Pulse>) {
        // Lines 5-7: a pulse arriving at Port_{1-i} is counted in ρ_{1-i}
        // and forwarded from Port_i unless ρ_{1-i} = ID^(i).
        let arrived = port.index();
        let out = port.opposite();
        self.rho[arrived] += 1;
        if self.rho[arrived] != self.virt[out.index()] {
            self.send(out, ctx);
        }
        self.maybe_resample();
        self.update_output();
    }

    fn on_message_run(
        &mut self,
        port: Port,
        _msg: &Pulse,
        count: u64,
        ctx: &mut RunContext<'_, Pulse>,
    ) -> bool {
        // Proposition 19 resampling draws from the RNG on a per-pulse
        // schedule; there is no closed form, so decline and let the
        // engine deliver pulse by pulse.
        if self.resampler.is_some() {
            return false;
        }
        // Closed form of `count` relay steps in one direction: ρ climbs
        // from ρ₀ to ρ₀+count and exactly the pulse with ρ = ID^(i) (if
        // crossed) is absorbed; it consumes no send, so the relayed pulses'
        // sequence numbers stay consecutive. The output recomputation is
        // monotone in ρ, so one update at the final counters matches the
        // last per-pulse update.
        let arrived = port.index();
        let out = port.opposite();
        let r0 = self.rho[arrived];
        let r1 = r0 + count;
        let threshold = self.virt[out.index()];
        let absorbed = u64::from(r0 < threshold && threshold <= r1);
        let sends = count - absorbed;
        self.rho[arrived] = r1;
        self.sigma[out.index()] += sends;
        ctx.send_run(out, Pulse, sends);
        self.update_output();
        true
    }

    fn output(&self) -> Option<Alg3Output> {
        self.output
    }
}

impl Snapshot for Alg3Node {
    type State = Alg3Node;

    fn extract(&self) -> Alg3Node {
        self.clone()
    }

    fn restore(&mut self, state: &Alg3Node) {
        *self = state.clone();
    }

    fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_u64(self.id);
        fp.write_u64(self.virt[0]);
        fp.write_u64(self.virt[1]);
        fp.write_u64(self.rho[0]);
        fp.write_u64(self.rho[1]);
        fp.write_u64(self.sigma[0]);
        fp.write_u64(self.sigma[1]);
        match self.output {
            None => fp.write_u8(0),
            Some(out) => {
                fp.write_u8(1);
                fp.write_bool(out.role == Role::Leader);
                fp.write_usize(out.cw_port.index());
            }
        }
        // Resampler state is behaviourally relevant (Proposition 19): two
        // nodes that agree on counters but not on RNG state may diverge.
        match &self.resampler {
            None => fp.write_u8(0),
            Some(rng) => {
                fp.write_u8(1);
                for word in rng.to_state() {
                    fp.write_u64(word);
                }
            }
        }
        fp.finish()
    }
}

impl fmt::Display for Alg3Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "alg3(id={}, ρ=[{}, {}], σ=[{}, {}])",
            self.id, self.rho[0], self.rho[1], self.sigma[0], self.sigma[1]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_net::{Budget, Outcome, RingSpec, SchedulerKind, Simulation};

    fn run(
        spec: &RingSpec,
        scheme: IdScheme,
        kind: SchedulerKind,
        seed: u64,
    ) -> Simulation<Pulse, Alg3Node> {
        let nodes = (0..spec.len())
            .map(|i| Alg3Node::new(spec.id(i), scheme))
            .collect();
        let mut sim = Simulation::new(spec.wiring(), nodes, kind.build(seed));
        let report = sim.run(Budget::default());
        assert_eq!(report.outcome, Outcome::Quiescent, "{kind} did not quiesce");
        sim
    }

    /// Checks that the orientation outputs describe one consistent clockwise
    /// walk: every node's claimed CW port must actually lead to its
    /// clockwise neighbour (or *all* must point counterclockwise, which is
    /// the same global orientation mirrored — the paper only asks for
    /// consistency).
    fn orientation_consistent(spec: &RingSpec, sim: &Simulation<Pulse, Alg3Node>) -> bool {
        let claims: Vec<Port> = (0..spec.len())
            .map(|i| sim.node(i).output().expect("output decided").cw_port)
            .collect();
        let all_cw = (0..spec.len()).all(|i| claims[i] == spec.cw_port(i));
        let all_ccw = (0..spec.len()).all(|i| claims[i] == spec.ccw_port(i));
        all_cw || all_ccw
    }

    #[test]
    fn improved_scheme_on_oriented_ring() {
        let spec = RingSpec::oriented(vec![2, 7, 4]);
        let sim = run(&spec, IdScheme::Improved, SchedulerKind::Fifo, 0);
        assert_eq!(sim.node(1).output().unwrap().role, Role::Leader);
        assert_eq!(sim.node(0).output().unwrap().role, Role::NonLeader);
        assert_eq!(sim.node(2).output().unwrap().role, Role::NonLeader);
        assert!(orientation_consistent(&spec, &sim));
        assert_eq!(sim.stats().total_sent, 3 * (2 * 7 + 1));
    }

    #[test]
    fn doubled_scheme_complexity() {
        let spec = RingSpec::oriented(vec![2, 7, 4]);
        let sim = run(&spec, IdScheme::Doubled, SchedulerKind::Fifo, 0);
        assert_eq!(sim.stats().total_sent, 3 * (4 * 7 - 1));
        assert_eq!(sim.node(1).output().unwrap().role, Role::Leader);
    }

    #[test]
    fn all_port_layouts_n3() {
        // Sweep every flip combination of a 3-ring: the algorithm must work
        // for all assignments of the nodes' ports.
        for mask in 0u8..8 {
            let flips = (0..3).map(|i| mask >> i & 1 == 1).collect();
            let spec = RingSpec::with_flips(vec![3, 9, 5], flips);
            for scheme in [IdScheme::Doubled, IdScheme::Improved] {
                let sim = run(&spec, scheme, SchedulerKind::Random, u64::from(mask));
                assert_eq!(
                    sim.node(1).output().unwrap().role,
                    Role::Leader,
                    "mask {mask} scheme {scheme}"
                );
                for i in [0usize, 2] {
                    assert_eq!(
                        sim.node(i).output().unwrap().role,
                        Role::NonLeader,
                        "mask {mask} node {i}"
                    );
                }
                assert!(
                    orientation_consistent(&spec, &sim),
                    "mask {mask} scheme {scheme}"
                );
                assert_eq!(
                    sim.stats().total_sent,
                    scheme.predicted_messages(3, 9),
                    "mask {mask} scheme {scheme}"
                );
            }
        }
    }

    #[test]
    fn orientation_agrees_with_busier_direction() {
        // In the improved scheme the direction of ℓ's Port_1 carries
        // ID_max + 1 pulses per node and the other ID_max; every node must
        // label ports accordingly.
        let spec = RingSpec::with_flips(vec![5, 2, 8, 3], vec![true, false, true, true]);
        let sim = run(&spec, IdScheme::Improved, SchedulerKind::Lifo, 1);
        assert!(orientation_consistent(&spec, &sim));
        for i in 0..4 {
            let node = sim.node(i);
            let [r0, r1] = node.rho();
            assert_eq!(r0 + r1, 2 * 8 + 1, "node {i} total receives");
            assert_ne!(r0, r1, "asymmetry is what orients the ring");
        }
    }

    #[test]
    fn single_node_ring_stabilizes() {
        let spec = RingSpec::oriented(vec![3]);
        let sim = run(&spec, IdScheme::Improved, SchedulerKind::Fifo, 0);
        let out = sim.node(0).output().expect("decided");
        assert_eq!(out.role, Role::Leader);
        assert_eq!(sim.stats().total_sent, 2 * 3 + 1);
    }

    #[test]
    fn two_node_ring_with_flip() {
        let spec = RingSpec::with_flips(vec![2, 6], vec![true, false]);
        for kind in SchedulerKind::ALL {
            let sim = run(&spec, IdScheme::Improved, kind, 9);
            assert_eq!(sim.node(1).output().unwrap().role, Role::Leader, "{kind}");
            assert_eq!(
                sim.node(0).output().unwrap().role,
                Role::NonLeader,
                "{kind}"
            );
            assert!(orientation_consistent(&spec, &sim), "{kind}");
        }
    }

    #[test]
    fn resampling_preserves_election_and_uniquifies_ids() {
        // Proposition 19 on a ring with duplicate IDs below the max.
        let spec = RingSpec::oriented(vec![4, 4, 9, 4, 4]);
        let nodes = (0..spec.len())
            .map(|i| Alg3Node::with_resampling(spec.id(i), IdScheme::Improved, 1000 + i as u64))
            .collect();
        let mut sim: Simulation<Pulse, Alg3Node> =
            Simulation::new(spec.wiring(), nodes, SchedulerKind::Random.build(5));
        let report = sim.run(Budget::default());
        assert_eq!(report.outcome, Outcome::Quiescent);
        assert_eq!(sim.node(2).output().unwrap().role, Role::Leader);
        // The max-ID node never resamples (min ρ never exceeds its ID by
        // construction... it does reach ID_max+1 on one side only).
        assert_eq!(sim.node(2).id(), 9);
    }

    #[test]
    fn virtual_id_schemes() {
        assert_eq!(IdScheme::Doubled.virtual_id(5, 0), 9);
        assert_eq!(IdScheme::Doubled.virtual_id(5, 1), 10);
        assert_eq!(IdScheme::Improved.virtual_id(5, 0), 5);
        assert_eq!(IdScheme::Improved.virtual_id(5, 1), 6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_id() {
        let _ = Alg3Node::new(0, IdScheme::Improved);
    }
}
