//! Common vocabulary of the leader-election task.

use co_net::{NodeIndex, Outcome, RingSpec};
use std::fmt;

/// A node's decision in the leader-election task.
///
/// Exactly one node must output `Leader`; every other node must output
/// `NonLeader` (paper, Section 3).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Role {
    /// The elected node.
    Leader,
    /// Every other node.
    NonLeader,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Role::Leader => f.write_str("Leader"),
            Role::NonLeader => f.write_str("Non-Leader"),
        }
    }
}

/// Why an election run failed validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ElectionError {
    /// The run did not reach the required outcome (e.g. budget ran out).
    BadOutcome {
        /// What the run produced.
        got: Outcome,
    },
    /// Zero or more than one node output `Leader`.
    WrongLeaderCount {
        /// Positions that claimed leadership.
        leaders: Vec<NodeIndex>,
    },
    /// A node other than the maximum-ID node was elected.
    WrongLeader {
        /// Elected position.
        got: NodeIndex,
        /// Expected position (first holder of `ID_max`).
        expected: NodeIndex,
    },
    /// A node produced no output.
    MissingOutput {
        /// The silent node.
        node: NodeIndex,
    },
    /// Orientation outputs do not form a consistent clockwise walk.
    InconsistentOrientation,
}

impl fmt::Display for ElectionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElectionError::BadOutcome { got } => write!(f, "unexpected run outcome: {got}"),
            ElectionError::WrongLeaderCount { leaders } => {
                write!(f, "expected exactly one leader, got {leaders:?}")
            }
            ElectionError::WrongLeader { got, expected } => {
                write!(f, "elected node {got}, expected {expected}")
            }
            ElectionError::MissingOutput { node } => write!(f, "node {node} produced no output"),
            ElectionError::InconsistentOrientation => {
                f.write_str("ring orientation outputs are inconsistent")
            }
        }
    }
}

impl std::error::Error for ElectionError {}

/// Outcome of running one of the paper's election algorithms on a ring.
#[derive(Clone, Debug)]
pub struct ElectionReport {
    /// How the simulation ended.
    pub outcome: Outcome,
    /// Total pulses sent — the paper's message complexity of the execution.
    pub total_messages: u64,
    /// Deliveries performed.
    pub steps: u64,
    /// Position of the unique leader, if exactly one node output `Leader`.
    pub leader: Option<NodeIndex>,
    /// Every node's final role (position order).
    pub roles: Vec<Role>,
    /// The theoretical message complexity for this ring, when the paper
    /// gives an exact formula (e.g. `n(2·ID_max + 1)` for Algorithm 2).
    pub predicted_messages: Option<u64>,
}

impl ElectionReport {
    /// Whether the run achieved the paper's *quiescent termination*.
    #[must_use]
    pub fn quiescently_terminated(&self) -> bool {
        self.outcome == Outcome::QuiescentTerminated
    }

    /// Whether the run reached quiescence (with or without termination).
    #[must_use]
    pub fn reached_quiescence(&self) -> bool {
        matches!(
            self.outcome,
            Outcome::QuiescentTerminated | Outcome::Quiescent
        )
    }

    /// Validates the election against a ring spec: exactly one leader, at the
    /// position of the maximal ID.
    ///
    /// # Errors
    ///
    /// Returns the first [`ElectionError`] found, if any.
    pub fn validate(&self, spec: &RingSpec) -> Result<(), ElectionError> {
        if !self.reached_quiescence() {
            return Err(ElectionError::BadOutcome { got: self.outcome });
        }
        let leaders: Vec<NodeIndex> = self
            .roles
            .iter()
            .enumerate()
            .filter(|(_, r)| **r == Role::Leader)
            .map(|(i, _)| i)
            .collect();
        if leaders.len() != 1 {
            return Err(ElectionError::WrongLeaderCount { leaders });
        }
        let expected = spec.max_position();
        if leaders[0] != expected {
            return Err(ElectionError::WrongLeader {
                got: leaders[0],
                expected,
            });
        }
        Ok(())
    }
}

/// Derives the unique-leader position from a role vector, if it exists.
#[must_use]
pub fn unique_leader(roles: &[Role]) -> Option<NodeIndex> {
    let mut leaders = roles
        .iter()
        .enumerate()
        .filter(|(_, r)| **r == Role::Leader);
    match (leaders.next(), leaders.next()) {
        (Some((i, _)), None) => Some(i),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_leader_detection() {
        use Role::{Leader, NonLeader};
        assert_eq!(unique_leader(&[NonLeader, Leader, NonLeader]), Some(1));
        assert_eq!(unique_leader(&[NonLeader, NonLeader]), None);
        assert_eq!(unique_leader(&[Leader, Leader]), None);
        assert_eq!(unique_leader(&[]), None);
    }

    #[test]
    fn validate_flags_wrong_leader() {
        let spec = RingSpec::oriented(vec![5, 9, 1]);
        let report = ElectionReport {
            outcome: Outcome::Quiescent,
            total_messages: 0,
            steps: 0,
            leader: Some(0),
            roles: vec![Role::Leader, Role::NonLeader, Role::NonLeader],
            predicted_messages: None,
        };
        assert_eq!(
            report.validate(&spec),
            Err(ElectionError::WrongLeader {
                got: 0,
                expected: 1
            })
        );
    }

    #[test]
    fn validate_accepts_correct_election() {
        let spec = RingSpec::oriented(vec![5, 9, 1]);
        let report = ElectionReport {
            outcome: Outcome::QuiescentTerminated,
            total_messages: 57,
            steps: 57,
            leader: Some(1),
            roles: vec![Role::NonLeader, Role::Leader, Role::NonLeader],
            predicted_messages: Some(57),
        };
        assert!(report.validate(&spec).is_ok());
        assert!(report.quiescently_terminated());
    }

    #[test]
    fn validate_flags_bad_outcome() {
        let spec = RingSpec::oriented(vec![1]);
        let report = ElectionReport {
            outcome: Outcome::BudgetExhausted,
            total_messages: 0,
            steps: 0,
            leader: None,
            roles: vec![Role::NonLeader],
            predicted_messages: None,
        };
        assert!(matches!(
            report.validate(&spec),
            Err(ElectionError::BadOutcome { .. })
        ));
    }

    #[test]
    fn error_display() {
        let err = ElectionError::WrongLeaderCount {
            leaders: vec![0, 2],
        };
        assert!(err.to_string().contains("exactly one leader"));
        assert!(ElectionError::InconsistentOrientation
            .to_string()
            .contains("orientation"));
    }
}
