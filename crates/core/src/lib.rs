//! # `co-core` — content-oblivious leader election on rings
//!
//! A faithful, executable reproduction of *Content-Oblivious Leader Election
//! on Rings* (Frei, Gelles, Ghazy, Nolin; DISC 2024). Nodes communicate over
//! an asynchronous network whose noise erases the content of every message,
//! leaving only contentless *pulses*; algorithms may depend solely on the
//! order in which pulses arrive from each neighbour.
//!
//! ## The paper's results, as code
//!
//! | Paper | Here | Guarantee |
//! |-------|------|-----------|
//! | Algorithm 1 (§3.1) | [`alg1::Alg1Node`] | quiescently *stabilizing* election, oriented ring |
//! | Algorithm 2 / Theorem 1 (§3.2) | [`alg2::Alg2Node`] | quiescently *terminating* election, exactly `n(2·ID_max + 1)` pulses |
//! | Algorithm 3 / Prop. 15 & Theorem 2 (§4) | [`alg3::Alg3Node`] | stabilizing election **and ring orientation** on non-oriented rings |
//! | Algorithm 4 / Theorem 3 (§5) | [`anonymous`] | anonymous rings: random IDs, election whp |
//! | Proposition 19 (§5) | [`alg3::Alg3Node::with_resampling`] | unique IDs for all nodes whp |
//! | Theorem 20 / Definition 21 (§6) | [`lower_bound`] | solitude patterns, the `n⌊log(ID_max/n)⌋` bound, and the proof's witness construction |
//! | Lemmas 6–12, 17 (§3.1) | [`invariants`] | executable invariant monitors checked on every step |
//! | §3.2 design rationale | [`ablation`] | Algorithm 2 *without* the receive gate — exhaustively shown incorrect |
//! | §7 open problem groundwork | [`general`] | content-oblivious flood-echo wave on arbitrary graphs |
//!
//! ## Quickstart
//!
//! ```rust
//! use co_core::{runner, IdAssignment};
//! use co_net::{RingSpec, SchedulerKind};
//!
//! // Elect a leader on an oriented ring of 8 nodes with IDs 1..=8.
//! let spec = RingSpec::oriented((1..=8).collect());
//! let report = runner::run_alg2(&spec, SchedulerKind::Random, 42);
//!
//! assert!(report.quiescently_terminated());
//! assert_eq!(report.leader, Some(7));              // position of ID 8
//! assert_eq!(report.total_messages, 8 * (2 * 8 + 1)); // Theorem 1, exactly
//! # let _ = IdAssignment::Contiguous;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod alg1;
pub mod alg1_async;
pub mod alg2;
pub mod alg3;
pub mod anonymous;
pub mod election;
pub mod general;
pub mod id;
pub mod invariants;
pub mod lower_bound;
pub mod registry;
pub mod runner;

pub use alg1::Alg1Node;
pub use alg1_async::{alg1_async_ring, alg1_future};
pub use alg2::Alg2Node;
pub use alg3::{Alg3Node, Alg3Output, IdScheme};
pub use election::{ElectionError, ElectionReport, Role};
pub use id::IdAssignment;
pub use registry::{Capability, ProtocolSpec, Registry, RegistryError};
