//! The serialized round-broadcast primitive.
//!
//! ## Protocol
//!
//! Computation proceeds in globally serialized *rounds*. At any time exactly
//! one node holds the *token*; the root (the elected leader) holds it first.
//! A round transmits one `u64` payload from the holder to every node:
//!
//! 1. the holder sends a clockwise *train* of `payload + 2` pulses (a train
//!    of length 1 is reserved for the HALT round);
//! 2. every other node counts and relays each train pulse;
//! 3. the train returns to the holder (it passed through all `n` nodes);
//!    only then does the holder send a single **counterclockwise
//!    end-marker**;
//! 4. a node receiving the marker knows its train count is final — the
//!    marker was emitted only after the full train had passed *every* node,
//!    so per-channel FIFO plus causality guarantee all train pulses already
//!    arrived — decodes `payload = count − 2`, relays the marker, and
//!    resets its counter;
//! 5. the marker returns to the holder: the round is complete at every
//!    node. The holder then either *keeps* the token (starts another train
//!    immediately), *passes* it (sends one more CCW pulse — the **grant** —
//!    which its counterclockwise neighbour, and only it, receives), or has
//!    already sent the HALT round, after which every node terminates on the
//!    marker and the holder terminates on the marker's return.
//!
//! ## Content-obliviousness and disambiguation
//!
//! Every message is a bare pulse; a node classifies arrivals purely by port
//! (direction) and its own counters:
//!
//! * CW pulse at a non-holder → train pulse (count, relay);
//! * CW pulse at the holder → its own train returning (count down);
//! * CCW pulse with a nonzero train count → end-marker (decode, relay);
//! * CCW pulse with a zero train count at a non-holder → token grant
//!   (become holder) — markers can never arrive on a zero count because
//!   every train has length ≥ 1;
//! * CCW pulse at a holder awaiting it → its own marker returning.
//!
//! Between the marker's return to the holder and the next train, the
//! network contains at most the single grant pulse, so no two rounds ever
//! overlap — which is what makes the unary encoding sound.

use co_net::{Context, Port, Protocol, Pulse};
use std::fmt;

/// What the token holder does with its turn.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TokenAction {
    /// Broadcast the payload, then pass the token counterclockwise.
    Broadcast(u64),
    /// Broadcast the payload and keep the token for another round.
    BroadcastKeep(u64),
    /// Broadcast the HALT round: every node terminates quiescently.
    Halt,
}

/// An application driven by the round-broadcast layer.
///
/// The layer invokes [`RoundApp::on_token`] whenever this node holds the
/// token and [`RoundApp::on_round`] at *every* node when a data round
/// completes. The root's first `on_token` happens at start-up.
pub trait RoundApp {
    /// The application's final (or current) per-node output.
    type Output: Clone + fmt::Debug;

    /// Decide what to do with the token.
    fn on_token(&mut self) -> TokenAction;

    /// A data round completed: `payload` was broadcast; `was_sender` is true
    /// at the node that held the token for the round.
    fn on_round(&mut self, payload: u64, was_sender: bool);

    /// The node's output (queried any time; meaningful after HALT).
    fn output(&self) -> Option<Self::Output>;
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum HolderState {
    /// Not holding the token; counting train pulses.
    Relay,
    /// Holder: train sent, counting its return.
    AwaitTrain {
        remaining: u64,
        payload: u64,
        keep: bool,
        halt: bool,
    },
    /// Holder: marker sent, awaiting its return.
    AwaitMarker {
        payload: u64,
        keep: bool,
        halt: bool,
    },
}

/// A node of the round-broadcast layer (generic over the [`RoundApp`]).
#[derive(Clone, Debug)]
pub struct RoundNode<A> {
    app: A,
    is_root: bool,
    cw_port: Port,
    state: HolderState,
    /// CW train pulses received since the last end-marker (non-holders).
    train_count: u64,
    terminated: bool,
    /// Total rounds completed at this node (diagnostics).
    rounds: u64,
}

impl<A: RoundApp> RoundNode<A> {
    /// Creates a node; `is_root` marks the initial token holder (exactly one
    /// node — the elected leader — must be the root).
    #[must_use]
    pub fn new(app: A, is_root: bool, cw_port: Port) -> RoundNode<A> {
        RoundNode {
            app,
            is_root,
            cw_port,
            state: HolderState::Relay,
            train_count: 0,
            terminated: false,
            rounds: 0,
        }
    }

    /// The wrapped application.
    #[must_use]
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Rounds completed at this node.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    fn send_cw(&self, count: u64, ctx: &mut Context<'_, Pulse>) {
        for _ in 0..count {
            ctx.send(self.cw_port, Pulse);
        }
    }

    fn send_ccw(&self, ctx: &mut Context<'_, Pulse>) {
        ctx.send(self.cw_port.opposite(), Pulse);
    }

    /// Take a turn as token holder.
    fn act_on_token(&mut self, ctx: &mut Context<'_, Pulse>) {
        match self.app.on_token() {
            TokenAction::Broadcast(payload) => {
                let len = payload + 2;
                self.send_cw(len, ctx);
                self.state = HolderState::AwaitTrain {
                    remaining: len,
                    payload,
                    keep: false,
                    halt: false,
                };
            }
            TokenAction::BroadcastKeep(payload) => {
                let len = payload + 2;
                self.send_cw(len, ctx);
                self.state = HolderState::AwaitTrain {
                    remaining: len,
                    payload,
                    keep: true,
                    halt: false,
                };
            }
            TokenAction::Halt => {
                self.send_cw(1, ctx);
                self.state = HolderState::AwaitTrain {
                    remaining: 1,
                    payload: 0,
                    keep: false,
                    halt: true,
                };
            }
        }
    }
}

impl<A: RoundApp> Protocol<Pulse> for RoundNode<A> {
    type Output = A::Output;

    fn on_start(&mut self, ctx: &mut Context<'_, Pulse>) {
        if self.is_root {
            self.act_on_token(ctx);
        }
    }

    fn on_message(&mut self, port: Port, _msg: Pulse, ctx: &mut Context<'_, Pulse>) {
        if self.terminated {
            return;
        }
        let is_cw_pulse = port == self.cw_port.opposite();
        match (&mut self.state, is_cw_pulse) {
            // ---- Holder: own train returning.
            (
                HolderState::AwaitTrain {
                    remaining,
                    payload,
                    keep,
                    halt,
                },
                true,
            ) => {
                *remaining -= 1;
                if *remaining == 0 {
                    let (payload, keep, halt) = (*payload, *keep, *halt);
                    self.state = HolderState::AwaitMarker {
                        payload,
                        keep,
                        halt,
                    };
                    self.send_ccw(ctx);
                }
            }
            // ---- Holder: own marker returning.
            (
                HolderState::AwaitMarker {
                    payload,
                    keep,
                    halt,
                },
                false,
            ) => {
                let (payload, keep, halt) = (*payload, *keep, *halt);
                self.rounds += 1;
                if halt {
                    self.terminated = true;
                    return;
                }
                self.app.on_round(payload, true);
                self.state = HolderState::Relay;
                if keep {
                    self.act_on_token(ctx);
                } else {
                    // Pass the token: one extra CCW pulse; only our CCW
                    // neighbour can receive it on a zero train count.
                    self.send_ccw(ctx);
                }
            }
            // ---- Holder receiving from the unexpected direction: protocol
            // violation (cannot happen on a correct ring).
            (HolderState::AwaitTrain { .. }, false) | (HolderState::AwaitMarker { .. }, true) => {
                debug_assert!(false, "round-broadcast: pulse from impossible direction");
            }
            // ---- Non-holder: train pulse.
            (HolderState::Relay, true) => {
                self.train_count += 1;
                self.send_cw(1, ctx);
            }
            // ---- Non-holder: marker or grant.
            (HolderState::Relay, false) => {
                if self.train_count > 0 {
                    // End-marker: round complete here.
                    let len = self.train_count;
                    self.train_count = 0;
                    self.rounds += 1;
                    // Relay the marker first so it keeps travelling even if
                    // the app halts us... HALT (train length 1) terminates
                    // after relaying.
                    self.send_ccw(ctx);
                    if len == 1 {
                        self.terminated = true;
                    } else {
                        self.app.on_round(len - 2, false);
                    }
                } else {
                    // Grant: we now hold the token.
                    self.act_on_token(ctx);
                }
            }
        }
    }

    fn is_terminated(&self) -> bool {
        self.terminated
    }

    fn output(&self) -> Option<A::Output> {
        self.app.output()
    }
}

/// Exact pulse cost of one data round on an `n`-node ring: the train crosses
/// every one of the `n` clockwise channels `payload + 2` times and the
/// marker every counterclockwise channel once.
#[must_use]
pub fn round_cost(n: u64, payload: u64) -> u64 {
    n * (payload + 2) + n
}

/// Exact pulse cost of passing the token (the grant pulse).
pub const GRANT_COST: u64 = 1;

/// Exact pulse cost of the HALT round: a length-1 train plus the marker.
#[must_use]
pub fn halt_cost(n: u64) -> u64 {
    n + n
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_net::{Budget, Outcome, RingSpec, SchedulerKind, Simulation};

    /// Test app: the root broadcasts each value of a script (keeping the
    /// token), then halts; every node records what it saw.
    #[derive(Clone, Debug)]
    struct ScriptApp {
        script: Vec<u64>,
        next: usize,
        seen: Vec<u64>,
    }

    impl ScriptApp {
        fn new(script: Vec<u64>) -> ScriptApp {
            ScriptApp {
                script,
                next: 0,
                seen: Vec::new(),
            }
        }
    }

    impl RoundApp for ScriptApp {
        type Output = Vec<u64>;
        fn on_token(&mut self) -> TokenAction {
            if self.next < self.script.len() {
                let v = self.script[self.next];
                self.next += 1;
                TokenAction::BroadcastKeep(v)
            } else {
                TokenAction::Halt
            }
        }
        fn on_round(&mut self, payload: u64, _was_sender: bool) {
            self.seen.push(payload);
        }
        fn output(&self) -> Option<Vec<u64>> {
            Some(self.seen.clone())
        }
    }

    fn run_script(
        n: usize,
        script: Vec<u64>,
        kind: SchedulerKind,
        seed: u64,
    ) -> (Vec<Vec<u64>>, u64, Outcome) {
        let spec = RingSpec::oriented((1..=n as u64).collect());
        let nodes: Vec<RoundNode<ScriptApp>> = (0..n)
            .map(|i| RoundNode::new(ScriptApp::new(script.clone()), i == 0, spec.cw_port(i)))
            .collect();
        let mut sim = Simulation::new(spec.wiring(), nodes, kind.build(seed));
        let report = sim.run(Budget::default());
        let outputs = (0..n)
            .map(|i| sim.node(i).output().expect("script app always outputs"))
            .collect();
        (outputs, report.total_sent, report.outcome)
    }

    #[test]
    fn broadcast_reaches_every_node_in_order() {
        let script = vec![0u64, 5, 42, 3];
        for kind in SchedulerKind::ALL {
            let (outputs, _, outcome) = run_script(4, script.clone(), kind, 9);
            assert_eq!(outcome, Outcome::QuiescentTerminated, "{kind}");
            for (i, out) in outputs.iter().enumerate() {
                assert_eq!(out, &script, "{kind} node {i}");
            }
        }
    }

    #[test]
    fn exact_message_cost() {
        let script = vec![0u64, 5];
        let (_, sent, _) = run_script(3, script.clone(), SchedulerKind::Fifo, 0);
        let expected: u64 = script.iter().map(|&p| round_cost(3, p)).sum::<u64>() + halt_cost(3);
        assert_eq!(sent, expected);
    }

    #[test]
    fn single_node_ring() {
        let (outputs, _, outcome) = run_script(1, vec![7, 7, 9], SchedulerKind::Random, 2);
        assert_eq!(outcome, Outcome::QuiescentTerminated);
        assert_eq!(outputs[0], vec![7, 7, 9]);
    }

    /// App where the token makes one full loop: node i broadcasts its index.
    #[derive(Clone, Debug)]
    struct OneLoopApp {
        my_value: u64,
        is_root: bool,
        grants: u64,
        seen: Vec<u64>,
    }

    impl RoundApp for OneLoopApp {
        type Output = Vec<u64>;
        fn on_token(&mut self) -> TokenAction {
            self.grants += 1;
            if self.is_root && self.grants == 2 {
                TokenAction::Halt
            } else {
                TokenAction::Broadcast(self.my_value)
            }
        }
        fn on_round(&mut self, payload: u64, _was_sender: bool) {
            self.seen.push(payload);
        }
        fn output(&self) -> Option<Vec<u64>> {
            Some(self.seen.clone())
        }
    }

    #[test]
    fn token_rotates_counterclockwise_once_around() {
        let n = 5usize;
        let spec = RingSpec::oriented((1..=n as u64).collect());
        let nodes: Vec<RoundNode<OneLoopApp>> = (0..n)
            .map(|i| {
                RoundNode::new(
                    OneLoopApp {
                        my_value: 100 + i as u64,
                        is_root: i == 2,
                        grants: 0,
                        seen: Vec::new(),
                    },
                    i == 2,
                    spec.cw_port(i),
                )
            })
            .collect();
        let mut sim = Simulation::new(spec.wiring(), nodes, SchedulerKind::Random.build(3));
        let report = sim.run(Budget::default());
        assert_eq!(report.outcome, Outcome::QuiescentTerminated);
        // Token order: root 2, then CCW: 1, 0, 4, 3, back to 2 (halt).
        let expected = vec![102, 101, 100, 104, 103];
        for i in 0..n {
            assert_eq!(sim.node(i).output().unwrap(), expected, "node {i}");
        }
    }
}
