//! Applications on top of the round-broadcast layer.
//!
//! Each app is a [`RoundApp`] that every node instantiates; the elected
//! leader instantiates it as root. They demonstrate the "arbitrary
//! computation" promise of Corollary 5 on concrete tasks:
//!
//! * [`RingSizeApp`] — every node learns `n` (famously impossible with
//!   *termination* on anonymous rings; here IDs + election make it work);
//! * [`AggregateApp`] — max/sum over per-node inputs plus distance-from-
//!   leader labelling, in one token loop;
//! * [`ReplicatedCounterApp`] — a leader-driven replicated state machine:
//!   the root broadcasts a script of deltas that every node applies.

use crate::broadcast::{RoundApp, TokenAction};

/// Every node learns the ring size `n`.
///
/// Protocol: counting rounds (payload `1`) rotate the token once around the
/// ring; when the root is granted again it has counted `n` rounds, announces
/// `n + 1` (offset to stay distinguishable from counting rounds), and halts.
#[derive(Clone, Debug)]
pub struct RingSizeApp {
    is_root: bool,
    grants: u64,
    counting_rounds: u64,
    announced: Option<u64>,
}

impl RingSizeApp {
    /// Creates the app; `is_root` must be true exactly at the leader.
    #[must_use]
    pub fn new(is_root: bool) -> RingSizeApp {
        RingSizeApp {
            is_root,
            grants: 0,
            counting_rounds: 0,
            announced: None,
        }
    }
}

impl RoundApp for RingSizeApp {
    type Output = u64;

    fn on_token(&mut self) -> TokenAction {
        self.grants += 1;
        if self.is_root && self.grants == 2 {
            // Token returned: we counted one round per node.
            TokenAction::BroadcastKeep(self.counting_rounds + 1)
        } else if self.is_root && self.grants == 3 {
            TokenAction::Halt
        } else {
            TokenAction::Broadcast(1)
        }
    }

    fn on_round(&mut self, payload: u64, _was_sender: bool) {
        if payload == 1 {
            self.counting_rounds += 1;
        } else {
            self.announced = Some(payload - 1);
        }
    }

    fn output(&self) -> Option<u64> {
        self.announced
    }
}

/// Result of [`AggregateApp`]: global aggregates plus a per-node label.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AggregateOutput {
    /// Maximum of all inputs.
    pub max: u64,
    /// Sum of all inputs.
    pub sum: u64,
    /// Number of participating nodes (= ring size).
    pub count: u64,
    /// This node's counterclockwise distance from the leader (leader = 0).
    pub distance: u64,
}

/// One token loop in which every node broadcasts its input; all nodes
/// compute max, sum, count, and learn their distance from the leader.
#[derive(Clone, Debug)]
pub struct AggregateApp {
    input: u64,
    is_root: bool,
    grants: u64,
    rounds_seen: u64,
    my_round: Option<u64>,
    max: u64,
    sum: u64,
    halted_result: Option<AggregateOutput>,
}

impl AggregateApp {
    /// Creates the app with this node's input value.
    #[must_use]
    pub fn new(input: u64, is_root: bool) -> AggregateApp {
        AggregateApp {
            input,
            is_root,
            grants: 0,
            rounds_seen: 0,
            my_round: None,
            max: 0,
            sum: 0,
            halted_result: None,
        }
    }
}

impl RoundApp for AggregateApp {
    type Output = AggregateOutput;

    fn on_token(&mut self) -> TokenAction {
        self.grants += 1;
        if self.is_root && self.grants == 2 {
            // Everyone has broadcast exactly once; finish.
            self.halted_result = Some(AggregateOutput {
                max: self.max,
                sum: self.sum,
                count: self.rounds_seen,
                distance: self.my_round.expect("root broadcasts in round 1") - 1,
            });
            TokenAction::Halt
        } else {
            TokenAction::Broadcast(self.input)
        }
    }

    fn on_round(&mut self, payload: u64, was_sender: bool) {
        self.rounds_seen += 1;
        self.max = self.max.max(payload);
        self.sum += payload;
        if was_sender {
            self.my_round = Some(self.rounds_seen);
        }
    }

    fn output(&self) -> Option<AggregateOutput> {
        if let Some(done) = self.halted_result {
            return Some(done);
        }
        // Non-root nodes finalize from their last observed state; the
        // output is only read after quiescent termination, at which point
        // every round has been observed.
        self.my_round.map(|r| AggregateOutput {
            max: self.max,
            sum: self.sum,
            count: self.rounds_seen,
            distance: r - 1,
        })
    }
}

/// A leader-driven replicated counter: the root broadcasts a script of
/// signed deltas (zig-zag encoded into `u64`s) that every replica applies
/// in order. After HALT all replicas agree on the final value.
#[derive(Clone, Debug)]
pub struct ReplicatedCounterApp {
    script: Vec<i64>,
    next: usize,
    value: i64,
    applied: u64,
}

impl ReplicatedCounterApp {
    /// Root constructor: the script of deltas to replicate.
    #[must_use]
    pub fn root(script: Vec<i64>) -> ReplicatedCounterApp {
        ReplicatedCounterApp {
            script,
            next: 0,
            value: 0,
            applied: 0,
        }
    }

    /// Replica constructor (no script).
    #[must_use]
    pub fn replica() -> ReplicatedCounterApp {
        ReplicatedCounterApp::root(Vec::new())
    }

    /// Zig-zag encodes a signed delta for unary broadcast (small values stay
    /// small, keeping trains short).
    #[must_use]
    pub fn encode(delta: i64) -> u64 {
        ((delta << 1) ^ (delta >> 63)) as u64
    }

    /// Inverse of [`ReplicatedCounterApp::encode`].
    #[must_use]
    pub fn decode(payload: u64) -> i64 {
        ((payload >> 1) as i64) ^ -((payload & 1) as i64)
    }

    /// The replica's current counter value.
    #[must_use]
    pub fn value(&self) -> i64 {
        self.value
    }

    /// How many deltas this replica has applied.
    #[must_use]
    pub fn applied(&self) -> u64 {
        self.applied
    }
}

impl RoundApp for ReplicatedCounterApp {
    type Output = i64;

    fn on_token(&mut self) -> TokenAction {
        if self.next < self.script.len() {
            let delta = self.script[self.next];
            self.next += 1;
            TokenAction::BroadcastKeep(Self::encode(delta))
        } else {
            TokenAction::Halt
        }
    }

    fn on_round(&mut self, payload: u64, _was_sender: bool) {
        self.value += Self::decode(payload);
        self.applied += 1;
    }

    fn output(&self) -> Option<i64> {
        Some(self.value)
    }
}

/// Leader-driven byte broadcast: the root transmits an arbitrary byte
/// string (one byte per round, word = `byte + 1`); every node reassembles
/// it. "Send a message to everyone" over channels that erase all messages.
#[derive(Clone, Debug)]
pub struct BytesApp {
    script: Vec<u8>,
    next: usize,
    received: Vec<u8>,
}

impl BytesApp {
    /// Root constructor: the bytes to broadcast.
    #[must_use]
    pub fn root(script: Vec<u8>) -> BytesApp {
        BytesApp {
            script,
            next: 0,
            received: Vec::new(),
        }
    }

    /// Replica constructor.
    #[must_use]
    pub fn replica() -> BytesApp {
        BytesApp::root(Vec::new())
    }

    /// The bytes received so far (complete after quiescent termination).
    #[must_use]
    pub fn received(&self) -> &[u8] {
        &self.received
    }
}

impl RoundApp for BytesApp {
    type Output = Vec<u8>;

    fn on_token(&mut self) -> TokenAction {
        if self.next < self.script.len() {
            let byte = self.script[self.next];
            self.next += 1;
            TokenAction::BroadcastKeep(u64::from(byte))
        } else {
            TokenAction::Halt
        }
    }

    fn on_round(&mut self, payload: u64, _was_sender: bool) {
        self.received
            .push(u8::try_from(payload).expect("byte-range payload"));
    }

    fn output(&self) -> Option<Vec<u8>> {
        Some(self.received.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broadcast::RoundNode;
    use co_net::{Budget, Outcome, Protocol, Pulse, RingSpec, SchedulerKind, Simulation};

    fn run_app<A, F>(
        n: usize,
        root: usize,
        make: F,
        kind: SchedulerKind,
        seed: u64,
    ) -> Simulation<Pulse, RoundNode<A>>
    where
        A: RoundApp,
        F: Fn(usize, bool) -> A,
    {
        let spec = RingSpec::oriented((1..=n as u64).collect());
        let nodes: Vec<RoundNode<A>> = (0..n)
            .map(|i| RoundNode::new(make(i, i == root), i == root, spec.cw_port(i)))
            .collect();
        let mut sim = Simulation::new(spec.wiring(), nodes, kind.build(seed));
        let report = sim.run(Budget::default());
        assert_eq!(report.outcome, Outcome::QuiescentTerminated);
        sim
    }

    #[test]
    fn ring_size_learned_by_all() {
        for n in [1usize, 2, 3, 7, 12] {
            let sim = run_app(n, 0, |_, r| RingSizeApp::new(r), SchedulerKind::Random, 5);
            for i in 0..n {
                assert_eq!(sim.node(i).output(), Some(n as u64), "n={n} node {i}");
            }
        }
    }

    #[test]
    fn aggregate_computes_max_sum_count_distance() {
        let inputs = [13u64, 2, 40, 7, 7];
        let root = 2;
        let sim = run_app(
            5,
            root,
            |i, r| AggregateApp::new(inputs[i], r),
            SchedulerKind::Lifo,
            8,
        );
        for i in 0..5 {
            let out = sim.node(i).output().expect("decided");
            assert_eq!(out.max, 40, "node {i}");
            assert_eq!(out.sum, 69, "node {i}");
            assert_eq!(out.count, 5, "node {i}");
        }
        // Distances: token rotates CCW from the root.
        assert_eq!(sim.node(2).output().unwrap().distance, 0);
        assert_eq!(sim.node(1).output().unwrap().distance, 1);
        assert_eq!(sim.node(0).output().unwrap().distance, 2);
        assert_eq!(sim.node(4).output().unwrap().distance, 3);
        assert_eq!(sim.node(3).output().unwrap().distance, 4);
    }

    #[test]
    fn replicated_counter_converges() {
        let script = vec![5i64, -3, 10, -20, 4];
        let sim = run_app(
            4,
            1,
            |_, r| {
                if r {
                    ReplicatedCounterApp::root(script.clone())
                } else {
                    ReplicatedCounterApp::replica()
                }
            },
            SchedulerKind::Random,
            17,
        );
        for i in 0..4 {
            assert_eq!(sim.node(i).output(), Some(-4), "node {i}");
            assert_eq!(sim.node(i).app().applied(), 5, "node {i}");
        }
    }

    #[test]
    fn bytes_broadcast_delivers_the_message() {
        let msg = b"fully defective".to_vec();
        let sim = run_app(
            5,
            3,
            |_, r| {
                if r {
                    BytesApp::root(msg.clone())
                } else {
                    BytesApp::replica()
                }
            },
            SchedulerKind::Random,
            23,
        );
        for i in 0..5 {
            assert_eq!(sim.node(i).output().unwrap(), msg, "node {i}");
        }
    }

    #[test]
    fn empty_message_halts_immediately() {
        let sim = run_app(
            3,
            0,
            |_, r| {
                if r {
                    BytesApp::root(vec![])
                } else {
                    BytesApp::replica()
                }
            },
            SchedulerKind::Fifo,
            0,
        );
        for i in 0..3 {
            assert_eq!(sim.node(i).output().unwrap(), Vec::<u8>::new());
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for delta in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(
                ReplicatedCounterApp::decode(ReplicatedCounterApp::encode(delta)),
                delta
            );
        }
        // Small magnitudes stay small (train length matters).
        assert_eq!(ReplicatedCounterApp::encode(-1), 1);
        assert_eq!(ReplicatedCounterApp::encode(1), 2);
    }
}
