//! The universal ring simulation: Corollary 5 in full.
//!
//! *"Assuming unique IDs, any asynchronous algorithm on rings can be
//! simulated in a fully defective oriented ring."* This module delivers
//! that promise executably: [`UniversalApp`] takes an **arbitrary**
//! content-carrying ring protocol (`P: Protocol<M>` — e.g. Chang–Roberts
//! with its ID-carrying messages) and executes it faithfully over channels
//! that erase all content, by sequencing its message deliveries through the
//! round-broadcast layer.
//!
//! ## How a content-carrying message crosses a contentless network
//!
//! After a **setup loop** (each node learns the ring size `n` and its
//! distance from the root, like [`crate::apps::RingSizeApp`]), the token
//! keeps rotating. A holder with a pending simulated message `(port, m)`
//! broadcasts one word
//!
//! ```text
//! word = 1 + 2·(encode(m)·n + target_distance) + arrival_port_bit
//! ```
//!
//! in unary; every node decodes it and the one at `target_distance`
//! delivers `m` to its inner protocol on the right port, collecting any
//! replies into its own pending queue. A holder with nothing to send
//! broadcasts the reserved no-op word `0`. When the root observes `n`
//! consecutive no-op rounds while its own queue is empty, the simulated
//! algorithm is globally quiescent and the root halts the layer
//! (quiescent termination of the whole composition).
//!
//! The induced delivery order — one message at a time, per-sender FIFO —
//! is a legal asynchronous schedule of the inner protocol, so any of its
//! `∀ schedule` guarantees carry over. The cost is `O(word)` pulses per
//! simulated message: unary encoding is exponential in the message length,
//! the same trade-off the paper's own scheme accepts (content-oblivious
//! computation buys robustness, not efficiency).
//!
//! ```rust
//! use co_compose::universal::simulate_on_defective_ring;
//! use co_classic::chang_roberts::{ChangRobertsNode, CrMsg};
//! use co_core::Role;
//! use co_net::{Port, RingSpec, SchedulerKind};
//!
//! // Chang–Roberts needs to read IDs out of messages — impossible on a
//! // defective ring... unless simulated:
//! let spec = RingSpec::oriented(vec![4, 2, 5]);
//! let out = simulate_on_defective_ring(
//!     &spec,
//!     SchedulerKind::Random,
//!     7,
//!     |i| ChangRobertsNode::new(spec.id(i), Port::One),
//!     |m| match *m {
//!         CrMsg::Candidate(id) => id << 1,
//!         CrMsg::Elected(id) => (id << 1) | 1,
//!     },
//!     |w| if w & 1 == 0 { CrMsg::Candidate(w >> 1) } else { CrMsg::Elected(w >> 1) },
//! );
//! assert!(out.quiescently_terminated);
//! assert_eq!(out.outputs[2], Some(Role::Leader)); // ID 5 wins, via pulses only
//! ```

use crate::broadcast::{RoundApp, TokenAction};
use crate::pipeline::{run_pipeline, PipelineOutput};
use co_core::Role;
use co_net::{Context, Fingerprint, Message, Port, Protocol, RingSpec, SchedulerKind, Snapshot};
use std::collections::VecDeque;
use std::fmt;

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Phase {
    /// Token loop measuring `n` and distances (payloads: 0 = counting,
    /// `n ≥ 1` = the root's announcement).
    Setup,
    /// Message-by-message simulation (payloads: 0 = no-op, `w ≥ 1` =
    /// encoded message).
    Simulate,
}

/// A [`RoundApp`] that simulates an arbitrary ring protocol over the
/// defective ring. Build it through [`simulate_on_defective_ring`].
pub struct UniversalApp<P, M> {
    inner: P,
    encode: fn(&M) -> u64,
    decode: fn(u64) -> M,
    is_root: bool,
    phase: Phase,
    grants: u64,
    counting_rounds: u64,
    n: u64,
    distance: u64,
    pending: VecDeque<(Port, M)>,
    noop_streak: u64,
    halted: bool,
}

impl<P, M> UniversalApp<P, M>
where
    P: Protocol<M>,
    M: Message,
{
    fn new(inner: P, is_root: bool, encode: fn(&M) -> u64, decode: fn(u64) -> M) -> Self {
        UniversalApp {
            inner,
            encode,
            decode,
            is_root,
            phase: Phase::Setup,
            grants: 0,
            counting_rounds: 0,
            n: 0,
            distance: 0,
            pending: VecDeque::new(),
            noop_streak: 0,
            halted: false,
        }
    }

    /// The simulated protocol instance.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Runs an inner-protocol event, routing its sends into `pending`.
    fn run_inner<F: FnOnce(&mut P, &mut Context<'_, M>)>(&mut self, event: F) {
        if self.inner.is_terminated() {
            return; // terminated simulated nodes ignore deliveries
        }
        let mut outbox: Vec<(usize, M)> = Vec::new();
        {
            // Node index 0 is a placeholder: the simulated protocol only
            // observes ports, not indices.
            let mut ctx = Context::buffered(0, &mut outbox);
            event(&mut self.inner, &mut ctx);
        }
        self.pending
            .extend(outbox.into_iter().map(|(p, m)| (Port::from_index(p), m)));
    }

    /// Packs one simulated message into a broadcast word.
    fn pack(&self, port: Port, msg: &M) -> u64 {
        // Sending from the CW port (Port_1) reaches the clockwise
        // neighbour's Port_0, and vice versa — the oriented convention.
        let (target, arrival_bit) = match port {
            Port::One => ((self.distance + self.n - 1) % self.n, 0u64),
            Port::Zero => ((self.distance + 1) % self.n, 1u64),
        };
        1 + 2 * ((self.encode)(msg) * self.n + target) + arrival_bit
    }

    /// Unpacks a broadcast word; delivers it if it is addressed to us.
    fn unpack_and_deliver(&mut self, word: u64) {
        let body = (word - 1) >> 1;
        let arrival_bit = (word - 1) & 1;
        let target = body % self.n;
        let payload = body / self.n;
        if target == self.distance {
            let msg = (self.decode)(payload);
            let port = if arrival_bit == 0 {
                Port::Zero
            } else {
                Port::One
            };
            self.run_inner(|inner, ctx| inner.on_message(port, msg, ctx));
        }
    }
}

impl<P, M> RoundApp for UniversalApp<P, M>
where
    P: Protocol<M>,
    M: Message,
{
    type Output = P::Output;

    fn on_token(&mut self) -> TokenAction {
        self.grants += 1;
        match self.phase {
            Phase::Setup => {
                if self.is_root && self.grants == 2 {
                    // Everyone counted; announce n (≥ 1, distinguishable
                    // from the counting word 0) and keep the token to start
                    // the simulation immediately.
                    TokenAction::BroadcastKeep(self.counting_rounds)
                } else {
                    TokenAction::Broadcast(0)
                }
            }
            Phase::Simulate => {
                if self.is_root && self.pending.is_empty() && self.noop_streak >= self.n {
                    // A full silent loop with an empty queue: the simulated
                    // algorithm is quiescent everywhere.
                    self.halted = true;
                    TokenAction::Halt
                } else if let Some((port, msg)) = self.pending.pop_front() {
                    TokenAction::Broadcast(self.pack(port, &msg))
                } else {
                    TokenAction::Broadcast(0)
                }
            }
        }
    }

    fn on_round(&mut self, payload: u64, was_sender: bool) {
        match self.phase {
            Phase::Setup => {
                if payload == 0 {
                    self.counting_rounds += 1;
                    if was_sender {
                        self.distance = self.counting_rounds - 1;
                    }
                } else {
                    // The announcement: boot the simulated protocol.
                    self.n = payload;
                    self.phase = Phase::Simulate;
                    self.run_inner(|inner, ctx| inner.on_start(ctx));
                }
            }
            Phase::Simulate => {
                if payload == 0 {
                    self.noop_streak += 1;
                } else {
                    self.noop_streak = 0;
                    self.unpack_and_deliver(payload);
                }
            }
        }
    }

    fn output(&self) -> Option<P::Output> {
        self.inner.output()
    }
}

/// Captured state of a [`UniversalApp`]: the inner protocol's snapshot plus
/// the simulation layer's bookkeeping. The `encode`/`decode` function
/// pointers are configuration, not state, and are not captured.
#[derive(Clone, Debug)]
pub struct UniversalAppState<S, M> {
    inner: S,
    is_root: bool,
    phase: Phase,
    grants: u64,
    counting_rounds: u64,
    n: u64,
    distance: u64,
    pending: VecDeque<(Port, M)>,
    noop_streak: u64,
    halted: bool,
}

impl<P, M> Snapshot for UniversalApp<P, M>
where
    P: Protocol<M> + Snapshot,
    M: Message,
{
    type State = UniversalAppState<P::State, M>;

    fn extract(&self) -> Self::State {
        UniversalAppState {
            inner: self.inner.extract(),
            is_root: self.is_root,
            phase: self.phase,
            grants: self.grants,
            counting_rounds: self.counting_rounds,
            n: self.n,
            distance: self.distance,
            pending: self.pending.clone(),
            noop_streak: self.noop_streak,
            halted: self.halted,
        }
    }

    fn restore(&mut self, state: &Self::State) {
        self.inner.restore(&state.inner);
        self.is_root = state.is_root;
        self.phase = state.phase;
        self.grants = state.grants;
        self.counting_rounds = state.counting_rounds;
        self.n = state.n;
        self.distance = state.distance;
        self.pending = state.pending.clone();
        self.noop_streak = state.noop_streak;
        self.halted = state.halted;
    }

    fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_u64(self.inner.fingerprint());
        fp.write_bool(self.is_root);
        fp.write_bool(self.phase == Phase::Simulate);
        fp.write_u64(self.grants);
        fp.write_u64(self.counting_rounds);
        fp.write_u64(self.n);
        fp.write_u64(self.distance);
        fp.write_usize(self.pending.len());
        for (port, msg) in &self.pending {
            fp.write_usize(port.index());
            fp.write_u64((self.encode)(msg));
        }
        fp.write_u64(self.noop_streak);
        fp.write_bool(self.halted);
        fp.finish()
    }
}

impl<P: fmt::Debug, M> fmt::Debug for UniversalApp<P, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UniversalApp")
            .field("inner", &self.inner)
            .field("phase", &self.phase)
            .field("n", &self.n)
            .field("distance", &self.distance)
            .field("pending", &self.pending.len())
            .field("halted", &self.halted)
            .finish()
    }
}

/// Corollary 5, end to end: elect a leader with Algorithm 2, then simulate
/// an arbitrary content-carrying ring protocol over the defective ring.
///
/// * `make_inner(position)` builds the simulated protocol instance of each
///   node (it will run on an oriented ring where `Port::One` is clockwise);
/// * `encode`/`decode` serialise the simulated message type to/from a
///   `u64` word (must round-trip; keep words small — broadcast cost is
///   unary in the word value).
#[must_use]
pub fn simulate_on_defective_ring<P, M>(
    spec: &RingSpec,
    scheduler: SchedulerKind,
    seed: u64,
    make_inner: impl Fn(usize) -> P,
    encode: fn(&M) -> u64,
    decode: fn(u64) -> M,
) -> PipelineOutput<P::Output>
where
    P: Protocol<M>,
    M: Message,
{
    assert!(
        spec.is_oriented(),
        "the universal simulation targets oriented rings (Corollary 5)"
    );
    run_pipeline(spec, scheduler, seed, move |i, role| {
        UniversalApp::new(make_inner(i), role == Role::Leader, encode, decode)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use co_net::Pulse;

    /// A trivial simulated protocol: floods one token around its ring and
    /// counts receipts.
    #[derive(Clone, Debug)]
    struct OneLap {
        start: bool,
        seen: u64,
    }

    impl Protocol<u64> for OneLap {
        type Output = u64;
        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            if self.start {
                ctx.send(Port::One, 17);
            }
        }
        fn on_message(&mut self, _p: Port, m: u64, ctx: &mut Context<'_, u64>) {
            self.seen += 1;
            if !self.start {
                ctx.send(Port::One, m);
            }
        }
        fn output(&self) -> Option<u64> {
            Some(self.seen)
        }
    }

    #[test]
    fn simulated_token_laps_the_ring() {
        let spec = RingSpec::oriented(vec![2, 7, 4, 3]);
        let out = simulate_on_defective_ring(
            &spec,
            SchedulerKind::Random,
            3,
            |i| OneLap {
                start: i == 0,
                seen: 0,
            },
            |m| *m,
            |w| w,
        );
        assert!(out.quiescently_terminated);
        // Every node saw the token exactly once (it dies back at node 0).
        assert_eq!(out.outputs, vec![Some(1); 4]);
        let _ = Pulse; // the transport really is pulses only
    }

    #[test]
    fn single_node_simulation() {
        let spec = RingSpec::oriented(vec![5]);
        let out = simulate_on_defective_ring(
            &spec,
            SchedulerKind::Fifo,
            0,
            |_| OneLap {
                start: true,
                seen: 0,
            },
            |m| *m,
            |w| w,
        );
        assert!(out.quiescently_terminated);
        assert_eq!(out.outputs, vec![Some(1)]);
    }
}
