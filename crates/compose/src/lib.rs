//! # `co-compose` — content-oblivious computation after leader election
//!
//! Corollary 5 of the paper: *any asynchronous algorithm on rings can be
//! simulated in a fully defective oriented ring*, by composing the paper's
//! quiescently-terminating leader election (Algorithm 2) with a
//! root-initiated content-oblivious computation scheme in the style of
//! Censor-Hillel, Cohen, Gelles & Sela (Distributed Computing 2023).
//!
//! This crate implements a **ring-specialised computation layer** of our own
//! design (the general-graph compiler of that paper is out of scope for
//! rings; see `DESIGN.md` §1 for the substitution argument):
//!
//! * [`broadcast`] — a serialized *round-broadcast* primitive: the current
//!   token holder transmits an arbitrary `u64` to every node using only
//!   pulses (unary clockwise train + counterclockwise end-marker), with the
//!   token rotating counterclockwise via an implicit one-hop grant pulse.
//!   Correctness needs only per-channel FIFO and causality, exactly the
//!   guarantees of the fully defective model.
//! * [`apps`] — computations built on the primitive: ring-size counting,
//!   max/sum aggregation with distance labelling, and a leader-driven
//!   replicated counter.
//! * [`pipeline`] — the actual Corollary 5 composition: run Algorithm 2,
//!   and let each node switch to the computation the moment it terminates.
//!   Because Algorithm 2 terminates quiescently *with the leader last*, no
//!   pulse of the first algorithm can ever be mistaken for one of the
//!   second (the paper's message-algorithm attribution, §1.1).
//!
//! ```rust
//! use co_compose::pipeline::elect_then_ring_size;
//! use co_net::{RingSpec, SchedulerKind};
//!
//! let spec = RingSpec::oriented(vec![4, 1, 7, 3, 6]);
//! let out = elect_then_ring_size(&spec, SchedulerKind::Random, 11);
//! assert!(out.quiescently_terminated);
//! // Every node — not just the leader — learned the ring size.
//! assert_eq!(out.outputs, vec![Some(5); 5]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod broadcast;
pub mod pipeline;
pub mod universal;

pub use apps::{AggregateApp, AggregateOutput, BytesApp, ReplicatedCounterApp, RingSizeApp};
pub use broadcast::{RoundApp, RoundNode, TokenAction};
pub use pipeline::ElectThenCompute;
pub use universal::{simulate_on_defective_ring, UniversalApp, UniversalAppState};
