//! The Corollary 5 pipeline: Algorithm 2, then a content-oblivious
//! computation, composed exactly as the paper prescribes (§1.1).
//!
//! Composition in the content-oblivious setting is delicate: messages carry
//! no algorithm tag, so a pulse of the first algorithm must never be
//! processed by a node already running the second. [`ElectThenCompute`]
//! relies on the two properties Algorithm 2 provides:
//!
//! 1. **quiescent termination** — when a node terminates, no pulse is in
//!    flight toward it, and none will ever be sent to it by a node still in
//!    phase one;
//! 2. **the leader terminates last** — so when the leader (the only node
//!    that *initiates* phase-two traffic, as the root of the round-broadcast
//!    layer) sends its first phase-two pulse, every other node has already
//!    switched.
//!
//! Together these give perfect message-algorithm attribution with zero
//! overhead — no `r+1`-fold message duplication (cf. the paper's discussion
//! of relaxed quiescence).

use crate::apps::{AggregateApp, AggregateOutput, ReplicatedCounterApp, RingSizeApp};
use crate::broadcast::{RoundApp, RoundNode};
use co_core::{Alg2Node, Role};
use co_net::{
    Budget, Context, Outcome, Port, Protocol, Pulse, RingSpec, SchedulerKind, Simulation,
};
use std::fmt;

/// A node that runs Algorithm 2 and, upon (quiescent) termination, switches
/// to the round-broadcast computation with the elected leader as root.
pub struct ElectThenCompute<A, F> {
    election: Alg2Node,
    cw_port: Port,
    make_app: Option<F>,
    compute: Option<RoundNode<A>>,
}

impl<A, F> ElectThenCompute<A, F>
where
    A: RoundApp,
    F: FnOnce(Role) -> A,
{
    /// Creates the composed node. `make_app` builds the phase-two
    /// application once the election decides this node's role.
    #[must_use]
    pub fn new(id: u64, cw_port: Port, make_app: F) -> ElectThenCompute<A, F> {
        ElectThenCompute {
            election: Alg2Node::new(id, cw_port),
            cw_port,
            make_app: Some(make_app),
            compute: None,
        }
    }

    /// The election phase's node (for inspection).
    #[must_use]
    pub fn election(&self) -> &Alg2Node {
        &self.election
    }

    /// The computation phase's node, once started.
    #[must_use]
    pub fn compute(&self) -> Option<&RoundNode<A>> {
        self.compute.as_ref()
    }

    /// The elected role, once phase one finished.
    #[must_use]
    pub fn role(&self) -> Option<Role> {
        self.election.is_terminated().then(|| self.election.role())
    }

    fn maybe_switch(&mut self, ctx: &mut Context<'_, Pulse>) {
        if self.compute.is_none() && self.election.is_terminated() {
            let role = self.election.role();
            let make_app = self.make_app.take().expect("switch happens once");
            let app = make_app(role);
            let mut compute = RoundNode::new(app, role == Role::Leader, self.cw_port);
            // The paper: "replacing the act of termination with the act of
            // switching to the second algorithm". The leader initiates.
            compute.on_start(ctx);
            self.compute = Some(compute);
        }
    }
}

impl<A, F> Protocol<Pulse> for ElectThenCompute<A, F>
where
    A: RoundApp,
    F: FnOnce(Role) -> A,
{
    type Output = A::Output;

    fn on_start(&mut self, ctx: &mut Context<'_, Pulse>) {
        self.election.on_start(ctx);
        self.maybe_switch(ctx);
    }

    fn on_message(&mut self, port: Port, msg: Pulse, ctx: &mut Context<'_, Pulse>) {
        match &mut self.compute {
            Some(compute) => compute.on_message(port, msg, ctx),
            None => {
                self.election.on_message(port, msg, ctx);
                self.maybe_switch(ctx);
            }
        }
    }

    fn is_terminated(&self) -> bool {
        self.compute.as_ref().is_some_and(RoundNode::is_terminated)
    }

    fn output(&self) -> Option<A::Output> {
        self.compute.as_ref().and_then(RoundNode::output)
    }
}

impl<A: RoundApp + fmt::Debug, F> fmt::Debug for ElectThenCompute<A, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ElectThenCompute")
            .field("election", &self.election)
            .field("compute", &self.compute)
            .finish()
    }
}

/// Result of a full pipeline run.
#[derive(Clone, Debug)]
pub struct PipelineOutput<O> {
    /// Whether the whole composition ended in quiescent termination.
    pub quiescently_terminated: bool,
    /// Each node's application output (position order).
    pub outputs: Vec<Option<O>>,
    /// Position of the elected leader.
    pub leader: Option<usize>,
    /// Total pulses across both phases.
    pub total_messages: u64,
    /// Pulses spent by the election phase alone (Theorem 1's
    /// `n(2·ID_max + 1)`), for accounting.
    pub election_messages: u64,
}

/// Runs the pipeline with an arbitrary application factory.
///
/// `make_app(position, role)` builds each node's phase-two app once its
/// role is known.
#[must_use]
pub fn run_pipeline<A, F>(
    spec: &RingSpec,
    scheduler: SchedulerKind,
    seed: u64,
    make_app: F,
) -> PipelineOutput<A::Output>
where
    A: RoundApp,
    F: Fn(usize, Role) -> A,
{
    let nodes: Vec<_> = (0..spec.len())
        .map(|i| {
            let make = &make_app;
            ElectThenCompute::new(spec.id(i), spec.cw_port(i), move |role| make(i, role))
        })
        .collect();
    let mut sim = Simulation::new(spec.wiring(), nodes, scheduler.build(seed));
    let report = sim.run(Budget::default());
    let leader = (0..spec.len()).find(|&i| sim.node(i).role() == Some(Role::Leader));
    let outputs = (0..spec.len()).map(|i| sim.node(i).output()).collect();
    let election_messages = co_core::runner::predicted_alg2(spec);
    PipelineOutput {
        quiescently_terminated: report.outcome == Outcome::QuiescentTerminated,
        outputs,
        leader,
        total_messages: report.total_sent,
        election_messages,
    }
}

/// Corollary 5 demo: elect, then every node learns the ring size.
#[must_use]
pub fn elect_then_ring_size(
    spec: &RingSpec,
    scheduler: SchedulerKind,
    seed: u64,
) -> PipelineOutput<u64> {
    run_pipeline(spec, scheduler, seed, |_, role| {
        RingSizeApp::new(role == Role::Leader)
    })
}

/// Corollary 5 demo: elect, then aggregate per-node inputs (max, sum,
/// count) and label every node with its distance from the leader.
#[must_use]
pub fn elect_then_aggregate(
    spec: &RingSpec,
    inputs: &[u64],
    scheduler: SchedulerKind,
    seed: u64,
) -> PipelineOutput<AggregateOutput> {
    assert_eq!(inputs.len(), spec.len(), "one input per node");
    let inputs = inputs.to_vec();
    run_pipeline(spec, scheduler, seed, move |i, role| {
        AggregateApp::new(inputs[i], role == Role::Leader)
    })
}

/// Corollary 5 demo: elect, then replicate a counter state machine driven
/// by the leader's script.
#[must_use]
pub fn elect_then_replicate(
    spec: &RingSpec,
    script: &[i64],
    scheduler: SchedulerKind,
    seed: u64,
) -> PipelineOutput<i64> {
    let script = script.to_vec();
    run_pipeline(spec, scheduler, seed, move |_, role| {
        if role == Role::Leader {
            ReplicatedCounterApp::root(script.clone())
        } else {
            ReplicatedCounterApp::replica()
        }
    })
}

/// Corollary 5 demo: elect, then the leader broadcasts an arbitrary byte
/// string that every node reassembles — messaging over channels that erase
/// all messages.
#[must_use]
pub fn elect_then_broadcast_bytes(
    spec: &RingSpec,
    message: &[u8],
    scheduler: SchedulerKind,
    seed: u64,
) -> PipelineOutput<Vec<u8>> {
    let message = message.to_vec();
    run_pipeline(spec, scheduler, seed, move |_, role| {
        if role == Role::Leader {
            crate::apps::BytesApp::root(message.clone())
        } else {
            crate::apps::BytesApp::replica()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_size_after_election_all_schedulers() {
        let spec = RingSpec::oriented(vec![4, 9, 2, 7, 5]);
        for kind in SchedulerKind::ALL {
            let out = elect_then_ring_size(&spec, kind, 3);
            assert!(out.quiescently_terminated, "{kind}");
            assert_eq!(out.leader, Some(1), "{kind}");
            assert_eq!(out.outputs, vec![Some(5); 5], "{kind}");
            assert!(out.total_messages > out.election_messages, "{kind}");
        }
    }

    #[test]
    fn aggregate_after_election() {
        let spec = RingSpec::oriented(vec![3, 11, 6, 2]);
        let inputs = [10u64, 20, 30, 40];
        let out = elect_then_aggregate(&spec, &inputs, SchedulerKind::Random, 9);
        assert!(out.quiescently_terminated);
        assert_eq!(out.leader, Some(1));
        for (i, o) in out.outputs.iter().enumerate() {
            let o = o.expect("decided");
            assert_eq!(o.max, 40, "node {i}");
            assert_eq!(o.sum, 100, "node {i}");
            assert_eq!(o.count, 4, "node {i}");
        }
        // Distances measured CCW from the leader at position 1.
        let dist: Vec<u64> = out.outputs.iter().map(|o| o.unwrap().distance).collect();
        assert_eq!(dist, vec![1, 0, 3, 2]);
    }

    #[test]
    fn replicated_counter_after_election() {
        let spec = RingSpec::oriented(vec![8, 1, 5]);
        let out = elect_then_replicate(&spec, &[100, -42, 7], SchedulerKind::Lifo, 1);
        assert!(out.quiescently_terminated);
        assert_eq!(out.leader, Some(0));
        assert_eq!(out.outputs, vec![Some(65); 3]);
    }

    #[test]
    fn bytes_after_election() {
        let spec = RingSpec::oriented(vec![6, 2, 9, 4]);
        let msg = b"hello, defective world".to_vec();
        let out = elect_then_broadcast_bytes(&spec, &msg, SchedulerKind::Random, 4);
        assert!(out.quiescently_terminated);
        assert_eq!(out.outputs, vec![Some(msg); 4]);
    }

    #[test]
    fn single_node_pipeline() {
        let spec = RingSpec::oriented(vec![6]);
        let out = elect_then_ring_size(&spec, SchedulerKind::Fifo, 0);
        assert!(out.quiescently_terminated);
        assert_eq!(out.outputs, vec![Some(1)]);
    }

    #[test]
    fn election_cost_matches_theorem1_within_pipeline() {
        let spec = RingSpec::oriented(vec![2, 5, 3]);
        let out = elect_then_ring_size(&spec, SchedulerKind::Fifo, 0);
        // Phase 1 costs exactly n(2·ID_max + 1); phase 2's cost comes on
        // top: counting rounds + announcement + halt + grants.
        use crate::broadcast::{halt_cost, round_cost, GRANT_COST};
        let n = 3u64;
        let phase1 = n * (2 * 5 + 1);
        let phase2 = n * round_cost(n, 1)            // n counting rounds (payload 1)
            + round_cost(n, n + 1)                   // announcement (payload n+1)
            + halt_cost(n)
            + n * GRANT_COST; // n grants: root->..., plus the return grant
        assert_eq!(out.total_messages, phase1 + phase2);
    }
}
