//! Randomized tests of the round-broadcast layer: exact cost formulas
//! and faithful delivery for arbitrary scripts, roots, ring sizes, and
//! adversaries. Inputs come from a seeded [`StdRng`] grid (offline build).

use co_compose::broadcast::{halt_cost, round_cost, RoundApp, RoundNode, TokenAction, GRANT_COST};
use co_net::{Budget, Outcome, Protocol, RingSpec, SchedulerKind, Simulation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Broadcasts a script with per-round keep/pass decisions, then halts.
#[derive(Clone, Debug)]
struct ScriptedApp {
    script: Vec<(u64, bool)>, // (payload, keep)
    next: usize,
    seen: Vec<(u64, bool)>, // (payload, was_sender)
}

impl ScriptedApp {
    fn root(script: Vec<(u64, bool)>) -> ScriptedApp {
        ScriptedApp {
            script,
            next: 0,
            seen: Vec::new(),
        }
    }

    fn relay() -> ScriptedApp {
        ScriptedApp::root(Vec::new())
    }
}

impl RoundApp for ScriptedApp {
    type Output = Vec<(u64, bool)>;
    fn on_token(&mut self) -> TokenAction {
        // Non-root nodes may be granted the token by a `pass` round; they
        // immediately pass it onward by broadcasting a zero-payload round
        // if they have no script (keeps the token rotating deterministically).
        if self.next < self.script.len() {
            let (payload, keep) = self.script[self.next];
            self.next += 1;
            if keep {
                TokenAction::BroadcastKeep(payload)
            } else {
                TokenAction::Broadcast(payload)
            }
        } else {
            TokenAction::Halt
        }
    }
    fn on_round(&mut self, payload: u64, was_sender: bool) {
        self.seen.push((payload, was_sender));
    }
    fn output(&self) -> Option<Vec<(u64, bool)>> {
        Some(self.seen.clone())
    }
}

/// A root that keeps the token through an arbitrary script delivers
/// every payload to every node, in order, at the exact predicted pulse
/// cost, under every adversary.
#[test]
fn keep_script_exact_cost_and_delivery() {
    for case in 0u64..6 {
        for kind in SchedulerKind::ALL {
            let mut rng = StdRng::seed_from_u64(0xB04D + case);
            let n = rng.gen_range(1usize..=7);
            let root = rng.gen_range(0usize..n);
            let payload_count = rng.gen_range(0usize..=5);
            let payloads: Vec<u64> = (0..payload_count)
                .map(|_| rng.gen_range(0u64..40))
                .collect();
            let seed = rng.gen_range(0u64..200);

            let spec = RingSpec::oriented((1..=n as u64).collect());
            let script: Vec<(u64, bool)> = payloads.iter().map(|&p| (p, true)).collect();
            let nodes: Vec<RoundNode<ScriptedApp>> = (0..n)
                .map(|i| {
                    let app = if i == root {
                        ScriptedApp::root(script.clone())
                    } else {
                        ScriptedApp::relay()
                    };
                    RoundNode::new(app, i == root, spec.cw_port(i))
                })
                .collect();
            let mut sim = Simulation::new(spec.wiring(), nodes, kind.build(seed));
            let report = sim.run(Budget::default());
            assert_eq!(
                report.outcome,
                Outcome::QuiescentTerminated,
                "case {case} under {kind}"
            );

            let expected_cost: u64 = payloads
                .iter()
                .map(|&p| round_cost(n as u64, p))
                .sum::<u64>()
                + halt_cost(n as u64);
            assert_eq!(report.total_sent, expected_cost, "case {case} under {kind}");

            for i in 0..n {
                let seen = sim.node(i).output().expect("scripted app outputs");
                let expected: Vec<(u64, bool)> = payloads.iter().map(|&p| (p, i == root)).collect();
                assert_eq!(seen, expected, "case {case} node {i}");
            }
        }
    }
}

/// Token passing costs exactly one grant pulse per hop: a root that
/// passes once and a successor that halts.
#[test]
fn single_pass_costs_one_grant() {
    for case in 0u64..48 {
        let mut rng = StdRng::seed_from_u64(0x6A17 + case);
        let n = rng.gen_range(2usize..=7);
        let payload = rng.gen_range(0u64..20);
        let seed = rng.gen_range(0u64..100);

        let spec = RingSpec::oriented((1..=n as u64).collect());
        let root = 0usize;
        let nodes: Vec<RoundNode<ScriptedApp>> = (0..n)
            .map(|i| {
                let app = if i == root {
                    ScriptedApp::root(vec![(payload, false)]) // broadcast then pass
                } else {
                    ScriptedApp::relay() // halts on grant
                };
                RoundNode::new(app, i == root, spec.cw_port(i))
            })
            .collect();
        let mut sim = Simulation::new(spec.wiring(), nodes, SchedulerKind::Random.build(seed));
        let report = sim.run(Budget::default());
        assert_eq!(report.outcome, Outcome::QuiescentTerminated, "case {case}");
        let expected = round_cost(n as u64, payload) + GRANT_COST + halt_cost(n as u64);
        assert_eq!(report.total_sent, expected, "case {case}");
    }
}
