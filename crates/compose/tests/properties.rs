//! Property-based tests of the round-broadcast layer: exact cost formulas
//! and faithful delivery for arbitrary scripts, roots, ring sizes, and
//! adversaries.

use co_compose::broadcast::{halt_cost, round_cost, RoundApp, RoundNode, TokenAction, GRANT_COST};
use co_net::{Budget, Outcome, Protocol, Pulse, RingSpec, SchedulerKind, Simulation};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

/// Broadcasts a script with per-round keep/pass decisions, then halts.
#[derive(Clone, Debug)]
struct ScriptedApp {
    script: Vec<(u64, bool)>, // (payload, keep)
    next: usize,
    seen: Vec<(u64, bool)>, // (payload, was_sender)
}

impl ScriptedApp {
    fn root(script: Vec<(u64, bool)>) -> ScriptedApp {
        ScriptedApp {
            script,
            next: 0,
            seen: Vec::new(),
        }
    }

    fn relay() -> ScriptedApp {
        ScriptedApp::root(Vec::new())
    }
}

impl RoundApp for ScriptedApp {
    type Output = Vec<(u64, bool)>;
    fn on_token(&mut self) -> TokenAction {
        // Non-root nodes may be granted the token by a `pass` round; they
        // immediately pass it onward by broadcasting a zero-payload round
        // if they have no script (keeps the token rotating deterministically).
        if self.next < self.script.len() {
            let (payload, keep) = self.script[self.next];
            self.next += 1;
            if keep {
                TokenAction::BroadcastKeep(payload)
            } else {
                TokenAction::Broadcast(payload)
            }
        } else {
            TokenAction::Halt
        }
    }
    fn on_round(&mut self, payload: u64, was_sender: bool) {
        self.seen.push((payload, was_sender));
    }
    fn output(&self) -> Option<Vec<(u64, bool)>> {
        Some(self.seen.clone())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A root that keeps the token through an arbitrary script delivers
    /// every payload to every node, in order, at the exact predicted pulse
    /// cost, under every adversary.
    #[test]
    fn keep_script_exact_cost_and_delivery(
        n in 1usize..=7,
        payloads in pvec(0u64..40, 0..=5),
        root in 0usize..7,
        kind in prop::sample::select(SchedulerKind::ALL.to_vec()),
        seed in 0u64..200,
    ) {
        let root = root % n;
        let spec = RingSpec::oriented((1..=n as u64).collect());
        let script: Vec<(u64, bool)> = payloads.iter().map(|&p| (p, true)).collect();
        let nodes: Vec<RoundNode<ScriptedApp>> = (0..n)
            .map(|i| {
                let app = if i == root {
                    ScriptedApp::root(script.clone())
                } else {
                    ScriptedApp::relay()
                };
                RoundNode::new(app, i == root, spec.cw_port(i))
            })
            .collect();
        let mut sim = Simulation::new(spec.wiring(), nodes, kind.build(seed));
        let report = sim.run(Budget::default());
        prop_assert_eq!(report.outcome, Outcome::QuiescentTerminated);

        let expected_cost: u64 = payloads.iter().map(|&p| round_cost(n as u64, p)).sum::<u64>()
            + halt_cost(n as u64);
        prop_assert_eq!(report.total_sent, expected_cost);

        for i in 0..n {
            let seen = sim.node(i).output().expect("scripted app outputs");
            let expected: Vec<(u64, bool)> =
                payloads.iter().map(|&p| (p, i == root)).collect();
            prop_assert_eq!(seen, expected, "node {}", i);
        }
    }

    /// Token passing costs exactly one grant pulse per hop: a root that
    /// passes once and a successor that halts.
    #[test]
    fn single_pass_costs_one_grant(
        n in 2usize..=7,
        payload in 0u64..20,
        seed in 0u64..100,
    ) {
        let spec = RingSpec::oriented((1..=n as u64).collect());
        let root = 0usize;
        let successor = spec.len() - 1; // CCW neighbour of the root
        let nodes: Vec<RoundNode<ScriptedApp>> = (0..n)
            .map(|i| {
                let app = if i == root {
                    ScriptedApp::root(vec![(payload, false)]) // broadcast then pass
                } else {
                    ScriptedApp::relay() // halts on grant
                };
                RoundNode::new(app, i == root, spec.cw_port(i))
            })
            .collect();
        let mut sim = Simulation::new(spec.wiring(), nodes, SchedulerKind::Random.build(seed));
        let report = sim.run(Budget::default());
        prop_assert_eq!(report.outcome, Outcome::QuiescentTerminated);
        let expected = round_cost(n as u64, payload) + GRANT_COST + halt_cost(n as u64);
        prop_assert_eq!(report.total_sent, expected);
        // The successor (the root's CCW neighbour) is the one that halted.
        let _ = successor;
    }
}
