//! # `co-json` — a minimal JSON document model
//!
//! The CLI and the bench harness emit machine-readable JSON next to their
//! human-readable text. The build environment cannot fetch `serde_json`, so
//! this crate provides the small subset actually needed: an owned [`Value`]
//! tree, compact and pretty writers, and ergonomic constructors.
//!
//! Object keys preserve insertion order, which keeps emitted documents
//! byte-stable across runs — the harness determinism tests rely on that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// An owned JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An unsigned integer (serialized without a decimal point).
    UInt(u64),
    /// A signed integer (serialized without a decimal point).
    Int(i64),
    /// A finite double; non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for other variants or missing keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Returns `true` for [`Value::Null`].
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the value as `u64` if it is an unsigned integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(x) => Some(*x),
            Value::Int(x) => u64::try_from(*x).ok(),
            _ => None,
        }
    }

    /// Returns the value as `&str` if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    #[must_use]
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    #[must_use]
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(x) => out.push_str(&x.to_string()),
            Value::Int(x) => out.push_str(&x.to_string()),
            Value::Float(x) => {
                if x.is_finite() {
                    // Ensure round-trippable floats keep a decimal marker.
                    let s = format!("{x}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Value::Object(entries) => {
                write_seq(out, indent, depth, '{', '}', entries.len(), |out, i| {
                    let (k, v) = &entries[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<u64> for Value {
    fn from(x: u64) -> Self {
        Value::UInt(x)
    }
}
impl From<u32> for Value {
    fn from(x: u32) -> Self {
        Value::UInt(u64::from(x))
    }
}
impl From<usize> for Value {
    fn from(x: usize) -> Self {
        Value::UInt(x as u64)
    }
}
impl From<i64> for Value {
    fn from(x: i64) -> Self {
        Value::Int(x)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(opt: Option<T>) -> Self {
        opt.map_or(Value::Null, Into::into)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

/// Builds a [`Value::Object`] from `(key, value)` pairs, preserving order.
#[must_use]
pub fn object<const N: usize>(entries: [(&str, Value); N]) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

/// Builds a [`Value::Array`] from anything iterable over `Into<Value>`.
pub fn array<I, T>(items: I) -> Value
where
    I: IntoIterator<Item = T>,
    T: Into<Value>,
{
    Value::Array(items.into_iter().map(Into::into).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_object_round_trip_shape() {
        let v = object([
            ("n", Value::from(5u64)),
            ("name", Value::from("ring")),
            ("ok", Value::from(true)),
            ("none", Value::Null),
        ]);
        assert_eq!(
            v.to_string_compact(),
            r#"{"n":5,"name":"ring","ok":true,"none":null}"#
        );
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(5));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn pretty_indents_nested_structures() {
        let v = object([("xs", array([1u64, 2u64]))]);
        assert_eq!(
            v.to_string_pretty(),
            "{\n  \"xs\": [\n    1,\n    2\n  ]\n}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let v = Value::from("a\"b\\c\nd");
        assert_eq!(v.to_string_compact(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn floats_keep_decimal_marker() {
        assert_eq!(Value::from(2.0f64).to_string_compact(), "2.0");
        assert_eq!(Value::from(2.5f64).to_string_compact(), "2.5");
        assert_eq!(Value::from(f64::NAN).to_string_compact(), "null");
    }

    #[test]
    fn option_and_vec_conversions() {
        assert_eq!(Value::from(None::<u64>), Value::Null);
        assert_eq!(Value::from(Some(3u64)), Value::UInt(3));
        assert_eq!(
            Value::from(vec![Some(1u64), None]),
            Value::Array(vec![Value::UInt(1), Value::Null])
        );
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Value::Array(vec![]).to_string_pretty(), "[]");
        assert_eq!(Value::Object(vec![]).to_string_compact(), "{}");
    }
}
