//! # `co-json` — a minimal JSON document model
//!
//! The CLI and the bench harness emit machine-readable JSON next to their
//! human-readable text. The build environment cannot fetch `serde_json`, so
//! this crate provides the small subset actually needed: an owned [`Value`]
//! tree, compact and pretty writers, ergonomic constructors, and a strict
//! recursive-descent [`parse`] for reading documents back (the benchmark
//! regression gate reads its committed baseline through it).
//!
//! Object keys preserve insertion order, which keeps emitted documents
//! byte-stable across runs — the harness determinism tests rely on that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// An owned JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An unsigned integer (serialized without a decimal point).
    UInt(u64),
    /// A signed integer (serialized without a decimal point).
    Int(i64),
    /// A finite double; non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for other variants or missing keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Returns `true` for [`Value::Null`].
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the value as `u64` if it is an unsigned integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(x) => Some(*x),
            Value::Int(x) => u64::try_from(*x).ok(),
            _ => None,
        }
    }

    /// Returns the value as `&str` if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as `f64` for any numeric variant.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt(x) => Some(*x as f64),
            Value::Int(x) => Some(*x as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Returns the entries of an object, in insertion order.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Returns the items of an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    #[must_use]
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    #[must_use]
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(x) => out.push_str(&x.to_string()),
            Value::Int(x) => out.push_str(&x.to_string()),
            Value::Float(x) => {
                if x.is_finite() {
                    // Ensure round-trippable floats keep a decimal marker.
                    let s = format!("{x}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Value::Object(entries) => {
                write_seq(out, indent, depth, '{', '}', entries.len(), |out, i| {
                    let (k, v) = &entries[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<u64> for Value {
    fn from(x: u64) -> Self {
        Value::UInt(x)
    }
}
impl From<u32> for Value {
    fn from(x: u32) -> Self {
        Value::UInt(u64::from(x))
    }
}
impl From<usize> for Value {
    fn from(x: usize) -> Self {
        Value::UInt(x as u64)
    }
}
impl From<i64> for Value {
    fn from(x: i64) -> Self {
        Value::Int(x)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(opt: Option<T>) -> Self {
        opt.map_or(Value::Null, Into::into)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

/// Builds a [`Value::Object`] from `(key, value)` pairs, preserving order.
#[must_use]
pub fn object<const N: usize>(entries: [(&str, Value); N]) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

/// Builds a [`Value::Array`] from anything iterable over `Into<Value>`.
pub fn array<I, T>(items: I) -> Value
where
    I: IntoIterator<Item = T>,
    T: Into<Value>,
{
    Value::Array(items.into_iter().map(Into::into).collect())
}

/// A parse failure: what went wrong and the byte offset where it happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input at which the failure was detected.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document into a [`Value`].
///
/// Strict: trailing input after the top-level value, trailing commas,
/// unquoted keys, and comments are all rejected. Numbers parse as
/// [`Value::UInt`] / [`Value::Int`] when they are plain integers in range,
/// and as [`Value::Float`] otherwise — matching what the writers emit, so
/// `parse(v.to_string_pretty())` round-trips every tree the harness writes.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after document"));
    }
    Ok(value)
}

/// Nesting depth bound — a parser recursion guard, far above any document
/// this workspace emits.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> bool {
        if self.peek() == Some(byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, literal: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{literal}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.error("document nests too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.expect_literal("null", Value::Null),
            Some(b't') => self.expect_literal("true", Value::Bool(true)),
            Some(b'f') => self.expect_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Value::Array(items));
            }
            if !self.eat(b',') {
                return Err(self.error("expected `,` or `]` in array"));
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.pos += 1; // consume '{'
        let mut entries = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.error("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.error("expected `:` after object key"));
            }
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Value::Object(entries));
            }
            if !self.eat(b',') {
                return Err(self.error("expected `,` or `}` in object"));
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.pos += 1; // consume opening quote
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.error("invalid escape")),
                    }
                }
                c if c < 0x20 => return Err(self.error("control character in string")),
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so the sequence
                    // is valid; copy its remaining continuation bytes.
                    let start = self.pos - 1;
                    while self.peek().is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input is valid UTF-8"),
                    );
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let hex4 = |p: &mut Self| -> Result<u32, ParseError> {
            let end = p.pos + 4;
            if end > p.bytes.len() {
                return Err(p.error("truncated \\u escape"));
            }
            let digits = std::str::from_utf8(&p.bytes[p.pos..end])
                .ok()
                .and_then(|s| u32::from_str_radix(s, 16).ok())
                .ok_or_else(|| p.error("invalid \\u escape"))?;
            p.pos = end;
            Ok(digits)
        };
        let first = hex4(self)?;
        // Surrogate pair handling for the astral plane.
        if (0xD800..0xDC00).contains(&first) {
            if !(self.eat(b'\\') && self.eat(b'u')) {
                return Err(self.error("unpaired surrogate"));
            }
            let second = hex4(self)?;
            if !(0xDC00..0xE000).contains(&second) {
                return Err(self.error("invalid low surrogate"));
            }
            let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
            char::from_u32(code).ok_or_else(|| self.error("invalid surrogate pair"))
        } else {
            char::from_u32(first).ok_or_else(|| self.error("invalid \\u escape"))
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        self.eat(b'-');
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.eat(b'.') {
            is_float = true;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number spans ASCII bytes");
        if !is_float {
            if let Ok(x) = text.parse::<u64>() {
                return Ok(Value::UInt(x));
            }
            if let Ok(x) = text.parse::<i64>() {
                return Ok(Value::Int(x));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| ParseError {
                message: "invalid number".to_owned(),
                offset: start,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_object_round_trip_shape() {
        let v = object([
            ("n", Value::from(5u64)),
            ("name", Value::from("ring")),
            ("ok", Value::from(true)),
            ("none", Value::Null),
        ]);
        assert_eq!(
            v.to_string_compact(),
            r#"{"n":5,"name":"ring","ok":true,"none":null}"#
        );
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(5));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn pretty_indents_nested_structures() {
        let v = object([("xs", array([1u64, 2u64]))]);
        assert_eq!(
            v.to_string_pretty(),
            "{\n  \"xs\": [\n    1,\n    2\n  ]\n}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let v = Value::from("a\"b\\c\nd");
        assert_eq!(v.to_string_compact(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn floats_keep_decimal_marker() {
        assert_eq!(Value::from(2.0f64).to_string_compact(), "2.0");
        assert_eq!(Value::from(2.5f64).to_string_compact(), "2.5");
        assert_eq!(Value::from(f64::NAN).to_string_compact(), "null");
    }

    #[test]
    fn option_and_vec_conversions() {
        assert_eq!(Value::from(None::<u64>), Value::Null);
        assert_eq!(Value::from(Some(3u64)), Value::UInt(3));
        assert_eq!(
            Value::from(vec![Some(1u64), None]),
            Value::Array(vec![Value::UInt(1), Value::Null])
        );
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Value::Array(vec![]).to_string_pretty(), "[]");
        assert_eq!(Value::Object(vec![]).to_string_compact(), "{}");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = object([
            ("n", Value::from(5u64)),
            ("neg", Value::from(-3i64)),
            ("pi", Value::from(3.25f64)),
            ("name", Value::from("ring\nwith \"quotes\"")),
            ("ok", Value::from(true)),
            ("none", Value::Null),
            ("xs", array([1u64, 2u64, 3u64])),
            (
                "nested",
                object([("deep", array(vec![Value::Object(vec![])]))]),
            ),
        ]);
        assert_eq!(parse(&v.to_string_compact()).unwrap(), v);
        assert_eq!(parse(&v.to_string_pretty()).unwrap(), v);
    }

    #[test]
    fn parse_numbers_pick_natural_variants() {
        assert_eq!(parse("42").unwrap(), Value::UInt(42));
        assert_eq!(parse("-42").unwrap(), Value::Int(-42));
        assert_eq!(parse("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(parse("-1.5e-2").unwrap(), Value::Float(-0.015));
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        assert_eq!(
            parse(r#""a\t\u0041\u00e9""#).unwrap(),
            Value::Str("a\tAé".to_owned())
        );
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            Value::Str("😀".to_owned())
        );
        assert_eq!(
            parse("\"héllo→\"").unwrap(),
            Value::Str("héllo→".to_owned())
        );
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "  ",
            "{",
            "[1,",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a: 1}",
            "truex",
            "nul",
            "\"unterminated",
            "1 2",
            "[1] extra",
            "+1",
            "--1",
            "\"\\q\"",
            "\"\\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parse_errors_carry_offsets() {
        let err = parse("[1, oops]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("at byte 4"));
    }

    #[test]
    fn accessors_cover_numeric_variants() {
        assert_eq!(Value::UInt(3).as_f64(), Some(3.0));
        assert_eq!(Value::Int(-3).as_f64(), Some(-3.0));
        assert_eq!(Value::Float(0.5).as_f64(), Some(0.5));
        assert_eq!(Value::Null.as_f64(), None);
        assert!(Value::Object(vec![]).as_object().is_some());
        assert!(Value::Array(vec![]).as_array().is_some());
        assert!(Value::Null.as_object().is_none());
    }
}
