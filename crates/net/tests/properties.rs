//! Property-based tests of the substrate itself: wiring laws, scheduler
//! contract, simulator conservation laws, and graph analysis.

use co_net::graph::MultiGraph;
use co_net::sched::ChannelView;
use co_net::{
    Budget, ChannelId, Context, Direction, Outcome, Port, Protocol, Pulse, RingSpec,
    SchedulerKind, Simulation,
};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

/// A relay that forwards each pulse once, clockwise, and bounces pulses
/// arriving at the clockwise port back counterclockwise up to a budget —
/// exercising both directions.
#[derive(Clone, Debug)]
struct Bouncer {
    cw_budget: u8,
    ccw_budget: u8,
}

impl Protocol<Pulse> for Bouncer {
    type Output = ();
    fn on_start(&mut self, ctx: &mut Context<'_, Pulse>) {
        ctx.send(Port::One, Pulse);
        ctx.send(Port::Zero, Pulse);
    }
    fn on_message(&mut self, port: Port, _m: Pulse, ctx: &mut Context<'_, Pulse>) {
        match port {
            Port::Zero if self.cw_budget > 0 => {
                self.cw_budget -= 1;
                ctx.send(Port::One, Pulse);
            }
            Port::One if self.ccw_budget > 0 => {
                self.ccw_budget -= 1;
                ctx.send(Port::Zero, Pulse);
            }
            _ => {}
        }
    }
    fn output(&self) -> Option<()> {
        None
    }
}

fn ring_strategy() -> impl Strategy<Value = RingSpec> {
    (1usize..=9, any::<u64>()).prop_map(|(n, seed)| {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        RingSpec::random_flips((1..=n as u64).collect(), &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The wiring endpoint map is an involution for every ring layout.
    #[test]
    fn wiring_involution(spec in ring_strategy()) {
        let w = spec.wiring();
        for c in w.channels() {
            let (v, p) = w.endpoint(c);
            prop_assert_eq!(w.endpoint(ChannelId::new(v, p)), (c.node(), c.port()));
        }
    }

    /// Every channel has exactly one direction tag and the two channels of
    /// a link carry opposite tags.
    #[test]
    fn wiring_direction_tags(spec in ring_strategy()) {
        let w = spec.wiring();
        for c in w.channels() {
            let d = w.direction(c).expect("ring channels are tagged");
            let (v, p) = w.endpoint(c);
            let back = w.direction(ChannelId::new(v, p)).expect("tagged");
            prop_assert_eq!(d.opposite(), back);
        }
    }

    /// Conservation: sent = delivered + ignored + in-flight, under every
    /// scheduler, at every point — checked at the end of bounded runs.
    #[test]
    fn simulator_conserves_messages(
        spec in ring_strategy(),
        budgets in pvec((0u8..4, 0u8..4), 1..=9),
        kind in prop::sample::select(SchedulerKind::ALL.to_vec()),
        seed in any::<u64>(),
    ) {
        let n = spec.len();
        let nodes: Vec<Bouncer> = (0..n)
            .map(|i| {
                let (a, b) = budgets[i % budgets.len()];
                Bouncer { cw_budget: a, ccw_budget: b }
            })
            .collect();
        let mut sim: Simulation<Pulse, Bouncer> =
            Simulation::new(spec.wiring(), nodes, kind.build(seed));
        let report = sim.run(Budget::steps(10_000));
        let stats = sim.stats();
        prop_assert_eq!(
            stats.total_sent,
            stats.total_delivered + stats.delivered_to_terminated + sim.in_flight()
        );
        // Finite budgets mean the network always dies out.
        prop_assert_eq!(report.outcome, Outcome::Quiescent);
        // Per-direction accounting covers everything on a ring.
        prop_assert_eq!(
            stats.sent_by_direction[Direction::Cw.index()]
                + stats.sent_by_direction[Direction::Ccw.index()],
            stats.total_sent
        );
    }

    /// Scheduler contract: every built-in adversary returns in-range picks
    /// on arbitrary ready sets.
    #[test]
    fn scheduler_contract(
        kind in prop::sample::select(SchedulerKind::ALL.to_vec()),
        lens in pvec(1usize..5, 1..=12),
        seed in any::<u64>(),
    ) {
        let ready: Vec<ChannelView> = lens
            .iter()
            .enumerate()
            .map(|(i, &l)| ChannelView {
                id: ChannelId::from_index(i),
                queue_len: l,
                head_seq: (i as u64).wrapping_mul(7),
                direction: if i % 3 == 0 { Some(Direction::Cw) } else if i % 3 == 1 { Some(Direction::Ccw) } else { None },
            })
            .collect();
        let mut sched = kind.build(seed);
        for _ in 0..32 {
            let pick = sched.pick(&ready);
            prop_assert!(pick < ready.len(), "{kind} out of range");
        }
    }

    /// Cycles are 2-edge-connected; removing any edge leaves a bridgeless…
    /// no — leaves a path, i.e. all remaining edges become bridges.
    #[test]
    fn cycle_minus_edge_is_all_bridges(n in 3usize..10) {
        let full = MultiGraph::ring(n);
        prop_assert!(full.is_two_edge_connected());
        // Remove the last edge by rebuilding without it.
        let mut cut = MultiGraph::new(n);
        for i in 0..n - 1 {
            cut.add_edge(i, i + 1);
        }
        prop_assert!(!cut.is_two_edge_connected());
        prop_assert_eq!(cut.bridges().len(), n - 1);
    }
}
