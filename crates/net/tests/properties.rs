//! Randomized property tests of the substrate itself: wiring laws, scheduler
//! contract, simulator conservation laws, and graph analysis.
//!
//! Inputs are drawn from a seeded [`StdRng`] grid rather than a property
//! framework (the build is fully offline), so every failure reproduces from
//! the printed case number.

use co_net::graph::MultiGraph;
use co_net::sched::ChannelView;
use co_net::{
    Budget, ChannelId, Context, Direction, Outcome, Port, Protocol, Pulse, RingSpec, SchedulerKind,
    Simulation,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A relay that forwards each pulse once, clockwise, and bounces pulses
/// arriving at the clockwise port back counterclockwise up to a budget —
/// exercising both directions.
#[derive(Clone, Debug)]
struct Bouncer {
    cw_budget: u8,
    ccw_budget: u8,
}

impl Protocol<Pulse> for Bouncer {
    type Output = ();
    fn on_start(&mut self, ctx: &mut Context<'_, Pulse>) {
        ctx.send(Port::One, Pulse);
        ctx.send(Port::Zero, Pulse);
    }
    fn on_message(&mut self, port: Port, _m: Pulse, ctx: &mut Context<'_, Pulse>) {
        match port {
            Port::Zero if self.cw_budget > 0 => {
                self.cw_budget -= 1;
                ctx.send(Port::One, Pulse);
            }
            Port::One if self.ccw_budget > 0 => {
                self.ccw_budget -= 1;
                ctx.send(Port::Zero, Pulse);
            }
            _ => {}
        }
    }
    fn output(&self) -> Option<()> {
        None
    }
}

fn random_ring(rng: &mut StdRng) -> RingSpec {
    let n = rng.gen_range(1usize..=9);
    RingSpec::random_flips((1..=n as u64).collect(), rng)
}

/// The wiring endpoint map is an involution for every ring layout.
#[test]
fn wiring_involution() {
    for case in 0u64..128 {
        let mut rng = StdRng::seed_from_u64(0x11AA + case);
        let spec = random_ring(&mut rng);
        let w = spec.wiring();
        for c in w.channels() {
            let (v, p) = w.endpoint(c);
            assert_eq!(
                w.endpoint(ChannelId::new(v, p)),
                (c.node(), c.port()),
                "case {case}"
            );
        }
    }
}

/// Every channel has exactly one direction tag and the two channels of
/// a link carry opposite tags.
#[test]
fn wiring_direction_tags() {
    for case in 0u64..128 {
        let mut rng = StdRng::seed_from_u64(0x22BB + case);
        let spec = random_ring(&mut rng);
        let w = spec.wiring();
        for c in w.channels() {
            let d = w.direction(c).expect("ring channels are tagged");
            let (v, p) = w.endpoint(c);
            let back = w.direction(ChannelId::new(v, p)).expect("tagged");
            assert_eq!(d.opposite(), back, "case {case}");
        }
    }
}

/// Conservation: sent = delivered + ignored + in-flight, under every
/// scheduler, at every point — checked at the end of bounded runs.
#[test]
fn simulator_conserves_messages() {
    for case in 0u64..16 {
        for kind in SchedulerKind::ALL {
            let mut rng = StdRng::seed_from_u64(0x33CC + case);
            let spec = random_ring(&mut rng);
            let n = spec.len();
            let nodes: Vec<Bouncer> = (0..n)
                .map(|_| Bouncer {
                    cw_budget: rng.gen_range(0u64..4) as u8,
                    ccw_budget: rng.gen_range(0u64..4) as u8,
                })
                .collect();
            let seed = rng.gen::<u64>();
            let mut sim: Simulation<Pulse, Bouncer> =
                Simulation::new(spec.wiring(), nodes, kind.build(seed));
            let report = sim.run(Budget::steps(10_000));
            let stats = sim.stats();
            assert_eq!(
                stats.total_sent,
                stats.total_delivered + stats.delivered_to_terminated + sim.in_flight(),
                "case {case} under {kind}"
            );
            // Finite budgets mean the network always dies out.
            assert_eq!(
                report.outcome,
                Outcome::Quiescent,
                "case {case} under {kind}"
            );
            // Per-direction accounting covers everything on a ring.
            assert_eq!(
                stats.sent_by_direction[Direction::Cw.index()]
                    + stats.sent_by_direction[Direction::Ccw.index()],
                stats.total_sent,
                "case {case} under {kind}"
            );
        }
    }
}

/// Scheduler contract: every built-in adversary returns in-range picks
/// on arbitrary ready sets.
#[test]
fn scheduler_contract() {
    for case in 0u64..16 {
        for kind in SchedulerKind::ALL {
            let mut rng = StdRng::seed_from_u64(0x44DD + case);
            let len = rng.gen_range(1usize..=12);
            let ready: Vec<ChannelView> = (0..len)
                .map(|i| ChannelView {
                    id: ChannelId::from_index(i),
                    queue_len: rng.gen_range(1usize..5),
                    head_seq: (i as u64).wrapping_mul(7),
                    direction: match i % 3 {
                        0 => Some(Direction::Cw),
                        1 => Some(Direction::Ccw),
                        _ => None,
                    },
                    arrival: 0,
                })
                .collect();
            let mut sched = kind.build(rng.gen::<u64>());
            for _ in 0..32 {
                let pick = sched.pick(&ready);
                assert!(pick < ready.len(), "case {case}: {kind} out of range");
            }
        }
    }
}

/// Cycles are 2-edge-connected; removing any edge leaves a path, i.e. all
/// remaining edges become bridges.
#[test]
fn cycle_minus_edge_is_all_bridges() {
    for n in 3usize..10 {
        let full = MultiGraph::ring(n);
        assert!(full.is_two_edge_connected());
        // Remove the last edge by rebuilding without it.
        let mut cut = MultiGraph::new(n);
        for i in 0..n - 1 {
            cut.add_edge(i, i + 1);
        }
        assert!(!cut.is_two_edge_connected());
        assert_eq!(cut.bridges().len(), n - 1);
    }
}
