//! Delta-debugging minimization of counterexample schedules.
//!
//! When a recorded [`Schedule`] drives a protocol into violating an
//! invariant monitor, the raw recording is usually long and mostly
//! irrelevant. [`shrink_schedule`] applies the classic ddmin algorithm
//! (Zeller & Hildebrandt) to it: repeatedly try removing chunks of picks,
//! keep any removal that still trips the failure oracle, and halve the
//! chunk size until single picks can't be removed.
//!
//! Every subsequence of a valid schedule is itself a valid schedule,
//! because the [`ReplayScheduler`](crate::sched::ReplayScheduler) falls
//! back to FIFO for picks that are not ready and after the script runs
//! out — so the oracle can replay any candidate without precondition
//! checks. The result is a *1-minimal* failing schedule: removing any
//! single remaining pick makes the failure disappear.

use crate::snapshot::Schedule;

/// Minimizes a failing schedule with delta debugging (ddmin).
///
/// `failing` must return `true` when replaying the given schedule still
/// exhibits the failure (e.g. an `invariants.rs` monitor reports a
/// violation). It is called many times — O(len²) in the worst case — so
/// the oracle should rebuild a fresh simulation per call and replay into
/// it, which for the tiny rings counterexamples live on is microseconds.
///
/// Returns a schedule that is never longer than the input and still
/// satisfies `failing`. If the input itself does not satisfy `failing`,
/// it is returned unchanged.
pub fn shrink_schedule<F>(schedule: &Schedule, mut failing: F) -> Schedule
where
    F: FnMut(&Schedule) -> bool,
{
    if !failing(schedule) {
        return schedule.clone();
    }
    let mut current: Vec<_> = schedule.picks().to_vec();
    let mut chunks = 2usize;
    while current.len() >= 2 {
        let chunk_len = current.len().div_ceil(chunks);
        let mut removed_any = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk_len).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            if failing(&Schedule::from_picks(candidate.clone())) {
                current = candidate;
                removed_any = true;
                // Re-test from the same offset: the next chunk now starts here.
            } else {
                start = end;
            }
        }
        if removed_any {
            // Something was removed at this granularity; retry from coarse
            // chunks on the (shorter) remainder.
            chunks = 2;
        } else if chunk_len <= 1 {
            break; // 1-minimal: no single pick can be removed.
        } else {
            chunks = (chunks * 2).min(current.len());
        }
    }
    Schedule::from_picks(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ChannelId;

    fn sched(picks: &[usize]) -> Schedule {
        Schedule::from_picks(picks.iter().map(|&p| ChannelId::from_index(p)).collect())
    }

    #[test]
    fn shrinks_to_the_single_essential_pick() {
        // Failure = "contains pick 7".
        let original = sched(&[1, 2, 7, 3, 4, 5, 6, 8, 9, 10]);
        let shrunk = shrink_schedule(&original, |s| {
            s.iter().any(|p| p == ChannelId::from_index(7))
        });
        assert_eq!(shrunk, sched(&[7]));
    }

    #[test]
    fn preserves_order_of_essential_picks() {
        // Failure = "contains 3 before 5".
        let original = sched(&[9, 3, 1, 1, 5, 2]);
        let shrunk = shrink_schedule(&original, |s| {
            let picks: Vec<_> = s.iter().collect();
            let a = picks.iter().position(|&p| p == ChannelId::from_index(3));
            let b = picks.iter().position(|&p| p == ChannelId::from_index(5));
            matches!((a, b), (Some(a), Some(b)) if a < b)
        });
        assert_eq!(shrunk, sched(&[3, 5]));
    }

    #[test]
    fn non_failing_input_is_returned_unchanged() {
        let original = sched(&[1, 2, 3]);
        let shrunk = shrink_schedule(&original, |_| false);
        assert_eq!(shrunk, original);
    }

    #[test]
    fn result_is_one_minimal() {
        // Failure = "at least 3 picks of channel 0".
        let original = sched(&[0, 1, 0, 2, 0, 3, 0, 4, 0]);
        let count = |s: &Schedule| s.iter().filter(|&p| p == ChannelId::from_index(0)).count();
        let shrunk = shrink_schedule(&original, |s| count(s) >= 3);
        assert_eq!(shrunk, sched(&[0, 0, 0]));
        // Removing any single pick breaks the predicate.
        assert!(count(&shrunk) == 3);
    }
}
