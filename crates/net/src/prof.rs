//! Hot-path profiling for the event core — zero-cost when disabled.
//!
//! The engine's hot phases ([`Phase`]) are bracketed with
//! [`start`]/[`stop`] pairs. While profiling is off (the default), each
//! bracket is a single relaxed atomic load and no clock is read; switching
//! [`set_enabled`]`(true)` turns every bracket into a timed sample feeding
//! per-phase counters, total nanoseconds, and log₂ latency histograms.
//!
//! The collector is process-global (plain atomics, no locks), so it
//! composes with the multi-threaded harness: samples from concurrent
//! engines aggregate into the same report. Use [`reset`] between
//! measurements and [`report`] to read the aggregate out; `tables
//! --profile` renders the report after each experiment.
//!
//! ```rust
//! use co_net::prof;
//!
//! prof::reset();
//! prof::set_enabled(true);
//! let t = prof::start();
//! // ... the bracketed hot phase ...
//! prof::stop(prof::Phase::Pick, t);
//! prof::set_enabled(false);
//! let report = prof::report();
//! assert_eq!(report.phase(prof::Phase::Pick).count, 1);
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Histogram buckets: log₂ of nanoseconds, clamped to `[0, BUCKETS)`.
const BUCKETS: usize = 32;

/// The engine phases instrumented by the core's hot path.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Pushing a sent message into its channel queue (store push +
    /// ready-list maintenance).
    Enqueue,
    /// The scheduler choosing the next channel to deliver from.
    Pick,
    /// Protocol dispatch: the receiving node's `on_message` handler.
    Deliver,
    /// Observer fan-out: trace, metrics, and attached observers.
    Observe,
    /// Virtual-clock timer servicing: popping due timers off the timer heap
    /// and running `on_timer` handlers.
    Timer,
    /// Fused batch commit: popping a whole pulse run, run-aware
    /// ready/scheduler maintenance, and bulk accounting (batch mode only;
    /// the handler's run dispatch is attributed to `Deliver`).
    Batch,
}

impl Phase {
    /// All phases, in display order.
    pub const ALL: [Phase; 6] = [
        Phase::Enqueue,
        Phase::Pick,
        Phase::Deliver,
        Phase::Observe,
        Phase::Timer,
        Phase::Batch,
    ];

    fn index(self) -> usize {
        match self {
            Phase::Enqueue => 0,
            Phase::Pick => 1,
            Phase::Deliver => 2,
            Phase::Observe => 3,
            Phase::Timer => 4,
            Phase::Batch => 5,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Phase::Enqueue => "enqueue",
            Phase::Pick => "pick",
            Phase::Deliver => "deliver",
            Phase::Observe => "observe",
            Phase::Timer => "timer",
            Phase::Batch => "batch",
        })
    }
}

const PHASES: usize = 6;

static ENABLED: AtomicBool = AtomicBool::new(false);

struct PhaseCell {
    count: AtomicU64,
    total_ns: AtomicU64,
    hist: [AtomicU64; BUCKETS],
}

impl PhaseCell {
    const fn new() -> PhaseCell {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        PhaseCell {
            count: ZERO,
            total_ns: ZERO,
            hist: [ZERO; BUCKETS],
        }
    }
}

static CELLS: [PhaseCell; PHASES] = [
    PhaseCell::new(),
    PhaseCell::new(),
    PhaseCell::new(),
    PhaseCell::new(),
    PhaseCell::new(),
    PhaseCell::new(),
];

/// Whether profiling is currently collecting samples.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns sample collection on or off (process-global).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Clears all collected samples.
pub fn reset() {
    for cell in &CELLS {
        cell.count.store(0, Ordering::Relaxed);
        cell.total_ns.store(0, Ordering::Relaxed);
        for bucket in &cell.hist {
            bucket.store(0, Ordering::Relaxed);
        }
    }
}

/// Opens a timing bracket: `None` (no clock read) while profiling is off.
#[inline]
#[must_use]
pub fn start() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Closes a timing bracket opened by [`start`], attributing the elapsed
/// time to `phase`. A `None` token is a no-op.
#[inline]
pub fn stop(phase: Phase, token: Option<Instant>) {
    if let Some(t0) = token {
        record(phase, t0.elapsed().as_nanos() as u64);
    }
}

fn record(phase: Phase, ns: u64) {
    let cell = &CELLS[phase.index()];
    cell.count.fetch_add(1, Ordering::Relaxed);
    cell.total_ns.fetch_add(ns, Ordering::Relaxed);
    let bucket = (64 - u64::leading_zeros(ns | 1) as usize - 1).min(BUCKETS - 1);
    cell.hist[bucket].fetch_add(1, Ordering::Relaxed);
}

/// Aggregated samples of one [`Phase`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Number of samples.
    pub count: u64,
    /// Total nanoseconds across all samples.
    pub total_ns: u64,
    /// `hist[b]` counts samples with `floor(log2(ns)) == b` (bucket 0 also
    /// holds sub-nanosecond samples; the last bucket is open-ended).
    pub hist: [u64; BUCKETS],
}

impl PhaseStats {
    /// Mean nanoseconds per sample (0 when empty).
    #[must_use]
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound (in ns) of the smallest histogram prefix holding at
    /// least `q` of the samples, `q` in `[0, 1]` — a coarse quantile.
    #[must_use]
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let want = (self.count as f64 * q).ceil() as u64;
        let mut seen = 0u64;
        for (bucket, &c) in self.hist.iter().enumerate() {
            seen += c;
            if seen >= want {
                return 1u64 << (bucket + 1).min(63);
            }
        }
        u64::MAX
    }
}

/// A point-in-time readout of all phase collectors.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfReport {
    phases: [PhaseStats; PHASES],
}

impl ProfReport {
    /// Stats of one phase.
    #[must_use]
    pub fn phase(&self, phase: Phase) -> &PhaseStats {
        &self.phases[phase.index()]
    }

    /// Total samples across all phases.
    #[must_use]
    pub fn total_samples(&self) -> u64 {
        self.phases.iter().map(|p| p.count).sum()
    }
}

impl fmt::Display for ProfReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<10} {:>12} {:>14} {:>10} {:>10} {:>10}",
            "phase", "samples", "total ms", "mean ns", "p50 ns", "p99 ns"
        )?;
        for phase in Phase::ALL {
            let s = self.phase(phase);
            writeln!(
                f,
                "{:<10} {:>12} {:>14.3} {:>10} {:>10} {:>10}",
                phase.to_string(),
                s.count,
                s.total_ns as f64 / 1e6,
                s.mean_ns(),
                if s.count == 0 { 0 } else { s.quantile_ns(0.50) },
                if s.count == 0 { 0 } else { s.quantile_ns(0.99) },
            )?;
        }
        Ok(())
    }
}

/// Reads the current aggregate out of the collector.
#[must_use]
pub fn report() -> ProfReport {
    let mut out = ProfReport::default();
    for (i, cell) in CELLS.iter().enumerate() {
        let stats = &mut out.phases[i];
        stats.count = cell.count.load(Ordering::Relaxed);
        stats.total_ns = cell.total_ns.load(Ordering::Relaxed);
        for (b, bucket) in cell.hist.iter().enumerate() {
            stats.hist[b] = bucket.load(Ordering::Relaxed);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector is process-global and `cargo test` runs tests
    // concurrently, so every test here must tolerate foreign samples; they
    // assert on deltas of distinct phases or on pure arithmetic instead.

    #[test]
    fn disabled_brackets_cost_no_samples() {
        set_enabled(false);
        let before = report().phase(Phase::Pick).count;
        let t = start();
        assert!(t.is_none());
        stop(Phase::Pick, t);
        assert_eq!(report().phase(Phase::Pick).count, before);
    }

    #[test]
    fn enabled_brackets_record_samples() {
        let before = report().phase(Phase::Observe).count;
        set_enabled(true);
        let t = start();
        stop(Phase::Observe, t);
        set_enabled(false);
        let after = report().phase(Phase::Observe).count;
        assert!(after > before, "sample was recorded");
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut s = PhaseStats {
            count: 3,
            total_ns: 0,
            hist: [0; BUCKETS],
        };
        // ns = 1 → bucket 0; ns = 1024 → bucket 10.
        s.hist[0] = 2;
        s.hist[10] = 1;
        assert_eq!(s.quantile_ns(0.5), 2);
        assert_eq!(s.quantile_ns(1.0), 1 << 11);
    }

    #[test]
    fn mean_handles_empty_and_nonempty() {
        let empty = PhaseStats::default();
        assert_eq!(empty.mean_ns(), 0);
        let s = PhaseStats {
            count: 4,
            total_ns: 400,
            hist: [0; BUCKETS],
        };
        assert_eq!(s.mean_ns(), 100);
    }

    #[test]
    fn report_renders_all_phases() {
        let text = report().to_string();
        for phase in Phase::ALL {
            assert!(text.contains(&phase.to_string()), "missing {phase}");
        }
    }
}
