//! Discrete virtual time: the engine's clock and per-channel latency models.
//!
//! The paper's model is purely asynchronous — the adversary picks delivery
//! order and "time" does not exist. This module bolts a *virtual* notion of
//! time onto that model without disturbing it: every delivery carries an
//! arrival timestamp drawn from a seeded per-channel [`LatencyModel`], the
//! engine's [`VirtualClock`] advances to the arrival time of whatever the
//! scheduler delivers, and timers fire when the clock passes their deadline.
//!
//! The degenerate [`LatencyModel::Zero`] model keeps every timestamp at 0,
//! which reproduces the untimed engine bit-for-bit: same picks, same events,
//! same snapshots, same fingerprints. Time is therefore strictly opt-in.
//!
//! Everything here is deterministic. Latency samples come from the
//! workspace's seeded xoshiro256++ generator with one independent stream per
//! channel, so a run is a pure function of `(topology, protocol, scheduler
//! seed, latency plan)` — record/replay and snapshot/restore keep working
//! with time switched on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::str::FromStr;

/// A monotone discrete clock counting abstract virtual ticks.
///
/// The engine owns one; schedulers that need a notion of "now" (e.g.
/// [`crate::sched::BoundedDelayScheduler`]) own their own private instance.
/// Ticks are dimensionless — a latency model decides what one tick means.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtualClock {
    now: u64,
}

impl VirtualClock {
    /// A clock at time 0.
    #[must_use]
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// A clock pre-set to `now` (used when restoring snapshots).
    #[must_use]
    pub fn at(now: u64) -> VirtualClock {
        VirtualClock { now }
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances to `t` if `t` is in the future; never moves backwards.
    pub fn advance_to(&mut self, t: u64) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Advances by exactly one tick and returns the new time.
    pub fn tick(&mut self) -> u64 {
        self.now += 1;
        self.now
    }

    /// Overwrites the current time (snapshot restore only — this may move
    /// the clock backwards).
    pub fn set(&mut self, now: u64) {
        self.now = now;
    }
}

/// A per-channel message latency distribution, in virtual ticks.
///
/// Parsed from / rendered to the CLI syntax `zero`, `fixed:K`, or
/// `uniform:MIN..MAX` (inclusive bounds).
///
/// ```rust
/// use co_net::clock::LatencyModel;
///
/// let m: LatencyModel = "uniform:1..8".parse().unwrap();
/// assert_eq!(m, LatencyModel::Uniform { min: 1, max: 8 });
/// assert_eq!(m.to_string(), "uniform:1..8");
/// assert!(LatencyModel::Zero.is_zero());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LatencyModel {
    /// Every message takes 0 ticks — the untimed engine, bit-for-bit.
    #[default]
    Zero,
    /// Every message takes exactly this many ticks.
    Fixed(u64),
    /// Each message takes an independent uniform draw in `[min, max]`.
    Uniform {
        /// Smallest possible latency (inclusive).
        min: u64,
        /// Largest possible latency (inclusive).
        max: u64,
    },
}

impl LatencyModel {
    /// Whether this model never delays a message.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        match *self {
            LatencyModel::Zero => true,
            LatencyModel::Fixed(k) => k == 0,
            LatencyModel::Uniform { min, max } => min == 0 && max == 0,
        }
    }

    /// Draws one latency sample. [`LatencyModel::Zero`] and degenerate
    /// models never touch `rng`, so switching a channel to `zero` does not
    /// perturb the sample streams of other channels.
    #[must_use]
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        match *self {
            LatencyModel::Zero => 0,
            LatencyModel::Fixed(k) => k,
            LatencyModel::Uniform { min, max } => {
                assert!(min <= max, "uniform latency range is empty");
                if min == max {
                    min
                } else {
                    rng.gen_range(min..=max)
                }
            }
        }
    }
}

impl fmt::Display for LatencyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            LatencyModel::Zero => f.write_str("zero"),
            LatencyModel::Fixed(k) => write!(f, "fixed:{k}"),
            LatencyModel::Uniform { min, max } => write!(f, "uniform:{min}..{max}"),
        }
    }
}

/// Error from parsing a [`LatencyModel`] out of its CLI syntax.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseLatencyError(String);

impl fmt::Display for ParseLatencyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid latency model `{}`; expected `zero`, `fixed:K`, or `uniform:MIN..MAX`",
            self.0
        )
    }
}

impl std::error::Error for ParseLatencyError {}

impl FromStr for LatencyModel {
    type Err = ParseLatencyError;

    fn from_str(s: &str) -> Result<LatencyModel, ParseLatencyError> {
        let err = || ParseLatencyError(s.to_string());
        if s == "zero" {
            return Ok(LatencyModel::Zero);
        }
        if let Some(rest) = s.strip_prefix("fixed:") {
            return rest
                .parse::<u64>()
                .map(LatencyModel::Fixed)
                .map_err(|_| err());
        }
        if let Some(rest) = s.strip_prefix("uniform:") {
            let (lo, hi) = rest.split_once("..").ok_or_else(err)?;
            let min = lo.parse::<u64>().map_err(|_| err())?;
            let max = hi.parse::<u64>().map_err(|_| err())?;
            if min > max {
                return Err(err());
            }
            return Ok(LatencyModel::Uniform { min, max });
        }
        Err(err())
    }
}

/// A complete, seeded latency assignment for a topology's channels.
///
/// A plan is a default model plus per-channel overrides and a seed. Each
/// channel draws from its own independent generator derived from the seed,
/// so latency samples on one channel do not depend on how often other
/// channels are used — delivery-order changes never leak across streams.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyPlan {
    default: LatencyModel,
    seed: u64,
    /// Sorted by channel id; at most one entry per channel.
    overrides: Vec<(usize, LatencyModel)>,
}

impl LatencyPlan {
    /// A plan applying `default` to every channel, seeded with `seed`.
    #[must_use]
    pub fn new(default: LatencyModel, seed: u64) -> LatencyPlan {
        LatencyPlan {
            default,
            seed,
            overrides: Vec::new(),
        }
    }

    /// The all-zero plan: virtual time stays switched off.
    #[must_use]
    pub fn zero() -> LatencyPlan {
        LatencyPlan::new(LatencyModel::Zero, 0)
    }

    /// Overrides the model of one channel (builder style).
    #[must_use]
    pub fn with_channel(mut self, channel: usize, model: LatencyModel) -> LatencyPlan {
        match self.overrides.binary_search_by_key(&channel, |&(c, _)| c) {
            Ok(i) => self.overrides[i].1 = model,
            Err(i) => self.overrides.insert(i, (channel, model)),
        }
        self
    }

    /// The model governing `channel`.
    #[must_use]
    pub fn model_for(&self, channel: usize) -> LatencyModel {
        match self.overrides.binary_search_by_key(&channel, |&(c, _)| c) {
            Ok(i) => self.overrides[i].1,
            Err(_) => self.default,
        }
    }

    /// The plan's base seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether every channel's model is (degenerate) zero — such a plan
    /// leaves the engine on its untimed fast path.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.default.is_zero() && self.overrides.iter().all(|(_, m)| m.is_zero())
    }

    /// The independent sample stream of one channel: seed and channel id are
    /// mixed through splitmix64-style constants so neighbouring channels get
    /// uncorrelated streams even for small seeds.
    #[must_use]
    pub fn channel_rng(&self, channel: usize) -> StdRng {
        let mixed = self
            .seed
            .wrapping_add((channel as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .rotate_left(17)
            ^ 0xD1B5_4A32_D192_ED03;
        StdRng::seed_from_u64(mixed)
    }
}

impl Default for LatencyPlan {
    fn default() -> LatencyPlan {
        LatencyPlan::zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone_under_advance() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now(), 0);
        c.advance_to(5);
        assert_eq!(c.now(), 5);
        c.advance_to(3);
        assert_eq!(c.now(), 5, "advance_to never moves backwards");
        assert_eq!(c.tick(), 6);
        c.set(2);
        assert_eq!(c.now(), 2, "set (restore) may move backwards");
        assert_eq!(VirtualClock::at(9).now(), 9);
    }

    #[test]
    fn model_parse_roundtrip() {
        for text in ["zero", "fixed:0", "fixed:7", "uniform:0..0", "uniform:1..8"] {
            let m: LatencyModel = text.parse().unwrap();
            assert_eq!(m.to_string(), text);
        }
        assert!("bogus".parse::<LatencyModel>().is_err());
        assert!("fixed:".parse::<LatencyModel>().is_err());
        assert!("uniform:5..1".parse::<LatencyModel>().is_err());
        assert!("uniform:3".parse::<LatencyModel>().is_err());
    }

    #[test]
    fn degenerate_models_are_zero() {
        assert!(LatencyModel::Zero.is_zero());
        assert!(LatencyModel::Fixed(0).is_zero());
        assert!(LatencyModel::Uniform { min: 0, max: 0 }.is_zero());
        assert!(!LatencyModel::Fixed(1).is_zero());
        assert!(!LatencyModel::Uniform { min: 0, max: 1 }.is_zero());
    }

    #[test]
    fn samples_respect_bounds_and_determinism() {
        let model = LatencyModel::Uniform { min: 2, max: 9 };
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let x = model.sample(&mut a);
            assert!((2..=9).contains(&x));
            assert_eq!(x, model.sample(&mut b));
        }
        // Degenerate models never consume randomness.
        let before = a.to_state();
        assert_eq!(LatencyModel::Zero.sample(&mut a), 0);
        assert_eq!(LatencyModel::Fixed(4).sample(&mut a), 4);
        assert_eq!(LatencyModel::Uniform { min: 3, max: 3 }.sample(&mut a), 3);
        assert_eq!(a.to_state(), before);
    }

    #[test]
    fn plan_overrides_and_zero_detection() {
        let plan = LatencyPlan::new(LatencyModel::Fixed(2), 7)
            .with_channel(3, LatencyModel::Zero)
            .with_channel(1, LatencyModel::Uniform { min: 1, max: 4 });
        assert_eq!(plan.model_for(0), LatencyModel::Fixed(2));
        assert_eq!(plan.model_for(1), LatencyModel::Uniform { min: 1, max: 4 });
        assert_eq!(plan.model_for(3), LatencyModel::Zero);
        assert!(!plan.is_zero());
        assert!(LatencyPlan::zero().is_zero());
        assert!(LatencyPlan::new(LatencyModel::Fixed(0), 9)
            .with_channel(0, LatencyModel::Uniform { min: 0, max: 0 })
            .is_zero());
        // Re-overriding a channel replaces, not duplicates.
        let plan = plan.with_channel(3, LatencyModel::Fixed(5));
        assert_eq!(plan.model_for(3), LatencyModel::Fixed(5));
    }

    #[test]
    fn channel_rngs_are_independent_and_stable() {
        let plan = LatencyPlan::new(LatencyModel::Uniform { min: 0, max: 100 }, 42);
        let s0: Vec<u64> = {
            let mut r = plan.channel_rng(0);
            (0..8).map(|_| rand::RngCore::next_u64(&mut r)).collect()
        };
        let s1: Vec<u64> = {
            let mut r = plan.channel_rng(1);
            (0..8).map(|_| rand::RngCore::next_u64(&mut r)).collect()
        };
        assert_ne!(s0, s1, "per-channel streams diverge");
        let again: Vec<u64> = {
            let mut r = plan.channel_rng(0);
            (0..8).map(|_| rand::RngCore::next_u64(&mut r)).collect()
        };
        assert_eq!(s0, again, "streams are reproducible");
    }
}
