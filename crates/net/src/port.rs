//! Ports and ring directions.

use std::fmt;

/// One of the two ports of a ring node.
///
/// Each node in a ring communicates with its two neighbours via `Port::Zero`
/// and `Port::One` (the paper's `Port_0` / `Port_1`). In an *oriented* ring
/// the convention (matching the paper's Section 2) is that `Port::One` is the
/// clockwise port — pulses sent from it travel clockwise — while clockwise
/// pulses *arrive* at `Port::Zero`. In a non-oriented ring the assignment is
/// arbitrary per node and algorithms may not rely on it.
///
/// ```rust
/// use co_net::Port;
/// assert_eq!(Port::Zero.opposite(), Port::One);
/// assert_eq!(Port::One.index(), 1);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Port {
    /// The paper's `Port_0`; the counterclockwise port in an oriented ring.
    Zero,
    /// The paper's `Port_1`; the clockwise port in an oriented ring.
    One,
}

impl Port {
    /// Both ports, in index order.
    pub const ALL: [Port; 2] = [Port::Zero, Port::One];

    /// Returns the other port of the same node.
    #[must_use]
    pub fn opposite(self) -> Port {
        match self {
            Port::Zero => Port::One,
            Port::One => Port::Zero,
        }
    }

    /// Returns the port's numeric index (0 or 1).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Port::Zero => 0,
            Port::One => 1,
        }
    }

    /// Converts an index into a port.
    ///
    /// # Panics
    ///
    /// Panics if `index > 1`.
    #[must_use]
    pub fn from_index(index: usize) -> Port {
        match index {
            0 => Port::Zero,
            1 => Port::One,
            _ => panic!("port index out of range: {index}"),
        }
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Port_{}", self.index())
    }
}

/// Global travel direction of a pulse on a ring, used for instrumentation.
///
/// *Clockwise* is defined (paper, Section 2) via a pulse that is re-sent from
/// the clockwise port of every node it visits and passes through all edges.
/// Nodes in non-oriented rings cannot observe this label; it exists purely for
/// the harness's accounting (message counters per direction, invariant
/// monitors, scheduler adversaries that starve one direction).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// Clockwise: along increasing ring position.
    Cw,
    /// Counterclockwise: along decreasing ring position.
    Ccw,
}

impl Direction {
    /// Both directions, clockwise first.
    pub const ALL: [Direction; 2] = [Direction::Cw, Direction::Ccw];

    /// Returns the opposite direction.
    #[must_use]
    pub fn opposite(self) -> Direction {
        match self {
            Direction::Cw => Direction::Ccw,
            Direction::Ccw => Direction::Cw,
        }
    }

    /// Returns 0 for clockwise, 1 for counterclockwise.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Direction::Cw => 0,
            Direction::Ccw => 1,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Cw => f.write_str("CW"),
            Direction::Ccw => f.write_str("CCW"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_is_involution() {
        for p in Port::ALL {
            assert_eq!(p.opposite().opposite(), p);
        }
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
        }
    }

    #[test]
    fn index_roundtrip() {
        for p in Port::ALL {
            assert_eq!(Port::from_index(p.index()), p);
        }
    }

    #[test]
    #[should_panic(expected = "port index out of range")]
    fn from_index_rejects_large() {
        let _ = Port::from_index(2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Port::Zero.to_string(), "Port_0");
        assert_eq!(Direction::Ccw.to_string(), "CCW");
    }
}
