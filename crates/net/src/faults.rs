//! Model-violating channel faults: drops, duplications, injections.
//!
//! The paper's model (§2) states *"Pulses cannot be dropped or injected by
//! the channel"* — and its algorithms are exactly as fragile as that
//! assumption implies: a single lost or spurious pulse permanently corrupts
//! the counter-based reasoning of Lemmas 6–12. This module lets the
//! harness *violate* the model deliberately and observe the consequences
//! (experiment E11), empirically demonstrating that the assumption is
//! load-bearing rather than cosmetic:
//!
//! * **drop** — the algorithms deadlock short of their target counts: the
//!   network reaches quiescence with nodes still waiting (Lemma 9's
//!   equivalence breaks);
//! * **duplicate / inject** — counters overshoot, violating Corollary 14
//!   and electing the wrong node or multiple nodes.
//!
//! Faults are scheduled by **global send sequence number**, which is
//! deterministic for a given scheduler and seed, making every fault
//! scenario reproducible.

use std::collections::BTreeSet;

/// A plan of channel faults to apply during a simulation.
///
/// ```rust
/// use co_net::faults::FaultPlan;
/// let plan = FaultPlan::new().drop_seq(7).duplicate_seq(12);
/// assert!(plan.should_drop(7));
/// assert!(!plan.should_drop(8));
/// assert!(plan.should_duplicate(12));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    drops: BTreeSet<u64>,
    duplicates: BTreeSet<u64>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    #[must_use]
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Drop the message with global send sequence `seq` (it is counted as
    /// sent but never delivered).
    #[must_use]
    pub fn drop_seq(mut self, seq: u64) -> FaultPlan {
        self.drops.insert(seq);
        self
    }

    /// Duplicate the message with global send sequence `seq` (the copy is
    /// enqueued right behind the original, as channel noise would).
    #[must_use]
    pub fn duplicate_seq(mut self, seq: u64) -> FaultPlan {
        self.duplicates.insert(seq);
        self
    }

    /// Whether the given send should be dropped.
    #[must_use]
    pub fn should_drop(&self, seq: u64) -> bool {
        self.drops.contains(&seq)
    }

    /// Whether the given send should be duplicated.
    #[must_use]
    pub fn should_duplicate(&self, seq: u64) -> bool {
        self.duplicates.contains(&seq)
    }

    /// Whether the plan contains any fault.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.drops.is_empty() && self.duplicates.is_empty()
    }

    /// The largest send sequence number any fault in this plan triggers on,
    /// or `None` for an empty plan.
    ///
    /// Beyond the horizon the plan is inert: two configurations whose send
    /// counters both exceed it behave identically under this plan. The
    /// explorer uses this to keep fingerprint deduplication sound in the
    /// presence of faults — it mixes `min(send_seq, horizon + 1)` into the
    /// configuration fingerprint, so states that the plan could still
    /// distinguish are never merged, while the state space stays finite.
    #[must_use]
    pub fn horizon(&self) -> Option<u64> {
        let last_drop = self.drops.iter().next_back().copied();
        let last_dup = self.duplicates.iter().next_back().copied();
        last_drop.max(last_dup)
    }
}

/// Counters of faults actually applied during a run.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages silently discarded.
    pub dropped: u64,
    /// Spurious copies enqueued by duplication.
    pub duplicated: u64,
    /// Spurious messages injected via
    /// [`Simulation::inject`](crate::Simulation::inject).
    pub injected: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builders() {
        let plan = FaultPlan::new().drop_seq(1).drop_seq(5).duplicate_seq(5);
        assert!(plan.should_drop(1));
        assert!(plan.should_drop(5));
        assert!(plan.should_duplicate(5));
        assert!(!plan.should_duplicate(1));
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn horizon_is_the_last_faulted_seq() {
        assert_eq!(FaultPlan::new().horizon(), None);
        assert_eq!(FaultPlan::new().drop_seq(3).horizon(), Some(3));
        assert_eq!(FaultPlan::new().duplicate_seq(9).horizon(), Some(9));
        assert_eq!(
            FaultPlan::new().drop_seq(4).duplicate_seq(2).horizon(),
            Some(4)
        );
    }
}
