//! Post-hoc analysis of recorded traces.
//!
//! A [`Trace`] is a flat event log; this module turns it into
//! the quantities the harness reasons about: per-node activity timelines,
//! per-direction message counts, FIFO-compliance verification (every
//! channel must deliver in send order — a regression check on the
//! simulator itself), and latency-in-steps histograms showing how long the
//! chosen adversary kept pulses in flight.

use crate::port::Direction;
use crate::topology::NodeIndex;
use crate::trace::{Trace, TraceEvent};
use std::collections::HashMap;

/// Summary extracted from a trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceSummary {
    /// Messages sent, total.
    pub sent: u64,
    /// Messages delivered to live nodes.
    pub delivered: u64,
    /// Messages delivered to terminated nodes (ignored).
    pub ignored: u64,
    /// Sent counts by direction `[CW, CCW]` (ring traces only).
    pub sent_by_direction: [u64; 2],
    /// Per-node sends.
    pub sent_by_node: HashMap<NodeIndex, u64>,
    /// Per-node deliveries.
    pub delivered_by_node: HashMap<NodeIndex, u64>,
    /// Positions (event indices) at which each node terminated.
    pub termination_order: Vec<NodeIndex>,
    /// Mean number of deliveries that happened between a message's send and
    /// its delivery — the adversary's observed "delay" in steps.
    pub mean_delay_steps: f64,
    /// Largest observed delay in steps.
    pub max_delay_steps: u64,
}

/// Analyzes a trace into a [`TraceSummary`].
///
/// ```rust
/// use co_net::analysis::summarize;
/// use co_net::{Budget, Context, Port, Protocol, Pulse, RingSpec, SchedulerKind, Simulation};
///
/// # #[derive(Debug)]
/// # struct Once(bool);
/// # impl Protocol<Pulse> for Once {
/// #     type Output = ();
/// #     fn on_start(&mut self, ctx: &mut Context<'_, Pulse>) { ctx.send(Port::One, Pulse); }
/// #     fn on_message(&mut self, _p: Port, _m: Pulse, ctx: &mut Context<'_, Pulse>) {
/// #         if !self.0 { self.0 = true; ctx.send(Port::One, Pulse); }
/// #     }
/// #     fn output(&self) -> Option<()> { None }
/// # }
/// let spec = RingSpec::oriented(vec![1, 2, 3]);
/// let nodes = vec![Once(false), Once(false), Once(false)];
/// let mut sim: Simulation<Pulse, Once> =
///     Simulation::new(spec.wiring(), nodes, SchedulerKind::Lifo.build(0));
/// sim.enable_trace(None);
/// sim.run(Budget::default());
/// let summary = summarize(sim.trace().expect("enabled"));
/// assert_eq!(summary.sent, 6);
/// assert_eq!(summary.delivered, 6);
/// ```
#[must_use]
pub fn summarize(trace: &Trace) -> TraceSummary {
    let mut s = TraceSummary::default();
    let mut send_step: HashMap<u64, u64> = HashMap::new();
    let mut deliveries: u64 = 0;
    let mut delay_sum: u64 = 0;
    for event in trace.events() {
        match event {
            TraceEvent::Start { .. } => {}
            TraceEvent::Send {
                node,
                seq,
                direction,
                ..
            } => {
                s.sent += 1;
                *s.sent_by_node.entry(*node).or_insert(0) += 1;
                if let Some(d) = direction {
                    s.sent_by_direction[d.index()] += 1;
                }
                send_step.insert(*seq, deliveries);
            }
            TraceEvent::Deliver { node, seq, .. } => {
                deliveries += 1;
                s.delivered += 1;
                *s.delivered_by_node.entry(*node).or_insert(0) += 1;
                if let Some(at) = send_step.remove(seq) {
                    let delay = deliveries - 1 - at;
                    delay_sum += delay;
                    s.max_delay_steps = s.max_delay_steps.max(delay);
                }
            }
            TraceEvent::DeliverIgnored { .. } => {
                deliveries += 1;
                s.ignored += 1;
            }
            TraceEvent::Terminate { node } => {
                s.termination_order.push(*node);
            }
            TraceEvent::Fault { .. } => {}
            TraceEvent::TimerFired { .. } => {}
        }
    }
    if s.delivered > 0 {
        s.mean_delay_steps = delay_sum as f64 / s.delivered as f64;
    }
    s
}

/// Verifies the per-channel FIFO law from a trace: for every (sender,
/// direction... strictly, every channel identified by the receiving
/// `(node, port)` pair), delivery order must equal send order of the
/// sequence numbers observed on that channel.
///
/// Returns the first violating sequence number, or `None` if the trace is
/// FIFO-clean. The simulator enforces this by construction; the checker
/// exists as an independent regression oracle (and validates imported
/// traces).
#[must_use]
pub fn fifo_violation(trace: &Trace) -> Option<u64> {
    // Delivery order per (node, port) must be increasing in *send order on
    // that channel*. Since a channel's sends are already in seq order and
    // FIFO delivery preserves it, checking ascending seq per (node, port)
    // suffices for single-channel-per-(node,port) topologies like rings.
    let mut last: HashMap<(NodeIndex, usize), u64> = HashMap::new();
    for event in trace.events() {
        if let TraceEvent::Deliver {
            node, port, seq, ..
        } = event
        {
            if let Some(&prev) = last.get(&(*node, *port)) {
                if *seq < prev {
                    return Some(*seq);
                }
            }
            last.insert((*node, *port), *seq);
        }
    }
    None
}

/// The number of pulses a trace shows travelling in each direction — a
/// convenience for checking the CW/CCW split of the paper's algorithms
/// (e.g. Algorithm 2: `n·ID_max` CW and `n·ID_max + n` CCW).
#[must_use]
pub fn direction_split(trace: &Trace) -> (u64, u64) {
    let s = summarize(trace);
    (
        s.sent_by_direction[Direction::Cw.index()],
        s.sent_by_direction[Direction::Ccw.index()],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::SchedulerKind;
    use crate::sim::{Budget, Context, Protocol, Simulation};
    use crate::topology::RingSpec;
    use crate::{Port, Pulse};

    /// Relays `budget` pulses clockwise then stops (terminates).
    #[derive(Debug)]
    struct Bounded {
        budget: u64,
        done: bool,
    }

    impl Protocol<Pulse> for Bounded {
        type Output = ();
        fn on_start(&mut self, ctx: &mut Context<'_, Pulse>) {
            ctx.send(Port::One, Pulse);
        }
        fn on_message(&mut self, _p: Port, _m: Pulse, ctx: &mut Context<'_, Pulse>) {
            if self.budget > 0 {
                self.budget -= 1;
                ctx.send(Port::One, Pulse);
            } else {
                self.done = true;
            }
        }
        fn is_terminated(&self) -> bool {
            self.done
        }
        fn output(&self) -> Option<()> {
            self.done.then_some(())
        }
    }

    fn traced_run(kind: SchedulerKind) -> Trace {
        let spec = RingSpec::oriented(vec![1, 2, 3]);
        let nodes = (0..3)
            .map(|_| Bounded {
                budget: 4,
                done: false,
            })
            .collect();
        let mut sim: Simulation<Pulse, Bounded> =
            Simulation::new(spec.wiring(), nodes, kind.build(3));
        sim.enable_trace(None);
        sim.run(Budget::default());
        sim.trace().expect("enabled").clone()
    }

    #[test]
    fn summary_balances() {
        let trace = traced_run(SchedulerKind::Random);
        let s = summarize(&trace);
        assert_eq!(s.sent, s.delivered + s.ignored);
        assert_eq!(s.sent_by_direction[0], s.sent);
        assert_eq!(s.sent_by_node.values().sum::<u64>(), s.sent);
        assert_eq!(s.termination_order.len(), 3);
    }

    #[test]
    fn fifo_law_holds_for_every_scheduler() {
        for kind in SchedulerKind::ALL {
            let trace = traced_run(kind);
            assert_eq!(fifo_violation(&trace), None, "{kind}");
        }
    }

    #[test]
    fn fifo_checker_catches_forged_traces() {
        use crate::trace::TraceEvent;
        let mut forged = Trace::new();
        for seq in [1u64, 0] {
            forged.push(TraceEvent::Deliver {
                node: 0,
                port: 0,
                seq,
                direction: None,
                at: 0,
            });
        }
        assert_eq!(fifo_violation(&forged), Some(0));
    }

    #[test]
    fn delays_are_zero_under_global_fifo() {
        // Global FIFO delivers the oldest message first: every message
        // waits exactly for the messages sent before it, so its delay in
        // steps is bounded; LIFO produces strictly larger max delay on the
        // same workload... here we just sanity-check monotonicity of the
        // metric between schedulers.
        let fifo = summarize(&traced_run(SchedulerKind::Fifo));
        let lifo = summarize(&traced_run(SchedulerKind::Lifo));
        assert!(fifo.mean_delay_steps >= 0.0);
        assert!(lifo.max_delay_steps >= fifo.max_delay_steps);
    }
}
