//! Exhaustive schedule exploration — a small model checker for pulse
//! protocols.
//!
//! The paper's theorems are `∀ schedule` statements. The adversaries in
//! [`crate::sched`] sample that space; this module *exhausts* it on small
//! instances: starting from the initial configuration it explores **every**
//! reachable configuration under **every** possible delivery order,
//! verifying a safety predicate in each and a final predicate in every
//! quiescent configuration.
//!
//! [`explore`] runs on the snapshot layer: the protocol implements
//! [`Snapshot`], so the explorer checkpoints a real [`Simulation`] with
//! [`Simulation::snapshot`], branches with [`Simulation::step_channel`], and
//! deduplicates visited configurations by their stable 64-bit
//! [`Simulation::fingerprint`] — **8 bytes per configuration** regardless of
//! ring size. The previous-generation explorer is kept as
//! [`explore_reference`]: it stores full `(queues, terminated, node-keys)`
//! tuples per configuration, which grows linearly with the ring and is what
//! limited the reachable instance sizes. Differential tests assert the two
//! enumerate identical state spaces where both fit in memory.
//!
//! ```rust
//! use co_net::explore::{explore, ExploreLimits};
//! use co_net::{Context, Fingerprint, Port, Protocol, Pulse, RingSpec, Snapshot};
//!
//! /// Each node forwards the first pulse it sees and stops.
//! #[derive(Clone, Debug)]
//! struct Once(bool);
//! impl Protocol<Pulse> for Once {
//!     type Output = ();
//!     fn on_start(&mut self, ctx: &mut Context<'_, Pulse>) {
//!         ctx.send(Port::One, Pulse);
//!     }
//!     fn on_message(&mut self, _p: Port, _m: Pulse, ctx: &mut Context<'_, Pulse>) {
//!         if !self.0 {
//!             self.0 = true;
//!             ctx.send(Port::One, Pulse);
//!         }
//!     }
//!     fn output(&self) -> Option<()> { None }
//! }
//! impl Snapshot for Once {
//!     type State = bool;
//!     fn extract(&self) -> bool { self.0 }
//!     fn restore(&mut self, state: &bool) { self.0 = *state; }
//!     fn fingerprint(&self) -> u64 { u64::from(self.0) }
//! }
//!
//! let spec = RingSpec::oriented(vec![1, 2, 3]);
//! let report = explore(
//!     &spec.wiring(),
//!     || vec![Once(false), Once(false), Once(false)],
//!     |_state| Ok(()),                    // safety predicate
//!     |state| {
//!         // In every quiescent configuration, everyone relayed once.
//!         if state.nodes.iter().all(|n| n.0) { Ok(()) } else { Err("missed".into()) }
//!     },
//!     ExploreLimits::default(),
//! );
//! assert!(report.complete);
//! assert!(report.violations.is_empty());
//! assert!(report.quiescent_configs >= 1);
//! ```

use crate::dedup::{unique_name, DedupKind, ShardedIndex};
use crate::engine::QueueBackend;
use crate::faults::FaultPlan;
use crate::message::Pulse;
use crate::port::Port;
use crate::sched::FifoScheduler;
use crate::sim::{Context, Protocol, SimSnapshot, Simulation};
use crate::snapshot::{put_bytes, put_str, put_u32, put_u64, ByteReader, Fingerprint, Snapshot};
use crate::topology::{ChannelId, Wiring};
use std::collections::{HashSet, VecDeque};
use std::fs::{File, OpenOptions};
use std::hash::Hash;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Bounds on the exploration.
#[derive(Copy, Clone, Debug)]
pub struct ExploreLimits {
    /// Maximum distinct configurations to visit before giving up.
    pub max_configs: usize,
    /// Maximum deliveries along any single path (guards non-terminating
    /// protocols).
    pub max_depth: usize,
    /// Maximum bytes of visited-set storage before giving up.
    ///
    /// This is the budget on which [`explore`] (8 bytes/config) and
    /// [`explore_reference`] (full state tuples) are compared: with the same
    /// byte budget, fingerprint dedup reaches instances the reference
    /// explorer cannot.
    pub max_state_bytes: usize,
}

impl Default for ExploreLimits {
    fn default() -> ExploreLimits {
        ExploreLimits {
            max_configs: 2_000_000,
            max_depth: 100_000,
            max_state_bytes: usize::MAX,
        }
    }
}

/// Result of an exploration.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Distinct configurations visited.
    pub configs: usize,
    /// Distinct quiescent configurations found.
    pub quiescent_configs: usize,
    /// Safety / quiescence predicate failures (deduplicated messages).
    pub violations: Vec<String>,
    /// Whether the state space was fully explored within the limits.
    pub complete: bool,
    /// Total bytes of visited-set storage used by the deduplication index
    /// (`visited_heap_bytes + visited_file_bytes`); the
    /// [`ExploreLimits::max_state_bytes`] budget applies to this total.
    pub visited_bytes: usize,
    /// Heap-resident bytes of the deduplication index (exact, Bloom).
    pub visited_heap_bytes: usize,
    /// File-backed bytes of the deduplication index (the mmap backend's
    /// table files) — the out-of-core share of the footprint.
    pub visited_file_bytes: usize,
    /// Frontier items that were spilled to disk at some point of the run.
    pub spilled_jobs: usize,
    /// Checkpoint files written (including the final one).
    pub checkpoints_written: usize,
}

/// A configuration handed to the predicates.
#[derive(Clone, Debug)]
pub struct ExploreState<P> {
    /// Protocol instances, in node order.
    pub nodes: Vec<P>,
    /// Per-channel queued-pulse counts, indexed by [`ChannelId::index`].
    pub queues: Vec<u32>,
    /// Per-node terminated flags.
    pub terminated: Vec<bool>,
    /// Total pulses sent so far along this path.
    pub sent: u64,
}

impl<P> ExploreState<P> {
    /// Whether no pulses are in transit.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.queues.iter().all(|&q| q == 0)
    }
}

fn note_violation(violations: &mut Vec<String>, msg: String) {
    if violations.len() < 16 && !violations.contains(&msg) {
        violations.push(msg);
    }
}

fn state_of<P: Protocol<Pulse> + Clone>(sim: &Simulation<Pulse, P>) -> ExploreState<P> {
    let n = sim.wiring().len();
    ExploreState {
        nodes: sim.nodes().to_vec(),
        queues: (0..2 * n)
            .map(|ch| sim.queue_len(ChannelId::from_index(ch)) as u32)
            .collect(),
        terminated: (0..n).map(|v| sim.is_terminated(v)).collect(),
        sent: sim.stats().total_sent,
    }
}

/// Exhaustively explores every delivery order of a pulse protocol, with
/// fingerprint-based visited-state deduplication.
///
/// * `make_nodes` builds the initial protocol instances (one per node of
///   `wiring`);
/// * `safety` is checked in every reachable configuration;
/// * `at_quiescence` is checked in every reachable quiescent configuration.
///
/// The node fingerprint comes from the protocol's [`Snapshot`]
/// implementation, which must capture *all* behaviourally relevant state
/// (two nodes with equal fingerprints must behave identically forever).
/// Each visited configuration costs 8 bytes of dedup storage, so the
/// explorer reaches ring sizes the tuple-keyed [`explore_reference`]
/// cannot under the same [`ExploreLimits::max_state_bytes`] budget.
///
/// Returns an [`ExploreReport`]; exploration stops early (with
/// `complete = false`) if any limit is hit.
pub fn explore<P, FM, FS, FQ>(
    wiring: &Wiring,
    make_nodes: FM,
    safety: FS,
    at_quiescence: FQ,
    limits: ExploreLimits,
) -> ExploreReport
where
    P: Protocol<Pulse> + Snapshot + Clone,
    FM: FnOnce() -> Vec<P>,
    FS: Fn(&ExploreState<P>) -> Result<(), String>,
    FQ: Fn(&ExploreState<P>) -> Result<(), String>,
{
    let nodes = make_nodes();
    assert_eq!(nodes.len(), wiring.len(), "one protocol instance per node");
    // The explorer only ever carries pulses, so it always uses the
    // run-length counter backend; fingerprints and the visited state space
    // are backend-independent (asserted by differential tests), but the
    // per-snapshot queue storage is O(runs) instead of O(pulses).
    let mut sim: Simulation<Pulse, P> = Simulation::with_backend(
        wiring.clone(),
        nodes,
        Box::new(FifoScheduler::new()),
        QueueBackend::Counter,
    );
    sim.start();

    const BYTES_PER_CONFIG: usize = std::mem::size_of::<u64>();
    let mut visited: HashSet<u64> = HashSet::new();
    let mut violations: Vec<String> = Vec::new();
    let mut quiescent_configs = 0usize;
    let mut complete = true;

    visited.insert(sim.fingerprint());
    // DFS stack of (checkpoint, depth).
    let mut stack = vec![(sim.snapshot(), 0usize)];

    'dfs: while let Some((snapshot, depth)) = stack.pop() {
        sim.restore(&snapshot);
        let state = state_of(&sim);
        if let Err(e) = safety(&state) {
            note_violation(&mut violations, format!("safety: {e}"));
        }
        if state.is_quiescent() {
            quiescent_configs += 1;
            if let Err(e) = at_quiescence(&state) {
                note_violation(&mut violations, format!("at quiescence: {e}"));
            }
            continue;
        }
        if depth >= limits.max_depth {
            complete = false;
            continue;
        }
        // Branch: deliver the head of every non-empty channel.
        for channel in sim.ready_channels() {
            sim.restore(&snapshot);
            sim.step_channel(channel)
                .expect("ready channel has a message");
            let fp = sim.fingerprint();
            if visited.contains(&fp) {
                continue;
            }
            // Only *new* entries cost storage; revisits are free.
            if visited.len() >= limits.max_configs
                || (visited.len() + 1) * BYTES_PER_CONFIG > limits.max_state_bytes
            {
                complete = false;
                break 'dfs;
            }
            visited.insert(fp);
            stack.push((sim.snapshot(), depth + 1));
        }
    }

    ExploreReport {
        configs: visited.len(),
        quiescent_configs,
        violations,
        complete,
        visited_bytes: visited.len() * BYTES_PER_CONFIG,
        visited_heap_bytes: visited.len() * BYTES_PER_CONFIG,
        visited_file_bytes: 0,
        spilled_jobs: 0,
        checkpoints_written: 0,
    }
}

/// Configuration for [`explore_parallel`].
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Bounds shared with the sequential explorer.
    pub limits: ExploreLimits,
    /// Worker threads; `0` means all available cores.
    pub jobs: usize,
    /// Visited-fingerprint backend (see [`crate::dedup`]).
    pub dedup: DedupKind,
    /// Expected number of configurations, used to size the Bloom backend.
    /// Ignored by the exact backend.
    pub bloom_capacity: usize,
    /// Target false-positive probability for the Bloom backend.
    pub bloom_fp_budget: f64,
    /// Channel faults to apply along every explored path.
    ///
    /// Faults trigger on the global send sequence number, which the plain
    /// configuration fingerprint deliberately omits; while the plan has
    /// faults left to fire, the explorer therefore mixes the (clamped) send
    /// counter into the fingerprint so deduplication stays sound.
    pub faults: FaultPlan,
    /// Queue storage backend for the worker simulations (see
    /// [`QueueBackend`]). The visited state space, fingerprints, and report
    /// are identical under either backend — asserted by differential
    /// tests — so this only trades snapshot memory for envelope generality.
    /// Defaults to [`QueueBackend::Counter`]: the explorer only carries
    /// pulses.
    pub backend: QueueBackend,
    /// Macro-step successor expansion (off by default): each branch
    /// delivers the chosen channel's *entire head run* in one fused
    /// transition ([`Simulation::step_channel_batch`]) instead of a single
    /// pulse.
    ///
    /// Every configuration this explorer visits has a fingerprint
    /// byte-identical to the per-pulse explorer's fingerprint of the same
    /// configuration — batching changes which interleavings are expanded,
    /// never how a configuration hashes. The visited set is the macro-step
    /// reachable *subset* of the per-pulse state space: configurations
    /// "inside" a run (some but not all of a run's pulses delivered before
    /// switching channels) are skipped, so safety predicates are only
    /// checked at run boundaries. Use per-pulse exploration for
    /// exhaustive safety; batched exploration for reachability and
    /// quiescence questions at scale.
    pub batch: bool,
    /// Frontier spill-to-disk high-water mark, in items per worker shard
    /// (`0` disables spilling). When a worker's shard grows past this mark,
    /// its *coldest* items (the shard front — the ones LIFO processing
    /// would touch last) are written to a per-worker spill file as
    /// channel-pick replay paths and paged back in LIFO order once the
    /// in-memory shard drains. Spilled items still count as pending work,
    /// so termination and state counts are unaffected.
    pub spill_high_water: usize,
    /// Directory for scratch files (mmap dedup tables, frontier spill
    /// files); `None` means the system temp dir. Each run creates unique
    /// subdirectories there and removes them when it finishes.
    pub scratch_dir: Option<PathBuf>,
    /// Periodic checkpointing: persist frontier + dedup state + counters to
    /// [`CheckpointPlan::path`] every [`CheckpointPlan::every`] admitted
    /// configurations, and once more when the run stops for any reason.
    pub checkpoint: Option<CheckpointPlan>,
    /// Resume from a previously written checkpoint instead of the initial
    /// configuration. The caller is responsible for checking
    /// [`ExploreCheckpoint::meta`] describes the same instance; the
    /// explorer itself asserts the dedup backend matches.
    pub resume: Option<ExploreCheckpoint>,
}

impl Default for ExploreConfig {
    fn default() -> ExploreConfig {
        ExploreConfig {
            limits: ExploreLimits::default(),
            jobs: 0,
            dedup: DedupKind::Exact,
            bloom_capacity: 1 << 20,
            bloom_fp_budget: 1e-4,
            faults: FaultPlan::new(),
            backend: QueueBackend::Counter,
            batch: false,
            spill_high_water: 0,
            scratch_dir: None,
            checkpoint: None,
            resume: None,
        }
    }
}

/// Periodic checkpointing policy for [`explore_parallel`].
#[derive(Clone, Debug)]
pub struct CheckpointPlan {
    /// Where to write the checkpoint file (atomically: a `.tmp` sibling is
    /// written, fsynced, and renamed over `path`).
    pub path: PathBuf,
    /// Admitted configurations between checkpoint writes.
    pub every: usize,
    /// Opaque instance-identity blob stored verbatim in the checkpoint.
    /// On resume the *caller* compares it against the current instance
    /// (protocol, ids, batch mode, …) before handing the checkpoint to the
    /// explorer — the explorer treats it as bytes.
    pub meta: Vec<u8>,
}

/// One pending frontier configuration, persisted as its replay path: the
/// sequence of channel picks that reaches it from the deterministic started
/// initial configuration. Replaying the picks (in the run's delivery mode,
/// with its fault plan) reconstructs the exact simulation state, so generic
/// protocol state never needs to be byte-serialized.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrontierItem {
    /// Delivery depth of the configuration (for the `max_depth` limit).
    pub depth: usize,
    /// Channel indices to deliver, in order, from the initial configuration.
    pub picks: Vec<u32>,
}

/// A resumable exploration checkpoint: everything [`explore_parallel`]
/// needs to continue a run as if it had never stopped — the visited-set
/// shards, the frontier (as replay paths), and the report counters.
///
/// Re-convergence argument: the explorer maintains the invariant that every
/// admitted configuration is either already fully expanded or present in
/// the frontier (a popped item is always expanded to completion, and a
/// successor is pushed before any stop condition is honoured). A checkpoint
/// therefore partitions the admitted set into "done" (counted in
/// `quiescent`/`violations`) and "frontier" (persisted as paths); resuming
/// processes each frontier configuration exactly once, so the final
/// `configs`/`quiescent_configs`/violation set equal an uninterrupted
/// run's, regardless of where the run was cut.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExploreCheckpoint {
    /// Caller-supplied instance identity (see [`CheckpointPlan::meta`]).
    pub meta: Vec<u8>,
    /// Canonical name of the dedup backend the run used.
    pub dedup: String,
    /// Configurations admitted so far.
    pub admitted: usize,
    /// Quiescent configurations counted so far.
    pub quiescent: usize,
    /// Frontier items spilled to disk so far (report bookkeeping).
    pub spilled: usize,
    /// Whether a `max_depth` limit pruned subtrees before this checkpoint
    /// (permanent: those subtrees are unrecoverable, so a resumed run can
    /// never report `complete`).
    pub pruned: bool,
    /// Violations found so far.
    pub violations: Vec<String>,
    /// Serialized dedup shards ([`ShardedIndex::save_shards`]).
    pub shards: Vec<Vec<u8>>,
    /// Pending configurations, as replay paths.
    pub frontier: Vec<FrontierItem>,
}

const CK_MAGIC: &[u8; 8] = b"CORINGCK";
const CK_VERSION: u32 = 1;

impl ExploreCheckpoint {
    /// Whether the checkpointed run had finished (empty frontier). Resuming
    /// a finished checkpoint is an idempotent no-op that reproduces the
    /// final report.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.frontier.is_empty()
    }

    /// Serializes to the on-disk format (see DESIGN.md §13).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(CK_MAGIC);
        put_u32(&mut out, CK_VERSION);
        put_bytes(&mut out, &self.meta);
        put_str(&mut out, &self.dedup);
        put_u64(&mut out, self.admitted as u64);
        put_u64(&mut out, self.quiescent as u64);
        put_u64(&mut out, self.spilled as u64);
        put_u32(&mut out, u32::from(self.pruned));
        put_u64(&mut out, self.violations.len() as u64);
        for v in &self.violations {
            put_str(&mut out, v);
        }
        put_u64(&mut out, self.shards.len() as u64);
        for blob in &self.shards {
            put_bytes(&mut out, blob);
        }
        put_u64(&mut out, self.frontier.len() as u64);
        for item in &self.frontier {
            put_u64(&mut out, item.depth as u64);
            put_u64(&mut out, item.picks.len() as u64);
            for &pick in &item.picks {
                put_u32(&mut out, pick);
            }
        }
        out
    }

    /// Parses the on-disk format back; rejects wrong magic/version and any
    /// truncation or trailing garbage.
    pub fn decode(bytes: &[u8]) -> Result<ExploreCheckpoint, String> {
        let mut r = ByteReader::new(bytes);
        if r.take(8)? != CK_MAGIC {
            return Err("not a co-ring exploration checkpoint (bad magic)".into());
        }
        let version = r.u32()?;
        if version != CK_VERSION {
            return Err(format!(
                "checkpoint version {version}, this build reads {CK_VERSION}"
            ));
        }
        let meta = r.bytes()?.to_vec();
        let dedup = r.string()?;
        let admitted = r.len()?;
        let quiescent = r.len()?;
        let spilled = r.len()?;
        let pruned = r.u32()? != 0;
        let violations = (0..r.len()?)
            .map(|_| r.string())
            .collect::<Result<Vec<_>, _>>()?;
        let shards = (0..r.len()?)
            .map(|_| r.bytes().map(<[u8]>::to_vec))
            .collect::<Result<Vec<_>, _>>()?;
        let mut frontier = Vec::new();
        for _ in 0..r.len()? {
            let depth = r.len()?;
            let picks = (0..r.len()?).map(|_| r.u32()).collect::<Result<_, _>>()?;
            frontier.push(FrontierItem { depth, picks });
        }
        r.finish()?;
        Ok(ExploreCheckpoint {
            meta,
            dedup,
            admitted,
            quiescent,
            spilled,
            pruned,
            violations,
            shards,
            frontier,
        })
    }

    /// Reads and parses a checkpoint file.
    pub fn read(path: &Path) -> Result<ExploreCheckpoint, String> {
        let bytes = std::fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        ExploreCheckpoint::decode(&bytes).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Writes the checkpoint atomically: a `.tmp` sibling is written,
    /// fsynced, then renamed over `path` — a kill at any point leaves
    /// either the previous checkpoint or this one, never a torn file.
    pub fn write_atomic(&self, path: &Path) -> Result<(), String> {
        let mut tmp_name = path.as_os_str().to_os_string();
        tmp_name.push(".tmp");
        let tmp = PathBuf::from(tmp_name);
        let fail = |op: &str, e: std::io::Error| format!("{op} {}: {e}", tmp.display());
        let mut file = File::create(&tmp).map_err(|e| fail("create", e))?;
        std::io::Write::write_all(&mut file, &self.encode()).map_err(|e| fail("write", e))?;
        file.sync_all().map_err(|e| fail("sync", e))?;
        drop(file);
        std::fs::rename(&tmp, path)
            .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))
    }
}

/// Per-worker frontier spill file: length-prefixed `(depth, picks)` records
/// appended at the end, paged back LIFO by truncating. The offsets stack
/// lives in memory (8 B per spilled item); the paths live on disk.
struct SpillFile {
    file: File,
    path: PathBuf,
    offsets: Vec<u64>,
    end: u64,
}

impl SpillFile {
    fn create(dir: &Path, worker: usize) -> SpillFile {
        let path = dir.join(format!("spill-{worker}.bin"));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)
            .expect("spill file creation failed");
        SpillFile {
            file,
            path,
            offsets: Vec::new(),
            end: 0,
        }
    }

    fn push(&mut self, depth: usize, picks: &[u32]) {
        let mut rec = Vec::with_capacity(16 + picks.len() * 4);
        put_u64(&mut rec, depth as u64);
        put_u64(&mut rec, picks.len() as u64);
        for &p in picks {
            put_u32(&mut rec, p);
        }
        self.file
            .write_all_at(&rec, self.end)
            .expect("spill write failed");
        self.offsets.push(self.end);
        self.end += rec.len() as u64;
    }

    fn record_at(&self, off: u64) -> (usize, Vec<u32>) {
        let mut hdr = [0u8; 16];
        self.file
            .read_exact_at(&mut hdr, off)
            .expect("spill read failed");
        let depth = u64::from_le_bytes(hdr[..8].try_into().expect("8B")) as usize;
        let count = u64::from_le_bytes(hdr[8..].try_into().expect("8B")) as usize;
        let mut buf = vec![0u8; count * 4];
        self.file
            .read_exact_at(&mut buf, off + 16)
            .expect("spill read failed");
        let picks = buf
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4B")))
            .collect();
        (depth, picks)
    }

    /// Pops the most recently spilled item (LIFO) and truncates it away.
    fn pop(&mut self) -> Option<(usize, Vec<u32>)> {
        let off = self.offsets.pop()?;
        let rec = self.record_at(off);
        self.file.set_len(off).expect("spill truncate failed");
        self.end = off;
        Some(rec)
    }

    /// Reads every spilled item without consuming (checkpoint collection).
    fn items(&self) -> Vec<FrontierItem> {
        self.offsets
            .iter()
            .map(|&off| {
                let (depth, picks) = self.record_at(off);
                FrontierItem { depth, picks }
            })
            .collect()
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// One frontier entry: the snapshot to expand (or `None` for items loaded
/// from a checkpoint/spill file, which are rematerialized by replaying
/// `path` from the initial configuration), its depth, and — when paths are
/// being tracked for spill/checkpoint — its replay path.
struct Job<S> {
    snap: Option<S>,
    depth: usize,
    path: Vec<u32>,
}

/// Resolves `0` to the number of available cores.
fn effective_jobs(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// The configuration fingerprint used for deduplication, fault-aware.
///
/// Without faults this is exactly [`Simulation::fingerprint`]. With a fault
/// plan, two configurations that hash equal but differ in how many sends
/// have happened can still diverge (a pending `drop_seq`/`duplicate_seq`
/// fires for one and not the other), so the send counter — clamped to just
/// past the plan's [`FaultPlan::horizon`], beyond which the plan is inert —
/// is mixed in.
fn config_fingerprint<P>(sim: &Simulation<Pulse, P>, fault_horizon: Option<u64>) -> u64
where
    P: Protocol<Pulse> + Snapshot,
{
    let base = sim.fingerprint();
    match fault_horizon {
        None => base,
        Some(h) => {
            let mut fp = Fingerprint::new();
            fp.write_u64(base);
            fp.write_u64(sim.send_seq().min(h + 1));
            fp.finish()
        }
    }
}

/// Work-stealing, frontier-sharded parallel version of [`explore`].
///
/// A fixed pool of `config.jobs` workers (scoped std threads) each runs the
/// same DFS loop as the sequential explorer over its own frontier shard,
/// stealing from other shards when its own runs dry. Every worker owns a
/// private [`Simulation`] it restores checkpoints into, so only snapshots —
/// plain data — cross threads. Deduplication goes through a
/// [`ShardedIndex`] ([`crate::dedup::FP_SHARDS`] locks keyed by fingerprint
/// prefix) with the backend chosen by `config.dedup`: `exact` reproduces
/// the sequential explorer's visited set bit-for-bit, `bloom` trades a
/// measured false-positive budget for fixed memory, `mmap` keeps the exact
/// semantics but stores the table in files so RAM stops being the bound.
///
/// Guarantees, asserted by differential tests against [`explore`]:
///
/// * with the exact or mmap backend and no limits hit, `configs`,
///   `quiescent_configs`, and the violation verdict are identical to the
///   sequential explorer for every worker count — a successor is pushed
///   only by the worker that *admitted* its fingerprint, so each
///   configuration is processed exactly once;
/// * with the Bloom backend, a false positive can only prune a subtree
///   (under-count states), never fabricate one: reported violations are
///   always real;
/// * unlike [`explore`], a [`FaultPlan`] may be supplied; fingerprints are
///   then extended per [`FaultPlan::horizon`] so dedup stays sound while
///   faults can still fire.
///
/// Out-of-core extensions (see [`ExploreConfig`]): frontier spill-to-disk
/// past `spill_high_water`, periodic resumable checkpoints via
/// `checkpoint`/`resume`. The run is processed in *legs*: when a
/// checkpoint is due, workers finish the item in hand, park, a checkpoint
/// is written atomically, and the pool resumes — a popped item is always
/// fully expanded and every admitted-but-unexpanded configuration sits in
/// the frontier, so a resumed run provably converges to the same counts
/// as an uninterrupted one (see [`ExploreCheckpoint`]).
///
/// When limits are hit the run stops early with `complete = false`.
/// Because every worker finishes expanding its current item (the
/// resume-convergence invariant), `configs` may overshoot `max_configs` by
/// up to one branching factor per worker.
pub fn explore_parallel<P, FM, FS, FQ>(
    wiring: &Wiring,
    make_nodes: FM,
    safety: FS,
    at_quiescence: FQ,
    config: &ExploreConfig,
) -> ExploreReport
where
    P: Protocol<Pulse> + Snapshot + Clone,
    P::State: Send,
    FM: Fn() -> Vec<P> + Sync,
    FS: Fn(&ExploreState<P>) -> Result<(), String> + Sync,
    FQ: Fn(&ExploreState<P>) -> Result<(), String> + Sync,
{
    let jobs = effective_jobs(config.jobs);
    let limits = config.limits;
    let horizon = config.faults.horizon();
    // Replay paths are only tracked when something might persist them.
    let track_paths = config.spill_high_water > 0 || config.checkpoint.is_some();

    // Seed: the started initial configuration — also the replay origin for
    // every spilled or checkpointed frontier item.
    let nodes = make_nodes();
    assert_eq!(nodes.len(), wiring.len(), "one protocol instance per node");
    let mut seed_sim: Simulation<Pulse, P> = Simulation::with_backend(
        wiring.clone(),
        nodes,
        Box::new(FifoScheduler::new()),
        config.backend,
    );
    seed_sim.set_faults(config.faults.clone());
    seed_sim.start();
    let seed_snap = seed_sim.snapshot();

    let index = ShardedIndex::with_dir(
        config.dedup,
        config.bloom_capacity,
        config.bloom_fp_budget,
        config.scratch_dir.as_deref(),
    );

    // One frontier shard per worker; each worker pops its own back (LIFO,
    // depth-first) and steals from other shards' fronts (oldest first,
    // which tends to hand over large subtrees).
    type Frontier<P> = Mutex<VecDeque<Job<SimSnapshot<Pulse, P>>>>;
    let shards: Vec<Frontier<P>> = (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect();

    // In-flight item count: incremented before a push (including spilled
    // items), decremented after an item is fully processed. Zero with all
    // shards and spill files empty means done.
    let pending = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let pause = AtomicBool::new(false);
    let pruned = AtomicBool::new(false);
    let quiescent = AtomicUsize::new(0);
    let spilled_total = AtomicUsize::new(0);
    let violations: Mutex<Vec<String>> = Mutex::new(Vec::new());

    if let Some(ck) = &config.resume {
        assert_eq!(
            ck.dedup,
            config.dedup.to_string(),
            "resume requires the checkpoint's dedup backend"
        );
        index
            .load_shards(&ck.shards, ck.admitted)
            .expect("checkpoint dedup shards must load");
        quiescent.store(ck.quiescent, Ordering::Relaxed);
        spilled_total.store(ck.spilled, Ordering::Relaxed);
        pruned.store(ck.pruned, Ordering::Relaxed);
        *violations.lock().expect("fresh mutex") = ck.violations.clone();
        pending.store(ck.frontier.len(), Ordering::Release);
        for (i, item) in ck.frontier.iter().enumerate() {
            shards[i % jobs]
                .lock()
                .expect("fresh shard")
                .push_back(Job {
                    snap: None,
                    depth: item.depth,
                    path: item.picks.clone(),
                });
        }
    } else {
        index.insert(config_fingerprint(&seed_sim, horizon));
        if index.bytes().total() > limits.max_state_bytes {
            // A preallocating backend can blow the byte budget before the
            // first delivery; report the same "budget starved" shape the
            // sequential explorer would.
            let bytes = index.bytes();
            return ExploreReport {
                configs: index.admitted(),
                quiescent_configs: 0,
                violations: Vec::new(),
                complete: false,
                visited_bytes: bytes.total(),
                visited_heap_bytes: bytes.heap,
                visited_file_bytes: bytes.file,
                spilled_jobs: 0,
                checkpoints_written: 0,
            };
        }
        pending.store(1, Ordering::Release);
        shards[0].lock().expect("fresh shard").push_back(Job {
            snap: Some(seed_snap.clone()),
            depth: 0,
            path: Vec::new(),
        });
    }

    // Spill files live in their own unique subdirectory; one file per
    // worker, created lazily on first spill.
    let spill_dir: Option<PathBuf> = (config.spill_high_water > 0).then(|| {
        let root = config
            .scratch_dir
            .clone()
            .unwrap_or_else(std::env::temp_dir);
        let dir = root.join(unique_name("co-ring-spill"));
        std::fs::create_dir_all(&dir).expect("spill dir creation failed");
        dir
    });
    let spills: Vec<Mutex<Option<SpillFile>>> = (0..jobs).map(|_| Mutex::new(None)).collect();

    let mut checkpoints_written = 0usize;
    loop {
        // One leg: run workers until the frontier drains, a limit trips, or
        // a checkpoint comes due (`pause`). Each leg re-spawns the scoped
        // pool; legs are long (`checkpoint.every` admissions), so the spawn
        // cost is noise.
        let leg_target = config
            .checkpoint
            .as_ref()
            .filter(|plan| plan.every > 0)
            .map(|plan| index.admitted() + plan.every);
        pause.store(false, Ordering::Release);
        std::thread::scope(|scope| {
            for me in 0..jobs {
                let shards = &shards;
                let spills = &spills;
                let spill_dir = spill_dir.as_deref();
                let index = &index;
                let pending = &pending;
                let stop = &stop;
                let pause = &pause;
                let pruned = &pruned;
                let quiescent = &quiescent;
                let spilled_total = &spilled_total;
                let violations = &violations;
                let make_nodes = &make_nodes;
                let safety = &safety;
                let at_quiescence = &at_quiescence;
                let faults = &config.faults;
                let backend = config.backend;
                let batch = config.batch;
                let spill_high_water = config.spill_high_water;
                let my_seed = seed_snap.clone();
                scope.spawn(move || {
                    let mut sim: Simulation<Pulse, P> = Simulation::with_backend(
                        wiring.clone(),
                        make_nodes(),
                        Box::new(FifoScheduler::new()),
                        backend,
                    );
                    sim.set_faults(faults.clone());
                    sim.start();
                    loop {
                        if stop.load(Ordering::Acquire) || pause.load(Ordering::Acquire) {
                            break;
                        }
                        // Own shard first (LIFO — depth-first), then steal
                        // from the front of the others, then page back from
                        // spill files (own first). Each lock is taken and
                        // released in its own statement: holding the
                        // own-shard lock while probing a victim would
                        // deadlock two workers stealing from each other.
                        let mut item = shards[me].lock().expect("shard poisoned").pop_back();
                        if item.is_none() {
                            for d in 1..jobs {
                                item = shards[(me + d) % jobs]
                                    .lock()
                                    .expect("shard poisoned")
                                    .pop_front();
                                if item.is_some() {
                                    break;
                                }
                            }
                        }
                        if item.is_none() && spill_high_water > 0 {
                            for d in 0..jobs {
                                let mut guard =
                                    spills[(me + d) % jobs].lock().expect("spill poisoned");
                                if let Some((depth, picks)) =
                                    guard.as_mut().and_then(SpillFile::pop)
                                {
                                    item = Some(Job {
                                        snap: None,
                                        depth,
                                        path: picks,
                                    });
                                    break;
                                }
                            }
                        }
                        let Some(Job { snap, depth, path }) = item else {
                            if pending.load(Ordering::Acquire) == 0 {
                                break;
                            }
                            std::thread::yield_now();
                            continue;
                        };
                        // Rematerialize path-only items (spilled or resumed)
                        // by replaying their channel picks from the seed.
                        // Faults key on the global send sequence, which the
                        // replay reproduces exactly.
                        let snapshot = match snap {
                            Some(s) => s,
                            None => {
                                sim.restore(&my_seed);
                                for &pick in &path {
                                    let channel = ChannelId::from_index(pick as usize);
                                    if batch {
                                        sim.step_channel_batch(channel, u64::MAX)
                                            .expect("replayed channel has a message");
                                    } else {
                                        sim.step_channel(channel)
                                            .expect("replayed channel has a message");
                                    }
                                }
                                sim.snapshot()
                            }
                        };
                        sim.restore(&snapshot);
                        let state = state_of(&sim);
                        if let Err(e) = safety(&state) {
                            note_violation(
                                &mut violations.lock().expect("violations poisoned"),
                                format!("safety: {e}"),
                            );
                        }
                        if state.is_quiescent() {
                            quiescent.fetch_add(1, Ordering::Relaxed);
                            if let Err(e) = at_quiescence(&state) {
                                note_violation(
                                    &mut violations.lock().expect("violations poisoned"),
                                    format!("at quiescence: {e}"),
                                );
                            }
                        } else if depth >= limits.max_depth {
                            // Depth pruning is permanent: the skipped
                            // subtree is unrecoverable, unlike a transient
                            // budget stop whose frontier stays intact.
                            pruned.store(true, Ordering::Release);
                        } else {
                            for channel in sim.ready_channels() {
                                sim.restore(&snapshot);
                                if batch {
                                    sim.step_channel_batch(channel, u64::MAX)
                                        .expect("ready channel has a message");
                                } else {
                                    sim.step_channel(channel)
                                        .expect("ready channel has a message");
                                }
                                let fp = config_fingerprint(&sim, horizon);
                                if !index.insert(fp) {
                                    continue;
                                }
                                // Invariant (resume convergence): an
                                // admitted successor is pushed before any
                                // stop condition is honoured, and the
                                // current item is expanded to completion —
                                // so admitted = processed ∪ frontier at
                                // every checkpoint.
                                let succ_path = if track_paths {
                                    let mut p = path.clone();
                                    p.push(channel.index() as u32);
                                    p
                                } else {
                                    Vec::new()
                                };
                                pending.fetch_add(1, Ordering::AcqRel);
                                let spill_me = {
                                    let mut shard = shards[me].lock().expect("shard poisoned");
                                    shard.push_back(Job {
                                        snap: Some(sim.snapshot()),
                                        depth: depth + 1,
                                        path: succ_path,
                                    });
                                    // High water: evict the coldest item
                                    // (shard front — the one LIFO order
                                    // touches last) to disk.
                                    (spill_high_water > 0 && shard.len() > spill_high_water)
                                        .then(|| shard.pop_front())
                                        .flatten()
                                };
                                if let Some(cold) = spill_me {
                                    let mut guard = spills[me].lock().expect("spill poisoned");
                                    guard
                                        .get_or_insert_with(|| {
                                            SpillFile::create(
                                                spill_dir.expect("spill dir exists"),
                                                me,
                                            )
                                        })
                                        .push(cold.depth, &cold.path);
                                    spilled_total.fetch_add(1, Ordering::Relaxed);
                                }
                                if index.admitted() > limits.max_configs
                                    || index.bytes().total() > limits.max_state_bytes
                                {
                                    stop.store(true, Ordering::Release);
                                }
                            }
                        }
                        pending.fetch_sub(1, Ordering::AcqRel);
                        if let Some(target) = leg_target {
                            if index.admitted() >= target {
                                pause.store(true, Ordering::Release);
                            }
                        }
                    }
                });
            }
        });

        // A checkpoint is written after *every* leg — including the final
        // one, whose (possibly empty) frontier makes resuming idempotent.
        if let Some(plan) = &config.checkpoint {
            let mut frontier: Vec<FrontierItem> = Vec::new();
            for shard in &shards {
                for job in shard.lock().expect("shard poisoned").iter() {
                    frontier.push(FrontierItem {
                        depth: job.depth,
                        picks: job.path.clone(),
                    });
                }
            }
            for spill in &spills {
                if let Some(sf) = spill.lock().expect("spill poisoned").as_ref() {
                    frontier.extend(sf.items());
                }
            }
            debug_assert_eq!(
                frontier.len(),
                pending.load(Ordering::Acquire),
                "every pending item must be in a shard or a spill file"
            );
            let ck = ExploreCheckpoint {
                meta: plan.meta.clone(),
                dedup: config.dedup.to_string(),
                admitted: index.admitted(),
                quiescent: quiescent.load(Ordering::Relaxed),
                spilled: spilled_total.load(Ordering::Relaxed),
                pruned: pruned.load(Ordering::Acquire),
                violations: violations.lock().expect("violations poisoned").clone(),
                shards: index.save_shards(),
                frontier,
            };
            ck.write_atomic(&plan.path)
                .expect("checkpoint write failed");
            checkpoints_written += 1;
        }
        if stop.load(Ordering::Acquire)
            || pending.load(Ordering::Acquire) == 0
            || config.checkpoint.is_none()
        {
            break;
        }
    }

    // Spill hygiene: files delete themselves on drop; the subdir goes last.
    drop(spills);
    if let Some(dir) = spill_dir {
        let _ = std::fs::remove_dir(&dir);
    }

    let bytes = index.bytes();
    ExploreReport {
        configs: index.admitted(),
        quiescent_configs: quiescent.into_inner(),
        violations: violations.into_inner().expect("violations poisoned"),
        complete: !pruned.into_inner() && !stop.into_inner(),
        visited_bytes: bytes.total(),
        visited_heap_bytes: bytes.heap,
        visited_file_bytes: bytes.file,
        spilled_jobs: spilled_total.into_inner(),
        checkpoints_written,
    }
}

/// The previous-generation explorer, kept as a differential-testing oracle.
///
/// Instead of snapshots and fingerprints it re-implements delivery on a bare
/// `(queues, nodes)` state and deduplicates through *full* state tuples
/// `(queue counts, terminated flags, caller-supplied node keys)` — storage
/// per configuration grows with the ring, which is exactly the limitation
/// the snapshot-layer [`explore`] removes. Kept verbatim so tests can assert
/// that the rewrite enumerates the identical state space.
pub fn explore_reference<P, K, FM, FF, FS, FQ>(
    wiring: &Wiring,
    make_nodes: FM,
    fingerprint: FF,
    safety: FS,
    at_quiescence: FQ,
    limits: ExploreLimits,
) -> ExploreReport
where
    P: Protocol<Pulse> + Clone,
    K: Eq + Hash,
    FM: FnOnce() -> Vec<P>,
    FF: Fn(&P) -> K,
    FS: Fn(&ExploreState<P>) -> Result<(), String>,
    FQ: Fn(&ExploreState<P>) -> Result<(), String>,
{
    let n = wiring.len();
    let channels = wiring.channel_count();
    // What one dedup entry costs: the heap payload of the three vectors.
    let bytes_per_config = channels * std::mem::size_of::<u32>() + n + n * std::mem::size_of::<K>();

    // Initial configuration: run every on_start.
    let mut nodes = make_nodes();
    assert_eq!(nodes.len(), n, "one protocol instance per node");
    let mut queues = vec![0u32; channels];
    let mut outbox: Vec<(usize, Pulse)> = Vec::new();
    let mut sent = 0u64;
    for (v, node) in nodes.iter_mut().enumerate() {
        let mut ctx = Context::new_internal(v, &mut outbox);
        node.on_start(&mut ctx);
        for (port, _msg) in outbox.drain(..) {
            queues[ChannelId::new(v, Port::from_index(port)).index()] += 1;
            sent += 1;
        }
    }
    let terminated: Vec<bool> = nodes.iter().map(Protocol::is_terminated).collect();
    let initial = ExploreState {
        nodes,
        queues,
        terminated,
        sent,
    };

    let key_of = |state: &ExploreState<P>| -> (Vec<u32>, Vec<bool>, Vec<K>) {
        (
            state.queues.clone(),
            state.terminated.clone(),
            state.nodes.iter().map(&fingerprint).collect(),
        )
    };

    let mut visited: HashSet<(Vec<u32>, Vec<bool>, Vec<K>)> = HashSet::new();
    let mut violations: Vec<String> = Vec::new();
    let mut quiescent_configs = 0usize;
    let mut complete = true;
    let mut budget_exhausted = false;

    visited.insert(key_of(&initial));
    // DFS stack of (state, depth).
    let mut stack: Vec<(ExploreState<P>, usize)> = vec![(initial, 0)];

    while let Some((state, depth)) = stack.pop() {
        if let Err(e) = safety(&state) {
            note_violation(&mut violations, format!("safety: {e}"));
        }
        if state.is_quiescent() {
            quiescent_configs += 1;
            if let Err(e) = at_quiescence(&state) {
                note_violation(&mut violations, format!("at quiescence: {e}"));
            }
            continue;
        }
        if depth >= limits.max_depth {
            complete = false;
            continue;
        }
        // Branch on every non-empty channel.
        for ch in 0..state.queues.len() {
            if state.queues[ch] == 0 {
                continue;
            }
            let mut next = state.clone();
            next.queues[ch] -= 1;
            let channel = ChannelId::from_index(ch);
            let (dst, port) = wiring.endpoint(channel);
            if !next.terminated[dst] {
                let mut outbox: Vec<(usize, Pulse)> = Vec::new();
                {
                    let mut ctx = Context::new_internal(dst, &mut outbox);
                    next.nodes[dst].on_message(port, Pulse, &mut ctx);
                }
                for (out_port, _msg) in outbox.drain(..) {
                    next.queues[ChannelId::new(dst, Port::from_index(out_port)).index()] += 1;
                    next.sent += 1;
                }
                next.terminated[dst] = next.nodes[dst].is_terminated();
            }
            let key = key_of(&next);
            if visited.contains(&key) {
                continue;
            }
            // Same accounting rule as [`explore`]: only new entries pay.
            // A config whose key was already present above costs nothing —
            // this prospective (visited.len() + 1) charge must only ever be
            // applied to a key that is actually about to be inserted, and
            // only here. (An earlier revision re-evaluated this charge after
            // the loop as well, double-counting the key and aborting runs
            // whose budget was exactly tight; `budget_exhausted` records the
            // one legitimate trigger site.)
            if visited.len() >= limits.max_configs
                || (visited.len() + 1) * bytes_per_config > limits.max_state_bytes
            {
                complete = false;
                budget_exhausted = true;
                break;
            }
            visited.insert(key);
            stack.push((next, depth + 1));
        }
        if budget_exhausted {
            break;
        }
    }

    ExploreReport {
        configs: visited.len(),
        quiescent_configs,
        violations,
        complete,
        visited_bytes: visited.len() * bytes_per_config,
        visited_heap_bytes: visited.len() * bytes_per_config,
        visited_file_bytes: 0,
        spilled_jobs: 0,
        checkpoints_written: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::Fingerprint;
    use crate::topology::RingSpec;

    /// Forwards every pulse, absorbing the `id`-th — a miniature
    /// Algorithm 1 used to validate the explorer itself.
    #[derive(Clone, Debug)]
    struct MiniAlg1 {
        id: u32,
        rho: u32,
    }

    impl Protocol<Pulse> for MiniAlg1 {
        type Output = bool;
        fn on_start(&mut self, ctx: &mut Context<'_, Pulse>) {
            ctx.send(Port::One, Pulse);
        }
        fn on_message(&mut self, _p: Port, _m: Pulse, ctx: &mut Context<'_, Pulse>) {
            self.rho += 1;
            if self.rho != self.id {
                ctx.send(Port::One, Pulse);
            }
        }
        fn output(&self) -> Option<bool> {
            Some(self.rho == self.id)
        }
    }

    impl Snapshot for MiniAlg1 {
        type State = (u32, u32);
        fn extract(&self) -> Self::State {
            (self.id, self.rho)
        }
        fn restore(&mut self, state: &Self::State) {
            (self.id, self.rho) = *state;
        }
        fn fingerprint(&self) -> u64 {
            let mut fp = Fingerprint::new();
            fp.write_u64(u64::from(self.id));
            fp.write_u64(u64::from(self.rho));
            fp.finish()
        }
    }

    fn mini_ring() -> Vec<MiniAlg1> {
        vec![
            MiniAlg1 { id: 1, rho: 0 },
            MiniAlg1 { id: 3, rho: 0 },
            MiniAlg1 { id: 2, rho: 0 },
        ]
    }

    fn mini_safety(state: &ExploreState<MiniAlg1>) -> Result<(), String> {
        // Corollary 14 analogue: counters never exceed ID_max.
        if state.nodes.iter().any(|n| n.rho > 3) {
            Err("rho exceeded ID_max".into())
        } else {
            Ok(())
        }
    }

    fn mini_quiescence(state: &ExploreState<MiniAlg1>) -> Result<(), String> {
        // Every quiescent configuration: all counters at ID_max.
        if state.nodes.iter().all(|n| n.rho == 3) {
            Ok(())
        } else {
            Err(format!(
                "quiescent with counters {:?}",
                state.nodes.iter().map(|n| n.rho).collect::<Vec<_>>()
            ))
        }
    }

    #[test]
    fn explores_all_schedules_of_mini_alg1() {
        let spec = RingSpec::oriented(vec![1, 3, 2]);
        let report = explore(
            &spec.wiring(),
            mini_ring,
            mini_safety,
            mini_quiescence,
            ExploreLimits::default(),
        );
        assert!(report.complete, "state space should be exhausted");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.configs > 10, "nontrivial state space");
        assert!(report.quiescent_configs >= 1);
        assert_eq!(report.visited_bytes, report.configs * 8);
    }

    #[test]
    fn snapshot_explorer_matches_the_reference() {
        let spec = RingSpec::oriented(vec![1, 3, 2]);
        let snap = explore(
            &spec.wiring(),
            mini_ring,
            mini_safety,
            mini_quiescence,
            ExploreLimits::default(),
        );
        let reference = explore_reference(
            &spec.wiring(),
            mini_ring,
            |node| (node.id, node.rho),
            mini_safety,
            mini_quiescence,
            ExploreLimits::default(),
        );
        assert_eq!(snap.configs, reference.configs);
        assert_eq!(snap.quiescent_configs, reference.quiescent_configs);
        assert!(snap.complete && reference.complete);
        assert!(
            snap.visited_bytes < reference.visited_bytes,
            "fingerprints ({}) must be cheaper than tuples ({})",
            snap.visited_bytes,
            reference.visited_bytes
        );
    }

    #[test]
    fn byte_budget_starves_the_reference_first() {
        // Pick a budget that covers the full fingerprint index but not the
        // reference's tuple index: the snapshot explorer completes, the
        // reference cannot.
        let spec = RingSpec::oriented(vec![1, 3, 2]);
        let full = explore(
            &spec.wiring(),
            mini_ring,
            mini_safety,
            mini_quiescence,
            ExploreLimits::default(),
        );
        assert!(full.complete);
        let budget = ExploreLimits {
            max_state_bytes: full.visited_bytes + 8,
            ..ExploreLimits::default()
        };
        let snap = explore(
            &spec.wiring(),
            mini_ring,
            mini_safety,
            mini_quiescence,
            budget,
        );
        assert!(snap.complete, "snapshot explorer fits in its own footprint");
        let reference = explore_reference(
            &spec.wiring(),
            mini_ring,
            |node| (node.id, node.rho),
            mini_safety,
            mini_quiescence,
            budget,
        );
        assert!(!reference.complete, "tuple index must exceed the budget");
        assert!(reference.configs < snap.configs);
    }

    #[test]
    fn reference_bytes_are_exactly_per_config() {
        // Satellite audit: every dedup entry must be charged exactly once.
        let spec = RingSpec::oriented(vec![1, 3, 2]);
        let n = spec.wiring().len();
        let channels = spec.wiring().channel_count();
        let bytes_per_config =
            channels * std::mem::size_of::<u32>() + n + n * std::mem::size_of::<(u32, u32)>();
        for max_depth in [4, 8, usize::MAX] {
            let report = explore_reference(
                &spec.wiring(),
                mini_ring,
                |node| (node.id, node.rho),
                mini_safety,
                mini_quiescence,
                ExploreLimits {
                    max_depth,
                    ..ExploreLimits::default()
                },
            );
            assert_eq!(
                report.visited_bytes,
                report.configs * bytes_per_config,
                "at max_depth={max_depth}: a re-queued config must not be re-charged"
            );
        }
    }

    /// Node 0 fires one pulse out of each port at start and echoes every
    /// received pulse back; node 1 goes quiet or bounces forever depending
    /// on which port its first pulse arrived on. On the n=2 double edge
    /// this yields exactly the DFS shape that exposed the reference
    /// explorer's byte double-count: the bouncing subtree is explored first
    /// (tripping the depth limit), while the quiet branch — whose quiescent
    /// child is the run's final dedup insert — lingers at the stack bottom.
    #[derive(Clone, Debug)]
    struct EchoFork {
        node: usize,
        first: Option<Port>,
        received: u32,
    }

    impl Protocol<Pulse> for EchoFork {
        type Output = ();
        fn on_start(&mut self, ctx: &mut Context<'_, Pulse>) {
            if self.node == 0 {
                ctx.send(Port::Zero, Pulse);
                ctx.send(Port::One, Pulse);
            }
        }
        fn on_message(&mut self, p: Port, _m: Pulse, ctx: &mut Context<'_, Pulse>) {
            self.received += 1;
            if self.node == 0 {
                ctx.send(p, Pulse);
            } else if *self.first.get_or_insert(p) == Port::Zero {
                ctx.send(Port::One, Pulse);
            }
        }
        fn output(&self) -> Option<()> {
            None
        }
    }

    #[test]
    fn tight_budget_does_not_abort_a_depth_limited_reference_run() {
        // Regression test for the double-count: with a depth limit already
        // marking the run incomplete, a byte budget that exactly covers the
        // visited set used to trip the (visited + 1) re-charge after the
        // branch loop and abort with the quiet branch's quiescent
        // configuration still on the stack — uncounted, its at-quiescence
        // predicate never run.
        let spec = RingSpec::oriented(vec![1, 2]);
        let ring = || -> Vec<EchoFork> {
            (0..2)
                .map(|node| EchoFork {
                    node,
                    first: None,
                    received: 0,
                })
                .collect()
        };
        let key = |n: &EchoFork| (n.node, n.first.map(|p| p as u8), n.received);
        let max_depth = 4;
        let unlimited = explore_reference(
            &spec.wiring(),
            ring,
            key,
            |_| Ok(()),
            |_| Err("flagged".into()),
            ExploreLimits {
                max_depth,
                ..ExploreLimits::default()
            },
        );
        assert!(!unlimited.complete, "depth limit must bite for this test");
        assert_eq!(unlimited.quiescent_configs, 1);
        let tight = explore_reference(
            &spec.wiring(),
            ring,
            key,
            |_| Ok(()),
            |_| Err("flagged".into()),
            ExploreLimits {
                max_depth,
                max_state_bytes: unlimited.visited_bytes,
                ..ExploreLimits::default()
            },
        );
        assert_eq!(tight.configs, unlimited.configs);
        assert_eq!(
            tight.quiescent_configs, 1,
            "an exactly-tight budget must not skip the queued quiescent config"
        );
        assert_eq!(
            tight.violations, unlimited.violations,
            "skipping the quiescent config would silently drop its violation"
        );
        assert_eq!(tight.visited_bytes, unlimited.visited_bytes);
    }

    #[test]
    fn parallel_exact_matches_sequential_for_all_worker_counts() {
        let spec = RingSpec::oriented(vec![1, 3, 2]);
        let sequential = explore(
            &spec.wiring(),
            mini_ring,
            mini_safety,
            mini_quiescence,
            ExploreLimits::default(),
        );
        for jobs in [1, 2, 4, 8] {
            let parallel = explore_parallel(
                &spec.wiring(),
                mini_ring,
                mini_safety,
                mini_quiescence,
                &ExploreConfig {
                    jobs,
                    ..ExploreConfig::default()
                },
            );
            assert_eq!(parallel.configs, sequential.configs, "jobs={jobs}");
            assert_eq!(
                parallel.quiescent_configs, sequential.quiescent_configs,
                "jobs={jobs}"
            );
            assert_eq!(parallel.visited_bytes, sequential.visited_bytes);
            assert!(parallel.complete);
            assert!(parallel.violations.is_empty(), "{:?}", parallel.violations);
        }
    }

    #[test]
    fn queue_backends_enumerate_the_same_state_space() {
        // The visited set, quiescent count, and verdict must not depend on
        // how the per-channel queues are stored.
        let spec = RingSpec::oriented(vec![1, 3, 2]);
        let sequential = explore(
            &spec.wiring(),
            mini_ring,
            mini_safety,
            mini_quiescence,
            ExploreLimits::default(),
        );
        for backend in QueueBackend::ALL {
            let report = explore_parallel(
                &spec.wiring(),
                mini_ring,
                mini_safety,
                mini_quiescence,
                &ExploreConfig {
                    jobs: 1,
                    backend,
                    ..ExploreConfig::default()
                },
            );
            assert_eq!(report.configs, sequential.configs, "{backend}");
            assert_eq!(
                report.quiescent_configs, sequential.quiescent_configs,
                "{backend}"
            );
            assert!(report.complete, "{backend}");
            assert!(report.violations.is_empty(), "{backend}");
        }
    }

    #[test]
    fn batched_successors_keep_fingerprints_and_verdicts() {
        // Macro-step exploration visits the run-boundary subset of the
        // state space, with every configuration hashing exactly as the
        // per-pulse explorer hashes it.
        let spec = RingSpec::oriented(vec![1, 3, 2]);
        let per_pulse = explore_parallel(
            &spec.wiring(),
            mini_ring,
            mini_safety,
            mini_quiescence,
            &ExploreConfig {
                jobs: 1,
                ..ExploreConfig::default()
            },
        );
        let batched = explore_parallel(
            &spec.wiring(),
            mini_ring,
            mini_safety,
            mini_quiescence,
            &ExploreConfig {
                jobs: 1,
                batch: true,
                ..ExploreConfig::default()
            },
        );
        assert!(batched.complete);
        assert!(batched.violations.is_empty(), "{:?}", batched.violations);
        assert!(batched.quiescent_configs >= 1);
        assert!(
            batched.configs <= per_pulse.configs,
            "macro-steps expand a subset of interleavings"
        );

        // Fingerprint identity: a fused run-delivery lands on the same
        // 64-bit fingerprint as pulse-by-pulse delivery of the same run.
        let build = || -> Simulation<Pulse, MiniAlg1> {
            Simulation::with_backend(
                spec.wiring(),
                mini_ring(),
                Box::new(FifoScheduler::new()),
                QueueBackend::Counter,
            )
        };
        let mut fused = build();
        fused.start();
        // Find an empty channel and inject two pulses: their consecutive
        // sequence numbers form a genuine head run of 2.
        let ready = fused.ready_channels();
        let channel = (0..6)
            .map(ChannelId::from_index)
            .find(|c| !ready.contains(c))
            .expect("MiniAlg1 leaves the counterclockwise channels empty");
        fused.inject_run(channel, Pulse, 2);
        let mut stepped = build();
        stepped.start();
        stepped.inject_run(channel, Pulse, 2);
        let (_, count) = fused
            .step_channel_batch(channel, u64::MAX)
            .expect("ready channel");
        assert_eq!(count, 2, "the injected pulse extends the head run");
        for _ in 0..count {
            stepped.step_channel(channel).expect("ready channel");
        }
        assert_eq!(fused.fingerprint(), stepped.fingerprint());
    }

    #[test]
    fn parallel_bloom_uses_fixed_memory() {
        let spec = RingSpec::oriented(vec![1, 3, 2]);
        let exact = explore_parallel(
            &spec.wiring(),
            mini_ring,
            mini_safety,
            mini_quiescence,
            &ExploreConfig {
                jobs: 4,
                ..ExploreConfig::default()
            },
        );
        let bloom = explore_parallel(
            &spec.wiring(),
            mini_ring,
            mini_safety,
            mini_quiescence,
            &ExploreConfig {
                jobs: 4,
                dedup: DedupKind::Bloom,
                bloom_capacity: 4_096,
                bloom_fp_budget: 1e-4,
                ..ExploreConfig::default()
            },
        );
        assert!(bloom.complete);
        assert!(bloom.violations.is_empty(), "{:?}", bloom.violations);
        // At 1e-4 over a few hundred states, misses are overwhelmingly
        // unlikely; allow equality-or-undercount as the contract.
        assert!(bloom.configs <= exact.configs);
        assert!(
            bloom.configs * 100 >= exact.configs * 99,
            "excessive FP loss"
        );
        // Memory is the preallocated filter, independent of states visited.
        let empty_budget = ShardedIndex::new(DedupKind::Bloom, 4_096, 1e-4).bytes();
        assert_eq!(bloom.visited_bytes, empty_budget.total());
        assert_eq!(bloom.visited_file_bytes, 0);
    }

    #[test]
    fn parallel_mmap_matches_sequential_out_of_core() {
        let spec = RingSpec::oriented(vec![1, 3, 2]);
        let sequential = explore(
            &spec.wiring(),
            mini_ring,
            mini_safety,
            mini_quiescence,
            ExploreLimits::default(),
        );
        let dir = std::env::temp_dir().join(unique_name("co-ring-test-mmap"));
        std::fs::create_dir_all(&dir).expect("test scratch dir");
        for jobs in [1, 4] {
            let mmap = explore_parallel(
                &spec.wiring(),
                mini_ring,
                mini_safety,
                mini_quiescence,
                &ExploreConfig {
                    jobs,
                    dedup: DedupKind::Mmap { budget: 1 << 16 },
                    scratch_dir: Some(dir.clone()),
                    ..ExploreConfig::default()
                },
            );
            // State-space identity with the exact backend: the mmap table
            // is a set, not a filter.
            assert_eq!(mmap.configs, sequential.configs, "jobs={jobs}");
            assert_eq!(
                mmap.quiescent_configs, sequential.quiescent_configs,
                "jobs={jobs}"
            );
            assert!(mmap.complete);
            assert!(mmap.violations.is_empty(), "{:?}", mmap.violations);
            // The footprint is file-backed, not heap.
            assert_eq!(mmap.visited_heap_bytes, 0);
            assert!(mmap.visited_file_bytes > 0);
            assert_eq!(mmap.visited_bytes, mmap.visited_file_bytes);
        }
        // All per-run scratch subdirs were removed on drop.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("scratch dir readable")
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn spilled_frontier_explores_the_same_state_space() {
        let spec = RingSpec::oriented(vec![1, 3, 2]);
        let plain = explore_parallel(
            &spec.wiring(),
            mini_ring,
            mini_safety,
            mini_quiescence,
            &ExploreConfig {
                jobs: 2,
                ..ExploreConfig::default()
            },
        );
        let dir = std::env::temp_dir().join(unique_name("co-ring-test-spill"));
        std::fs::create_dir_all(&dir).expect("test scratch dir");
        let spilled = explore_parallel(
            &spec.wiring(),
            mini_ring,
            mini_safety,
            mini_quiescence,
            &ExploreConfig {
                jobs: 2,
                // A tiny high-water mark forces heavy spill traffic.
                spill_high_water: 2,
                scratch_dir: Some(dir.clone()),
                ..ExploreConfig::default()
            },
        );
        assert!(
            spilled.spilled_jobs > 0,
            "a high-water mark of 2 must force spills"
        );
        assert_eq!(spilled.configs, plain.configs);
        assert_eq!(spilled.quiescent_configs, plain.quiescent_configs);
        assert!(spilled.complete);
        assert!(spilled.violations.is_empty(), "{:?}", spilled.violations);
        // Spill files and their subdir are gone.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("scratch dir readable")
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir(&dir);
    }

    fn sorted(mut v: Vec<String>) -> Vec<String> {
        v.sort();
        v
    }

    #[test]
    fn checkpoint_kill_and_resume_reproduces_the_uninterrupted_run() {
        let spec = RingSpec::oriented(vec![1, 3, 2]);
        // A safety predicate with a handful of distinct, state-derived
        // messages (well under the 16-message cap, so the *set* is
        // discovery-order-independent): flag every node whose counter
        // passes through its own id.
        let spicy = |s: &ExploreState<MiniAlg1>| -> Result<(), String> {
            mini_safety(s)?;
            match s.nodes.iter().find(|n| n.rho == n.id && n.rho > 0) {
                Some(n) => Err(format!("rho hit id {}", n.id)),
                None => Ok(()),
            }
        };
        let uninterrupted = explore_parallel(
            &spec.wiring(),
            mini_ring,
            spicy,
            mini_quiescence,
            &ExploreConfig {
                jobs: 2,
                ..ExploreConfig::default()
            },
        );
        assert!(uninterrupted.complete);
        assert!(!uninterrupted.violations.is_empty());

        let dir = std::env::temp_dir().join(unique_name("co-ring-test-ck"));
        std::fs::create_dir_all(&dir).expect("test scratch dir");
        let ck_path = dir.join("explore.ck");
        for kind in [DedupKind::Exact, DedupKind::Mmap { budget: 1 << 16 }] {
            // "Kill" the run mid-flight: a max_configs cut plays the role of
            // the interruption — the frontier at the stop is intact, and the
            // final checkpoint captures it.
            let cut = explore_parallel(
                &spec.wiring(),
                mini_ring,
                spicy,
                mini_quiescence,
                &ExploreConfig {
                    jobs: 2,
                    dedup: kind,
                    scratch_dir: Some(dir.clone()),
                    limits: ExploreLimits {
                        max_configs: uninterrupted.configs / 3,
                        ..ExploreLimits::default()
                    },
                    checkpoint: Some(CheckpointPlan {
                        path: ck_path.clone(),
                        every: 20,
                        meta: b"mini".to_vec(),
                    }),
                    ..ExploreConfig::default()
                },
            );
            assert!(!cut.complete, "{kind:?}: the cut must bite");
            assert!(cut.checkpoints_written >= 1, "{kind:?}");

            let ck = ExploreCheckpoint::read(&ck_path).expect("checkpoint reads back");
            assert_eq!(ck.meta, b"mini".to_vec());
            assert_eq!(ck.dedup, kind.to_string());
            assert!(!ck.is_finished(), "{kind:?}: frontier must survive the cut");

            // Resume with full limits: the run must re-converge exactly.
            let resumed = explore_parallel(
                &spec.wiring(),
                mini_ring,
                spicy,
                mini_quiescence,
                &ExploreConfig {
                    jobs: 2,
                    dedup: kind,
                    scratch_dir: Some(dir.clone()),
                    checkpoint: Some(CheckpointPlan {
                        path: ck_path.clone(),
                        every: 20,
                        meta: b"mini".to_vec(),
                    }),
                    resume: Some(ck),
                    ..ExploreConfig::default()
                },
            );
            assert_eq!(resumed.configs, uninterrupted.configs, "{kind:?}");
            assert_eq!(
                resumed.quiescent_configs, uninterrupted.quiescent_configs,
                "{kind:?}"
            );
            assert!(resumed.complete, "{kind:?}");
            // Violation discovery order is nondeterministic across workers;
            // the *set* must match byte-for-byte.
            assert_eq!(
                sorted(resumed.violations.clone()),
                sorted(uninterrupted.violations.clone()),
                "{kind:?}"
            );

            // The final checkpoint is finished; resuming it is idempotent.
            let done = ExploreCheckpoint::read(&ck_path).expect("final checkpoint");
            assert!(done.is_finished(), "{kind:?}");
            let again = explore_parallel(
                &spec.wiring(),
                mini_ring,
                spicy,
                mini_quiescence,
                &ExploreConfig {
                    jobs: 2,
                    dedup: kind,
                    scratch_dir: Some(dir.clone()),
                    resume: Some(done),
                    ..ExploreConfig::default()
                },
            );
            assert_eq!(again.configs, uninterrupted.configs, "{kind:?}");
            assert_eq!(
                again.quiescent_configs, uninterrupted.quiescent_configs,
                "{kind:?}"
            );
            std::fs::remove_file(&ck_path).expect("checkpoint file exists");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulted_checkpoint_resume_stays_deterministic() {
        // Replay-based resume must reproduce fault firings exactly: faults
        // key on the global send sequence, which the channel-pick replay
        // regenerates.
        let spec = RingSpec::oriented(vec![1, 3, 2]);
        let faults = FaultPlan::new().drop_seq(4);
        let base = ExploreConfig {
            jobs: 2,
            faults: faults.clone(),
            ..ExploreConfig::default()
        };
        let uninterrupted = explore_parallel(
            &spec.wiring(),
            mini_ring,
            mini_safety,
            mini_quiescence,
            &base,
        );
        assert!(uninterrupted.complete);
        assert!(!uninterrupted.violations.is_empty());

        let dir = std::env::temp_dir().join(unique_name("co-ring-test-fck"));
        std::fs::create_dir_all(&dir).expect("test scratch dir");
        let ck_path = dir.join("explore.ck");
        let cut = explore_parallel(
            &spec.wiring(),
            mini_ring,
            mini_safety,
            mini_quiescence,
            &ExploreConfig {
                limits: ExploreLimits {
                    max_configs: uninterrupted.configs / 2,
                    ..ExploreLimits::default()
                },
                checkpoint: Some(CheckpointPlan {
                    path: ck_path.clone(),
                    every: 25,
                    meta: Vec::new(),
                }),
                spill_high_water: 2,
                scratch_dir: Some(dir.clone()),
                ..base.clone()
            },
        );
        assert!(!cut.complete);
        let ck = ExploreCheckpoint::read(&ck_path).expect("checkpoint reads back");
        let resumed = explore_parallel(
            &spec.wiring(),
            mini_ring,
            mini_safety,
            mini_quiescence,
            &ExploreConfig {
                spill_high_water: 2,
                scratch_dir: Some(dir.clone()),
                resume: Some(ck),
                ..base
            },
        );
        assert_eq!(resumed.configs, uninterrupted.configs);
        assert_eq!(resumed.quiescent_configs, uninterrupted.quiescent_configs);
        assert!(resumed.complete);
        assert_eq!(
            sorted(resumed.violations.clone()),
            sorted(uninterrupted.violations.clone())
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_encoding_roundtrips_and_rejects_corruption() {
        let ck = ExploreCheckpoint {
            meta: b"alg1|n=4".to_vec(),
            dedup: "mmap:65536".to_string(),
            admitted: 12_345,
            quiescent: 17,
            spilled: 3,
            pruned: true,
            violations: vec!["safety: boom".to_string()],
            shards: vec![vec![1, 2, 3], Vec::new()],
            frontier: vec![
                FrontierItem {
                    depth: 2,
                    picks: vec![0, 5, 3],
                },
                FrontierItem {
                    depth: 0,
                    picks: Vec::new(),
                },
            ],
        };
        let bytes = ck.encode();
        assert_eq!(ExploreCheckpoint::decode(&bytes).expect("roundtrip"), ck);
        // Truncation, trailing garbage, bad magic, bad version all fail.
        assert!(ExploreCheckpoint::decode(&bytes[..bytes.len() - 1]).is_err());
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(ExploreCheckpoint::decode(&longer).is_err());
        let mut magic = bytes.clone();
        magic[0] ^= 0xff;
        assert!(ExploreCheckpoint::decode(&magic).is_err());
        let mut version = bytes;
        version[8] = 99;
        assert!(ExploreCheckpoint::decode(&version)
            .expect_err("version check")
            .contains("version"));
    }

    #[test]
    fn parallel_detects_the_same_violations() {
        // Break the quiescence predicate so every quiescent config violates.
        let spec = RingSpec::oriented(vec![1, 3, 2]);
        let bad = |_: &ExploreState<MiniAlg1>| -> Result<(), String> { Err("always wrong".into()) };
        let sequential = explore(
            &spec.wiring(),
            mini_ring,
            mini_safety,
            bad,
            ExploreLimits::default(),
        );
        let parallel = explore_parallel(
            &spec.wiring(),
            mini_ring,
            mini_safety,
            bad,
            &ExploreConfig::default(),
        );
        assert!(!sequential.violations.is_empty());
        assert!(!parallel.violations.is_empty());
        assert_eq!(
            parallel.violations.is_empty(),
            sequential.violations.is_empty()
        );
    }

    #[test]
    fn parallel_respects_limits() {
        let spec = RingSpec::oriented(vec![1, 2]);
        let jobs = 4;
        let report = explore_parallel(
            &spec.wiring(),
            || vec![MiniAlg1 { id: 50, rho: 0 }, MiniAlg1 { id: 60, rho: 0 }],
            |_| Ok(()),
            |_| Ok(()),
            &ExploreConfig {
                jobs,
                limits: ExploreLimits {
                    max_configs: 16,
                    max_depth: 8,
                    max_state_bytes: usize::MAX,
                },
                ..ExploreConfig::default()
            },
        );
        assert!(!report.complete);
        // Workers race to the limit and always finish expanding the item in
        // hand (the resume-convergence invariant), so the overshoot is
        // bounded by one branching factor (here ≤ 4 channels) per worker.
        assert!(
            report.configs <= 16 + jobs * 4,
            "configs={}",
            report.configs
        );
    }

    #[test]
    fn faulty_exploration_finds_the_deadlock_and_stays_deterministic() {
        // Exhaustive exploration under a FaultPlan: dropping the fifth send
        // (seq 4 — *which* pulse that is depends on the delivery order, so
        // the fault-aware fingerprint is load-bearing here) starves the
        // counters and some schedule must reach quiescence early, violating
        // the all-counters-at-ID_max predicate. The clean run stays green.
        let spec = RingSpec::oriented(vec![1, 3, 2]);
        let clean = explore_parallel(
            &spec.wiring(),
            mini_ring,
            mini_safety,
            mini_quiescence,
            &ExploreConfig::default(),
        );
        assert!(clean.complete && clean.violations.is_empty());
        let faults = FaultPlan::new().drop_seq(4);
        let run = |jobs: usize| {
            explore_parallel(
                &spec.wiring(),
                mini_ring,
                mini_safety,
                mini_quiescence,
                &ExploreConfig {
                    jobs,
                    faults: faults.clone(),
                    ..ExploreConfig::default()
                },
            )
        };
        let faulty = run(1);
        assert!(faulty.complete);
        assert!(
            !faulty.violations.is_empty(),
            "a dropped pulse must starve some schedule short of quiescence targets"
        );
        // Exact-backend exploration is deterministic in the worker count.
        let faulty4 = run(4);
        assert_eq!(faulty.configs, faulty4.configs);
        assert_eq!(faulty.quiescent_configs, faulty4.quiescent_configs);
        assert_eq!(faulty.violations.is_empty(), faulty4.violations.is_empty());
    }

    #[test]
    fn limits_are_respected() {
        let spec = RingSpec::oriented(vec![1, 2]);
        let limits = ExploreLimits {
            max_configs: 16,
            max_depth: 8,
            max_state_bytes: usize::MAX,
        };
        let report = explore(
            &spec.wiring(),
            || vec![MiniAlg1 { id: 50, rho: 0 }, MiniAlg1 { id: 60, rho: 0 }],
            |_| Ok(()),
            |_| Ok(()),
            limits,
        );
        assert!(!report.complete);
        assert!(report.configs <= 17);
        let report = explore_reference(
            &spec.wiring(),
            || vec![MiniAlg1 { id: 50, rho: 0 }, MiniAlg1 { id: 60, rho: 0 }],
            |node| node.rho,
            |_| Ok(()),
            |_| Ok(()),
            limits,
        );
        assert!(!report.complete);
        assert!(report.configs <= 17);
    }
}
